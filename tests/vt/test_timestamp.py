"""Unit + property tests for Timestamp, TsRange and corresponds()."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.vt import EARLIEST, LATEST, Timestamp, TsRange, corresponds


class TestTimestamp:
    def test_construction(self):
        assert Timestamp(5).value == 5

    def test_copy_construction(self):
        assert Timestamp(Timestamp(5)).value == 5

    def test_rejects_non_int(self):
        with pytest.raises(TypeError):
            Timestamp(1.5)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            Timestamp(-1)

    def test_immutable(self):
        ts = Timestamp(1)
        with pytest.raises(AttributeError):
            ts.value = 2

    def test_equality_with_int(self):
        assert Timestamp(3) == 3
        assert 3 == Timestamp(3)
        assert Timestamp(3) != 4

    def test_ordering(self):
        assert Timestamp(1) < Timestamp(2)
        assert Timestamp(2) <= 2
        assert Timestamp(5) > 4
        assert Timestamp(5) >= Timestamp(5)

    def test_hash_matches_int(self):
        assert hash(Timestamp(7)) == hash(7)
        assert {Timestamp(7)} == {7}

    def test_arithmetic(self):
        assert (Timestamp(3) + 2) == Timestamp(5)
        assert Timestamp(5) - Timestamp(3) == 2
        assert Timestamp(5) - 1 == 4

    def test_next(self):
        assert Timestamp(0).next() == 1

    def test_int_and_index(self):
        assert int(Timestamp(9)) == 9
        assert list(range(3))[Timestamp(1)] == 1

    def test_repr(self):
        assert repr(Timestamp(4)) == "ts(4)"

    def test_comparison_with_unrelated_type(self):
        assert (Timestamp(1) == "x") is False

    @given(st.integers(0, 10**6), st.integers(0, 10**6))
    def test_order_agrees_with_int(self, a, b):
        assert (Timestamp(a) < Timestamp(b)) == (a < b)
        assert (Timestamp(a) == Timestamp(b)) == (a == b)


class TestSentinels:
    def test_reprs(self):
        assert repr(LATEST) == "LATEST"
        assert repr(EARLIEST) == "EARLIEST"

    def test_identity_distinct(self):
        assert LATEST is not EARLIEST


class TestTsRange:
    def test_contains(self):
        r = TsRange(2, 5)
        assert 2 in r and 4 in r
        assert 5 not in r and 1 not in r
        assert Timestamp(3) in r

    def test_len_and_iter(self):
        r = TsRange(1, 4)
        assert len(r) == 3
        assert [int(t) for t in r] == [1, 2, 3]

    def test_empty(self):
        assert TsRange(3, 3).empty
        assert not TsRange(3, 4).empty

    def test_inverted_rejected(self):
        with pytest.raises(ValueError):
            TsRange(5, 2)

    def test_intersect(self):
        assert TsRange(0, 10).intersect(TsRange(5, 15)) == TsRange(5, 10)

    def test_intersect_disjoint_is_empty(self):
        assert TsRange(0, 3).intersect(TsRange(7, 9)).empty

    def test_union_hull(self):
        assert TsRange(0, 3).union_hull(TsRange(7, 9)) == TsRange(0, 9)

    @given(
        st.integers(0, 100), st.integers(0, 100),
        st.integers(0, 100), st.integers(0, 100),
    )
    def test_intersect_is_subset_of_both(self, a, b, c, d):
        r1 = TsRange(min(a, b), max(a, b))
        r2 = TsRange(min(c, d), max(c, d))
        inter = r1.intersect(r2)
        for t in inter:
            assert t in r1 and t in r2


class TestCorresponds:
    def test_equal_timestamps_correspond(self):
        assert corresponds(5, 5)
        assert corresponds(Timestamp(5), 5)

    def test_zero_threshold_strict(self):
        assert not corresponds(5, 6)

    def test_threshold_window(self):
        assert corresponds(5, 7, threshold=2)
        assert not corresponds(5, 8, threshold=2)

    def test_symmetric(self):
        assert corresponds(7, 5, threshold=2) == corresponds(5, 7, threshold=2)

    def test_negative_threshold_rejected(self):
        with pytest.raises(ValueError):
            corresponds(1, 1, threshold=-1)

    @given(st.integers(0, 1000), st.integers(0, 5))
    def test_reflexive(self, t, thr):
        assert corresponds(t, t, threshold=thr)
