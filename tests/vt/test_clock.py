"""Tests for clock implementations."""

import pytest

from repro.sim import Engine
from repro.vt import Clock, ManualClock, SimClock, WallClock


def test_simclock_tracks_engine():
    eng = Engine()
    clock = SimClock(eng)
    assert clock.now() == 0.0

    def proc(eng):
        yield eng.timeout(3.5)

    eng.process(proc(eng))
    eng.run()
    assert clock.now() == 3.5


def test_wallclock_monotonic_and_rebased():
    clock = WallClock()
    a = clock.now()
    b = clock.now()
    assert 0.0 <= a <= b < 60.0


def test_manual_clock_advance():
    clock = ManualClock()
    clock.advance(2.0)
    clock.advance(0.5)
    assert clock.now() == 2.5


def test_manual_clock_set():
    clock = ManualClock(start=1.0)
    clock.set(4.0)
    assert clock.now() == 4.0


def test_manual_clock_never_backwards():
    clock = ManualClock(start=5.0)
    with pytest.raises(ValueError):
        clock.advance(-1.0)
    with pytest.raises(ValueError):
        clock.set(4.0)


def test_all_satisfy_protocol():
    eng = Engine()
    for clock in (SimClock(eng), WallClock(), ManualClock()):
        assert isinstance(clock, Clock)
