"""Tests for synthetic vision kernels and stage cost models."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps import (
    DEFAULT_FRAME_SHAPE,
    StageCost,
    background_subtract,
    color_histogram,
    detect_target,
    make_frame,
)
from repro.errors import ConfigError


class TestStageCost:
    def test_deterministic_without_noise(self):
        cost = StageCost(mean=0.1)
        rng = np.random.default_rng(0)
        assert cost.sample(rng, 5) == 0.1

    def test_activity_modulation(self):
        cost = StageCost(mean=0.1, activity_amp=0.5, activity_period=100)
        # peak of sin at ts = 25 (quarter period)
        assert cost.base_mean(25) == pytest.approx(0.15)
        assert cost.base_mean(75) == pytest.approx(0.05)
        assert cost.base_mean(0) == pytest.approx(0.1)

    def test_sample_mean_tracks_modulation(self):
        cost = StageCost(mean=0.2, cv=0.1, activity_amp=0.3, activity_period=40)
        rng = np.random.default_rng(1)
        samples = [cost.sample(rng, 10) for _ in range(5000)]
        assert np.mean(samples) == pytest.approx(cost.base_mean(10), rel=0.03)

    def test_zero_mean_is_zero(self):
        cost = StageCost(mean=0.0, cv=0.5)
        assert cost.sample(np.random.default_rng(0), 0) == 0.0

    def test_validation(self):
        with pytest.raises(ConfigError):
            StageCost(mean=-1.0)
        with pytest.raises(ConfigError):
            StageCost(mean=1.0, cv=-0.1)
        with pytest.raises(ConfigError):
            StageCost(mean=1.0, activity_amp=1.0)
        with pytest.raises(ConfigError):
            StageCost(mean=1.0, activity_period=0)

    @settings(max_examples=30, deadline=None)
    @given(st.integers(0, 10000))
    def test_samples_always_positive(self, ts):
        cost = StageCost(mean=0.1, cv=0.4, activity_amp=0.5)
        rng = np.random.default_rng(42)
        assert cost.sample(rng, ts) > 0


class TestFrameKernels:
    def test_frame_shape_matches_paper_item_size(self):
        h, w, c = DEFAULT_FRAME_SHAPE
        assert h * w * c == 737_280  # the paper's "738 kB" digitizer item

    def test_make_frame(self):
        rng = np.random.default_rng(0)
        frame = make_frame(rng, ts=0)
        assert frame.shape == DEFAULT_FRAME_SHAPE
        assert frame.dtype == np.uint8

    def test_blob_moves_over_time(self):
        rng = np.random.default_rng(0)
        a = make_frame(rng, ts=0)
        b = make_frame(rng, ts=100)
        # the moving blob changes pixel content beyond noise level
        assert np.abs(a.astype(int) - b.astype(int)).max() > 50

    def test_background_subtract_finds_blob(self):
        rng = np.random.default_rng(0)
        frame = make_frame(rng, ts=0, shape=(64, 64, 3))
        mask = background_subtract(frame)
        assert mask.shape == (64, 64)
        assert mask.max() == 255
        assert 0 < (mask > 0).mean() < 0.5  # blob present, not everything

    def test_histogram_normalized(self):
        rng = np.random.default_rng(0)
        frame = make_frame(rng, ts=0, shape=(32, 32, 3))
        hist = color_histogram(frame, bins=16)
        assert hist.shape == (3, 16)
        assert np.allclose(hist.sum(axis=1), 1.0)

    def test_histogram_rejects_2d(self):
        with pytest.raises(ValueError):
            color_histogram(np.zeros((8, 8), dtype=np.uint8))

    def test_detect_target_finds_blob(self):
        rng = np.random.default_rng(0)
        frame = make_frame(rng, ts=3, shape=(128, 128, 3))
        mask = background_subtract(frame)
        ys, xs = np.where(mask > 0)
        blob_y, blob_x = ys.mean(), xs.mean()
        model = color_histogram(frame, bins=16)
        y, x, score = detect_target(frame, mask, model, patch=32)
        assert score > 0
        # detection lands within a patch of the blob centre
        assert abs(y + 16 - blob_y) <= 48
        assert abs(x + 16 - blob_x) <= 48

    def test_detect_target_no_motion(self):
        frame = np.full((64, 64, 3), 96, dtype=np.uint8)
        mask = np.zeros((64, 64), dtype=np.uint8)
        model = color_histogram(frame, bins=8)
        y, x, score = detect_target(frame, mask, model)
        assert score == -1.0  # nothing moving, nothing found
