"""Tests for the generic workload generators."""

import pytest

from repro.apps import StageCost, fan_in, fan_out, linear_pipeline
from repro.aru import aru_disabled, aru_max, aru_min
from repro.cluster import ClusterSpec, NodeSpec
from repro.errors import ConfigError
from repro.metrics import PostmortemAnalyzer
from repro.runtime import Runtime, RuntimeConfig


def quiet():
    return ClusterSpec(nodes=(NodeSpec(name="node0", sched_noise_cv=0.0),), name="q")


class TestLinearPipeline:
    def test_structure(self):
        g = linear_pipeline([StageCost(0.01), StageCost(0.02), StageCost(0.03)])
        assert len(g.threads()) == 4  # source + 3 stages
        assert len(g.channels()) == 3
        assert g.sources() == ["source"]
        assert g.sinks() == ["stage2"]

    def test_runs(self):
        g = linear_pipeline([StageCost(0.01), StageCost(0.05)], source_period=0.01)
        rec = Runtime(g, RuntimeConfig(cluster=quiet(), aru=aru_disabled())).run(until=5.0)
        assert len(rec.sink_iterations()) > 50

    def test_empty_rejected(self):
        with pytest.raises(ConfigError):
            linear_pipeline([])

    def test_aru_throttles_chain(self):
        g = linear_pipeline(
            [StageCost(0.01), StageCost(0.1)], source_period=0.005
        )
        rec = Runtime(g, RuntimeConfig(cluster=quiet(), aru=aru_min())).run(until=20.0)
        pm = PostmortemAnalyzer(rec)
        assert pm.wasted_memory_fraction < 0.15


class TestFanOut:
    def test_structure_matches_fig3(self):
        g = fan_out([StageCost(0.337), StageCost(0.139), StageCost(0.273),
                     StageCost(0.544), StageCost(0.420)])
        assert len(g.threads()) == 6  # A + 5 sinks
        assert len(g.channels()) == 5
        assert g.sources() == ["A"]
        assert len(g.sinks()) == 5

    def test_min_throttles_to_fastest_consumer(self):
        """Fig. 3 dynamics: A sustains the fastest consumer under min."""
        costs = [StageCost(0.337), StageCost(0.139), StageCost(0.273),
                 StageCost(0.544), StageCost(0.420)]
        g = fan_out(costs, source_period=0.02)
        rec = Runtime(
            g, RuntimeConfig(cluster=quiet(), aru=aru_min(), seed=1)
        ).run(until=60.0)
        late = [it for it in rec.iterations_of("A") if it.t_start > 20.0]
        period = sum(it.duration for it in late) / len(late)
        assert period == pytest.approx(0.139, rel=0.1)

    def test_max_throttles_to_slowest_consumer(self):
        """Fig. 4 aggressiveness: A matches the slowest summary under max."""
        costs = [StageCost(0.337), StageCost(0.139), StageCost(0.273),
                 StageCost(0.544), StageCost(0.420)]
        g = fan_out(costs, source_period=0.02)
        rec = Runtime(
            g, RuntimeConfig(cluster=quiet(), aru=aru_max(), seed=1)
        ).run(until=60.0)
        late = [it for it in rec.iterations_of("A") if it.t_start > 20.0]
        period = sum(it.duration for it in late) / len(late)
        assert period == pytest.approx(0.544, rel=0.1)


class TestFanIn:
    def test_structure_matches_fig4(self):
        g = fan_in([StageCost(0.01)] * 3, join_cost=StageCost(0.05))
        assert g.sources() == ["A"]
        assert g.sinks() == ["G"]
        assert len(g.channels()) == 6  # in/out per branch

    def test_join_dictates_rate_under_max(self):
        g = fan_in(
            [StageCost(0.01), StageCost(0.02)],
            join_cost=StageCost(0.2),
            source_period=0.01,
        )
        rec = Runtime(
            g, RuntimeConfig(cluster=quiet(), aru=aru_max(), seed=1)
        ).run(until=40.0)
        late = [it for it in rec.iterations_of("A") if it.t_start > 10.0]
        period = sum(it.duration for it in late) / len(late)
        assert period == pytest.approx(0.2, rel=0.15)

    def test_empty_rejected(self):
        with pytest.raises(ConfigError):
            fan_in([], join_cost=StageCost(0.1))
