"""Tests for the work-queue pool workload and the pooled operator."""

import pytest

from repro.apps import StageCost, work_queue_pool
from repro.aru import aru_disabled, aru_min, pooled_min_op
from repro.cluster import ClusterSpec, NodeSpec
from repro.errors import ConfigError
from repro.runtime import Runtime, RuntimeConfig


def quiet(ncpus=8):
    return ClusterSpec(
        nodes=(NodeSpec(name="node0", ncpus=ncpus, sched_noise_cv=0.0),)
    )


def run_pool(n_workers, aru, queue_op=None, horizon=30.0):
    g = work_queue_pool(
        n_workers=n_workers,
        worker_cost=StageCost(0.1),
        source_period=0.01,
        queue_op=queue_op,
    )
    rt = Runtime(g, RuntimeConfig(cluster=quiet(), aru=aru, seed=0))
    rec = rt.run(until=horizon)
    return rt, rec


class TestOperator:
    def test_pooled_min_divides_by_count(self):
        assert pooled_min_op([0.3, 0.1, 0.2]) == pytest.approx(0.1 / 3)

    def test_resolve_by_name(self):
        from repro.aru import resolve

        assert resolve("pooled") is pooled_min_op


class TestPool:
    def test_each_job_processed_once(self):
        rt, rec = run_pool(3, aru_disabled())
        q = rt.queue("jobs")
        total_worker_iters = sum(
            len(rec.iterations_of(f"worker{i}")) for i in range(3)
        )
        # every get belongs to a completed iteration, except at most one
        # in-flight job per worker when the horizon cuts the run off
        assert 0 <= q.total_gets - total_worker_iters <= 3
        # FIFO: no skipping ever happens on a queue
        assert all(not item.skips for item in rec.items.values()
                   if item.channel == "jobs")

    def test_pool_scales_throughput(self):
        _, rec1 = run_pool(1, aru_disabled())
        _, rec4 = run_pool(4, aru_disabled())
        done1 = sum(len(rec1.iterations_of(f"worker{i}")) for i in range(1))
        done4 = sum(len(rec4.iterations_of(f"worker{i}")) for i in range(4))
        assert done4 > 3 * done1

    def test_min_operator_overthrottles_pool(self):
        """Plain min treats 4 workers like 1: source drops to ~10 items/s."""
        _, rec = run_pool(4, aru_min())
        late = [it for it in rec.iterations_of("source") if it.t_start > 10.0]
        period = sum(it.duration for it in late) / len(late)
        assert period == pytest.approx(0.1, rel=0.2)  # one worker's period

    def test_pooled_operator_sustains_aggregate_rate(self):
        """The user-defined pooled operator restores ~4x the rate."""
        _, rec = run_pool(4, aru_min(), queue_op="pooled")
        late = [it for it in rec.iterations_of("source") if it.t_start > 10.0]
        period = sum(it.duration for it in late) / len(late)
        assert period == pytest.approx(0.025, rel=0.3)  # min/4

    def test_pooled_keeps_queue_bounded(self):
        rt, _ = run_pool(4, aru_min(), queue_op="pooled")
        assert len(rt.queue("jobs")) < 50

    def test_zero_workers_rejected(self):
        with pytest.raises(ConfigError):
            work_queue_pool(0, StageCost(0.1))
