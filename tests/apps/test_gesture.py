"""Tests for the sliding-window gesture-recognition workload."""

import pytest

from repro.apps import GestureConfig, build_gesture
from repro.apps.vision import StageCost
from repro.aru import aru_disabled, aru_min
from repro.cluster import ClusterSpec, NodeSpec
from repro.errors import ConfigError
from repro.metrics import PostmortemAnalyzer
from repro.runtime import Runtime, RuntimeConfig


def quiet():
    return ClusterSpec(
        nodes=(NodeSpec(name="node0", ncpus=8, sched_noise_cv=0.0),)
    )


def fast_cfg(window=4):
    return GestureConfig(
        frame_period=0.01,
        window=window,
        feature_cost=StageCost(0.005),
        recognize_cost=StageCost(0.04),
        ui_cost=StageCost(0.002),
    )


def run(cfg, aru, until=20.0):
    rt = Runtime(build_gesture(cfg), RuntimeConfig(cluster=quiet(), aru=aru, seed=0))
    rec = rt.run(until=until)
    return rt, rec


class TestStructure:
    def test_graph_shape(self):
        g = build_gesture()
        assert g.sources() == ["camera"]
        assert g.sinks() == ["ui"]
        assert len(g.channels()) == 3

    def test_window_validation(self):
        with pytest.raises(ConfigError):
            GestureConfig(window=0)


class TestBehaviour:
    def test_pipeline_flows(self):
        _, rec = run(fast_cfg(), aru_disabled())
        assert len(rec.sink_iterations()) > 100

    def test_feature_channel_keeps_window_pinned(self):
        rt, _ = run(fast_cfg(window=6), aru_disabled())
        feat = rt.channel("C_feat")
        # exactly the pinned window (±1 in-flight) remains at cutoff
        assert 4 <= len(feat) <= 8
        pinned = sum(1 for item in feat.items_snapshot() if item.refcount > 0)
        assert pinned >= 4

    def test_window_items_marked_successful(self):
        _, rec = run(fast_cfg(window=3), aru_disabled())
        pm = PostmortemAnalyzer(rec)
        feat_items = [i for i in rec.items.values() if i.channel == "C_feat"]
        consumed = [i for i in feat_items if i.ever_got]
        assert consumed
        assert all(pm.is_successful(i.item_id) for i in consumed[:-5])

    def test_aru_throttles_camera_to_recognizer(self):
        _, rec = run(fast_cfg(), aru_min(), until=30.0)
        late = [it for it in rec.iterations_of("camera") if it.t_start > 10.0]
        period = sum(it.duration for it in late) / len(late)
        assert period == pytest.approx(0.04, rel=0.25)

    def test_aru_cuts_waste_but_window_memory_remains(self):
        stats = {}
        for aru in (aru_disabled(), aru_min()):
            _, rec = run(fast_cfg(window=8), aru, until=30.0)
            pm = PostmortemAnalyzer(rec)
            stats[aru.name] = (
                pm.wasted_memory_fraction,
                pm.footprint("C_feat").mean(),
            )
        assert stats["no-aru"][0] > 0.3
        assert stats["aru-min"][0] < 0.1
        # the pinned window floor: roughly window * feature_bytes survives
        floor = 8 * GestureConfig().feature_bytes * 0.5
        assert stats["aru-min"][1] > floor
