"""Tests for the corresponding-timestamps stereo workload."""

import pytest

from repro.apps import StereoConfig, build_stereo
from repro.apps.vision import StageCost
from repro.aru import aru_disabled, aru_min
from repro.cluster import ClusterSpec, NodeSpec
from repro.errors import ConfigError
from repro.metrics import PostmortemAnalyzer
from repro.runtime import Runtime, RuntimeConfig


def quiet():
    return ClusterSpec(
        nodes=(NodeSpec(name="node0", ncpus=8, sched_noise_cv=0.0),)
    )


def fast_cfg(**kw):
    base = dict(
        frame_period=0.01,
        shutter_jitter=0.2,
        pair_timeout=0.2,
        stereo_cost=StageCost(0.05),
        viewer_cost=StageCost(0.002),
    )
    base.update(kw)
    return StereoConfig(**base)


def run(cfg, aru, until=20.0):
    g = build_stereo(cfg)
    rt = Runtime(g, RuntimeConfig(cluster=quiet(), aru=aru, seed=0))
    rec = rt.run(until=until)
    return g, rt, rec


class TestStructure:
    def test_two_sources_one_sink(self):
        g = build_stereo()
        assert sorted(g.sources()) == ["cam_left", "cam_right"]
        assert g.sinks() == ["viewer"]

    def test_validation(self):
        with pytest.raises(ConfigError):
            StereoConfig(pair_timeout=0.0)
        with pytest.raises(ConfigError):
            StereoConfig(shutter_jitter=1.0)


class TestPairing:
    def test_pairs_flow_to_viewer(self):
        g, _, rec = run(fast_cfg(), aru_disabled())
        paired = g.attrs("stereo")["params"].get("paired", 0)
        assert paired > 100
        assert len(rec.sink_iterations()) > 50

    def test_pairs_correspond_exactly(self):
        """Every depth item descends from a left and right frame with the
        same timestamp."""
        _, _, rec = run(fast_cfg(), aru_disabled(), until=8.0)
        depths = [i for i in rec.items.values() if i.channel == "C_depth"]
        assert depths
        for depth in depths:
            parent_ts = {rec.items[p].ts for p in depth.parents}
            parent_chans = {rec.items[p].channel for p in depth.parents}
            assert parent_ts == {depth.ts}
            assert parent_chans == {"C_left", "C_right"}

    def test_drop_counter_present(self):
        g, _, _ = run(fast_cfg(pair_timeout=0.011), aru_disabled(), until=8.0)
        params = g.attrs("stereo")["params"]
        # with a timeout barely above one frame period some pairs miss
        assert params.get("paired", 0) > 0


class TestAruOnTwoSources:
    def test_both_cameras_throttle_to_stereo_rate(self):
        _, _, rec = run(fast_cfg(), aru_min(), until=30.0)
        for cam in ("cam_left", "cam_right"):
            late = [it for it in rec.iterations_of(cam) if it.t_start > 10.0]
            period = sum(it.duration for it in late) / len(late)
            assert period == pytest.approx(0.05, rel=0.3), cam

    def test_aru_cuts_stereo_waste(self):
        waste = {}
        for aru in (aru_disabled(), aru_min()):
            _, _, rec = run(fast_cfg(), aru, until=30.0)
            waste[aru.name] = PostmortemAnalyzer(rec).wasted_memory_fraction
        assert waste["no-aru"] > 0.4
        assert waste["aru-min"] < 0.25
