"""Tests for the people-tracker application graph and its behaviour."""

import pytest

from repro.apps import (
    CHANNELS,
    THREADS,
    TrackerConfig,
    build_tracker,
    tracker_placement,
)
from repro.apps.vision import StageCost
from repro.aru import aru_disabled, aru_max, aru_min
from repro.cluster import config1_spec, config2_spec
from repro.errors import ConfigError
from repro.metrics import PostmortemAnalyzer, throughput_fps
from repro.runtime import Runtime, RuntimeConfig


def fast_tracker_config():
    """A sped-up tracker so integration tests stay quick."""
    return TrackerConfig(
        frame_period=1 / 100.0,
        grab_cost=StageCost(0.002, 0.05),
        change_detection_cost=StageCost(0.02, 0.1),
        histogram_cost=StageCost(0.03, 0.1),
        target_detect1_cost=StageCost(0.05, 0.1),
        target_detect2_cost=StageCost(0.06, 0.1),
        gui_cost=StageCost(0.005, 0.05),
    )


class TestGraphStructure:
    def test_thread_and_channel_inventory(self):
        g = build_tracker()
        assert sorted(g.threads()) == sorted(THREADS)
        assert sorted(g.channels()) == sorted(CHANNELS)
        assert not g.queues()

    def test_digitizer_is_sole_source(self):
        g = build_tracker()
        assert g.sources() == ["digitizer"]

    def test_gui_is_sink(self):
        g = build_tracker()
        assert g.sinks() == ["gui"]

    def test_fig5_edges(self):
        g = build_tracker()
        assert sorted(g.outputs_of("digitizer")) == ["C1", "C2", "C3"]
        assert g.consumers_of("C1") == ["change_detection"]
        assert g.consumers_of("C2") == ["histogram"]
        assert sorted(g.consumers_of("C3")) == ["target_detect1", "target_detect2"]
        assert sorted(g.inputs_of("target_detect1")) == ["C3", "C4", "C7"]
        assert sorted(g.inputs_of("target_detect2")) == ["C3", "C5", "C8"]
        assert sorted(g.inputs_of("gui")) == ["C6", "C9"]

    def test_validates(self):
        build_tracker().validate()


class TestPlacement:
    def test_config2_mapping(self):
        placement = tracker_placement()
        assert placement["digitizer"] == "node0"
        assert placement["target_detect1"] == placement["target_detect2"]
        assert len(set(placement.values())) == 5

    def test_insufficient_nodes_rejected(self):
        with pytest.raises(ConfigError):
            tracker_placement(n_nodes=4)


class TestTrackerRuns:
    def test_runs_on_config1(self):
        rt = Runtime(
            build_tracker(fast_tracker_config()),
            RuntimeConfig(cluster=config1_spec(), aru=aru_disabled(), seed=1),
        )
        rec = rt.run(until=10.0)
        assert len(rec.sink_iterations()) > 50
        for thread in THREADS:
            assert rec.iterations_of(thread), f"{thread} never iterated"

    def test_runs_on_config2(self):
        rt = Runtime(
            build_tracker(fast_tracker_config()),
            RuntimeConfig(
                cluster=config2_spec(),
                aru=aru_min(),
                seed=1,
                placement=tracker_placement(),
            ),
        )
        rec = rt.run(until=10.0)
        assert len(rec.sink_iterations()) > 30

    def test_aru_reduces_tracker_waste(self):
        results = {}
        for aru in (aru_disabled(), aru_max()):
            rt = Runtime(
                build_tracker(fast_tracker_config()),
                RuntimeConfig(cluster=config1_spec(), aru=aru, seed=2),
            )
            rec = rt.run(until=20.0)
            results[aru.name] = PostmortemAnalyzer(rec).wasted_memory_fraction
        assert results["no-aru"] > 0.4
        assert results["aru-max"] < 0.1

    def test_aru_reduces_memory_footprint(self):
        means = {}
        for aru in (aru_disabled(), aru_max()):
            rt = Runtime(
                build_tracker(fast_tracker_config()),
                RuntimeConfig(cluster=config1_spec(), aru=aru, seed=2),
            )
            rec = rt.run(until=20.0)
            means[aru.name] = PostmortemAnalyzer(rec).footprint().mean()
        assert means["aru-max"] < means["no-aru"] * 0.5

    def test_digitizer_throttles_under_aru(self):
        rt = Runtime(
            build_tracker(fast_tracker_config()),
            RuntimeConfig(cluster=config1_spec(), aru=aru_max(), seed=2),
        )
        rec = rt.run(until=20.0)
        digi = [it for it in rec.iterations_of("digitizer") if it.t_start > 5.0]
        slept = sum(it.slept for it in digi)
        assert slept > 0
        # digitizer rate ~ the slowest detector's, not the camera's 100 fps
        rate = len(digi) / (digi[-1].t_end - digi[0].t_start)
        assert rate < 30

    def test_lineage_reaches_frames(self):
        rt = Runtime(
            build_tracker(fast_tracker_config()),
            RuntimeConfig(cluster=config1_spec(), aru=aru_disabled(), seed=1),
        )
        rec = rt.run(until=5.0)
        pm = PostmortemAnalyzer(rec)
        # some delivered locations; their ancestors include frame items
        assert pm.delivered_ids
        frames = {i for i, t in rec.items.items() if t.producer == "digitizer"}
        assert pm.successful_ids & frames

    def test_payload_synthesis_mode(self):
        cfg = fast_tracker_config().with_(
            synthesize_payloads=True, frame_shape=(32, 32, 3)
        )
        rt = Runtime(
            build_tracker(cfg),
            RuntimeConfig(cluster=config1_spec(), aru=aru_disabled(), seed=1),
        )
        rec = rt.run(until=2.0)
        assert len(rec.sink_iterations()) > 2

    def test_throughput_sane(self):
        rt = Runtime(
            build_tracker(fast_tracker_config()),
            RuntimeConfig(cluster=config1_spec(), aru=aru_disabled(), seed=1),
        )
        rec = rt.run(until=10.0)
        fps = throughput_fps(rec)
        # bottleneck is TD2 at ~60-75 ms with contention: O(10) fps
        assert 5.0 < fps < 20.0
