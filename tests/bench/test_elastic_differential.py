"""Differential determinism for elastic (replicated-stage) runs.

Extends the sweep-runner determinism contract to replicated stages:

* a fixed-N replicated pipeline is bit-identical between a serial sweep
  and ``SweepRunner(workers=4)`` — partition/merge buffers keep the
  item→worker mapping and the merged output order a pure function of
  the seed, so process-level parallelism stays a wall-clock detail;
* runs with the scale *controller* active are equally deterministic —
  its decisions are computed from simulated state on the simulated
  clock;
* the zero-added-events contract: ``scale_policy=None``, the disabled
  preset, and the null policy all produce the same fingerprint, and a
  single-replica replicated stage is indistinguishable from a plain
  queue→worker→channel pipeline built by hand.
"""

import pickle
from types import SimpleNamespace

import pytest

from repro.apps import elastic_pipeline
from repro.apps.elastic import make_draining_sink, make_pool_worker, make_swing_source
from repro.bench import CellSpec, SweepRunner, metrics_fingerprint
from repro.bench.experiments import metrics_from_trace
from repro.experiment import ExperimentSpec, run_experiment
from repro.runtime import TaskGraph

HORIZON = 15.0

#: Small but non-trivial: 2 workers, a 8x swing mid-run, ~4 erlangs peak.
ELASTIC_ARGS = (
    ("replicas", 2),
    ("max_replicas", 4),
    ("worker_cost", 0.02),
    ("steady_period", 0.06),
    ("swing", (4.0, 10.0, 8.0)),
    ("item_size", 1000),
)


def elastic_cell(**overrides):
    base = dict(
        config="config1",
        policy="no-aru",
        workload="elastic",
        workload_args=ELASTIC_ARGS,
        horizon=HORIZON,
    )
    base.update(overrides)
    return CellSpec(**base)


@pytest.fixture(scope="module")
def fixed_n_specs():
    """Fixed-N cells (no scale policy) across seeds and partitioners."""
    specs = []
    for partition in ("round-robin", "hash"):
        args = ELASTIC_ARGS + (("partition", partition),)
        for seed in (0, 1):
            specs.append(elastic_cell(workload_args=args, seed=seed,
                                      label=f"fixed-{partition}"))
    return specs


@pytest.fixture(scope="module")
def fixed_n_serial(fixed_n_specs):
    return SweepRunner(workers=1).run(fixed_n_specs)


def test_fixed_n_parallel_matches_serial_bit_identically(fixed_n_specs,
                                                         fixed_n_serial):
    parallel = SweepRunner(workers=4).run(fixed_n_specs)
    for ser, par in zip(fixed_n_serial, parallel):
        assert ser.ok and par.ok
        assert metrics_fingerprint(ser) == metrics_fingerprint(par)
        assert pickle.dumps(ser) == pickle.dumps(par)


def test_fixed_n_serial_rerun_is_bit_identical(fixed_n_specs, fixed_n_serial):
    again = SweepRunner(workers=1).run(fixed_n_specs)
    assert [pickle.dumps(r) for r in again] == \
        [pickle.dumps(r) for r in fixed_n_serial]


def test_elastic_controller_runs_are_deterministic():
    """Scale decisions are simulated state — parallel == serial."""
    specs = [elastic_cell(scale_policy="erlang", seed=s, label="elastic")
             for s in (0, 1)]
    serial = SweepRunner(workers=1).run(specs)
    parallel = SweepRunner(workers=4).run(specs)
    for ser, par in zip(serial, parallel):
        assert ser.ok and par.ok
        assert pickle.dumps(ser) == pickle.dumps(par)
    # The swing is big enough that the controller actually acted; if it
    # didn't, this test would silently degenerate to the fixed-N case.
    assert serial[0].metrics.frames_delivered > 0


def test_null_scale_policy_equals_unconfigured(fixed_n_serial):
    """None, the disabled preset, and the null policy all fingerprint
    identically: installing a no-op controller adds zero events."""
    reference = metrics_fingerprint(fixed_n_serial[0])
    runner = SweepRunner(workers=1)
    for policy in ("no-scale", "null-scale"):
        spec = elastic_cell(
            workload_args=ELASTIC_ARGS + (("partition", "round-robin"),),
            seed=0, label="fixed-round-robin", scale_policy=policy,
        )
        (result,) = runner.run([spec])
        assert result.ok
        assert metrics_fingerprint(result) == reference, policy


# -- single-replica stage vs hand-built plain pipeline -----------------------
WORKER_COST = 0.02
PERIOD = 0.06
ITEM_SIZE = 1000


def plain_twin_graph():
    """The unreplicated pipeline ``elastic_pipeline(replicas=1)`` hides.

    Node insertion order, thread names (``workers[0]``!), buffer names,
    and edge order all mirror :func:`elastic_pipeline` exactly, so every
    RNG stream and registration sequence lines up — the only difference
    is plain SQueue/Channel buffers instead of the partition/merge pair.
    """
    g = TaskGraph("elastic")
    g.add_thread("source", make_swing_source("part", PERIOD, None, ITEM_SIZE))
    g.add_queue("part")
    g.add_channel("merge")
    g.add_thread("workers[0]",
                 make_pool_worker("part", "merge", WORKER_COST, ITEM_SIZE))
    g.connect("part", "workers[0]")
    g.connect("workers[0]", "merge")
    g.add_thread("sink", make_draining_sink("merge"), sink=True)
    g.connect("source", "part")
    g.connect("merge", "sink")
    g.validate()
    return g


def run_and_fingerprint(graph, scale_policy=None, seed=0):
    result = run_experiment(ExperimentSpec(
        app=graph, config="config1", policy="no-aru",
        scale_policy=scale_policy, seed=seed, horizon=HORIZON,
    ))
    metrics = metrics_from_trace(
        "config1", "twin", seed, HORIZON, result.trace)
    return metrics_fingerprint(SimpleNamespace(metrics=metrics, extras={}))


def test_single_replica_stage_equals_plain_pipeline():
    """The strongest zero-overhead claim: one replica behind a
    partition/merge pair is event-for-event a plain pipeline."""
    replicated = elastic_pipeline(
        replicas=1, max_replicas=1,
        worker_cost=WORKER_COST, steady_period=PERIOD,
        swing=None, item_size=ITEM_SIZE,
    )
    for seed in (0, 3):
        plain_fp = run_and_fingerprint(plain_twin_graph(), seed=seed)
        elastic_fp = run_and_fingerprint(replicated, seed=seed)
        null_fp = run_and_fingerprint(replicated, scale_policy="null-scale",
                                      seed=seed)
        assert plain_fp == elastic_fp == null_fp
