"""Tests for the experiment harness (small, fast grids)."""

import pytest

from repro.apps import StageCost, TrackerConfig
from repro.aru import aru_disabled, aru_max
from repro.bench import (
    PAPER,
    cluster_for,
    fig6_memory_table,
    fig7_waste_table,
    fig10_performance_table,
    placement_for,
    run_grid,
    run_tracker_once,
)
from repro.errors import ConfigError


def quick_tracker():
    return TrackerConfig(
        frame_period=1 / 60.0,
        grab_cost=StageCost(0.003, 0.05),
        change_detection_cost=StageCost(0.03, 0.1),
        histogram_cost=StageCost(0.05, 0.1),
        target_detect1_cost=StageCost(0.07, 0.1),
        target_detect2_cost=StageCost(0.08, 0.1),
        gui_cost=StageCost(0.008, 0.05),
    )


@pytest.fixture(scope="module")
def small_grid():
    return run_grid(seeds=(0,), horizon=40.0, tracker_cfg=quick_tracker())


class TestRunOnce:
    def test_metrics_populated(self):
        run = run_tracker_once(
            "config1", aru_disabled(), seed=0, horizon=30.0,
            tracker_cfg=quick_tracker(),
        )
        assert run.mem_mean > 0
        assert run.igc_mean > 0
        assert 0 <= run.wasted_memory <= 1
        assert 0 <= run.wasted_computation <= 1
        assert run.throughput > 0
        assert run.latency_mean > 0
        assert run.frames_produced > run.frames_delivered

    def test_footprint_at_least_igc_per_run(self):
        for aru in (aru_disabled(), aru_max()):
            run = run_tracker_once(
                "config1", aru, seed=0, horizon=30.0, tracker_cfg=quick_tracker()
            )
            assert run.mem_mean >= run.igc_mean * 0.999

    def test_unknown_config_rejected(self):
        with pytest.raises(ConfigError):
            run_tracker_once("config9", aru_disabled())

    def test_cluster_and_placement_helpers(self):
        assert len(cluster_for("config1").nodes) == 1
        assert len(cluster_for("config2").nodes) == 5
        assert placement_for("config1") == {}
        assert placement_for("config2")["gui"] == "node4"


class TestGridAndTables:
    def test_grid_keys(self, small_grid):
        assert ("config1", "No ARU") in small_grid
        assert ("config2", "ARU-max") in small_grid
        assert len(small_grid) == 6

    def test_fig6_table(self, small_grid):
        table, rows = fig6_memory_table(small_grid, "config1")
        assert "fig 6" in table
        assert [r[0] for r in rows] == ["No ARU", "ARU-min", "ARU-max", "IGC"]
        pct = {r[0]: r[3] for r in rows}
        assert pct["IGC"] == 100.0
        assert all(v >= 99.9 for v in pct.values())

    def test_fig7_table(self, small_grid):
        _, rows = fig7_waste_table(small_grid, "config1")
        waste = {r[0]: r[1] for r in rows}
        assert waste["No ARU"] > waste["ARU-max"]

    def test_fig10_table(self, small_grid):
        _, rows = fig10_performance_table(small_grid, "config2")
        assert len(rows) == 3
        assert all(len(r) == 6 for r in rows)

    def test_memory_ordering_core_shape(self, small_grid):
        for config in ("config1", "config2"):
            mem = {
                p: small_grid[(config, p)].mean("mem_mean")
                for p in ("No ARU", "ARU-min", "ARU-max")
            }
            assert mem["No ARU"] > mem["ARU-min"] > mem["ARU-max"]


class TestPaperReference:
    def test_reference_values_present(self):
        for config in ("config1", "config2"):
            for policy in ("No ARU", "ARU-min", "ARU-max", "IGC"):
                assert "mem_mean" in PAPER[config][policy]

    def test_reference_reproduces_paper_claims(self):
        """Sanity: the transcribed numbers themselves obey the claims."""
        for config in ("config1", "config2"):
            p = PAPER[config]
            assert p["No ARU"]["mem_mean"] > p["ARU-min"]["mem_mean"] \
                > p["ARU-max"]["mem_mean"] > p["IGC"]["mem_mean"]
            assert p["ARU-max"]["lat"] < p["ARU-min"]["lat"] < p["No ARU"]["lat"]
