"""Tests for the kernel performance regression gate.

The :func:`compare` policy is pure and always tested; the actual
wall-clock gate (measurement vs the committed ``BENCH_kernel.json``)
only runs under ``REPRO_PERF=1`` with the ``perf`` marker, so tier-1
stays fast and machine-independent.
"""

import importlib.util
import json
import os
from pathlib import Path

import pytest

_BENCH_DIR = Path(__file__).resolve().parents[2] / "benchmarks"


def _load_module():
    spec = importlib.util.spec_from_file_location(
        "check_regression", _BENCH_DIR / "check_regression.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


cr = _load_module()


class TestComparePolicy:
    BASE = {"dispatch_events_per_sec": 1_000_000.0,
            "chain_events_per_sec": 1_200_000.0,
            "trampoline_events_per_sec": 1_500_000.0,
            "postmortem_ms": 25.0,
            "telemetry_off_ops_per_sec": 10_000_000.0,
            "telemetry_on_ops_per_sec": 5_000_000.0,
            "telemetry_on_over_off_ratio": 1.5}

    def test_equal_rates_pass(self):
        assert cr.compare(dict(self.BASE), dict(self.BASE)) == []

    def test_improvement_passes(self):
        current = dict(self.BASE, dispatch_events_per_sec=2_000_000.0)
        assert cr.compare(current, self.BASE) == []

    def test_small_drop_within_threshold_passes(self):
        current = dict(self.BASE, dispatch_events_per_sec=750_000.0)  # -25%
        assert cr.compare(current, self.BASE, threshold=0.30) == []

    def test_large_drop_fails(self):
        current = dict(self.BASE, dispatch_events_per_sec=500_000.0)  # -50%
        failures = cr.compare(current, self.BASE, threshold=0.30)
        assert len(failures) == 1
        assert "dispatch_events_per_sec" in failures[0]
        assert "50%" in failures[0]

    def test_threshold_is_configurable(self):
        current = dict(self.BASE, dispatch_events_per_sec=500_000.0)
        assert cr.compare(current, self.BASE, threshold=0.60) == []

    def test_ungated_rates_do_not_gate(self):
        current = dict(self.BASE, trampoline_events_per_sec=1.0,
                       postmortem_ms=1e9,
                       telemetry_on_ops_per_sec=1.0)
        assert cr.compare(current, self.BASE) == []

    def test_telemetry_off_rate_gates(self):
        # The ISSUE-5 zero-overhead contract: a big drop of the
        # telemetry-disabled hot-path rate fails the gate.
        current = dict(self.BASE, telemetry_off_ops_per_sec=1_000_000.0)
        failures = cr.compare(current, self.BASE, threshold=0.30)
        assert len(failures) == 1
        assert "telemetry_off_ops_per_sec" in failures[0]

    def test_telemetry_ratio_cap_gates(self):
        # The ISSUE-7 leave-it-on contract: metrics-on must stay within
        # 3x of metrics-off through the real channel site.
        current = dict(self.BASE, telemetry_on_over_off_ratio=3.5)
        failures = cr.compare(current, self.BASE)
        assert len(failures) == 1
        assert "telemetry_on_over_off_ratio" in failures[0]
        assert "cap" in failures[0]

    def test_telemetry_ratio_is_absolute_not_baseline_relative(self):
        # A degraded committed baseline cannot grandfather a violation
        # in, and a rising-but-under-cap ratio does not fail.
        base = dict(self.BASE, telemetry_on_over_off_ratio=1.0)
        current = dict(self.BASE, telemetry_on_over_off_ratio=2.9)
        assert cr.compare(current, base) == []

    def test_missing_ratio_fails_loudly(self):
        current = dict(self.BASE)
        del current["telemetry_on_over_off_ratio"]
        failures = cr.compare(current, self.BASE)
        assert failures and "telemetry_on_over_off_ratio" in failures[0]

    def test_missing_gated_rate_fails_loudly(self):
        assert cr.compare({}, self.BASE)
        assert cr.compare(self.BASE, {})

    def test_non_positive_baseline_fails_loudly(self):
        bad = dict(self.BASE, dispatch_events_per_sec=0.0)
        failures = cr.compare(self.BASE, bad)
        assert failures and "non-positive" in failures[0]


class TestCliPlumbing:
    def test_update_writes_baseline(self, tmp_path, monkeypatch, capsys):
        fake = {"dispatch_events_per_sec": 10.0,
                "chain_events_per_sec": 15.0,
                "trampoline_events_per_sec": 20.0,
                "postmortem_ms": 5.0,
                "telemetry_off_ops_per_sec": 30.0,
                "telemetry_on_ops_per_sec": 20.0,
                "telemetry_on_over_off_ratio": 1.5}
        monkeypatch.setattr(cr, "measure", lambda: dict(fake))
        baseline = tmp_path / "base.json"
        rc = cr.main(["--baseline", str(baseline), "--update"])
        assert rc == 0
        assert json.loads(baseline.read_text())["rates"] == fake

    def test_missing_baseline_is_an_error(self, tmp_path, monkeypatch):
        monkeypatch.setattr(
            cr, "measure", lambda: {"dispatch_events_per_sec": 10.0})
        rc = cr.main(["--baseline", str(tmp_path / "absent.json")])
        assert rc == 2

    def test_regression_exits_nonzero(self, tmp_path, monkeypatch):
        baseline = tmp_path / "base.json"
        baseline.write_text(json.dumps(
            {"rates": {"dispatch_events_per_sec": 1000.0}}))
        monkeypatch.setattr(
            cr, "measure", lambda: {"dispatch_events_per_sec": 100.0})
        assert cr.main(["--baseline", str(baseline)]) == 1

    def test_ratio_only_passes_under_cap(self, monkeypatch, capsys):
        monkeypatch.setattr(
            cr, "measure_telemetry_pair",
            lambda: {"telemetry_off_ops_per_sec": 100.0,
                     "telemetry_on_ops_per_sec": 80.0,
                     "telemetry_on_over_off_ratio": 1.25})
        assert cr.main(["--ratio-only"]) == 0
        assert "within the absolute cap" in capsys.readouterr().out

    def test_ratio_only_gates_on_the_cap(self, monkeypatch, capsys):
        # --ratio-only needs no baseline file: the cap is absolute.
        monkeypatch.setattr(
            cr, "measure_telemetry_pair",
            lambda: {"telemetry_off_ops_per_sec": 100.0,
                     "telemetry_on_ops_per_sec": 10.0,
                     "telemetry_on_over_off_ratio": 10.0})
        assert cr.main(["--ratio-only"]) == 1
        assert "cap" in capsys.readouterr().err

    def test_pass_exits_zero(self, tmp_path, monkeypatch):
        baseline = tmp_path / "base.json"
        baseline.write_text(json.dumps(
            {"rates": {"dispatch_events_per_sec": 1000.0,
                       "telemetry_off_ops_per_sec": 1000.0}}))
        monkeypatch.setattr(
            cr, "measure", lambda: {"dispatch_events_per_sec": 950.0,
                                    "telemetry_off_ops_per_sec": 990.0,
                                    "telemetry_on_over_off_ratio": 1.4})
        assert cr.main(["--baseline", str(baseline)]) == 0


@pytest.mark.perf
@pytest.mark.skipif(
    not os.environ.get("REPRO_PERF"),
    reason="wall-clock gate; set REPRO_PERF=1 to run",
)
def test_kernel_rates_vs_committed_baseline():
    """The real gate: measure on this machine, compare to BENCH_kernel.json."""
    baseline_path = _BENCH_DIR / "BENCH_kernel.json"
    assert baseline_path.exists(), "committed baseline missing"
    baseline = json.loads(baseline_path.read_text())["rates"]
    failures = cr.compare(cr.measure(), baseline)
    assert not failures, "; ".join(failures)
