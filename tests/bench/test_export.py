"""Tests for grid CSV export and trace comparison."""


from repro.apps import StageCost, TrackerConfig
from repro.aru import aru_disabled, aru_min
from repro.bench import (
    RUN_COLUMNS,
    compare_traces,
    grid_to_csv,
    run_grid,
    summarize_trace,
)
from repro.runtime import (
    Compute,
    Get,
    PeriodicitySync,
    Put,
    Runtime,
    RuntimeConfig,
    Sleep,
    TaskGraph,
)


def quick_tracker():
    return TrackerConfig(
        frame_period=1 / 60.0,
        grab_cost=StageCost(0.003),
        change_detection_cost=StageCost(0.03),
        histogram_cost=StageCost(0.05),
        target_detect1_cost=StageCost(0.07),
        target_detect2_cost=StageCost(0.08),
        gui_cost=StageCost(0.008),
    )


def small_trace(aru):
    def src(ctx):
        ts = 0
        while True:
            yield Sleep(0.02)
            yield Put("c", ts=ts, size=100)
            ts += 1
            yield PeriodicitySync()

    def dst(ctx):
        while True:
            yield Get("c")
            yield Compute(0.06)
            yield PeriodicitySync()

    g = TaskGraph()
    g.add_thread("src", src)
    g.add_thread("dst", dst, sink=True)
    g.add_channel("c")
    g.connect("src", "c").connect("c", "dst")
    return Runtime(g, RuntimeConfig(aru=aru, seed=0)).run(until=10.0)


class TestGridCsv:
    def test_rows_and_header(self):
        grid = run_grid(
            configs=("config1",), seeds=(0, 1), horizon=20.0,
            tracker_cfg=quick_tracker(),
        )
        csv = grid_to_csv(grid)
        lines = csv.strip().splitlines()
        assert lines[0] == ",".join(RUN_COLUMNS)
        assert len(lines) == 1 + 3 * 2  # 3 policies x 2 seeds
        # every row parses to the right column count
        for line in lines[1:]:
            assert len(line.split(",")) == len(RUN_COLUMNS)

    def test_floats_roundtrip(self):
        grid = run_grid(
            configs=("config1",), seeds=(0,), horizon=20.0,
            tracker_cfg=quick_tracker(),
        )
        csv = grid_to_csv(grid)
        rows = [line.split(",") for line in csv.strip().splitlines()[1:]]
        policy_col = RUN_COLUMNS.index("policy")
        mem_col = RUN_COLUMNS.index("mem_mean")
        # RunMetrics carries the AruConfig name ("no-aru"), not the label
        row = next(r for r in rows if r[policy_col] == "no-aru")
        run = grid[("config1", "No ARU")].runs[0]
        assert float(row[mem_col]) == run.mem_mean


class TestSummarizeAndCompare:
    def test_summary_keys(self):
        summary = summarize_trace(small_trace(aru_disabled()))
        for key in ("mem_mean_bytes", "wasted_memory", "throughput_fps",
                    "latency_mean_s", "jitter_s"):
            assert key in summary

    def test_compare_renders_ratio(self):
        a = small_trace(aru_disabled())
        b = small_trace(aru_min())
        text = compare_traces(a, b, label_a="no-aru", label_b="aru-min")
        assert "no-aru" in text and "aru-min" in text
        assert "wasted_memory" in text

    def test_compare_shows_aru_improvement(self):
        a = small_trace(aru_disabled())
        b = small_trace(aru_min())
        sa, sb = summarize_trace(a), summarize_trace(b)
        assert sb["wasted_memory"] < sa["wasted_memory"]
        assert sb["mem_mean_bytes"] < sa["mem_mean_bytes"]
