"""Fault handling: failing cells are data, interrupts cancel cleanly."""

import pytest

from repro.aru import aru_disabled, aru_min
from repro.bench import CellSpec, SweepRunner

HORIZON = 5.0

GOOD = CellSpec(config="config1", policy=aru_min(), seed=0, horizon=HORIZON)
#: config9 doesn't exist; the cell raises ConfigError inside the worker.
BAD = CellSpec(config="config9", policy=aru_min(), seed=0, horizon=HORIZON)


def _mixed_specs():
    return [
        GOOD,
        BAD,
        CellSpec(config="config1", policy=aru_disabled(), seed=1,
                 horizon=HORIZON),
        BAD.with_(seed=2),
        CellSpec(config="config2", policy=aru_min(), seed=2,
                 horizon=HORIZON),
    ]


@pytest.mark.parametrize("workers", [1, 3])
def test_failed_cell_reported_with_traceback_others_complete(workers):
    runner = SweepRunner(workers=workers)
    results = runner.run(_mixed_specs())
    assert len(results) == 5
    ok = [r for r in results if r.ok]
    failed = [r for r in results if not r.ok]
    assert len(ok) == 3 and len(failed) == 2
    # the sweep did not abort: every healthy cell carries real metrics
    assert all(r.metrics is not None and r.metrics.throughput > 0
               for r in ok)
    # the failure carries its worker traceback, pinpointing the cause
    for r in failed:
        assert r.metrics is None
        assert "Traceback" in r.error
        assert "ConfigError" in r.error and "config9" in r.error
    assert runner.stats.failures == 2
    assert runner.stats.executed == 5


def test_failed_cells_are_not_cached(tmp_path):
    runner = SweepRunner(workers=1, cache=tmp_path / "cache")
    runner.run([BAD])
    assert runner.stats.failures == 1
    runner.run([BAD])
    assert runner.stats.cache_hits == 0  # re-executed, not replayed
    assert runner.stats.failures == 1


def test_run_metrics_raises_on_failed_cell():
    runner = SweepRunner(workers=1)
    with pytest.raises(RuntimeError, match="config9|ConfigError"):
        runner.run_metrics([GOOD, BAD])


class _InterruptAfter:
    """Parent-side progress hook that interrupts after N completions."""

    def __init__(self, n: int) -> None:
        self.n = n
        self.seen = 0

    def __call__(self, done, total, result):
        self.seen += 1
        if self.seen >= self.n:
            raise KeyboardInterrupt


@pytest.mark.parametrize("workers", [1, 3])
def test_keyboard_interrupt_cancels_pending_cells(workers):
    """Ctrl-C mid-sweep: pending cells are cancelled, the interrupt
    propagates, and the runner does not hang on pool teardown."""
    hook = _InterruptAfter(1)
    runner = SweepRunner(workers=workers, progress=hook)
    specs = [GOOD.with_(seed=s) for s in range(6)]
    with pytest.raises(KeyboardInterrupt):
        runner.run(specs)
    # at least one cell finished (the one that triggered the interrupt),
    # and at least one pending cell never ran
    assert 1 <= hook.seen < len(specs)


def test_interrupted_runner_is_reusable():
    runner = SweepRunner(workers=1, progress=_InterruptAfter(1))
    with pytest.raises(KeyboardInterrupt):
        runner.run([GOOD.with_(seed=s) for s in range(3)])
    runner.progress = None
    results = runner.run([GOOD])
    assert results[0].ok
