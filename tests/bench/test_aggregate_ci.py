"""Tests for the across-seed confidence-interval helper."""

import pytest

from repro.bench import PolicyAggregate
from repro.bench.experiments import RunMetrics


def make_run(**overrides):
    base = dict(
        config="config1", policy="x", seed=0, horizon=1.0,
        mem_mean=1.0, mem_std=0.0, mem_peak=1.0,
        igc_mean=1.0, igc_std=0.0,
        wasted_memory=0.0, wasted_computation=0.0,
        throughput=1.0, latency_mean=0.1, latency_std=0.0,
        jitter=0.0, footprint=None, igc_footprint=None,
        frames_produced=10, frames_delivered=10,
    )
    base.update(overrides)
    return RunMetrics(**base)


def test_single_run_point_interval():
    agg = PolicyAggregate("config1", "x", runs=[make_run(throughput=3.0)])
    lo, hi = agg.ci95("throughput")
    assert lo == hi == 3.0


def test_zero_variance_point_interval():
    agg = PolicyAggregate(
        "config1", "x",
        runs=[make_run(throughput=2.0, seed=s) for s in range(4)],
    )
    lo, hi = agg.ci95("throughput")
    assert lo == hi == 2.0


def test_interval_brackets_mean_and_widens_with_spread():
    tight = PolicyAggregate(
        "config1", "x",
        runs=[make_run(throughput=v) for v in (2.0, 2.1, 1.9)],
    )
    wide = PolicyAggregate(
        "config1", "x",
        runs=[make_run(throughput=v) for v in (1.0, 3.0, 2.0)],
    )
    lo_t, hi_t = tight.ci95("throughput")
    lo_w, hi_w = wide.ci95("throughput")
    assert lo_t < tight.mean("throughput") < hi_t
    assert (hi_w - lo_w) > (hi_t - lo_t)


def test_interval_matches_scipy_t():
    from scipy import stats
    import numpy as np

    values = [1.0, 2.0, 4.0, 3.0, 2.5]
    agg = PolicyAggregate(
        "config1", "x", runs=[make_run(throughput=v) for v in values]
    )
    lo, hi = agg.ci95("throughput")
    arr = np.array(values)
    sem = arr.std(ddof=1) / np.sqrt(len(arr))
    half = stats.t.ppf(0.975, df=len(arr) - 1) * sem
    assert lo == pytest.approx(arr.mean() - half)
    assert hi == pytest.approx(arr.mean() + half)
