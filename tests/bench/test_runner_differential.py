"""Differential determinism: parallel sweeps must equal serial sweeps.

The whole premise of the sweep runner is that the DES is seeded and
deterministic, so farming cells out to worker processes is a pure
wall-clock optimization — the *results* must be bit-identical to the
serial reference execution, cell for cell. These tests pin that
contract at a reduced horizon over the paper's full 2x3x3 grid.
"""

import pickle

import pytest

from repro.bench import SweepRunner, grid_specs

HORIZON = 10.0
SEEDS = (0, 1, 2)


@pytest.fixture(scope="module")
def specs():
    return grid_specs(seeds=SEEDS, horizon=HORIZON)


@pytest.fixture(scope="module")
def serial_results(specs):
    return SweepRunner(workers=1).run(specs)


def test_grid_is_full(specs):
    assert len(specs) == 2 * 3 * 3


def test_parallel_matches_serial_bit_identically(specs, serial_results):
    parallel = SweepRunner(workers=4).run(specs)
    assert len(parallel) == len(serial_results)
    for ser, par in zip(serial_results, parallel):
        assert ser.ok and par.ok
        assert ser.spec == par.spec
        # structural equality (dataclass/__eq__, incl. exact timelines) ...
        assert ser.metrics == par.metrics
        assert ser.extras == par.extras
        # ... and bit-level equality of the full serialized result
        assert pickle.dumps(ser) == pickle.dumps(par)


def test_serial_rerun_is_bit_identical(specs, serial_results):
    again = SweepRunner(workers=1).run(specs)
    assert [pickle.dumps(r) for r in again] == \
        [pickle.dumps(r) for r in serial_results]


def test_results_preserve_spec_order(specs, serial_results):
    assert [r.spec for r in serial_results] == list(specs)


def test_cached_results_are_bit_identical_to_executed(tmp_path, specs,
                                                      serial_results):
    """A cache hit must be indistinguishable from a re-execution."""
    sub = specs[:3]
    runner = SweepRunner(workers=1, cache=tmp_path / "cache")
    cold = runner.run(sub)
    warm = runner.run(sub)
    assert runner.stats.executed == 0
    for ref, c, w in zip(serial_results[:3], cold, warm):
        assert pickle.dumps(ref) == pickle.dumps(c) == pickle.dumps(w)
