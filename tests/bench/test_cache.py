"""Content-addressed result cache: hits, misses, corruption, versioning."""

import pickle

import pytest

import repro
from repro.aru import aru_disabled, aru_max, aru_min
from repro.bench import CellSpec, ResultCache, SweepRunner, canonical_repr

HORIZON = 6.0


@pytest.fixture
def cache(tmp_path):
    return ResultCache(tmp_path / "cache")


@pytest.fixture
def spec():
    return CellSpec(config="config1", policy=aru_min(), seed=0,
                    horizon=HORIZON)


@pytest.fixture
def warm(cache, spec):
    """A runner whose cache already holds ``spec``'s result."""
    runner = SweepRunner(workers=1, cache=cache)
    result, = runner.run([spec])
    assert runner.stats.executed == 1
    return runner, result


class TestHitAndMiss:
    def test_hit_on_identical_spec(self, warm, spec):
        runner, first = warm
        again, = runner.run([CellSpec(config="config1", policy=aru_min(),
                                      seed=0, horizon=HORIZON)])
        assert runner.stats.cache_hits == 1
        assert runner.stats.executed == 0
        assert pickle.dumps(again) == pickle.dumps(first)

    @pytest.mark.parametrize("change", [
        dict(seed=1),
        dict(horizon=HORIZON + 1.0),
        dict(policy=aru_max()),
        dict(policy=aru_disabled()),
        dict(config="config2"),
        dict(gc="tgc"),
        dict(sched_noise_cv=0.3),
    ])
    def test_miss_on_any_field_change(self, cache, spec, change):
        changed = spec.with_(**change)
        assert cache.key(changed) != cache.key(spec)

    def test_policy_parameter_changes_key(self, cache, spec):
        tweaked = spec.with_(policy=aru_min(headroom=1.1))
        assert cache.key(tweaked) != cache.key(spec)

    def test_get_on_empty_cache_is_none(self, cache, spec):
        assert cache.get(spec) is None


class TestBypass:
    def test_no_cache_runner_never_touches_cache(self, warm, spec):
        _, first = warm
        bare = SweepRunner(workers=1, cache=None)
        redone, = bare.run([spec])
        assert bare.stats.executed == 1
        assert bare.stats.cache_hits == 0
        # the bypassed execution still reproduces the result exactly
        assert pickle.dumps(redone) == pickle.dumps(first)

    def test_cli_no_cache_flag_disables_cache(self, tmp_path, capsys):
        from repro.cli import main

        rc = main(["sweep", "--workers", "1", "--horizon", "5", "--seeds",
                   "1", "--no-cache", "--cache-dir",
                   str(tmp_path / "never_created")])
        assert rc == 0
        assert not (tmp_path / "never_created").exists()
        assert "cache=off" in capsys.readouterr().out


class TestRobustness:
    def test_corrupted_file_discarded_not_crashed(self, warm, cache, spec):
        runner, _ = warm
        path = cache.path_for(spec)
        path.write_bytes(b"\x00garbage not a pickle\xff")
        result, = runner.run([spec])  # silently re-executes
        assert result.ok
        assert runner.stats.executed == 1
        assert runner.stats.cache_hits == 0
        # rewritten: next run hits again
        result2, = runner.run([spec])
        assert runner.stats.cache_hits == 1

    def test_truncated_file_discarded_not_crashed(self, warm, cache, spec):
        runner, _ = warm
        path = cache.path_for(spec)
        path.write_bytes(path.read_bytes()[:20])
        result, = runner.run([spec])
        assert result.ok and runner.stats.executed == 1

    def test_foreign_payload_is_a_miss(self, cache, spec):
        cache.put(spec, object())  # not a CellResult: no .spec attribute
        assert cache.get(spec) is None

    def test_clear_empties_cache(self, warm, cache, spec):
        assert len(cache) == 1
        assert cache.clear() == 1
        assert cache.get(spec) is None


class TestVersioning:
    def test_key_changes_with_repro_version(self, cache, spec, monkeypatch):
        before = cache.key(spec)
        monkeypatch.setattr(repro, "__version__", "999.0.0-test")
        after = cache.key(spec)
        assert before != after

    def test_version_bump_invalidates_stored_result(self, warm, spec,
                                                    monkeypatch):
        runner, _ = warm
        monkeypatch.setattr(repro, "__version__", "999.0.0-test")
        runner.run([spec])
        assert runner.stats.executed == 1
        assert runner.stats.cache_hits == 0


class TestCanonicalRepr:
    def test_dict_order_is_normalized(self):
        assert canonical_repr({"a": 1, "b": 2}) == \
            canonical_repr({"b": 2, "a": 1})

    def test_equal_specs_equal_reprs(self, spec):
        twin = CellSpec(config="config1", policy=aru_min(), seed=0,
                        horizon=HORIZON)
        assert canonical_repr(spec) == canonical_repr(twin)

    def test_distinguishes_float_values(self):
        assert canonical_repr(0.1) != canonical_repr(0.1000001)

    def test_rejects_unknown_objects(self):
        with pytest.raises(TypeError):
            canonical_repr(object())
