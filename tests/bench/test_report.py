"""Tests for table formatting and ASCII timeline rendering."""

import numpy as np
import pytest

from repro.bench import ascii_timeline, format_table, timeline_csv
from repro.metrics import Timeline


def make_tl():
    return Timeline(np.array([0.0, 5.0, 10.0]), np.array([1e6, 3e6]))


class TestFormatTable:
    def test_basic_layout(self):
        out = format_table(["name", "value"], [["a", 1.5], ["bb", 22.25]])
        lines = out.splitlines()
        assert "name" in lines[0] and "value" in lines[0]
        assert set(lines[1]) <= {"-", "+"}
        assert "1.50" in out and "22.25" in out

    def test_title(self):
        out = format_table(["x"], [[1.0]], title="My Table")
        assert out.splitlines()[0] == "My Table"

    def test_nan_rendered_as_dash(self):
        out = format_table(["x"], [[float("nan")]])
        assert "-" in out.splitlines()[-1]

    def test_large_and_small_floats(self):
        out = format_table(["x"], [[12345.6], [0.0123]])
        assert "12346" in out
        assert "0.012" in out

    def test_empty_rows(self):
        out = format_table(["a", "b"], [])
        assert "a" in out


class TestAsciiTimeline:
    def test_render_contains_title_and_axis(self):
        chart = ascii_timeline(make_tl(), width=40, height=8, title="T")
        assert chart.splitlines()[0] == "T"
        assert "MB" in chart
        assert "t=10s" in chart

    def test_height_respected(self):
        chart = ascii_timeline(make_tl(), width=40, height=6)
        # 6 chart rows + axis + time labels
        assert len(chart.splitlines()) == 8

    def test_shared_scale(self):
        low = ascii_timeline(make_tl(), width=20, height=5, y_max=100e6)
        # at 1/100 of scale, nearly no fill
        body = "\n".join(low.splitlines()[:-2])
        assert body.count("#") <= 20

    def test_empty_timeline(self):
        tl = Timeline(np.array([0.0, 1.0]), np.array([0.0]))
        chart = ascii_timeline(tl)
        assert "#" not in chart

    def test_too_small_rejected(self):
        with pytest.raises(ValueError):
            ascii_timeline(make_tl(), width=2, height=8)


class TestTimelineCsv:
    def test_header_and_rows(self):
        csv = timeline_csv(make_tl(), n=10)
        lines = csv.strip().splitlines()
        assert lines[0] == "t_seconds,bytes"
        assert len(lines) == 11
        assert lines[1].startswith("0.0000,")
