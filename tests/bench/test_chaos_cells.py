"""Sweep cells with fault schedules: determinism and cache behaviour.

Fault injection must not weaken the sweep runner's contract: a faulted
cell is still a pure function of its spec, so parallel execution and the
content-addressed cache keep working bit-identically.
"""

import pickle

import pytest

from repro.aru import aru_min
from repro.bench import CellSpec, SweepRunner, run_cell
from repro.faults import FaultSpec

HORIZON = 8.0

FAULTS = (
    FaultSpec(kind="thread_crash", at=3.0, target="target_detect2"),
    FaultSpec(kind="thread_restart", at=5.0, target="target_detect2"),
)


def chaos_spec(seed=0):
    return CellSpec(config="config1", policy=aru_min(), seed=seed,
                    horizon=HORIZON, faults=FAULTS)


@pytest.fixture(scope="module")
def serial_results():
    specs = [chaos_spec(0), chaos_spec(1)]
    return specs, SweepRunner(workers=1).run(specs)


def test_faulted_cell_executes(serial_results):
    _, results = serial_results
    for result in results:
        assert result.ok, result.error
        assert result.metrics.frames_delivered > 0


def test_spec_with_faults_pickles():
    spec = chaos_spec()
    assert pickle.loads(pickle.dumps(spec)) == spec


def test_parallel_matches_serial_with_faults(serial_results):
    specs, serial = serial_results
    parallel = SweepRunner(workers=2).run(specs)
    for ser, par in zip(serial, parallel):
        assert pickle.dumps(ser) == pickle.dumps(par)


def test_faults_change_the_result(serial_results):
    specs, serial = serial_results
    calm = run_cell(specs[0].with_(faults=()))
    assert calm.ok
    assert calm.metrics != serial[0].metrics


def test_faulted_cells_cache_cleanly(tmp_path, serial_results):
    specs, serial = serial_results
    runner = SweepRunner(workers=1, cache=tmp_path / "cache")
    cold = runner.run(specs)
    warm = runner.run(specs)
    assert runner.stats.executed == 0
    assert runner.stats.cache_hits == len(specs)
    for ref, c, w in zip(serial, cold, warm):
        assert pickle.dumps(ref) == pickle.dumps(c) == pickle.dumps(w)


def test_fault_schedule_distinguishes_cache_keys(tmp_path):
    """Same cell, different schedule -> different cache entry."""
    runner = SweepRunner(workers=1, cache=tmp_path / "cache")
    a = runner.run([chaos_spec()])[0]
    b = runner.run([chaos_spec().with_(faults=FAULTS[:1])])[0]
    assert runner.stats.executed == 1  # second run was not a cache hit
    assert pickle.dumps(a.metrics) != pickle.dumps(b.metrics)
