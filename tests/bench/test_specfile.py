"""Tests for declarative experiment specs."""

import pytest

from repro.bench import aru_from_dict, experiment_from_dict, run_experiment
from repro.errors import ConfigError


class TestAruFromDict:
    def test_none_disabled(self):
        assert aru_from_dict(None).enabled is False

    def test_preset_names(self):
        assert aru_from_dict("aru-min").default_channel_op == "min"
        assert aru_from_dict("aru-max").thread_op == "max"
        assert aru_from_dict("no-aru").enabled is False

    def test_preset_with_overrides(self):
        cfg = aru_from_dict({"preset": "aru-max", "summary_filter": "ewma:0.2",
                             "headroom": 1.1})
        assert cfg.default_channel_op == "max"
        assert cfg.summary_filter == "ewma:0.2"
        assert cfg.headroom == 1.1

    def test_default_preset_is_min(self):
        assert aru_from_dict({}).default_channel_op == "min"

    def test_unknown_preset(self):
        with pytest.raises(ConfigError):
            aru_from_dict("warp")

    def test_unknown_override_key(self):
        with pytest.raises(ConfigError, match="unknown key"):
            aru_from_dict({"preset": "aru-min", "agressiveness": 9})

    def test_bad_type(self):
        with pytest.raises(ConfigError):
            aru_from_dict(42)


class TestExperimentFromDict:
    def test_defaults(self):
        graph, cfg, horizon = experiment_from_dict({})
        assert graph.name == "people-tracker"
        assert cfg.gc == "dgc"
        assert horizon == 120.0

    def test_tracker_overrides(self):
        _, cfg, horizon = experiment_from_dict({
            "config": "config2",
            "aru": "aru-max",
            "seed": 7,
            "horizon": 30,
            "tracker": {"frame_period": 0.02},
        })
        assert len(cfg.cluster.nodes) == 5
        assert cfg.aru.name == "aru-max"
        assert cfg.seed == 7
        assert horizon == 30.0
        # config2 tracker auto-fills the paper placement
        assert cfg.placement["gui"] == "node4"

    def test_other_apps(self):
        graph, _, _ = experiment_from_dict({"app": "gesture"})
        assert graph.name == "gesture"
        graph, _, _ = experiment_from_dict({"app": "stereo"})
        assert graph.name == "stereo"

    def test_loads(self):
        _, cfg, _ = experiment_from_dict({
            "loads": [{"node": "node0", "start": 1, "stop": 2, "threads": 2}],
        })
        assert len(cfg.loads) == 1
        assert cfg.loads[0].threads == 2

    def test_unknown_top_key(self):
        with pytest.raises(ConfigError, match="unknown key"):
            experiment_from_dict({"workload": "tracker"})

    def test_unknown_app(self):
        with pytest.raises(ConfigError):
            experiment_from_dict({"app": "chess"})

    def test_unknown_config(self):
        with pytest.raises(ConfigError):
            experiment_from_dict({"config": "config9"})

    def test_unknown_tracker_key(self):
        with pytest.raises(ConfigError, match="unknown key"):
            experiment_from_dict({"tracker": {"fps": 30}})

    def test_not_a_dict(self):
        with pytest.raises(ConfigError):
            experiment_from_dict("tracker")


class TestRunExperiment:
    def test_end_to_end(self):
        recorder = run_experiment({
            "app": "tracker",
            "aru": "aru-max",
            "horizon": 10,
            "tracker": {"frame_period": 0.02},
        })
        assert recorder.duration == 10.0
        assert recorder.sink_iterations()

    def test_cli_round_trip(self, tmp_path, capsys):
        import json

        from repro.cli import main

        spec_path = tmp_path / "exp.json"
        spec_path.write_text(json.dumps({
            "app": "tracker", "aru": "aru-min", "horizon": 10, "seed": 1,
        }))
        trace_path = tmp_path / "out.json"
        rc = main(["run-config", str(spec_path), "--save-trace",
                   str(trace_path)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "wasted_memory" in out
        assert trace_path.exists()
