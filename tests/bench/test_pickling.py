"""Regression: every cell spec and result must survive pickling.

The sweep runner ships specs to worker processes and results back by
pickle; a closure smuggled into a config (an operator, a filter factory,
a policy callable) breaks parallel sweeps with an opaque error deep in
``concurrent.futures``. These tests pin the round-trip for every spec
shape the benches use — including the historically non-picklable ones:
the ``kth:<k>`` operator (was a closure) and parametrized filter
factories like ``"ewma:0.2"`` (was a lambda).
"""

import pickle

import pytest

from repro.apps import TrackerConfig
from repro.aru import AruConfig, aru_max, aru_min
from repro.aru.filters import ParametrizedFilterFactory, resolve_factory
from repro.aru.operators import KthOperator, resolve
from repro.bench import CellSpec, grid_specs, run_cell
from repro.cluster import LoadSpec

ALL_SPEC_SHAPES = [
    CellSpec(),
    CellSpec(config="config2", policy=aru_max(), seed=3, horizon=42.0),
    CellSpec(policy=aru_min(headroom=1.1)),
    CellSpec(policy=AruConfig(default_channel_op="kth:1", thread_op="kth:2",
                              name="aru-kth")),
    CellSpec(policy=aru_max(summary_filter="ewma:0.2")),
    CellSpec(policy=aru_max(stp_filter="median:5", summary_filter="slew:0.2")),
    CellSpec(tracker=TrackerConfig(channel_capacity=3)),
    CellSpec(tracker=TrackerConfig(computation_elimination=True),
             probe="ce_stats"),
    CellSpec(gc="tgc"),
    CellSpec(gc_interval=0.5),
    CellSpec(sched_noise_cv=0.35),
    CellSpec(loads=(LoadSpec(node="node0", start=10, stop=20, threads=4),),
             probe="throttle_phases",
             probe_args=(("thread", "digitizer"),
                         ("phases", (("mid", 10.0, 20.0),)))),
]


@pytest.mark.parametrize("spec", ALL_SPEC_SHAPES,
                         ids=lambda s: f"{s.policy.name}-{s.gc}-{s.probe}")
def test_spec_roundtrips(spec):
    clone = pickle.loads(pickle.dumps(spec))
    assert clone == spec
    assert clone.policy == spec.policy


def test_grid_specs_roundtrip():
    for spec in grid_specs(seeds=(0, 1), horizon=9.0):
        assert pickle.loads(pickle.dumps(spec)) == spec


def test_result_roundtrips():
    spec = CellSpec(policy=aru_min(), horizon=6.0)
    result = run_cell(spec)
    assert result.ok
    clone = pickle.loads(pickle.dumps(result))
    assert clone.spec == spec
    assert clone.metrics == result.metrics  # includes exact timelines
    assert pickle.dumps(clone) == pickle.dumps(result)


def test_failed_result_roundtrips():
    result = run_cell(CellSpec(config="configX"))
    assert not result.ok
    clone = pickle.loads(pickle.dumps(result))
    assert clone.error == result.error


def test_kth_operator_is_picklable_and_callable():
    op = resolve("kth:2")
    assert isinstance(op, KthOperator)
    clone = pickle.loads(pickle.dumps(op))
    assert clone == op
    assert clone([5.0, 1.0, 3.0, 9.0]) == 5.0
    assert clone.__name__ == "kth_2"


def test_parametrized_filter_factory_is_picklable():
    factory = resolve_factory("ewma:0.25")
    assert isinstance(factory, ParametrizedFilterFactory)
    clone = pickle.loads(pickle.dumps(factory))
    assert clone == factory
    filt = clone()
    assert filt(10.0) == 10.0  # first sample initializes EWMA state
    assert 10.0 < filt(20.0) < 20.0


def test_config_with_resolved_callables_roundtrips():
    """Even configs built from *resolved* operators/factories pickle."""
    cfg = AruConfig(
        default_channel_op=resolve("kth:1"),
        thread_op=resolve("max"),
        summary_filter=resolve_factory("median:7"),
        name="aru-resolved",
    )
    clone = pickle.loads(pickle.dumps(CellSpec(policy=cfg)))
    assert clone.policy.default_channel_op == cfg.default_channel_op
