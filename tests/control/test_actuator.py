"""Actuation layer: throttle_sleep math and the Actuator classes."""

import pytest

from repro.control import NullActuator, SleepThrottle, throttle_sleep
from repro.control.signals import Signals


def _signals(elapsed: float) -> Signals:
    return Signals(now=0.0, current_stp=None, raw_stp=None,
                   iteration_elapsed=elapsed)


class TestThrottleSleep:
    def test_no_target_no_sleep(self):
        assert throttle_sleep(None, 0.5) == 0.0

    def test_tops_up_to_target(self):
        assert throttle_sleep(1.0, 0.3) == pytest.approx(0.7)

    def test_already_slower_than_target(self):
        assert throttle_sleep(1.0, 1.4) == 0.0

    def test_headroom_scales_target(self):
        assert throttle_sleep(1.0, 0.0, headroom=1.25) == pytest.approx(1.25)

    def test_negative_elapsed_rejected(self):
        with pytest.raises(ValueError):
            throttle_sleep(1.0, -0.1)

    def test_negative_target_rejected(self):
        with pytest.raises(ValueError):
            throttle_sleep(-1.0, 0.0)

    def test_bad_headroom_rejected(self):
        with pytest.raises(ValueError):
            throttle_sleep(1.0, 0.0, headroom=0.0)

    def test_importable_from_old_home(self):
        from repro.aru.controller import throttle_sleep as legacy

        assert legacy is throttle_sleep


class TestSleepThrottle:
    def test_plan_uses_iteration_elapsed(self):
        assert SleepThrottle().plan(1.0, _signals(0.25)) == pytest.approx(0.75)

    def test_plan_without_target(self):
        assert SleepThrottle().plan(None, _signals(0.25)) == 0.0

    def test_headroom_applied(self):
        actuator = SleepThrottle(headroom=0.5)
        assert actuator.plan(1.0, _signals(0.0)) == pytest.approx(0.5)

    def test_bad_headroom_rejected(self):
        with pytest.raises(ValueError):
            SleepThrottle(headroom=-1.0)


class TestNullActuator:
    def test_never_sleeps(self):
        assert NullActuator().plan(5.0, _signals(0.0)) == 0.0
