"""Decision layer: Null / SummaryStp / Pid policies against hand-built
states and signal snapshots."""

import pytest

from repro.aru.summary import ThreadAruState
from repro.control import NullPolicy, PidPolicy, SummaryStpPolicy
from repro.control.signals import Signals


def _signals(current_stp=None) -> Signals:
    return Signals(now=0.0, current_stp=current_stp, raw_stp=current_stp,
                   iteration_elapsed=0.0)


class TestNullPolicy:
    def test_does_not_propagate(self):
        assert NullPolicy.propagates is False

    def test_decisions_are_none(self):
        policy = NullPolicy()
        assert policy.observe(_signals(1.0)) is None
        assert policy.advertise(_signals(1.0)) is None
        assert policy.snapshot() == {}


class TestSummaryStpPolicy:
    def test_observe_is_compressed_backward(self):
        policy = SummaryStpPolicy(ThreadAruState("t", op="min"))
        assert policy.observe(_signals()) is None
        policy.on_feedback("c1", 0.4)
        policy.on_feedback("c2", 0.9)
        assert policy.observe(_signals()) == pytest.approx(0.4)

    def test_advertise_inserts_own_period(self):
        policy = SummaryStpPolicy(ThreadAruState("t", op="min"))
        policy.on_feedback("c1", 0.4)
        # slower than every consumer: my own period dominates
        assert policy.advertise(_signals(current_stp=0.7)) == pytest.approx(0.7)
        assert policy.advertise(_signals(current_stp=0.2)) == pytest.approx(0.4)

    def test_reset_clears_backward_state(self):
        policy = SummaryStpPolicy(ThreadAruState("t", op="min"))
        policy.on_feedback("c1", 0.4)
        policy.reset()
        assert policy.observe(_signals()) is None
        assert policy.snapshot() == {}

    def test_snapshot_exposes_slots(self):
        policy = SummaryStpPolicy(ThreadAruState("t", op="min"))
        policy.on_feedback("c1", 0.4)
        assert policy.snapshot() == {"c1": pytest.approx(0.4)}


class TestPidPolicy:
    def make(self, kp=0.5, ki=0.25) -> PidPolicy:
        return PidPolicy(ThreadAruState("t", op="min"), kp=kp, ki=ki)

    def test_gain_validation(self):
        with pytest.raises(ValueError):
            self.make(kp=-1.0)
        with pytest.raises(ValueError):
            self.make(kp=0.0, ki=0.0)

    def test_cold_start_jumps_to_measurement(self):
        policy = self.make()
        assert policy.observe(_signals()) is None  # nothing heard yet
        policy.on_feedback("c", 1.0)
        assert policy.observe(_signals()) == pytest.approx(1.0)

    def test_velocity_form_update(self):
        policy = self.make(kp=0.5, ki=0.25)
        policy.on_feedback("c", 1.0)
        policy.observe(_signals())  # u_0 = 1.0
        policy.on_feedback("c", 2.0)
        # e_1 = 1.0; u_1 = 1.0 + 0.5*(1.0 - 0.0) + 0.25*1.0 = 1.75
        assert policy.observe(_signals()) == pytest.approx(1.75)
        # e_2 = 0.25; u_2 = 1.75 + 0.5*(0.25 - 1.0) + 0.25*0.25 = 1.4375
        assert policy.observe(_signals()) == pytest.approx(1.4375)

    def test_converges_to_constant_measurement(self):
        policy = self.make()
        policy.on_feedback("c", 1.0)
        policy.observe(_signals())
        policy.on_feedback("c", 2.0)
        target = None
        for _ in range(60):
            target = policy.observe(_signals())
        assert target == pytest.approx(2.0, rel=1e-3)

    def test_target_never_negative(self):
        policy = self.make(kp=5.0, ki=5.0)
        policy.on_feedback("c", 10.0)
        policy.observe(_signals())
        policy.state.update_backward("c", 0.001)
        for _ in range(10):
            assert policy.observe(_signals()) >= 0.0

    def test_feedback_loss_unthrottles_and_resets(self):
        policy = self.make()
        policy.on_feedback("c", 1.0)
        policy.observe(_signals())
        policy.state.backward.evict("c")
        assert policy.observe(_signals()) is None
        # next measurement cold-starts again
        policy.on_feedback("c", 3.0)
        assert policy.observe(_signals()) == pytest.approx(3.0)

    def test_reset_clears_controller_state(self):
        policy = self.make()
        policy.on_feedback("c", 1.0)
        policy.observe(_signals())
        policy.reset()
        assert policy._target is None
        assert policy.observe(_signals()) is None

    def test_propagation_inherited_from_summary_stp(self):
        policy = self.make()
        assert policy.propagates is True
        policy.on_feedback("c", 0.4)
        assert policy.advertise(_signals(current_stp=0.7)) == pytest.approx(0.7)
