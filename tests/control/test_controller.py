"""ThreadController orchestration, the factory, and sensors."""

import warnings

import pytest

from repro.aru import aru_disabled, aru_max, aru_min, aru_null, aru_pid
from repro.aru.filters import NoFilter
from repro.aru.stp import StpMeter
from repro.control import (
    NullPolicy,
    PidPolicy,
    SleepThrottle,
    StpSensor,
    SummaryStpPolicy,
    ThreadController,
    build_policy,
    build_thread_controller,
)
from repro.control.sensor import PipelineSensor
from repro.control.signals import Signals


class FakeClock:
    def __init__(self):
        self.t = 0.0

    def now(self) -> float:
        return self.t


def make_meter(clock=None) -> StpMeter:
    return StpMeter(clock or FakeClock(), stp_filter=NoFilter())


class RecordingPolicy(NullPolicy):
    """Counts calls so controller short-circuits can be asserted."""

    def __init__(self):
        self.observed = 0
        self.fed = []

    def observe(self, signals):
        self.observed += 1
        return None

    def on_feedback(self, conn_id, value):
        self.fed.append((conn_id, value))


class TestThreadController:
    def make(self, policy, throttled=True, clock=None) -> ThreadController:
        clock = clock or FakeClock()
        return ThreadController(
            sensor=StpSensor(make_meter(clock), clock.now),
            policy=policy,
            actuator=SleepThrottle(),
            throttled=throttled,
        )

    def test_meter_property_is_sensor_meter(self):
        controller = self.make(NullPolicy())
        assert controller.meter is controller.sensor.meter

    def test_unthrottled_skips_policy_entirely(self):
        policy = RecordingPolicy()
        controller = self.make(policy, throttled=False)
        assert controller.plan_throttle() == (None, 0.0)
        assert policy.observed == 0

    def test_throttled_consults_policy(self):
        policy = RecordingPolicy()
        controller = self.make(policy, throttled=True)
        assert controller.plan_throttle() == (None, 0.0)
        assert policy.observed == 1

    def test_none_feedback_is_dropped(self):
        policy = RecordingPolicy()
        controller = self.make(policy)
        controller.on_feedback("c", None)
        controller.on_feedback("c", 0.5)
        assert policy.fed == [("c", 0.5)]

    def test_plan_throttle_returns_target_and_sleep(self):
        controller = self.make(build_policy(aru_min(), "t"))
        controller.policy.on_feedback("c", 2.0)
        target, sleep_t = controller.plan_throttle()
        assert target == pytest.approx(2.0)
        assert sleep_t == pytest.approx(2.0)  # nothing elapsed yet

    def test_reset_delegates_to_policy(self):
        controller = self.make(build_policy(aru_min(), "t"))
        controller.policy.on_feedback("c", 2.0)
        controller.reset()
        assert controller.policy.snapshot() == {}


class TestBuildPolicy:
    def test_disabled_gives_null(self):
        assert isinstance(build_policy(aru_disabled(), "t"), NullPolicy)

    def test_null_kind_gives_null(self):
        assert isinstance(build_policy(aru_null(), "t"), NullPolicy)

    def test_summary_stp_default(self):
        policy = build_policy(aru_min(), "t")
        assert isinstance(policy, SummaryStpPolicy)
        assert not isinstance(policy, PidPolicy)

    def test_pid_carries_config_gains(self):
        policy = build_policy(aru_pid(pid_kp=0.7, pid_ki=0.1), "t")
        assert isinstance(policy, PidPolicy)
        assert policy.kp == 0.7
        assert policy.ki == 0.1

    def test_compress_op_override(self):
        policy = build_policy(aru_min(), "t", compress_op="max")
        policy.on_feedback("a", 0.2)
        policy.on_feedback("b", 0.9)
        sig = Signals(now=0.0, current_stp=None, raw_stp=None,
                      iteration_elapsed=0.0)
        assert policy.observe(sig) == pytest.approx(0.9)


class TestBuildThreadController:
    def build(self, cfg, is_source=True) -> ThreadController:
        clock = FakeClock()
        return build_thread_controller(cfg, "t", make_meter(clock), clock.now,
                                       is_source)

    def test_sources_only_throttling(self):
        assert self.build(aru_min(), is_source=True).throttled is True
        assert self.build(aru_min(), is_source=False).throttled is False
        everyone = aru_min(throttle_sources_only=False)
        assert self.build(everyone, is_source=False).throttled is True

    def test_disabled_never_throttles(self):
        assert self.build(aru_disabled(), is_source=True).throttled is False
        assert self.build(aru_null(), is_source=True).throttled is False

    def test_headroom_lands_on_actuator(self):
        controller = self.build(aru_min(headroom=1.2))
        assert isinstance(controller.actuator, SleepThrottle)
        assert controller.actuator.headroom == pytest.approx(1.2)


class TestSensors:
    def test_stp_sensor_snapshot(self):
        clock = FakeClock()
        meter = make_meter(clock)
        sensor = StpSensor(meter, clock.now)
        clock.t = 3.0
        sig = sensor.read()
        assert sig.now == 3.0
        assert sig.current_stp is None
        assert sig.iterations == 0
        assert sig.queue_depth is None

    def test_pipeline_sensor_sums_depth_and_drops(self):
        class Buf(list):
            pass

        class Conn:
            def __init__(self, skips):
                self.skips = skips

        clock = FakeClock()
        in_conns = {
            "a": (Buf([1, 2]), Conn(skips=3)),
            "b": (Buf([1]), Conn(skips=4)),
        }
        sig = PipelineSensor(make_meter(clock), clock.now, in_conns).read()
        assert sig.queue_depth == 3
        assert sig.drops == 7


class TestHeadroomKwargRemoved:
    def test_driver_kwarg_now_raises(self):
        """The deprecated ``headroom`` kwarg completed its cycle: passing
        it is a TypeError; AruConfig.headroom is the only spelling."""
        from repro.apps import build_tracker
        from repro.runtime import Runtime, RuntimeConfig
        from repro.runtime.thread import ThreadDriver

        rt = Runtime(build_tracker(), RuntimeConfig(aru=aru_max()))
        old = rt.drivers["digitizer"]
        controller = build_thread_controller(
            aru_max(), "digitizer", make_meter(rt.clock), rt.clock.now, True)
        with pytest.raises(TypeError, match="headroom"):
            ThreadDriver(
                runtime=rt, name="extra", fn=old.fn, node=old.node,
                in_conns={}, out_conns={}, ctx=old.ctx,
                controller=controller, headroom=0.9)

    def test_config_headroom_still_lands_on_actuator(self):
        from repro.apps import build_tracker
        from repro.runtime import Runtime, RuntimeConfig

        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            rt = Runtime(build_tracker(),
                         RuntimeConfig(aru=aru_max(headroom=1.3)))
        actuator = rt.drivers["digitizer"].controller.actuator
        assert actuator.headroom == pytest.approx(1.3)
