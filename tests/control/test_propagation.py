"""Propagation layer: FeedbackEndpoint and FeedbackBus."""

import pytest

from repro.aru import aru_disabled, aru_max, aru_min, aru_null
from repro.aru.summary import BufferAruState
from repro.control import FeedbackBus, FeedbackEndpoint


class TestFeedbackEndpoint:
    def test_receive_then_advertise(self):
        ep = FeedbackEndpoint(BufferAruState("b", op="min"))
        assert ep.advertise() is None
        ep.receive("c1", 0.5)
        ep.receive("c2", 0.8)
        assert ep.advertise() == pytest.approx(0.5)

    def test_detach_drops_slot(self):
        ep = FeedbackEndpoint(BufferAruState("b", op="min"))
        ep.receive("c1", 0.5)
        assert ep.detach("c1") is True
        assert ep.advertise() is None
        assert ep.detach("c1") is False

    def test_backward_property(self):
        state = BufferAruState("b", op="min")
        assert FeedbackEndpoint(state).backward is state.backward


class TestFeedbackBus:
    def test_propagates_only_when_enabled_and_not_null(self):
        assert FeedbackBus(aru_min()).propagates is True
        assert FeedbackBus(aru_max()).propagates is True
        assert FeedbackBus(aru_disabled()).propagates is False
        assert FeedbackBus(aru_null()).propagates is False

    def test_no_endpoints_when_not_propagating(self):
        bus = FeedbackBus(aru_null())
        assert bus.buffer_state("b") is None
        assert bus.endpoint_for("b") is None
        assert bus.endpoints == {}

    def test_endpoint_uses_config_channel_op(self):
        ep = FeedbackBus(aru_max()).endpoint_for("b")
        ep.receive("c1", 0.5)
        ep.receive("c2", 0.8)
        assert ep.advertise() == pytest.approx(0.8)

    def test_compress_op_override_beats_config(self):
        ep = FeedbackBus(aru_max()).endpoint_for("b", compress_op="min")
        ep.receive("c1", 0.5)
        ep.receive("c2", 0.8)
        assert ep.advertise() == pytest.approx(0.5)

    def test_endpoints_recorded_by_name(self):
        bus = FeedbackBus(aru_min())
        ep = bus.endpoint_for("b")
        assert bus.endpoints == {"b": ep}

    def test_staleness_ttl_wired_through(self):
        clock = [0.0]
        bus = FeedbackBus(aru_min(staleness_ttl=1.0), time_fn=lambda: clock[0])
        ep = bus.endpoint_for("b")
        ep.receive("c1", 0.5)
        clock[0] = 5.0
        assert ep.advertise() is None  # slot evicted as stale
