"""Differential guarantees of the control-plane refactor.

Three contracts, all enforced on real tracker cells:

* the default summary-STP stack is **bit-identical** to the
  pre-refactor ARU (golden fingerprints captured on the seed revision —
  ``benchmarks/check_control_identity.py`` runs the full 74-cell grid,
  this suite pins a 6-cell cross-section in-tree);
* ``NullPolicy`` (control plane wired but inert) is bit-identical to
  ``enabled=False`` (plumbing has zero side effects);
* parallel sweep execution is bit-identical to serial execution.
"""

import pytest

from repro.aru import aru_disabled, aru_max, aru_min, aru_null
from repro.bench import CellSpec, SweepRunner, metrics_fingerprint

HORIZON = 25.0

#: Captured with metrics_fingerprint() on the pre-refactor revision
#: (PR 3 head); the control-plane refactor must never change them.
GOLDEN = {
    ("config1", "No ARU"):
        "dc74f371cd143bd0ddf192cd227974ca232c667e31beba56a825c28b842d802f",
    ("config1", "ARU-min"):
        "ff43ff2c3e94af8349abc4d2de438cac3922d2ed6907f87debd4681740cf4fd9",
    ("config1", "ARU-max"):
        "adc6845396525ee08f4765b9814e18c3c6f316cbbff75b1922331900fb3dc4d4",
    ("config2", "No ARU"):
        "e9a7f4ac81648993d8d505907ca3f54675a283ed446145d1f5a562017711b8e1",
    ("config2", "ARU-min"):
        "70eb5d01905b28ccee0e9f00b760b653727f8abc3a2a91f68307fc7e153ba6b4",
    ("config2", "ARU-max"):
        "0b4f6db0bdc205d1802e5fda29d598e6f22ed872e4db9583a6108524f92de68f",
}


def grid_specs():
    policies = (("No ARU", aru_disabled), ("ARU-min", aru_min),
                ("ARU-max", aru_max))
    return [
        CellSpec(config=config, policy=factory(), label=label, seed=0,
                 horizon=HORIZON)
        for config in ("config1", "config2")
        for label, factory in policies
    ]


@pytest.fixture(scope="module")
def serial_results():
    return SweepRunner(workers=1).run_metrics(grid_specs())


class TestGoldenFingerprints:
    def test_default_stack_is_bit_identical_to_seed(self, serial_results):
        got = {
            (r.spec.config, r.spec.policy_label): metrics_fingerprint(r)
            for r in serial_results
        }
        assert got == GOLDEN


class TestNullPolicyEquivalence:
    def test_null_equals_disabled_bit_for_bit(self):
        specs = [
            CellSpec(config="config1", policy=policy, seed=0, horizon=HORIZON)
            for policy in (aru_null(), aru_disabled())
        ]
        null_r, off_r = SweepRunner(workers=1).run_metrics(specs)
        # the policy name is part of the fingerprint; normalize it so
        # the comparison covers every *behavioural* field
        null_r.metrics.policy = off_r.metrics.policy = "normalized"
        assert metrics_fingerprint(null_r) == metrics_fingerprint(off_r)


class TestParallelEquivalence:
    def test_workers4_matches_serial(self, serial_results):
        parallel = SweepRunner(workers=4).run_metrics(grid_specs())
        serial_fp = [metrics_fingerprint(r) for r in serial_results]
        parallel_fp = [metrics_fingerprint(r) for r in parallel]
        assert parallel_fp == serial_fp

    def test_string_policy_specs_match_config_specs(self):
        by_name = CellSpec(config="config1", policy="aru-min", seed=0,
                           horizon=HORIZON)
        by_config = CellSpec(config="config1", policy=aru_min(), seed=0,
                             horizon=HORIZON)
        r_name, r_config = SweepRunner(workers=1).run_metrics(
            [by_name, by_config])
        assert metrics_fingerprint(r_name) == metrics_fingerprint(r_config)
