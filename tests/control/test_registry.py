"""Policy registry: resolution, suggestions, extension registration."""

import pytest

from repro.aru import AruConfig, aru_min
from repro.control import (
    ScaleConfig,
    list_policies,
    list_scale_policies,
    policies_help_text,
    register_policy,
    register_scale_policy,
    resolve_policy,
    resolve_scale_policy,
    scale_policies_help_text,
)
from repro.errors import ConfigError


def test_builtin_names_resolve():
    assert resolve_policy("no-aru").enabled is False
    assert resolve_policy("aru-min").thread_op == "min"
    assert resolve_policy("aru-max").thread_op == "max"
    assert resolve_policy("aru-pid").policy == "pid"
    assert resolve_policy("null").policy == "null"


def test_config_passes_through():
    cfg = aru_min(headroom=1.1)
    assert resolve_policy(cfg) is cfg


def test_unknown_name_suggests_close_match():
    with pytest.raises(ConfigError, match="did you mean 'aru-min'"):
        resolve_policy("aru-mn")


def test_unknown_name_lists_available():
    with pytest.raises(ConfigError, match="available: .*no-aru"):
        resolve_policy("warp-speed")


def test_list_policies_sorted():
    names = list_policies()
    assert names == sorted(names)
    assert {"no-aru", "aru-min", "aru-max", "aru-pid", "null"} <= set(names)


def test_register_custom_policy():
    # No manual cleanup: the autouse conftest fixture restores the
    # registry after every test.
    register_policy(
        "aru-pid-hot",
        lambda: AruConfig(policy="pid", pid_kp=0.9, pid_ki=0.5,
                          name="aru-pid-hot"),
        help="hot gains")
    cfg = resolve_policy("aru-pid-hot")
    assert cfg.pid_kp == 0.9
    assert "aru-pid-hot" in policies_help_text()


def test_registry_mutations_do_not_leak():
    """The previous test registered 'aru-pid-hot'; it must be gone here.

    Guards the conftest fixture that snapshots/restores registry state
    (tests run in file order, so this observes the restore)."""
    assert "aru-pid-hot" not in list_policies()


def test_empty_name_rejected():
    with pytest.raises(ConfigError):
        register_policy("", aru_min)


def test_help_text_covers_every_policy():
    text = policies_help_text()
    for name in list_policies():
        assert name in text


# -- scale-policy registry --------------------------------------------------
def test_builtin_scale_names_resolve():
    assert resolve_scale_policy("no-scale").enabled is False
    assert resolve_scale_policy("null-scale").policy == "null"
    assert resolve_scale_policy("erlang").policy == "erlang"
    assert resolve_scale_policy("erlang-latency").wait_budget is not None


def test_scale_none_and_config_pass_through():
    assert resolve_scale_policy(None) is None
    cfg = ScaleConfig(target_utilization=0.5)
    assert resolve_scale_policy(cfg) is cfg


def test_unknown_scale_name_suggests_close_match():
    with pytest.raises(ConfigError, match="did you mean 'erlang'"):
        resolve_scale_policy("erlng")


def test_register_custom_scale_policy():
    register_scale_policy(
        "erlang-tight",
        lambda: ScaleConfig(target_utilization=0.5, name="erlang-tight"),
        help="low-utilisation sizing")
    assert resolve_scale_policy("erlang-tight").target_utilization == 0.5
    assert "erlang-tight" in scale_policies_help_text()


def test_scale_registry_mutations_do_not_leak():
    assert "erlang-tight" not in list_scale_policies()


def test_scale_help_text_covers_every_policy():
    text = scale_policies_help_text()
    for name in list_scale_policies():
        assert name in text
