"""Policy registry: resolution, suggestions, extension registration."""

import pytest

from repro.aru import AruConfig, aru_min
from repro.control import (
    list_policies,
    policies_help_text,
    register_policy,
    resolve_policy,
)
from repro.control.registry import _REGISTRY
from repro.errors import ConfigError


def test_builtin_names_resolve():
    assert resolve_policy("no-aru").enabled is False
    assert resolve_policy("aru-min").thread_op == "min"
    assert resolve_policy("aru-max").thread_op == "max"
    assert resolve_policy("aru-pid").policy == "pid"
    assert resolve_policy("null").policy == "null"


def test_config_passes_through():
    cfg = aru_min(headroom=1.1)
    assert resolve_policy(cfg) is cfg


def test_unknown_name_suggests_close_match():
    with pytest.raises(ConfigError, match="did you mean 'aru-min'"):
        resolve_policy("aru-mn")


def test_unknown_name_lists_available():
    with pytest.raises(ConfigError, match="available: .*no-aru"):
        resolve_policy("warp-speed")


def test_list_policies_sorted():
    names = list_policies()
    assert names == sorted(names)
    assert {"no-aru", "aru-min", "aru-max", "aru-pid", "null"} <= set(names)


def test_register_custom_policy():
    try:
        register_policy(
            "aru-pid-hot",
            lambda: AruConfig(policy="pid", pid_kp=0.9, pid_ki=0.5,
                              name="aru-pid-hot"),
            help="hot gains")
        cfg = resolve_policy("aru-pid-hot")
        assert cfg.pid_kp == 0.9
        assert "aru-pid-hot" in policies_help_text()
    finally:
        _REGISTRY.pop("aru-pid-hot", None)


def test_empty_name_rejected():
    with pytest.raises(ConfigError):
        register_policy("", aru_min)


def test_help_text_covers_every_policy():
    text = policies_help_text()
    for name in list_policies():
        assert name in text
