"""PidPolicy on the real pipeline: convergence and cold-restart reset.

The acceptance bar (mirrored by ``benchmarks/bench_abl_pid.py`` at full
length): the PI controller's steady-state period must land within 10%
of the sustainable period the paper's summary-STP policy measures on
the same cell.
"""

import pytest

from repro.apps import build_tracker
from repro.aru import aru_min, aru_pid
from repro.control import PidPolicy
from repro.metrics import control_series, steady_state
from repro.runtime import Runtime, RuntimeConfig

HORIZON = 40.0
WARMUP = 15.0  # ignore the transient; compare steady-state levels


def _digitizer_steady_state(aru) -> float:
    runtime = Runtime(build_tracker(), RuntimeConfig(aru=aru, seed=0))
    recorder = runtime.run(until=HORIZON)
    return steady_state(control_series(recorder, "digitizer"), after=WARMUP)


class TestPidConvergence:
    def test_steady_state_within_10pct_of_sustainable_period(self):
        sustainable = _digitizer_steady_state(aru_min())
        pid_level = _digitizer_steady_state(aru_pid())
        assert sustainable > 0
        assert pid_level == pytest.approx(sustainable, rel=0.10)

    def test_pid_actually_throttles(self):
        runtime = Runtime(build_tracker(), RuntimeConfig(aru=aru_pid(), seed=0))
        recorder = runtime.run(until=HORIZON)
        series = control_series(recorder, "digitizer")
        assert (series.slept > 0).any()


class TestRestartResetsPolicyState:
    def test_cold_restart_builds_fresh_pid_state(self):
        runtime = Runtime(build_tracker(), RuntimeConfig(aru=aru_pid(), seed=0))
        runtime.advance(10.0)
        policy = runtime.drivers["digitizer"].controller.policy
        assert isinstance(policy, PidPolicy)
        assert policy._target is not None  # loop engaged

        runtime.restart_thread("digitizer")
        fresh = runtime.drivers["digitizer"].controller.policy
        assert fresh is not policy
        assert isinstance(fresh, PidPolicy)
        assert fresh._target is None  # cold: no integrated target
        assert fresh.snapshot() == {}  # no backward slots

        # and the pipeline keeps running after the restart
        runtime.advance(5.0)
        runtime.finalize()

    def test_controller_reset_clears_decision_state(self):
        runtime = Runtime(build_tracker(), RuntimeConfig(aru=aru_pid(), seed=0))
        runtime.advance(10.0)
        controller = runtime.drivers["digitizer"].controller
        assert controller.policy.snapshot() != {}
        controller.reset()
        assert controller.policy.snapshot() == {}
        assert controller.policy._target is None
