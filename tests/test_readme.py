"""Execute the README's quickstart snippet so the docs can never rot."""

import pathlib
import re

README = pathlib.Path(__file__).parent.parent / "README.md"


def extract_first_python_block(text: str) -> str:
    match = re.search(r"```python\n(.*?)```", text, flags=re.DOTALL)
    assert match, "README must contain a python code block"
    return match.group(1)


def test_readme_quickstart_runs_and_claims_hold(capsys):
    code = extract_first_python_block(README.read_text())
    namespace: dict = {}
    exec(compile(code, str(README), "exec"), namespace)  # noqa: S102
    # the snippet prints the wasted-memory fraction; verify the claim
    printed = capsys.readouterr().out.strip().splitlines()[-1]
    wasted = float(printed)
    assert wasted < 0.05, "README claims ~0.01 wasted with ARU"
    # and its runtime objects are inspectable
    pm = namespace["pm"]
    assert pm.footprint().mean() > 0
