"""Frame codec: the distributed backend's wire format, byte by byte.

The decoder must survive exactly what TCP delivers — arbitrary
fragmentation, many frames per read, interleaved control/data kinds —
and must refuse corrupted streams (unknown kind bytes, absurd lengths)
instead of resynchronizing.
"""

import struct

import pytest

from repro.dist.framing import (
    HEADER_SIZE,
    MAX_FRAME,
    Frame,
    FrameDecoder,
    FrameKind,
    encode_frame,
)
from repro.errors import FrameError


def test_roundtrip_single_frame():
    data = encode_frame(FrameKind.PUT, b"payload")
    frames = FrameDecoder().feed(data)
    assert frames == [Frame(FrameKind.PUT, b"payload")]


def test_empty_payload():
    data = encode_frame(FrameKind.STOP)
    assert len(data) == HEADER_SIZE
    assert FrameDecoder().feed(data) == [Frame(FrameKind.STOP, b"")]


def test_partial_reads_one_byte_at_a_time():
    data = encode_frame(FrameKind.GET, b"x" * 37)
    decoder = FrameDecoder()
    frames = []
    for i in range(len(data)):
        frames.extend(decoder.feed(data[i:i + 1]))
    assert frames == [Frame(FrameKind.GET, b"x" * 37)]
    assert not decoder.mid_frame


def test_partial_header_then_rest():
    data = encode_frame(FrameKind.HELLO, b"abc")
    decoder = FrameDecoder()
    assert decoder.feed(data[:3]) == []      # half a header
    assert decoder.mid_frame
    assert decoder.feed(data[3:]) == [Frame(FrameKind.HELLO, b"abc")]
    assert not decoder.mid_frame


def test_many_frames_in_one_feed():
    blob = b"".join(
        encode_frame(k, bytes([i]))
        for i, k in enumerate((FrameKind.PUT, FrameKind.PUT_ACK,
                               FrameKind.FEEDBACK))
    )
    frames = FrameDecoder().feed(blob)
    assert [f.kind for f in frames] == [
        FrameKind.PUT, FrameKind.PUT_ACK, FrameKind.FEEDBACK]


def test_interleaved_feedback_and_data_frames():
    # Feedback (summary-STP) frames share the stream with data frames;
    # the decoder must keep their order and never merge payloads.
    seq = [
        (FrameKind.PUT, b"item-7"),
        (FrameKind.FEEDBACK, b"stp=0.2"),
        (FrameKind.PUT, b"item-8"),
        (FrameKind.GET_REPLY, b""),
        (FrameKind.FEEDBACK_OK, b"ok"),
    ]
    blob = b"".join(encode_frame(k, p) for k, p in seq)
    # fragment pathologically: split inside every header and payload
    decoder = FrameDecoder()
    frames = []
    step = 3
    for i in range(0, len(blob), step):
        frames.extend(decoder.feed(blob[i:i + step]))
    assert [(f.kind, f.payload) for f in frames] == seq


def test_unknown_kind_byte_raises():
    bogus = struct.pack(">BI", 250, 0)
    with pytest.raises(FrameError, match="unknown frame kind"):
        FrameDecoder().feed(bogus)


def test_zero_kind_byte_raises():
    # All-zero garbage (e.g. a misdirected protocol) must not decode.
    with pytest.raises(FrameError, match="unknown frame kind"):
        FrameDecoder().feed(b"\x00" * HEADER_SIZE)


def test_oversized_declared_length_raises_before_buffering():
    header = struct.pack(">BI", int(FrameKind.PUT), MAX_FRAME + 1)
    with pytest.raises(FrameError, match="exceeds"):
        FrameDecoder().feed(header)


def test_encode_refuses_oversized_payload():
    class _FakeLen(bytes):
        def __len__(self):
            return MAX_FRAME + 1

    with pytest.raises(FrameError, match="exceeds"):
        encode_frame(FrameKind.PUT, _FakeLen())


def test_mid_frame_flag_tracks_partial_state():
    decoder = FrameDecoder()
    assert not decoder.mid_frame          # clean boundary: EOF here is clean
    decoder.feed(encode_frame(FrameKind.BYE)[:2])
    assert decoder.mid_frame              # EOF here is an abrupt drop
    decoder.feed(encode_frame(FrameKind.BYE)[2:])
    assert not decoder.mid_frame


def test_control_and_data_kinds_are_disjoint():
    control = {k for k in FrameKind if k < FrameKind.OPEN}
    data = {k for k in FrameKind if k >= FrameKind.OPEN}
    assert control and data
    assert not {int(k) for k in control} & {int(k) for k in data}


# -- property tests -----------------------------------------------------------

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st  # noqa: E402

_kinds = st.sampled_from(sorted(FrameKind))
_payloads = st.binary(max_size=512)
_frames = st.lists(st.tuples(_kinds, _payloads), max_size=20)


@given(frames=_frames, data=st.data())
@settings(max_examples=60, deadline=None)
def test_decoder_invariant_under_arbitrary_fragmentation(frames, data):
    """Any fragmentation of any frame sequence decodes to that sequence."""
    blob = b"".join(encode_frame(k, p) for k, p in frames)
    decoder = FrameDecoder()
    out = []
    i = 0
    while i < len(blob):
        step = data.draw(st.integers(min_value=1, max_value=len(blob) - i))
        out.extend(decoder.feed(blob[i:i + step]))
        i += step
    assert [(f.kind, f.payload) for f in out] == frames
    assert not decoder.mid_frame


@given(payload=_payloads, kind=_kinds)
@settings(max_examples=60, deadline=None)
def test_encode_decode_roundtrip(payload, kind):
    frames = FrameDecoder().feed(encode_frame(kind, payload))
    assert frames == [Frame(kind, payload)]
