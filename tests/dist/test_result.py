"""Merging per-worker outcomes into one DES-shaped result."""

import pytest

from repro.dist.result import DistRunInfo, WorkerInfo, merge_stats
from repro.errors import DistError


def _stats(now, events, net, node, buffers=(), threads=()):
    return {
        "engine": {"now": now, "events_processed": events},
        "network": {"total_bytes": net},
        "nodes": {node: {"mem_peak": 1, "busy_time": 0.5}},
        "buffers": {b: {"puts": 1} for b in buffers},
        "threads": {t: {"iterations": 2} for t in threads},
    }


def test_merge_unions_disjoint_sections():
    merged = merge_stats([
        _stats(5.0, 10, 100, "n0", buffers=("a",), threads=("t0",)),
        _stats(7.0, 20, 250, "n1", buffers=("b",), threads=("t1",)),
    ])
    assert merged["engine"]["now"] == 7.0
    assert merged["engine"]["events_processed"] == 30
    assert merged["network"]["total_bytes"] == 350
    assert set(merged["nodes"]) == {"n0", "n1"}
    assert set(merged["buffers"]) == {"a", "b"}
    assert set(merged["threads"]) == {"t0", "t1"}


def test_merge_single_worker_is_identity_shaped():
    one = _stats(3.0, 5, 42, "n0", buffers=("c",), threads=("t",))
    merged = merge_stats([one])
    assert merged["engine"] == one["engine"]
    assert merged["network"] == one["network"]
    assert merged["buffers"] == one["buffers"]


def test_merge_empty_raises():
    with pytest.raises(DistError, match="no worker stats"):
        merge_stats([])


def test_duplicate_thread_means_plans_disagree():
    with pytest.raises(DistError, match="plans disagree"):
        merge_stats([
            _stats(1.0, 1, 0, "n0", threads=("dup",)),
            _stats(1.0, 1, 0, "n1", threads=("dup",)),
        ])


def test_duplicate_buffer_means_plans_disagree():
    with pytest.raises(DistError, match="plans disagree"):
        merge_stats([
            _stats(1.0, 1, 0, "n0", buffers=("c",)),
            _stats(1.0, 1, 0, "n1", buffers=("c",)),
        ])


def test_dist_run_info_nodes_roster():
    info = DistRunInfo(
        plan=None,
        workers=[WorkerInfo(index=0, node="n0", pid=10, port=5000,
                            returncode=0),
                 WorkerInfo(index=1, node="n1", pid=11, port=5001,
                            returncode=0)],
        t0=123.0,
    )
    assert info.nodes == ("n0", "n1")
