"""FramedConnection: typed frames over real sockets.

End-of-stream classification is load-bearing for the distributed
failure semantics — a clean EOF means the peer shut down in an orderly
way (wind-down), an EOF mid-frame means it died (RetryPolicy territory)
— so both paths get pinned here over real socketpairs.
"""

import socket
import threading

import pytest

from repro.dist.framing import FrameKind, encode_frame
from repro.dist.wire import ConnectionClosed, FramedConnection, connect
from repro.errors import DistError
from repro.runtime.retry import RetryPolicy


@pytest.fixture()
def pair():
    # A real TCP pair over loopback (not socketpair: FramedConnection
    # sets TCP_NODELAY, which AF_UNIX sockets reject).
    server = socket.socket()
    server.bind(("127.0.0.1", 0))
    server.listen(1)
    a = socket.create_connection(server.getsockname(), timeout=5.0)
    a.settimeout(None)
    b, _ = server.accept()
    server.close()
    ca, cb = FramedConnection(a), FramedConnection(b)
    yield ca, cb
    ca.close()
    cb.close()


def test_send_recv_roundtrip(pair):
    ca, cb = pair
    ca.send(FrameKind.PUT, {"ts": 3, "size": 100})
    kind, obj = cb.recv(timeout=5.0)
    assert kind == FrameKind.PUT
    assert obj == {"ts": 3, "size": 100}


def test_none_payload(pair):
    ca, cb = pair
    ca.send(FrameKind.STOP)
    assert cb.recv(timeout=5.0) == (FrameKind.STOP, None)


def test_interleaved_kinds_preserve_order(pair):
    ca, cb = pair
    seq = [(FrameKind.PUT, 1), (FrameKind.FEEDBACK, 0.25),
           (FrameKind.PUT, 2), (FrameKind.FEEDBACK, 0.5)]
    for kind, obj in seq:
        ca.send(kind, obj)
    got = [cb.recv(timeout=5.0) for _ in seq]
    assert got == seq


def test_clean_eof_on_frame_boundary(pair):
    ca, cb = pair
    ca.send(FrameKind.BYE)
    ca.close()
    assert cb.recv(timeout=5.0) == (FrameKind.BYE, None)
    with pytest.raises(ConnectionClosed) as exc:
        cb.recv(timeout=5.0)
    assert exc.value.clean


def test_abrupt_close_mid_frame(pair):
    ca, cb = pair
    # Write half a frame straight to the socket, then vanish.
    frame = encode_frame(FrameKind.PUT, b"x" * 64)
    ca._sock.sendall(frame[: len(frame) // 2])
    ca.close()
    with pytest.raises(ConnectionClosed) as exc:
        cb.recv(timeout=5.0)
    assert not exc.value.clean


def test_recv_timeout_raises_socket_timeout(pair):
    _, cb = pair
    with pytest.raises(socket.timeout):
        cb.recv(timeout=0.05)


def test_send_on_closed_peer_raises_connection_closed(pair):
    ca, cb = pair
    cb.close()
    # The first send may land in the kernel buffer; sending until the
    # broken pipe surfaces must raise ConnectionClosed, not raw OSError.
    with pytest.raises(ConnectionClosed):
        for _ in range(64):
            ca.send(FrameKind.PUT, b"x" * 4096)


def test_byte_counters(pair):
    ca, cb = pair
    ca.send(FrameKind.PUT, list(range(50)))
    cb.recv(timeout=5.0)
    assert ca.bytes_sent > 0
    assert cb.bytes_received == ca.bytes_sent


def test_concurrent_senders_do_not_corrupt_stream(pair):
    ca, cb = pair
    n, threads = 40, 4

    def blast(tid):
        for i in range(n):
            ca.send(FrameKind.PUT, (tid, i))

    workers = [threading.Thread(target=blast, args=(t,)) for t in range(threads)]
    for w in workers:
        w.start()
    got = [cb.recv(timeout=10.0) for _ in range(n * threads)]
    for w in workers:
        w.join()
    assert all(kind == FrameKind.PUT for kind, _ in got)
    # Per-sender order is preserved even though the streams interleave.
    per_tid = {}
    for _, (tid, i) in got:
        per_tid.setdefault(tid, []).append(i)
    assert all(seq == sorted(seq) for seq in per_tid.values())


def test_connect_gives_up_after_retry_budget():
    # Grab a port and close the listener so nothing is accepting.
    probe = socket.socket()
    probe.bind(("127.0.0.1", 0))
    port = probe.getsockname()[1]
    probe.close()
    retry = RetryPolicy(max_attempts=2, backoff_base=0.01, backoff_max=0.02)
    with pytest.raises(DistError, match="could not connect"):
        connect("127.0.0.1", port, retry=retry, connect_timeout=0.2)


def test_connect_succeeds_against_listener():
    server = socket.socket()
    server.bind(("127.0.0.1", 0))
    server.listen(1)
    port = server.getsockname()[1]
    conn = connect("127.0.0.1", port, connect_timeout=2.0)
    peer_sock, _ = server.accept()
    peer = FramedConnection(peer_sock)
    conn.send(FrameKind.HELLO, {"worker": 0})
    assert peer.recv(timeout=5.0) == (FrameKind.HELLO, {"worker": 0})
    conn.close()
    peer.close()
    server.close()
