"""DistPlan: the partition both sides compute independently.

Launcher and workers never exchange the plan — each derives it from the
same spec — so these tests pin the resolution rules to the DES runtime's
placement conventions.
"""

import pytest

from repro.apps.tracker import build_tracker, tracker_placement
from repro.cluster.spec import ClusterSpec, NodeSpec, config2_spec
from repro.dist.plan import build_plan
from repro.errors import ConfigError
from repro.runtime import TaskGraph


def _two_node_cluster():
    return ClusterSpec(nodes=(NodeSpec(name="n0"), NodeSpec(name="n1")))


def _pipeline(chan_node=None):
    g = TaskGraph("p")

    def body(ctx):
        yield None

    g.add_thread("src", body, node="n0")
    g.add_thread("dst", body, node="n1", sink=True)
    g.add_channel("c", node=chan_node)
    g.connect("src", "c").connect("c", "dst")
    return g


def test_explicit_placement_wins():
    plan = build_plan(_pipeline(), _two_node_cluster(), {"src": "n1"})
    assert plan.thread_nodes["src"] == "n1"


def test_graph_attrs_place_threads():
    plan = build_plan(_pipeline(), _two_node_cluster(), {})
    assert plan.thread_nodes == {"src": "n0", "dst": "n1"}


def test_buffer_defaults_to_producer_node():
    # The Stampede convention: an unplaced buffer lives with its producer.
    plan = build_plan(_pipeline(), _two_node_cluster(), {})
    assert plan.buffer_nodes["c"] == "n0"


def test_buffer_explicit_node_wins():
    plan = build_plan(_pipeline(chan_node="n1"), _two_node_cluster(), {})
    assert plan.buffer_nodes["c"] == "n1"


def test_cross_node_buffers_detected():
    plan = build_plan(_pipeline(), _two_node_cluster(), {})
    # consumer dst is on n1, buffer on n0 -> crossing
    assert plan.cross_node_buffers == ("c",)
    # co-locate everything -> no crossing
    plan2 = build_plan(_pipeline(), _two_node_cluster(),
                       {"src": "n0", "dst": "n0", "c": "n0"})
    assert plan2.cross_node_buffers == ()


def test_threads_on_and_buffers_on():
    plan = build_plan(_pipeline(), _two_node_cluster(), {})
    assert plan.threads_on("n0") == ("src",)
    assert plan.threads_on("n1") == ("dst",)
    assert plan.buffers_on("n0") == ("c",)
    assert plan.buffers_on("n1") == ()


def test_unused_nodes_get_no_worker():
    cluster = ClusterSpec(nodes=(NodeSpec(name="n0"), NodeSpec(name="n1"),
                                 NodeSpec(name="spare")))
    plan = build_plan(_pipeline(), cluster, {})
    assert "spare" not in plan.nodes
    assert plan.nodes == ("n0", "n1")


def test_unknown_node_raises():
    with pytest.raises(ConfigError, match="unknown node"):
        build_plan(_pipeline(), _two_node_cluster(), {"src": "nope"})


def test_empty_cluster_raises():
    from types import SimpleNamespace

    # ClusterSpec refuses to construct empty, so build_plan's own guard
    # needs a bare stand-in to be reachable.
    with pytest.raises(ConfigError, match="no nodes"):
        build_plan(_pipeline(), SimpleNamespace(nodes=()), {})


def test_tracker_plan_matches_des_placement():
    """The bundled tracker on config 2 partitions exactly as the paper
    (and the DES) places it."""
    graph = build_tracker()
    placement = tracker_placement()
    plan = build_plan(graph, config2_spec(), placement)
    for thread, node in placement.items():
        if thread in plan.thread_nodes:
            assert plan.thread_nodes[thread] == node
    # every thread and buffer landed on a real node
    names = {n.name for n in config2_spec().nodes}
    assert set(plan.thread_nodes.values()) <= names
    assert set(plan.buffer_nodes.values()) <= names
    # the tracker spans multiple nodes => it has cross-node traffic
    assert len(plan.nodes) >= 2
    assert plan.cross_node_buffers
