"""End-to-end: the bundled tracker across real worker processes.

These spawn actual subprocesses and move real bytes over loopback TCP,
so they are slower than the rest of the suite; horizons are kept short.
"""

import pytest

from repro.errors import ConfigError
from repro.experiment import ExperimentSpec, run_experiment
from repro.faults.spec import FaultSpec


@pytest.mark.slow
def test_tracker_runs_across_worker_processes():
    result = run_experiment(ExperimentSpec(
        config="config2", policy="aru-min", seed=0, horizon=3.0,
        backend="proc",
    ))
    info = result.runtime
    # >= 2 real worker processes, all exited cleanly
    assert len(info.workers) >= 2
    assert all(w.returncode == 0 for w in info.workers)
    assert all(w.pid for w in info.workers)
    # the pipeline delivered frames end to end
    assert result.trace.sink_iterations()
    # channels crossed node boundaries over TCP
    assert result.stats["network"]["total_bytes"] > 0
    # the ARU feedback plane was live: summary-STP samples were recorded
    assert result.trace.stp_samples
    # merged stats are DES-shaped: per-node, per-buffer, per-thread
    assert len(result.stats["nodes"]) == len(info.workers)
    assert result.stats["buffers"]
    assert result.stats["threads"]
    # item ids carry their worker's stride prefix, so merged traces
    # cannot collide
    from repro.dist.worker import ID_STRIDE

    assert result.trace.items
    assert all(item_id >= ID_STRIDE for item_id in result.trace.items)


class TestProcValidation:
    def test_scripted_faults_rejected(self):
        spec = ExperimentSpec(
            backend="proc", horizon=1.0,
            faults=(FaultSpec(kind="thread_crash", at=0.5,
                              target="tracker"),),
        )
        with pytest.raises(ConfigError, match="does not script faults"):
            run_experiment(spec)

    def test_active_scale_policy_rejected(self):
        spec = ExperimentSpec(backend="proc", horizon=1.0,
                              scale_policy="erlang")
        with pytest.raises(ConfigError, match="elastic scaling"):
            run_experiment(spec)

    def test_unknown_backend_option_rejected(self):
        spec = ExperimentSpec(backend="proc", horizon=1.0,
                              backend_options={"compte_mode": "noop"})
        with pytest.raises(ConfigError):
            run_experiment(spec)

    def test_unpicklable_graph_fails_fast(self):
        from repro.runtime import TaskGraph

        g = TaskGraph("closure")
        captured = []

        def body(ctx):  # closes over `captured` -> not picklable by ref
            captured.append(1)
            yield None

        g.add_thread("src", body, sink=True)
        spec = ExperimentSpec(app=g, backend="proc", horizon=1.0)
        with pytest.raises(ConfigError, match="pickl"):
            run_experiment(spec)
