"""rebase_trace + merge_traces: the glue that makes per-worker
wall-clock traces analyzable as one run."""

import pytest

from repro.errors import TraceError
from repro.metrics.recorder import TraceRecorder
from repro.metrics.trace_io import (
    merge_traces,
    rebase_trace,
    trace_from_dict,
    trace_to_dict,
)


def _mini_trace(base: float, item_id: int, thread: str) -> TraceRecorder:
    rec = TraceRecorder()
    rec.t_start = base
    rec.on_alloc(item_id, "c", "n0", ts=0, size=10, producer=thread,
                 parents=(), t=base + 0.1)
    rec.on_get(item_id, 0, "sink", t=base + 0.2)
    rec.on_free(item_id, t=base + 0.3)
    rec.on_iteration(thread, t_start=base, t_end=base + 0.5, compute=0.2,
                     blocked=0.1, slept=0.0, inputs=(), outputs=(item_id,))
    rec.on_stp(thread, t=base + 0.5, current_stp=0.5, summary=0.5,
               throttle_target=None, slept=0.0)
    rec.finalize(base + 1.0)
    return rec


class TestRebase:
    def test_rebase_shifts_everything_uniformly(self):
        rec = rebase_trace(_mini_trace(1_000_000.0, 1, "src"))
        assert rec.t_start == 0.0
        assert rec.t_end == pytest.approx(1.0)
        item = rec.items[1]
        assert item.t_alloc == pytest.approx(0.1)
        assert item.t_free == pytest.approx(0.3)
        assert item.gets[0].t == pytest.approx(0.2)
        assert rec.iterations[0].t_start == pytest.approx(0.0)
        assert rec.stp_samples[0].t == pytest.approx(0.5)

    def test_rebase_preserves_durations(self):
        rec = _mini_trace(5_000.0, 1, "src")
        before = rec.duration
        assert rebase_trace(rec).duration == pytest.approx(before)

    def test_rebase_noop_when_already_based(self):
        rec = _mini_trace(0.0, 1, "src")
        assert rebase_trace(rec) is rec
        assert rec.t_start == 0.0

    def test_rebase_requires_finalized(self):
        rec = TraceRecorder()
        with pytest.raises(TraceError, match="finalize"):
            rebase_trace(rec)


class TestMerge:
    def test_merge_unions_items_and_orders_iterations(self):
        a = _mini_trace(100.0, 1, "src")
        b = _mini_trace(100.2, 2, "dst")
        merged = merge_traces([a, b])
        assert set(merged.items) == {1, 2}
        assert merged.t_start == 100.0
        assert merged.t_end == pytest.approx(101.2)
        # iterations sorted by completion time across workers
        ends = [it.t_end for it in merged.iterations]
        assert ends == sorted(ends)
        # per-thread indexes renumbered from zero
        assert [it.index for it in merged.iterations_of("src")] == [0]
        assert [it.index for it in merged.iterations_of("dst")] == [0]

    def test_merge_rejects_duplicate_item_ids(self):
        with pytest.raises(TraceError, match="duplicate item id"):
            merge_traces([_mini_trace(0.0, 7, "a"), _mini_trace(1.0, 7, "b")])

    def test_merge_rejects_unfinalized(self):
        rec = TraceRecorder()
        with pytest.raises(TraceError, match="finalize"):
            merge_traces([rec])

    def test_merge_empty_raises(self):
        with pytest.raises(TraceError, match="at least one"):
            merge_traces([])

    def test_merged_trace_survives_dict_roundtrip(self):
        merged = merge_traces([_mini_trace(10.0, 1, "src"),
                               _mini_trace(10.5, 2, "dst")])
        again = trace_from_dict(trace_to_dict(merged))
        assert trace_to_dict(again) == trace_to_dict(merged)
