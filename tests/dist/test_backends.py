"""The backend registry: one front door, names resolved in one place."""

import warnings

import pytest

import repro
from repro.backends import (
    available_backends,
    backends_help_text,
    register_backend,
    resolve_backend,
)
from repro.errors import ConfigError
from repro.experiment import ExperimentSpec, execute_simulated, run_experiment
from repro.metrics.trace_io import trace_to_dict


class TestRegistry:
    def test_builtins_registered(self):
        assert {"sim", "threads", "proc"} <= set(available_backends())

    def test_resolve_returns_runner(self):
        assert callable(resolve_backend("sim"))

    def test_unknown_name_did_you_mean(self):
        with pytest.raises(ConfigError, match="did you mean 'threads'"):
            resolve_backend("thread")

    def test_unknown_name_lists_available(self):
        with pytest.raises(ConfigError, match="proc, sim, threads"):
            resolve_backend("bogus")

    def test_non_string_rejected(self):
        with pytest.raises(ConfigError, match="registered name"):
            resolve_backend(execute_simulated)  # callables are not names

    def test_register_and_resolve_custom(self):
        sentinel = object()
        register_backend("unit-test-backend", lambda spec: sentinel,
                         help="test only")
        assert resolve_backend("unit-test-backend")(None) is sentinel
        assert "unit-test-backend" in backends_help_text()

    def test_empty_name_rejected(self):
        with pytest.raises(ConfigError, match="non-empty"):
            register_backend("", lambda spec: None)

    def test_top_level_exports(self):
        assert repro.available_backends is available_backends
        assert repro.resolve_backend is resolve_backend
        assert repro.register_backend is register_backend


class TestDispatch:
    def test_run_experiment_goes_through_registry(self):
        seen = {}

        def fake(spec):
            seen["spec"] = spec
            return "ran-on-fake"

        register_backend("fake", fake)
        spec = ExperimentSpec(backend="fake", horizon=1.0)
        assert run_experiment(spec) == "ran-on-fake"
        assert seen["spec"] is spec

    def test_unknown_backend_on_spec_raises_early(self):
        with pytest.raises(ConfigError, match="did you mean"):
            run_experiment(ExperimentSpec(backend="simm", horizon=1.0))

    def test_sim_via_registry_fingerprint_identical(self):
        """Routing through the registry must not perturb the DES."""
        from repro.runtime.connection import reset_conn_ids
        from repro.runtime.item import reset_item_ids

        spec = ExperimentSpec(policy="aru-min", seed=3, horizon=8.0)
        reset_item_ids()  # both id counters are process-global
        reset_conn_ids()
        direct = execute_simulated(spec)
        reset_item_ids()
        reset_conn_ids()
        routed = run_experiment(spec)  # backend defaults to "sim"
        assert trace_to_dict(routed.trace) == trace_to_dict(direct.trace)
        assert routed.stats == direct.stats

    def test_threads_registry_entry_is_the_threaded_executor(self):
        # Wall-clock runs are not bit-reproducible, so fingerprint
        # identity is checked structurally: the registry dispatches to
        # the same runner the executor module exports.
        from repro.rt_threads.executor import run_threaded_experiment

        runner = resolve_backend("threads")
        assert runner.__module__ == "repro.backends"
        import inspect

        assert "run_threaded_experiment" in inspect.getsource(runner)
        assert callable(run_threaded_experiment)


class TestDeprecations:
    def test_importing_threaded_runtime_from_package_warns(self):
        import repro.rt_threads as pkg

        with pytest.warns(DeprecationWarning, match="backend registry"):
            pkg.ThreadedRuntime  # noqa: B018 - attribute access triggers it

    def test_executor_submodule_path_stays_quiet(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            from repro.rt_threads.executor import ThreadedRuntime  # noqa: F401

    def test_unknown_attribute_still_raises(self):
        import repro.rt_threads as pkg

        with pytest.raises(AttributeError):
            pkg.NoSuchThing
