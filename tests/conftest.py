"""Shared test fixtures.

The policy registries in :mod:`repro.control.registry` are process-wide
mutable state; tests that register presets (directly, or by running
``examples/custom_policy.py``-style code) used to leak those
registrations into every later test in the session. The autouse
fixture below snapshots both registries before each test and restores
them afterwards, so registry mutations cannot escape a test.
"""

import pytest

from repro import backends as _backends
from repro.control import registry as _registry
from repro.tenancy import placement as _placement


@pytest.fixture(autouse=True)
def _isolated_policy_registries():
    """Snapshot/restore the rate, scale, placement, and backend
    registries."""
    rate = dict(_registry._REGISTRY)
    scale = dict(_registry._SCALE_REGISTRY)
    placements = dict(_placement._PLACEMENTS)
    backends = dict(_backends._REGISTRY)
    yield
    _registry._REGISTRY.clear()
    _registry._REGISTRY.update(rate)
    _registry._SCALE_REGISTRY.clear()
    _registry._SCALE_REGISTRY.update(scale)
    _placement._PLACEMENTS.clear()
    _placement._PLACEMENTS.update(placements)
    _backends._REGISTRY.clear()
    _backends._REGISTRY.update(backends)
