"""Tests for the lazy (interval-based) DGC variant."""

import pytest

from repro.cluster import Node, NodeSpec
from repro.errors import ConfigError
from repro.gc import DeadTimestampGC
from repro.metrics import TraceRecorder
from repro.runtime import Channel, Item
from repro.sim import Engine, RngRegistry
from repro.vt import LATEST


def make_channel(gc):
    eng = Engine()
    node = Node(eng, NodeSpec(name="n0"), RngRegistry(0))
    rec = TraceRecorder()
    ch = Channel(eng, "ch", node, recorder=rec, gc=gc)
    return eng, ch


def test_negative_interval_rejected():
    with pytest.raises(ConfigError):
        DeadTimestampGC(interval=-1.0)


def test_zero_interval_is_eager():
    _, ch = make_channel(DeadTimestampGC(interval=0.0))
    prod = ch.register_producer("p")
    cons = ch.register_consumer("c")
    for ts in range(4):
        ch.commit_put(prod, Item(ts=ts, size=1), t=0.0)
    view = ch.commit_get(cons, LATEST, t=0.0)
    assert len(ch) == 1  # skips freed immediately
    ch.release(view._item, t=0.0)
    assert len(ch) == 0


def test_interval_defers_collection():
    eng, ch = make_channel(DeadTimestampGC(interval=5.0))
    prod = ch.register_producer("p")
    cons = ch.register_consumer("c")

    def producer(eng):
        for ts in range(20):
            yield eng.timeout(0.5)
            ch.commit_put(prod, Item(ts=ts, size=1), t=eng.now)

    def consumer(eng):
        while True:
            ev = ch.request_get(cons, LATEST)
            yield ev
            view = ch.commit_get(cons, LATEST, t=eng.now)
            ch.release(view._item, t=eng.now)
            yield eng.timeout(0.5)

    eng.process(producer(eng))
    eng.process(consumer(eng))
    eng.run(until=4.9)
    # within the first interval, only the very first pass may have run:
    # dead items from later gets are still resident
    resident_early = len(ch)
    eng.run(until=20.0)
    assert ch.total_frees > 0
    # laziness retained more than the eager policy would have at 4.9 s
    assert resident_early >= 2


def test_lazy_never_frees_live_items():
    """Safety is interval-independent: only cursor-passed items ever go."""
    eng, ch = make_channel(DeadTimestampGC(interval=1.0))
    prod = ch.register_producer("p")
    cons = ch.register_consumer("c")

    def driver(eng):
        for ts in range(30):
            ch.commit_put(prod, Item(ts=ts, size=1), t=eng.now)
            if ts % 3 == 2:
                view = ch.commit_get(cons, LATEST, t=eng.now)
                ch.release(view._item, t=eng.now)
            yield eng.timeout(0.4)

    eng.process(driver(eng))
    eng.run()
    for trace in ch.recorder.items.values():
        if trace.t_free is not None:
            assert trace.ts <= cons.last_got


def test_interval_state_is_per_channel():
    gc = DeadTimestampGC(interval=100.0)
    eng, ch_a = make_channel(gc)
    # second channel on the same collector instance
    from repro.cluster import Node as N
    node_b = N(eng, NodeSpec(name="n1"), RngRegistry(1))
    ch_b = Channel(eng, "other", node_b, recorder=ch_a.recorder, gc=gc)
    prod_a = ch_a.register_producer("p")
    cons_a = ch_a.register_consumer("c")
    prod_b = ch_b.register_producer("p")
    cons_b = ch_b.register_consumer("c")
    for ch, prod, cons in ((ch_a, prod_a, cons_a), (ch_b, prod_b, cons_b)):
        for ts in range(3):
            ch.commit_put(prod, Item(ts=ts, size=1), t=0.0)
        view = ch.commit_get(cons, LATEST, t=0.0)
        ch.release(view._item, t=0.0)
    # both channels got their own first (free) pass
    assert ch_a.total_frees > 0
    assert ch_b.total_frees > 0
