"""Unit tests for the garbage collectors against hand-driven channels."""

import pytest

from repro.cluster import Node, NodeSpec
from repro.gc import (
    DeadTimestampGC,
    NullGC,
    RefCountGC,
    TransparentGC,
    make_gc,
)
from repro.errors import ConfigError
from repro.metrics import TraceRecorder
from repro.runtime import Channel, Item
from repro.sim import Engine, RngRegistry
from repro.vt import LATEST


class FakeRuntime:
    """Minimal runtime stand-in exposing a settable GVT."""

    def __init__(self):
        self.gvt = None

    def global_virtual_time(self):
        return self.gvt


def make_channel(gc):
    eng = Engine()
    node = Node(eng, NodeSpec(name="n0"), RngRegistry(0))
    rec = TraceRecorder()
    ch = Channel(eng, "ch", node, recorder=rec, gc=gc, aru_state=None)
    return ch, rec


def fill(ch, prod, n, size=10):
    items = []
    for ts in range(n):
        item = Item(ts=ts, size=size, producer="p")
        ch.commit_put(prod, item, t=float(ts))
        items.append(item)
    return items


class TestMakeGc:
    def test_default_is_dgc(self):
        assert isinstance(make_gc(None), DeadTimestampGC)

    def test_names(self):
        assert isinstance(make_gc("null"), NullGC)
        assert isinstance(make_gc("ref"), RefCountGC)
        assert isinstance(make_gc("tgc"), TransparentGC)
        assert isinstance(make_gc("DGC"), DeadTimestampGC)

    def test_instance_passthrough(self):
        gc = RefCountGC()
        assert make_gc(gc) is gc

    def test_unknown_rejected(self):
        with pytest.raises(ConfigError):
            make_gc("quantum")
        with pytest.raises(ConfigError):
            make_gc(42)


class TestNullGC:
    def test_never_frees(self):
        ch, _ = make_channel(NullGC())
        prod = ch.register_producer("p")
        cons = ch.register_consumer("c")
        fill(ch, prod, 10)
        view = ch.commit_get(cons, LATEST, t=10.0)
        ch.release(view._item, t=10.0)
        assert len(ch) == 10
        assert ch.total_frees == 0


class TestDeadTimestampGC:
    def test_skipped_items_freed_on_get(self):
        ch, rec = make_channel(DeadTimestampGC())
        prod = ch.register_producer("p")
        cons = ch.register_consumer("c")
        fill(ch, prod, 5)
        view = ch.commit_get(cons, LATEST, t=5.0)  # gets ts=4, skips 0-3
        assert view.ts == 4
        # skipped 0-3 are dead and unreferenced -> freed now
        assert len(ch) == 1  # only ts=4 (held) remains
        assert ch.total_frees == 4
        for item_id, trace in rec.items.items():
            if trace.ts < 4:
                assert trace.t_free == 5.0

    def test_gotten_item_doomed_until_release(self):
        ch, rec = make_channel(DeadTimestampGC())
        prod = ch.register_producer("p")
        cons = ch.register_consumer("c")
        items = fill(ch, prod, 1)
        view = ch.commit_get(cons, LATEST, t=1.0)
        assert items[0].doomed and not items[0].freed  # referenced
        ch.release(view._item, t=2.0)
        assert items[0].freed
        assert rec.items[items[0].item_id].t_free == 2.0

    def test_multi_consumer_waits_for_slowest_cursor(self):
        ch, _ = make_channel(DeadTimestampGC())
        prod = ch.register_producer("p")
        c1 = ch.register_consumer("c1")
        c2 = ch.register_consumer("c2")
        fill(ch, prod, 4)
        v = ch.commit_get(c1, LATEST, t=4.0)  # c1 cursor -> 3
        ch.release(v._item, t=4.0)
        # c2 has not consumed anything: nothing may be freed
        assert len(ch) == 4
        v2 = ch.commit_get(c2, LATEST, t=5.0)  # c2 cursor -> 3
        ch.release(v2._item, t=5.0)
        assert len(ch) == 0

    def test_no_consumers_nothing_freed(self):
        ch, _ = make_channel(DeadTimestampGC())
        prod = ch.register_producer("p")
        fill(ch, prod, 3)
        assert ch.maybe_collect(3.0) == 0
        assert len(ch) == 3


class TestRefCountGC:
    def test_fully_consumed_item_freed(self):
        ch, _ = make_channel(RefCountGC())
        prod = ch.register_producer("p")
        c1 = ch.register_consumer("c1")
        c2 = ch.register_consumer("c2")
        items = fill(ch, prod, 1)
        v1 = ch.commit_get(c1, LATEST, t=1.0)
        ch.release(v1._item, t=1.0)
        assert not items[0].freed  # c2 has not consumed it
        v2 = ch.commit_get(c2, LATEST, t=2.0)
        ch.release(v2._item, t=2.0)
        assert items[0].freed

    def test_skipped_items_leak_forever(self):
        """The failure mode motivating timestamp GC: skips never free."""
        ch, _ = make_channel(RefCountGC())
        prod = ch.register_producer("p")
        cons = ch.register_consumer("c")
        fill(ch, prod, 10)
        view = ch.commit_get(cons, LATEST, t=10.0)  # skips 0..8
        ch.release(view._item, t=10.0)
        assert ch.total_frees == 1  # only the consumed item
        assert len(ch) == 9  # the skipped ones leak


class TestTransparentGC:
    def test_frees_below_gvt(self):
        gc = TransparentGC()
        fake = FakeRuntime()
        gc.bind(fake)
        ch, _ = make_channel(gc)
        prod = ch.register_producer("p")
        cons = ch.register_consumer("c")
        fill(ch, prod, 6)
        # consumer cursor advances so the invariant (never free beyond a
        # cursor) holds when GVT rises
        view = ch.commit_get(cons, LATEST, t=6.0)
        ch.release(view._item, t=6.0)
        fake.gvt = 3
        assert ch.maybe_collect(7.0) == 3  # ts 0,1,2 dead
        assert len(ch) == 3  # ts 3,4 remain plus the released ts=5
        fake.gvt = 6
        ch.maybe_collect(8.0)
        assert len(ch) == 0

    def test_without_gvt_nothing_freed(self):
        gc = TransparentGC()
        fake = FakeRuntime()
        gc.bind(fake)
        ch, _ = make_channel(gc)
        prod = ch.register_producer("p")
        ch.register_consumer("c")
        fill(ch, prod, 3)
        assert ch.maybe_collect(3.0) == 0

    def test_unbound_is_noop(self):
        gc = TransparentGC()
        ch, _ = make_channel(gc)
        prod = ch.register_producer("p")
        ch.register_consumer("c")
        fill(ch, prod, 3)
        assert ch.maybe_collect(3.0) == 0


class TestGcSafetyInvariant:
    """No collector may free an item a consumer's cursor has not passed."""

    @pytest.mark.parametrize("gc_name", ["null", "ref", "dgc"])
    def test_freed_implies_all_cursors_passed(self, gc_name):
        ch, rec = make_channel(make_gc(gc_name))
        prod = ch.register_producer("p")
        c1 = ch.register_consumer("c1")
        c2 = ch.register_consumer("c2")
        import random

        rng = random.Random(42)
        ts = 0
        held = []
        for step in range(200):
            action = rng.random()
            if action < 0.5:
                item = Item(ts=ts, size=1, producer="p")
                if ch.has_item(ts):
                    ts += 1
                    continue
                ch.commit_put(prod, item, t=float(step))
                ts += 1
            else:
                conn = c1 if action < 0.75 else c2
                if ch.try_match(conn, LATEST):
                    view = ch.commit_get(conn, LATEST, t=float(step))
                    held.append((view, conn))
            if held and rng.random() < 0.5:
                view, _ = held.pop(0)
                ch.release(view._item, t=float(step))
            # invariant: every freed item's ts <= both cursors
            for trace in rec.items.values():
                if trace.t_free is not None:
                    assert trace.ts <= c1.last_got
                    assert trace.ts <= c2.last_got
