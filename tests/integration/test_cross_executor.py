"""Cross-executor consistency: the DES and the real-threads runtime must
tell the same qualitative story for the same task graph.

Absolute timing differs (simulated vs wall clock under a GIL), but the
*mechanism-level* outcomes — who skips, who throttles, how much is wasted
— must agree in direction on both executors.
"""

import pytest

from repro.aru import aru_disabled, aru_min
from repro.cluster import ClusterSpec, NodeSpec
from repro.metrics import PostmortemAnalyzer
from repro.rt_threads.executor import ThreadedRuntime
from repro.runtime import (
    Compute,
    Get,
    PeriodicitySync,
    Put,
    Runtime,
    RuntimeConfig,
    Sleep,
    TaskGraph,
)

PROD_PERIOD = 0.004
CONS_COMPUTE = 0.03


def build_graph():
    def producer(ctx):
        ts = 0
        while True:
            yield Sleep(PROD_PERIOD)
            yield Put("c", ts=ts, size=1000)
            ts += 1
            yield PeriodicitySync()

    def consumer(ctx):
        while True:
            yield Get("c")
            yield Compute(CONS_COMPUTE)
            yield PeriodicitySync()

    g = TaskGraph("xexec")
    g.add_thread("prod", producer)
    g.add_thread("cons", consumer, sink=True)
    g.add_channel("c")
    g.connect("prod", "c").connect("c", "cons")
    return g


def run_sim(aru):
    cluster = ClusterSpec(nodes=(NodeSpec(name="node0", sched_noise_cv=0.05),))
    rec = Runtime(
        build_graph(), RuntimeConfig(cluster=cluster, aru=aru, seed=0)
    ).run(until=8.0)
    return rec


def run_threads(aru):
    return ThreadedRuntime(build_graph(), aru=aru, seed=0).run(duration=2.0)


@pytest.mark.parametrize("runner", [run_sim, run_threads],
                         ids=["simulated", "threads"])
class TestBothExecutors:
    def test_no_aru_overproduces(self, runner):
        rec = runner(aru_disabled())
        pm = PostmortemAnalyzer(rec)
        prod = len(rec.iterations_of("prod"))
        cons = len(rec.iterations_of("cons"))
        assert prod > 2 * cons
        assert pm.wasted_memory_fraction > 0.3

    def test_aru_matches_rates(self, runner):
        rec = runner(aru_min())
        pm = PostmortemAnalyzer(rec)
        prod = len(rec.iterations_of("prod"))
        cons = len(rec.iterations_of("cons"))
        assert prod < 1.8 * cons
        assert pm.wasted_memory_fraction < 0.25
        # the source actually slept under throttle
        assert any(it.slept > 0 for it in rec.iterations_of("prod"))


def test_waste_reduction_factor_agrees():
    """Both executors must show a large waste drop from enabling ARU."""
    factors = {}
    for name, runner in (("sim", run_sim), ("threads", run_threads)):
        waste = {}
        for aru in (aru_disabled(), aru_min()):
            pm = PostmortemAnalyzer(runner(aru))
            waste[aru.name] = pm.wasted_memory_fraction
        factors[name] = waste["no-aru"] / max(waste["aru-min"], 1e-6)
    assert factors["sim"] > 3.0
    assert factors["threads"] > 3.0
