"""Failure injection: killing stages mid-run and observing the fallout.

These scenarios pin down *why* the mechanisms behave as they do: a dead
consumer stops advancing its get cursor, so dead-timestamp guarantees
freeze and upstream storage grows without bound — unless ARU (whose
feedback also freezes, at the last advertised rate) or capacity bounds
contain it.
"""

import pytest

from repro.aru import aru_disabled, aru_min
from repro.cluster import ClusterSpec, NodeSpec
from repro.errors import ConfigError
from repro.runtime import (
    Compute,
    Get,
    PeriodicitySync,
    Put,
    Runtime,
    RuntimeConfig,
    Sleep,
    TaskGraph,
)


def quiet():
    return ClusterSpec(nodes=(NodeSpec(name="node0", sched_noise_cv=0.0),))


def build(aru, capacity=None):
    def src(ctx):
        ts = 0
        while True:
            yield Sleep(0.01)
            yield Put("c", ts=ts, size=1000)
            ts += 1
            yield PeriodicitySync()

    def dst(ctx):
        while True:
            yield Get("c")
            yield Compute(0.05)
            yield PeriodicitySync()

    g = TaskGraph()
    g.add_thread("src", src)
    g.add_thread("dst", dst, sink=True)
    g.add_channel("c", capacity=capacity)
    g.connect("src", "c").connect("c", "dst")
    return Runtime(g, RuntimeConfig(cluster=quiet(), aru=aru))


def test_kill_consumer_freezes_dgc_and_channel_grows():
    rt = build(aru_disabled())
    rt.advance(5.0)
    occupancy_healthy = len(rt.channel("c"))
    rt.kill_thread("dst")
    rt.advance(5.0)
    rec = rt.finalize()
    assert not rt.thread_alive("dst")
    assert rt.thread_alive("src")
    # producer kept going at full rate; nothing collectible anymore
    occupancy_after = len(rt.channel("c"))
    assert occupancy_after > occupancy_healthy + 300
    assert rt.channel("c").total_frees > 0  # frees happened only before


def test_kill_consumer_with_capacity_blocks_producer():
    rt = build(aru_disabled(), capacity=5)
    rt.advance(5.0)
    rt.kill_thread("dst")
    rt.advance(5.0)
    rt.finalize()
    channel = rt.channel("c")
    assert len(channel) == 5  # pinned at the bound
    # the producer is alive but stuck in a back-pressure wait
    assert rt.thread_alive("src")


def test_kill_consumer_with_aru_producer_stays_throttled():
    """ARU's failure mode is graceful: feedback freezes at the last
    advertised rate, so the producer keeps the *old* pace instead of
    reverting to the camera rate."""
    rt = build(aru_min())
    rt.advance(10.0)
    pre = len(rt.recorder.iterations_of("src"))
    rt.kill_thread("dst")
    rt.advance(10.0)
    rt.finalize()
    post = len(rt.recorder.iterations_of("src")) - pre
    # ~0.05 s period held -> ~200 iterations in 10 s, not ~1000
    assert post < 350


def test_killed_thread_releases_held_items():
    rt = build(aru_disabled())
    rt.advance(2.0)
    rt.kill_thread("dst")
    rt.advance(0.5)
    rt.finalize()
    for item in rt.channel("c").items_snapshot():
        assert item.refcount == 0


def test_kill_unknown_thread_rejected():
    rt = build(aru_disabled())
    with pytest.raises(ConfigError):
        rt.kill_thread("ghost")
    with pytest.raises(ConfigError):
        rt.thread_alive("ghost")


def test_kill_source_starves_consumer_cleanly():
    rt = build(aru_disabled())
    rt.advance(3.0)
    rt.kill_thread("src")
    rt.advance(3.0)
    rec = rt.finalize()
    # consumer drained what existed, then blocked quietly
    late = [it for it in rec.iterations_of("dst") if it.t_start > 4.0]
    assert len(late) <= 2
    assert rt.thread_alive("dst")
