"""The paper's §3.3.2 reaction-time claim, verified dynamically.

*"The worst case propagation time for a summary-STP value to reach the
producer from the last consumer in the pipeline is equal to the time it
takes for an item to be processed and be emitted by the application
(i.e., latency). This is due to the fact that as data items propagate
forward in the processing pipeline, summary-STP values propagate one
stage backwards on the same put/get operation."*

Setup: a linear pipeline whose *last* stage is the bottleneck (200 ms)
while every middle stage is fast (10 ms). The source starts receiving
partial feedback (the fast stages' own STPs) almost immediately, but the
bottleneck's 200 ms summary must hop backwards one stage per put/get —
so the time until the source's throttle target first *reflects the
bottleneck* scales with pipeline depth, on the order of one pipeline
traversal.
"""

import numpy as np

from repro.apps import StageCost, linear_pipeline
from repro.aru import aru_min
from repro.cluster import ClusterSpec, NodeSpec
from repro.metrics import control_series
from repro.runtime import Runtime, RuntimeConfig

FAST = 0.01
SLOW = 0.2


def first_bottleneck_feedback(depth: int) -> float:
    """Time at which the source's target first reflects the slow sink."""
    costs = [StageCost(FAST)] * (depth - 1) + [StageCost(SLOW)]
    graph = linear_pipeline(costs, source_period=0.01, item_size=100)
    cluster = ClusterSpec(
        nodes=(NodeSpec(name="node0", ncpus=16, sched_noise_cv=0.0),)
    )
    trace = Runtime(graph, RuntimeConfig(cluster=cluster, aru=aru_min())).run(
        until=20.0
    )
    series = control_series(trace, "source")
    reflects = series.throttle_target >= 0.8 * SLOW
    reflects &= ~np.isnan(series.throttle_target)
    assert reflects.any(), "bottleneck summary never reached the source"
    return float(series.times[reflects][0])


def test_feedback_bounded_by_pipeline_traversal():
    depth = 6
    first = first_bottleneck_feedback(depth)
    # one forward traversal of the first item (≈ the sum of stage times)
    traversal = (depth - 1) * FAST + SLOW
    # backward hops ride on subsequent put/gets: allow a few traversals,
    # but it must be far from instantaneous and far from unbounded
    assert first >= 0.5 * traversal
    assert first <= 5.0 * traversal


def test_deeper_pipelines_react_slower():
    shallow = first_bottleneck_feedback(3)
    deep = first_bottleneck_feedback(10)
    assert deep > shallow * 1.3


def test_partial_feedback_arrives_before_bottleneck_feedback():
    """The source hears *something* (fast-stage STPs) before it hears the
    bottleneck — the distinction this test file hinges on."""
    depth = 6
    costs = [StageCost(FAST)] * (depth - 1) + [StageCost(SLOW)]
    graph = linear_pipeline(costs, source_period=0.01, item_size=100)
    cluster = ClusterSpec(
        nodes=(NodeSpec(name="node0", ncpus=16, sched_noise_cv=0.0),)
    )
    trace = Runtime(graph, RuntimeConfig(cluster=cluster, aru=aru_min())).run(
        until=20.0
    )
    series = control_series(trace, "source")
    valid = ~np.isnan(series.throttle_target)
    first_any = float(series.times[valid][0])
    reflects = valid & (series.throttle_target >= 0.8 * SLOW)
    first_slow = float(series.times[reflects][0])
    assert first_any < first_slow
