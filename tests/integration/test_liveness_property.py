"""Liveness property: random pipelines under ARU never deadlock.

Throttling must never wedge a pipeline: whatever the topology (random
linear chains and fan-outs with random stage costs and operators), the
sink keeps delivering for the whole horizon. This guards the subtle
failure mode of aggressive feedback — a producer throttled below every
consumer's appetite with no recovery path.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps import StageCost, fan_out, linear_pipeline
from repro.aru import AruConfig
from repro.cluster import ClusterSpec, NodeSpec
from repro.runtime import Runtime, RuntimeConfig

HORIZON = 30.0


def cluster():
    return ClusterSpec(
        nodes=(NodeSpec(name="node0", ncpus=16, sched_noise_cv=0.1),)
    )


@settings(max_examples=12, deadline=None)
@given(
    costs=st.lists(st.floats(0.005, 0.15), min_size=1, max_size=5),
    source_period=st.floats(0.005, 0.05),
    op=st.sampled_from(["min", "max", "median", "mean"]),
    seed=st.integers(0, 100),
)
def test_linear_pipeline_always_delivers(costs, source_period, op, seed):
    graph = linear_pipeline([StageCost(c, cv=0.1) for c in costs],
                            source_period=source_period, item_size=100)
    aru = AruConfig(default_channel_op=op, thread_op=op, name=f"aru-{op}")
    rec = Runtime(
        graph, RuntimeConfig(cluster=cluster(), aru=aru, seed=seed)
    ).run(until=HORIZON)
    outputs = rec.sink_iterations()
    assert outputs, "pipeline deadlocked: sink never delivered"
    # still delivering in the last quarter of the run
    assert any(it.t_end > 0.75 * HORIZON for it in outputs), \
        "pipeline stalled mid-run"
    # steady-state delivery rate is at least ~half the bottleneck rate
    bottleneck = max(max(costs), source_period)
    late = [it for it in outputs if it.t_end > HORIZON / 2]
    assert len(late) >= 0.3 * (HORIZON / 2) / bottleneck


@settings(max_examples=8, deadline=None)
@given(
    sink_costs=st.lists(st.floats(0.01, 0.2), min_size=2, max_size=5),
    op=st.sampled_from(["min", "max"]),
    seed=st.integers(0, 100),
)
def test_fan_out_always_delivers_on_every_sink(sink_costs, op, seed):
    graph = fan_out([StageCost(c, cv=0.1) for c in sink_costs],
                    source_period=0.01, item_size=100)
    aru = AruConfig(default_channel_op=op, thread_op=op, name=f"aru-{op}")
    rec = Runtime(
        graph, RuntimeConfig(cluster=cluster(), aru=aru, seed=seed)
    ).run(until=HORIZON)
    for i, cost in enumerate(sink_costs):
        iters = rec.iterations_of(f"sink{i}")
        assert iters, f"sink{i} starved entirely"
        # even under max (paced by the slowest), every sink keeps consuming
        expected_period = max(max(sink_costs), 0.01)
        assert len(iters) >= 0.3 * HORIZON / expected_period, f"sink{i} stalled"
