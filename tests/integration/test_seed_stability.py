"""Seed robustness: the headline orderings must hold for *every* seed,
not on average — otherwise the reproduction would be seed-mined.
"""

import pytest

from repro.apps import StageCost, TrackerConfig
from repro.bench import run_tracker_once
from repro.aru import aru_disabled, aru_max, aru_min

SEEDS = (0, 1, 2, 3, 4)
HORIZON = 60.0


def quick_tracker():
    # paper-shaped but ~3x faster to simulate
    return TrackerConfig(
        frame_period=1 / 30.0,
        grab_cost=StageCost(0.006, 0.08),
        change_detection_cost=StageCost(0.08, 0.12),
        histogram_cost=StageCost(0.13, 0.12),
        target_detect1_cost=StageCost(0.175, 0.15),
        target_detect2_cost=StageCost(0.205, 0.15),
        gui_cost=StageCost(0.018, 0.10),
    )


@pytest.fixture(scope="module")
def per_seed_runs():
    runs = {}
    for seed in SEEDS:
        runs[seed] = {
            policy.name: run_tracker_once(
                "config1", policy, seed=seed, horizon=HORIZON,
                tracker_cfg=quick_tracker(),
            )
            for policy in (aru_disabled(), aru_min(), aru_max())
        }
    return runs


def test_memory_ordering_every_seed(per_seed_runs):
    for seed, by_policy in per_seed_runs.items():
        assert by_policy["no-aru"].mem_mean > by_policy["aru-min"].mem_mean \
            > by_policy["aru-max"].mem_mean, f"seed {seed}"


def test_waste_reduction_every_seed(per_seed_runs):
    for seed, by_policy in per_seed_runs.items():
        assert by_policy["no-aru"].wasted_memory > 0.45, f"seed {seed}"
        assert by_policy["aru-max"].wasted_memory < 0.08, f"seed {seed}"


def test_latency_improvement_every_seed(per_seed_runs):
    for seed, by_policy in per_seed_runs.items():
        assert by_policy["aru-max"].latency_mean \
            < by_policy["no-aru"].latency_mean, f"seed {seed}"


def test_igc_floor_every_seed(per_seed_runs):
    for seed, by_policy in per_seed_runs.items():
        for name, run in by_policy.items():
            assert run.mem_mean >= run.igc_mean * 0.999, (seed, name)


def test_across_seed_variance_is_small(per_seed_runs):
    """Run-to-run spread must stay well below the policy separation."""
    import numpy as np

    no_aru = np.array([r["no-aru"].mem_mean for r in per_seed_runs.values()])
    aru_max_mem = np.array(
        [r["aru-max"].mem_mean for r in per_seed_runs.values()]
    )
    spread = no_aru.std() + aru_max_mem.std()
    separation = no_aru.mean() - aru_max_mem.mean()
    assert separation > 5 * spread
