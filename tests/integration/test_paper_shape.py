"""End-to-end reproduction shape tests.

These run the real (paper-calibrated) tracker on moderate horizons and
assert the headline qualitative results of the paper's §5 hold. They are
the slowest tests in the suite (~15 s total) and the most important: they
pin the reproduction itself, not just the machinery.
"""

import pytest

from repro.bench import format_shape_report, run_grid, shape_checks


@pytest.fixture(scope="module")
def grid():
    # one seed / 90 simulated seconds keeps this fast while leaving the
    # policy separation far larger than run-to-run variance
    return run_grid(seeds=(0,), horizon=90.0)


def test_all_shape_checks_hold(grid):
    checks = shape_checks(grid)
    failed = [claim for claim, ok in checks if not ok]
    assert not failed, format_shape_report(checks)


def test_headline_two_thirds_memory_reduction(grid):
    """Abstract: "ARU reduces the application's memory footprint by
    two-thirds compared to our previously published results"."""
    no = grid[("config1", "No ARU")].mean("mem_mean")
    mx = grid[("config1", "ARU-max")].mean("mem_mean")
    assert mx < 0.45 * no  # at least ~55%; typically ~68%


def test_aru_max_waste_nearly_zero(grid):
    """§5.1: "less than 5% wasted with the ARU-max operator"."""
    for config in ("config1", "config2"):
        assert grid[(config, "ARU-max")].mean("wasted_memory") < 0.05


def test_no_aru_majority_wasted(grid):
    """§5.1: "more than 60% of the memory footprint is wasted" (config 1;
    we accept > 50% across both configs)."""
    for config in ("config1", "config2"):
        assert grid[(config, "No ARU")].mean("wasted_memory") > 0.5


def test_latency_improves_most_with_max(grid):
    # ARU-max wins latency everywhere; the No-ARU/ARU-min gap is small in
    # the paper too (648 vs 605 ms in config 2) and is asserted strictly
    # only on config 1, where contention relief compounds the effect.
    for config in ("config1", "config2"):
        lat = {
            p: grid[(config, p)].mean("latency_mean")
            for p in ("No ARU", "ARU-min", "ARU-max")
        }
        assert lat["ARU-max"] < lat["ARU-min"]
        assert lat["ARU-max"] < lat["No ARU"]
    lat1 = {
        p: grid[("config1", p)].mean("latency_mean")
        for p in ("No ARU", "ARU-min", "ARU-max")
    }
    assert lat1["ARU-max"] < lat1["ARU-min"] < lat1["No ARU"]


def test_max_loses_throughput_in_config2(grid):
    """§5.2: the aggressiveness artifact — ARU-max starves consumers."""
    fps_no = grid[("config2", "No ARU")].mean("throughput")
    fps_mx = grid[("config2", "ARU-max")].mean("throughput")
    assert fps_mx < fps_no


def test_digitizer_production_drops_under_aru(grid):
    produced = {
        p: grid[("config1", p)].mean("frames_produced")
        for p in ("No ARU", "ARU-min", "ARU-max")
    }
    # camera-rate 30 fps unthrottled vs detector-rate ~4-5 fps throttled
    assert produced["No ARU"] > 4 * produced["ARU-max"]
    assert produced["ARU-min"] >= produced["ARU-max"]
