"""Tests for backwardSTP vectors and summary-STP computation (§3.3.2)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.aru import (
    BackwardStpVector,
    BufferAruState,
    EwmaFilter,
    ThreadAruState,
    throttle_sleep,
)

FIG3 = {"B": 337.0, "C": 139.0, "D": 273.0, "E": 544.0, "F": 420.0}


class TestBackwardStpVector:
    def test_update_and_compress_min(self):
        vec = BackwardStpVector("min")
        for conn, value in FIG3.items():
            vec.update(conn, value)
        assert vec.compressed() == 139.0

    def test_compress_max(self):
        vec = BackwardStpVector("max")
        for conn, value in FIG3.items():
            vec.update(conn, value)
        assert vec.compressed() == 544.0

    def test_empty_vector_has_no_summary(self):
        assert BackwardStpVector("min").compressed() is None

    def test_update_overwrites_slot(self):
        vec = BackwardStpVector("min")
        vec.update("i", 100.0)
        vec.update("i", 50.0)
        assert vec.compressed() == 50.0
        assert len(vec) == 1

    def test_negative_value_rejected(self):
        with pytest.raises(ValueError):
            BackwardStpVector().update("i", -1.0)

    def test_snapshot_is_copy(self):
        vec = BackwardStpVector()
        vec.update("i", 5.0)
        snap = vec.snapshot()
        snap["i"] = 999.0
        assert vec.compressed() == 5.0

    def test_per_slot_filtering(self):
        vec = BackwardStpVector("min", summary_filter_factory=lambda: EwmaFilter(0.5))
        vec.update("i", 2.0)
        vec.update("i", 4.0)  # EWMA: 3.0
        assert vec.compressed() == pytest.approx(3.0)

    def test_filters_independent_per_slot(self):
        vec = BackwardStpVector("max", summary_filter_factory=lambda: EwmaFilter(0.5))
        vec.update("a", 10.0)
        vec.update("b", 2.0)
        assert vec.compressed() == pytest.approx(10.0)


class TestThreadAruState:
    def test_paper_fig3_thread_summary(self):
        """Node A (a thread) with consumers B-F and its own STP of 100 ms:
        min-compress gives 139; summary = max(139, 100) = 139."""
        state = ThreadAruState("A", op="min")
        for conn, value in FIG3.items():
            state.update_backward(conn, value)
        assert state.summary(current_stp=100.0) == 139.0

    def test_slow_thread_inserts_own_period(self):
        """A thread slower than its consumers inserts its own STP."""
        state = ThreadAruState("A", op="min")
        for conn, value in FIG3.items():
            state.update_backward(conn, value)
        assert state.summary(current_stp=200.0) == 200.0

    def test_fig4_max_aggressive(self):
        state = ThreadAruState("A", op="max")
        for conn, value in FIG3.items():
            state.update_backward(conn, value)
        assert state.summary(current_stp=100.0) == 544.0

    def test_no_feedback_yet_returns_own_stp(self):
        state = ThreadAruState("A")
        assert state.summary(current_stp=80.0) == 80.0

    def test_no_own_stp_returns_compressed(self):
        state = ThreadAruState("A")
        state.update_backward("i", 42.0)
        assert state.summary(current_stp=None) == 42.0

    def test_nothing_known_returns_none(self):
        assert ThreadAruState("A").summary(current_stp=None) is None

    @given(
        st.dictionaries(st.integers(0, 5), st.floats(0.0, 1e3), min_size=1),
        st.floats(0.0, 1e3),
    )
    def test_summary_at_least_current_stp(self, backward, own):
        """Property: a thread never advertises a period shorter than its own."""
        state = ThreadAruState("t", op="min")
        for conn, value in backward.items():
            state.update_backward(conn, value)
        assert state.summary(own) >= own

    @given(
        st.dictionaries(st.integers(0, 5), st.floats(0.0, 1e3), min_size=1),
        st.floats(0.0, 1e3),
    )
    def test_max_dominates_min(self, backward, own):
        """Property: the max-operator summary >= the min-operator summary."""
        s_min = ThreadAruState("t", op="min")
        s_max = ThreadAruState("t", op="max")
        for conn, value in backward.items():
            s_min.update_backward(conn, value)
            s_max.update_backward(conn, value)
        assert s_max.summary(own) >= s_min.summary(own)


class TestBufferAruState:
    def test_channel_summary_is_pure_compression(self):
        """Channels generate no current-STP (paper step 5)."""
        state = BufferAruState("C1", op="min")
        state.update_backward("consumerA", 250.0)
        state.update_backward("consumerB", 300.0)
        assert state.summary() == 250.0

    def test_channel_with_no_consumers_yet(self):
        assert BufferAruState("C1").summary() is None


class TestThrottleSleep:
    def test_tops_up_to_target(self):
        assert throttle_sleep(0.25, 0.1) == pytest.approx(0.15)

    def test_already_slower_sleeps_zero(self):
        assert throttle_sleep(0.25, 0.3) == 0.0

    def test_no_target_no_throttle(self):
        assert throttle_sleep(None, 0.1) == 0.0

    def test_headroom_scales_target(self):
        assert throttle_sleep(0.2, 0.1, headroom=1.5) == pytest.approx(0.2)

    def test_validation(self):
        with pytest.raises(ValueError):
            throttle_sleep(0.1, -0.1)
        with pytest.raises(ValueError):
            throttle_sleep(-0.1, 0.1)
        with pytest.raises(ValueError):
            throttle_sleep(0.1, 0.1, headroom=0.0)

    @given(st.floats(0, 10), st.floats(0, 10))
    def test_sleep_plus_elapsed_reaches_target(self, target, elapsed):
        sleep = throttle_sleep(target, elapsed)
        assert sleep >= 0.0
        assert sleep + elapsed >= target - 1e-12


class TestStalenessEviction:
    """TTL-based slot eviction (fault tolerance, docs/fault-model.md)."""

    @staticmethod
    def clocked(ttl=1.0, op="min", **kwargs):
        t = [0.0]
        vec = BackwardStpVector(op, ttl=ttl, time_fn=lambda: t[0], **kwargs)
        return vec, t

    def test_ttl_requires_a_time_fn(self):
        with pytest.raises(ValueError, match="time_fn"):
            BackwardStpVector("min", ttl=1.0)

    def test_nonpositive_ttl_rejected(self):
        with pytest.raises(ValueError, match="positive"):
            BackwardStpVector("min", ttl=0.0, time_fn=lambda: 0.0)

    def test_silent_slot_evicts_after_ttl(self):
        vec, t = self.clocked(ttl=1.0)
        vec.update("ghost", 50.0)
        vec.update("live", 100.0)
        t[0] = 0.9
        vec.update("live", 100.0)
        assert vec.compressed() == 50.0  # ghost still within its TTL
        t[0] = 1.5  # ghost last heard at 0.0 — stale; live heard at 0.9
        assert vec.compressed() == 100.0
        assert vec.evictions == 1

    def test_all_slots_stale_means_no_summary(self):
        vec, t = self.clocked(ttl=1.0)
        vec.update("a", 50.0)
        vec.update("b", 70.0)
        t[0] = 2.5
        assert vec.compressed() is None
        assert vec.evictions == 2

    def test_refresh_keeps_a_slot_alive_indefinitely(self):
        vec, t = self.clocked(ttl=1.0)
        for step in range(10):
            t[0] = step * 0.8
            vec.update("a", 42.0)
        assert vec.compressed() == 42.0
        assert vec.evictions == 0

    def test_eviction_drops_filter_state(self):
        vec, t = self.clocked(ttl=1.0,
                              summary_filter_factory=lambda: EwmaFilter(0.5))
        vec.update("a", 100.0)
        t[0] = 2.0
        assert vec.compressed() is None
        vec.update("a", 10.0)  # cold filter: no memory of the 100
        assert vec.compressed() == pytest.approx(10.0)

    def test_explicit_evict_reports_existence(self):
        vec, _ = self.clocked()
        vec.update("a", 5.0)
        assert vec.evict("a") is True
        assert vec.evict("a") is False
        assert vec.compressed() is None

    def test_no_ttl_never_evicts(self):
        vec = BackwardStpVector("min")
        vec.update("a", 5.0)
        assert vec.evict_stale() == []
        assert vec.compressed() == 5.0

    def test_thread_state_passes_ttl_through(self):
        t = [0.0]
        state = ThreadAruState("A", op="min", ttl=1.0, time_fn=lambda: t[0])
        state.update_backward("dead", 500.0)
        t[0] = 2.0
        assert state.summary(current_stp=100.0) == 100.0
