"""Tests for compression operators, including the paper's worked examples."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.aru import kth_op, max_op, mean_op, median_op, min_op, operator_name, resolve
from repro.errors import ConfigError

#: The exact figure-3 vector from the paper: nodes B-F report these.
FIG3_VECTOR = [337.0, 139.0, 273.0, 544.0, 420.0]


class TestPaperWorkedExamples:
    def test_fig3_min_sustains_fastest_consumer(self):
        """Fig. 3: node A sustains consumer C with the smallest summary."""
        assert min_op(FIG3_VECTOR) == 139.0

    def test_fig4_max_matches_slowest_consumer(self):
        """Fig. 4: with full data dependency, A slows to the largest summary."""
        assert max_op(FIG3_VECTOR) == 544.0


class TestOperators:
    def test_mean(self):
        assert mean_op([1.0, 2.0, 3.0]) == pytest.approx(2.0)

    def test_median_odd(self):
        assert median_op([5.0, 1.0, 3.0]) == 3.0

    def test_median_even(self):
        assert median_op([1.0, 2.0, 3.0, 10.0]) == pytest.approx(2.5)

    def test_kth(self):
        op = kth_op(1)
        assert op([5.0, 1.0, 3.0]) == 3.0

    def test_kth_clamps(self):
        assert kth_op(99)([5.0, 1.0]) == 5.0

    def test_kth_zero_is_min(self):
        assert kth_op(0)(FIG3_VECTOR) == min_op(FIG3_VECTOR)

    def test_kth_negative_rejected(self):
        with pytest.raises(ConfigError):
            kth_op(-1)

    @pytest.mark.parametrize("op", [min_op, max_op, mean_op, median_op, kth_op(2)])
    def test_empty_vector_rejected(self, op):
        with pytest.raises(ValueError):
            op([])

    @pytest.mark.parametrize("op", [min_op, max_op, mean_op, median_op])
    def test_singleton_is_identity(self, op):
        assert op([7.25]) == 7.25

    @given(st.lists(st.floats(0.0, 1e6), min_size=1, max_size=20))
    def test_all_ops_bounded_by_extremes(self, values):
        eps = 1e-9 * max(1.0, max(values))  # mean_op float-summation slack
        for op in (min_op, max_op, mean_op, median_op, kth_op(3)):
            result = op(values)
            assert min(values) - eps <= result <= max(values) + eps

    @given(st.lists(st.floats(0.0, 1e6), min_size=1, max_size=20))
    def test_min_le_median_le_max(self, values):
        assert min_op(values) <= median_op(values) <= max_op(values)


class TestResolve:
    def test_none_is_min(self):
        assert resolve(None) is min_op

    def test_names(self):
        assert resolve("min") is min_op
        assert resolve("MAX") is max_op
        assert resolve("mean") is mean_op
        assert resolve("median") is median_op

    def test_kth_spec(self):
        assert resolve("kth:1")([3.0, 1.0, 2.0]) == 2.0

    def test_callable_passthrough(self):
        f = lambda v: 0.0
        assert resolve(f) is f

    def test_unknown_name_raises(self):
        with pytest.raises(ConfigError):
            resolve("mystery")

    def test_non_callable_raises(self):
        with pytest.raises(ConfigError):
            resolve(42)

    def test_operator_name(self):
        assert operator_name(min_op) == "min"
        assert operator_name(kth_op(2)) == "kth_2"
