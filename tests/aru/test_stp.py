"""Tests for the sustainable-thread-period meter (paper §3.3.1 / fig. 2)."""

import pytest

from repro.aru import EwmaFilter, StpMeter
from repro.errors import SimulationError
from repro.vt import ManualClock


def test_simple_iteration_period():
    clock = ManualClock()
    meter = StpMeter(clock)
    clock.advance(0.25)
    assert meter.sync() == pytest.approx(0.25)


def test_blocking_time_excluded():
    """Fig. 2: STP excludes time spent waiting for upstream data."""
    clock = ManualClock()
    meter = StpMeter(clock)
    clock.advance(0.1)          # compute
    meter.block_started()
    clock.advance(0.4)          # blocked on get
    meter.block_ended()
    clock.advance(0.05)         # more compute
    assert meter.sync() == pytest.approx(0.15)
    assert meter.total_blocked == pytest.approx(0.4)


def test_throttle_sleep_excluded():
    clock = ManualClock()
    meter = StpMeter(clock)
    clock.advance(0.2)
    meter.sleep_started()
    clock.advance(1.0)
    meter.sleep_ended()
    assert meter.sync() == pytest.approx(0.2)
    assert meter.total_slept == pytest.approx(1.0)


def test_multiple_exclusions_in_one_iteration():
    clock = ManualClock()
    meter = StpMeter(clock)
    clock.advance(0.1)
    meter.block_started(); clock.advance(0.3); meter.block_ended()
    clock.advance(0.1)
    meter.block_started(); clock.advance(0.2); meter.block_ended()
    clock.advance(0.1)
    assert meter.sync() == pytest.approx(0.3)


def test_successive_iterations_independent():
    clock = ManualClock()
    meter = StpMeter(clock)
    clock.advance(0.5)
    assert meter.sync() == pytest.approx(0.5)
    clock.advance(0.2)
    assert meter.sync() == pytest.approx(0.2)
    assert meter.iterations == 2


def test_exclusion_does_not_leak_across_iterations():
    clock = ManualClock()
    meter = StpMeter(clock)
    meter.block_started(); clock.advance(1.0); meter.block_ended()
    meter.sync()
    clock.advance(0.3)
    assert meter.sync() == pytest.approx(0.3)


def test_raw_vs_filtered():
    clock = ManualClock()
    meter = StpMeter(clock, stp_filter=EwmaFilter(alpha=0.5))
    clock.advance(1.0)
    meter.sync()
    clock.advance(2.0)
    filtered = meter.sync()
    assert meter.raw_stp == pytest.approx(2.0)
    assert filtered == pytest.approx(1.5)  # EWMA of 1.0 then 2.0
    assert meter.current_stp == filtered


def test_nested_exclusion_rejected():
    meter = StpMeter(ManualClock())
    meter.block_started()
    with pytest.raises(SimulationError):
        meter.block_started()
    with pytest.raises(SimulationError):
        meter.sleep_started()


def test_unmatched_end_rejected():
    meter = StpMeter(ManualClock())
    with pytest.raises(SimulationError):
        meter.block_ended()
    meter.sleep_started()
    with pytest.raises(SimulationError):
        meter.block_ended()  # wrong kind


def test_sync_during_open_window_rejected():
    meter = StpMeter(ManualClock())
    meter.block_started()
    with pytest.raises(SimulationError):
        meter.sync()


def test_iteration_elapsed_includes_blocking():
    clock = ManualClock()
    meter = StpMeter(clock)
    clock.advance(0.1)
    meter.block_started(); clock.advance(0.4); meter.block_ended()
    assert meter.iteration_elapsed == pytest.approx(0.5)


def test_zero_length_iteration():
    meter = StpMeter(ManualClock())
    assert meter.sync() == 0.0
