"""Tests for ARU policy configuration."""

import pytest

from repro.aru import AruConfig, aru_disabled, aru_max, aru_min
from repro.errors import ConfigError


def test_presets():
    assert aru_disabled().enabled is False
    assert aru_min().enabled and aru_min().default_channel_op == "min"
    assert aru_max().default_channel_op == "max"
    assert aru_max().thread_op == "max"


def test_preset_names():
    assert aru_disabled().name == "no-aru"
    assert aru_min().name == "aru-min"
    assert aru_max().name == "aru-max"


def test_with_override():
    cfg = aru_min().with_(headroom=1.2)
    assert cfg.headroom == 1.2
    assert cfg.default_channel_op == "min"


def test_preset_kwargs():
    cfg = aru_max(stp_filter="ewma:0.2")
    assert cfg.stp_filter == "ewma:0.2"


def test_invalid_headroom():
    with pytest.raises(ConfigError):
        AruConfig(headroom=0.0)


def test_invalid_operator_rejected_eagerly():
    with pytest.raises(ConfigError):
        AruConfig(default_channel_op="bogus")


def test_invalid_filter_rejected_eagerly():
    with pytest.raises(ConfigError):
        AruConfig(stp_filter="kalman")


def test_frozen():
    cfg = aru_min()
    with pytest.raises(Exception):
        cfg.headroom = 2.0
