"""Tests for STP noise filters (the paper's future-work extension)."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.aru import EwmaFilter, MedianFilter, NoFilter, SlewRateFilter, resolve_factory
from repro.errors import ConfigError


class TestNoFilter:
    def test_identity(self):
        f = NoFilter()
        assert [f(x) for x in (1.0, 5.0, 2.0)] == [1.0, 5.0, 2.0]


class TestEwma:
    def test_first_sample_initializes(self):
        f = EwmaFilter(alpha=0.5)
        assert f(10.0) == 10.0

    def test_converges_to_constant(self):
        f = EwmaFilter(alpha=0.5)
        out = 0.0
        for _ in range(40):
            out = f(3.0)
        assert out == pytest.approx(3.0)

    def test_smooths_step(self):
        f = EwmaFilter(alpha=0.25)
        f(0.0)
        assert f(1.0) == pytest.approx(0.25)
        assert f(1.0) == pytest.approx(0.4375)

    def test_alpha_one_is_identity(self):
        f = EwmaFilter(alpha=1.0)
        f(5.0)
        assert f(9.0) == 9.0

    @pytest.mark.parametrize("alpha", [0.0, -0.1, 1.5])
    def test_bad_alpha(self, alpha):
        with pytest.raises(ConfigError):
            EwmaFilter(alpha=alpha)

    def test_reduces_noise_variance(self):
        rng = np.random.default_rng(0)
        raw = 1.0 + 0.3 * rng.standard_normal(2000)
        f = EwmaFilter(alpha=0.2)
        filtered = np.array([f(x) for x in raw])
        assert filtered[200:].std() < raw[200:].std() * 0.6


class TestMedianFilter:
    def test_window_one_is_identity(self):
        f = MedianFilter(window=1)
        assert [f(x) for x in (3.0, 9.0)] == [3.0, 9.0]

    def test_rejects_spike(self):
        f = MedianFilter(window=3)
        f(1.0), f(1.0)
        assert f(100.0) == 1.0  # spike suppressed

    def test_partial_window(self):
        f = MedianFilter(window=5)
        assert f(4.0) == 4.0
        assert f(8.0) == pytest.approx(6.0)

    def test_bad_window(self):
        with pytest.raises(ConfigError):
            MedianFilter(window=0)


class TestSlewRate:
    def test_first_sample_passes(self):
        f = SlewRateFilter(max_step=0.1)
        assert f(4.0) == 4.0

    def test_limits_upward_step(self):
        f = SlewRateFilter(max_step=0.1)
        f(1.0)
        assert f(10.0) == pytest.approx(1.1)

    def test_limits_downward_step(self):
        f = SlewRateFilter(max_step=0.1)
        f(1.0)
        assert f(0.01) == pytest.approx(0.9)

    def test_within_band_tracks_exactly(self):
        f = SlewRateFilter(max_step=0.5)
        f(1.0)
        assert f(1.2) == pytest.approx(1.2)

    def test_bad_step(self):
        with pytest.raises(ConfigError):
            SlewRateFilter(max_step=0.0)

    @given(st.lists(st.floats(0.01, 100.0), min_size=2, max_size=30))
    def test_output_changes_bounded(self, samples):
        f = SlewRateFilter(max_step=0.2)
        prev = f(samples[0])
        for x in samples[1:]:
            out = f(x)
            if prev > 0:
                assert 0.79 <= out / prev <= 1.21
            prev = out


class TestResolveFactory:
    def test_none(self):
        assert isinstance(resolve_factory(None)(), NoFilter)
        assert isinstance(resolve_factory("none")(), NoFilter)

    def test_named(self):
        assert isinstance(resolve_factory("ewma")(), EwmaFilter)
        assert isinstance(resolve_factory("median")(), MedianFilter)
        assert isinstance(resolve_factory("slew")(), SlewRateFilter)

    def test_parameterized(self):
        f = resolve_factory("ewma:0.1")()
        assert f.alpha == 0.1
        m = resolve_factory("median:7")()
        assert m.window == 7

    def test_factories_produce_fresh_state(self):
        factory = resolve_factory("ewma:0.5")
        a, b = factory(), factory()
        a(100.0)
        assert b(1.0) == 1.0  # b unaffected by a's history

    def test_callable_passthrough(self):
        factory = lambda: NoFilter()
        assert resolve_factory(factory) is factory

    def test_unknown_raises(self):
        with pytest.raises(ConfigError):
            resolve_factory("kalman")

    def test_bad_type_raises(self):
        with pytest.raises(ConfigError):
            resolve_factory(3.14)
