"""Property-based invariants of the DES kernel (hypothesis).

The example-based tests in ``test_engine.py`` pin specific scenarios;
these generate random event interleavings and assert the kernel's
determinism contract holds for *all* of them:

* calendar ordering — events fire in (time, schedule-sequence) order,
  so same-instant events fire in schedule order and time never goes
  backwards;
* kill-cancellation — a killed process stops exactly at its current
  yield point, never observes another event, and leaves the rest of
  the calendar unperturbed;
* AnyOf/AllOf composition — the winner/completion-set is a pure
  function of child (delay, index) order under any interleaving,
  including already-fired children;
* mid-run process add/remove — spawning and killing processes from
  inside running processes (what elastic scale-out/in does) keeps the
  trace deterministic: the same plan replayed gives a bit-identical
  event log.

Integer delays are used throughout so simultaneity is exact, which is
precisely the regime where ordering bugs hide.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ProcessKilled
from repro.sim.engine import Engine

# Delays as small ints: exact float representation, lots of ties.
delays = st.lists(st.integers(min_value=0, max_value=8),
                  min_size=1, max_size=24)


@settings(max_examples=60, deadline=None)
@given(delays)
def test_calendar_fires_in_time_then_schedule_order(ds):
    """Fire order == stable sort of creation order by delay."""
    eng = Engine()
    log = []
    for i, d in enumerate(ds):
        ev = eng.timeout(float(d), value=i)
        ev.callbacks.append(lambda e, i=i: log.append((eng.now, i)))
    eng.run()
    expected = sorted(range(len(ds)), key=lambda i: ds[i])  # stable
    assert [i for (_, i) in log] == expected
    times = [t for (t, _) in log]
    assert times == sorted(times)
    assert [t for (t, i) in log] == [float(ds[i]) for (_, i) in log]


@settings(max_examples=60, deadline=None)
@given(delays, delays)
def test_same_instant_events_fire_in_schedule_order(a, b):
    """Interleaving two schedule batches preserves per-instant FIFO."""
    eng = Engine()
    log = []
    tags = []
    for batch, ds in (("a", a), ("b", b)):
        for j, d in enumerate(ds):
            tag = (batch, j)
            tags.append((d, tag))
            ev = eng.timeout(float(d), value=tag)
            ev.callbacks.append(lambda e, tag=tag: log.append(tag))
    eng.run()
    # Stable sort over the global schedule order is the contract.
    assert log == [tag for (_, tag) in
                   sorted(tags, key=lambda pair: pair[0])]


@settings(max_examples=60, deadline=None)
@given(
    st.lists(st.integers(min_value=1, max_value=6),
             min_size=1, max_size=8),
    st.integers(min_value=0, max_value=12),
)
def test_killed_process_observes_nothing_past_the_kill(steps, kill_at):
    """A process killed at t observes no ticks scheduled after t."""
    eng = Engine()
    seen = []

    def body():
        try:
            for s in steps:
                yield eng.timeout(float(s))
                seen.append(eng.now)
        except ProcessKilled:
            seen.append(("killed", eng.now))
            raise

    proc = eng.process(body())

    def killer():
        yield eng.timeout(float(kill_at))
        proc.kill("test")

    eng.process(killer())
    eng.run()
    assert not proc.is_alive
    observed = [t for t in seen if not isinstance(t, tuple)]
    # Every observed tick happened at or before the kill instant...
    assert all(t <= kill_at for t in observed) or proc.ok
    if not proc.ok:
        # ...and the termination marker exists exactly once.
        markers = [t for t in seen if isinstance(t, tuple)]
        assert len(markers) == 1
        assert markers[0][1] >= float(kill_at)
        assert isinstance(proc.value, ProcessKilled)
    # Killing a finished process stays a no-op.
    proc.kill("again")
    eng.run()


@settings(max_examples=60, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=9),
                min_size=1, max_size=8),
       st.booleans())
def test_anyof_picks_earliest_then_lowest_index(ds, prefire):
    """AnyOf's winner is min by (delay, index); prefired children win."""
    eng = Engine()
    events = [eng.timeout(float(d), value=f"v{i}")
              for i, d in enumerate(ds)]
    if prefire:
        # An extra already-triggered child must win immediately.
        pre = eng.event()
        pre.succeed("pre")
        events.append(pre)
    got = []

    def waiter():
        result = yield eng.any_of(events)
        got.append(result)

    eng.process(waiter())
    eng.run()
    assert len(got) == 1
    idx, value = got[0]
    if prefire:
        # The pre-fired event was scheduled before every timeout fires
        # at t=0... unless a timeout with delay 0 was scheduled first.
        zero_first = 0 in ds
        if zero_first:
            expected_idx = ds.index(0)
        else:
            expected_idx = len(ds)
        assert idx == expected_idx
    else:
        winner = min(range(len(ds)), key=lambda i: (ds[i], i))
        assert idx == winner
        assert value == f"v{winner}"


@settings(max_examples=60, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=9),
                min_size=0, max_size=8))
def test_allof_completes_at_max_delay_with_ordered_values(ds):
    """AllOf fires at max(delay) and preserves child value order."""
    eng = Engine()
    events = [eng.timeout(float(d), value=i) for i, d in enumerate(ds)]
    got = []

    def waiter():
        values = yield eng.all_of(events)
        got.append((eng.now, values))

    eng.process(waiter())
    eng.run()
    assert len(got) == 1
    t, values = got[0]
    assert values == list(range(len(ds)))
    assert t == (float(max(ds)) if ds else 0.0)


@settings(max_examples=60, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=9),
                min_size=2, max_size=8),
       st.integers(min_value=0, max_value=7))
def test_anyof_composes_with_allof(ds, split):
    """AnyOf over (AllOf(left), AllOf(right)) == earlier max-side."""
    split = min(split, len(ds) - 1)
    left, right = ds[: split + 1], ds[split + 1:]
    eng = Engine()
    sides = [eng.all_of([eng.timeout(float(d)) for d in left])]
    if right:
        sides.append(eng.all_of([eng.timeout(float(d)) for d in right]))
    got = []

    def waiter():
        result = yield eng.any_of(sides)
        got.append((eng.now, result[0]))

    eng.process(waiter())
    eng.run()
    (t, idx), = got
    maxes = [max(left) if left else 0, max(right) if right else 0][: len(sides)]
    winner = min(range(len(sides)), key=lambda i: (maxes[i], i))
    assert idx == winner
    assert t == float(maxes[winner])


# -- mid-run add/remove ------------------------------------------------------
spawn_plan = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=10),   # spawn time
        st.integers(min_value=1, max_value=5),    # tick period
        st.one_of(st.none(),                      # kill time (None = never)
                  st.integers(min_value=0, max_value=12)),
    ),
    min_size=1, max_size=6,
)


def _run_plan(plan, horizon=16.0):
    """Execute a spawn/kill plan; returns the (ordered) event log."""
    eng = Engine()
    log = []

    def ticker(tag, period):
        while True:
            yield eng.timeout(float(period))
            log.append((eng.now, tag, "tick"))

    def supervisor():
        procs = []
        for tag, (spawn_at, period, kill_at) in enumerate(plan):
            p = {"tag": tag}
            procs.append(p)

            def spawner(tag=tag, spawn_at=spawn_at, period=period,
                        kill_at=kill_at, slot=p):
                yield eng.timeout(float(spawn_at))
                proc = eng.process(ticker(tag, period),
                                   name=f"ticker{tag}")
                slot["proc"] = proc
                log.append((eng.now, tag, "spawn"))
                if kill_at is not None:
                    yield eng.timeout(float(max(0, kill_at - spawn_at)))
                    proc.kill("planned")
                    log.append((eng.now, tag, "kill"))

            eng.process(spawner(), name=f"spawner{tag}")
        yield eng.timeout(0.0)

    eng.process(supervisor())
    eng.run(until=horizon)
    return log, eng.events_processed


@settings(max_examples=40, deadline=None)
@given(spawn_plan)
def test_mid_run_add_remove_is_deterministic(plan):
    """The same spawn/kill plan replays to a bit-identical log."""
    log1, n1 = _run_plan(plan)
    log2, n2 = _run_plan(plan)
    assert log1 == log2
    assert n1 == n2


@settings(max_examples=40, deadline=None)
@given(spawn_plan)
def test_killed_tickers_stop_and_survivors_continue(plan):
    """No ticks from a process after its kill; survivors tick on."""
    log, _ = _run_plan(plan)
    kill_time = {}
    for t, tag, kind in log:
        if kind == "kill":
            kill_time[tag] = t
    for t, tag, kind in log:
        if kind == "tick" and tag in kill_time:
            assert t <= kill_time[tag]
    for tag, (spawn_at, period, kill_at) in enumerate(plan):
        if kill_at is None and spawn_at + period <= 16.0:
            assert any(k == "tick" and g == tag for (_, g, k) in log)
