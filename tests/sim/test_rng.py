"""Tests for named seeded RNG streams and distribution helpers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import RngRegistry, lognormal_with_mean


def test_same_name_same_stream_object():
    rngs = RngRegistry(seed=1)
    assert rngs.stream("x") is rngs.stream("x")


def test_streams_reproducible_across_registries():
    a = RngRegistry(seed=42).stream("svc").random(5)
    b = RngRegistry(seed=42).stream("svc").random(5)
    assert np.array_equal(a, b)


def test_different_names_are_independent():
    rngs = RngRegistry(seed=42)
    a = rngs.stream("a").random(5)
    b = rngs.stream("b").random(5)
    assert not np.array_equal(a, b)


def test_different_seeds_differ():
    a = RngRegistry(seed=1).stream("x").random(5)
    b = RngRegistry(seed=2).stream("x").random(5)
    assert not np.array_equal(a, b)


def test_new_stream_does_not_perturb_existing():
    """Adding a consumer of randomness must not change other streams."""
    r1 = RngRegistry(seed=9)
    seq_before = r1.stream("stable").random(3)

    r2 = RngRegistry(seed=9)
    r2.stream("newcomer").random(100)  # interleaved draws on another stream
    seq_after = r2.stream("stable").random(3)
    assert np.array_equal(seq_before, seq_after)


def test_spawn_produces_independent_registry():
    parent = RngRegistry(seed=3)
    child = parent.spawn("worker")
    a = parent.stream("x").random(4)
    b = child.stream("x").random(4)
    assert not np.array_equal(a, b)
    # but the spawn itself is deterministic
    child2 = RngRegistry(seed=3).spawn("worker")
    assert np.array_equal(b, child2.stream("x").random(4))


def test_contains_and_len():
    rngs = RngRegistry(seed=0)
    assert "a" not in rngs
    rngs.stream("a")
    assert "a" in rngs
    assert len(rngs) == 1


def test_lognormal_zero_cv_is_exact():
    rng = np.random.default_rng(0)
    assert lognormal_with_mean(rng, 0.25, 0.0) == 0.25


def test_lognormal_mean_matches_target():
    rng = np.random.default_rng(0)
    samples = [lognormal_with_mean(rng, 2.0, 0.3) for _ in range(20000)]
    assert np.mean(samples) == pytest.approx(2.0, rel=0.02)


def test_lognormal_cv_matches_target():
    rng = np.random.default_rng(0)
    samples = np.array([lognormal_with_mean(rng, 1.0, 0.5) for _ in range(40000)])
    assert np.std(samples) / np.mean(samples) == pytest.approx(0.5, rel=0.05)


def test_lognormal_rejects_bad_args():
    rng = np.random.default_rng(0)
    with pytest.raises(ValueError):
        lognormal_with_mean(rng, -1.0, 0.1)
    with pytest.raises(ValueError):
        lognormal_with_mean(rng, 1.0, -0.1)


@given(mean=st.floats(0.001, 1e3), cv=st.floats(0.0, 2.0))
@settings(max_examples=60, deadline=None)
def test_lognormal_always_positive(mean, cv):
    rng = np.random.default_rng(1234)
    for _ in range(5):
        assert lognormal_with_mean(rng, mean, cv) > 0.0
