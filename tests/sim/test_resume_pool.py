"""The ``_Resume`` free-list: recycling, the kill path, and the bound.

ISSUE 7 satellite: the pool must also recycle entries cancelled by a
kill — a killed waiter's in-flight resume entry pops as a counted no-op
and goes back on the free list exactly like a delivered one, so kill
storms cannot leak pool slots. These tests pin that, plus the hazard
the cancelled path guards against: a recycled entry must never carry a
stale ``cancelled`` flag (or a stale ``_waiting_on`` backref) into its
next life.
"""

from repro.errors import ProcessKilled
from repro.sim.engine import _RESUME_POOL_MAX, Engine
from repro.sim.events import _Resume


def _fired(eng, value="v"):
    ev = eng.event()
    ev.succeed(value)
    return ev


class TestDeliveredEntriesRecycle:
    def test_start_resume_returns_to_pool(self):
        eng = Engine()

        def body(eng):
            yield eng.timeout(1.0)

        eng.process(body(eng))
        assert len(eng._resume_pool) == 0  # entry is on the calendar
        eng.run()
        assert len(eng._resume_pool) == 1
        entry = eng._resume_pool[0]
        assert entry.process is None and entry.value is None

    def test_already_fired_yield_reuses_pooled_entry(self):
        eng = Engine()
        fired = _fired(eng)

        def body(eng):
            for _ in range(50):
                yield fired

        eng.process(body(eng))
        eng.run()
        # One start entry + one already-fired-yield entry alive at a
        # time, recycled turn by turn: the pool stays tiny.
        assert 1 <= len(eng._resume_pool) <= 2

    def test_pool_object_identity_is_reused(self):
        eng = Engine()

        def body(eng):
            return
            yield

        eng.process(body(eng))
        eng.run()
        recycled = eng._resume_pool[-1]
        # Starting another process must pop the recycled object off the
        # free list, and finishing must return it.
        eng.process(body(eng))
        assert recycled not in eng._resume_pool
        eng.run()
        assert recycled in eng._resume_pool


class TestKillCancellationRecycles:
    def _run_kill_race(self):
        """Drive the in-flight cancellation window.

        At t=1 the cohort is [killer-timeout, victim-timeout]; the kill
        tick lands on the current-tick FIFO *before* the victim's
        already-fired yield entry does, so the kill delivery marks that
        entry cancelled while it is still queued.
        """
        eng = Engine()
        log = []
        fired = _fired(eng)
        seen = []

        def victim(eng):
            try:
                yield eng.timeout(1.0)
                yield fired
                log.append("resumed")
            except ProcessKilled:
                log.append("killed")

        ref = {}

        def killer(eng):
            yield eng.timeout(1.0)
            ref["victim"].kill()

        # Killer first: its t=1 timeout precedes the victim's in the
        # cohort, so the kill tick reaches the current-tick FIFO before
        # the victim's already-fired yield entry does.
        eng.process(killer(eng), name="killer")
        victim_proc = ref["victim"] = eng.process(victim(eng), name="victim")

        while eng.peek() != float("inf"):
            eng.step()
            waiting = victim_proc._waiting_on
            if type(waiting) is _Resume:
                seen.append(waiting)
        return eng, log, seen, victim_proc

    def test_kill_marks_inflight_entry_cancelled_and_recycles_it(self):
        eng, log, seen, _victim = self._run_kill_race()
        assert log == ["killed"]
        assert seen, "race did not produce an in-flight resume entry"
        entry = seen[-1]
        # The cancelled entry went back on the free list — kills do not
        # leak pool slots.
        assert entry in eng._resume_pool
        assert entry.process is None and entry.value is None

    def test_cancelled_entry_does_not_resume_the_victim(self):
        _eng, log, _seen, _victim = self._run_kill_race()
        assert "resumed" not in log

    def test_victim_backref_cleared_before_recycling(self):
        # The hazard: if the cancelled dispatch left ``_waiting_on``
        # pointing at the recycled entry, a later kill of the same
        # (dead) process could flag ``cancelled`` on a pool object now
        # owned by someone else.
        eng, _log, seen, victim = self._run_kill_race()
        entry = seen[-1]
        assert victim._waiting_on is not entry
        assert victim._waiting_on is None
        assert entry.process is None

    def test_reused_entry_cancelled_flag_is_reset(self):
        eng, _log, seen, _victim = self._run_kill_race()
        entry = seen[-1]
        assert entry.cancelled is True  # stays set while pooled...

        def body(eng):
            return
            yield

        fresh = eng._schedule_resume(eng.process(body(eng)), True, None)
        if fresh is entry:  # pool is LIFO; the entry comes back first
            assert fresh.cancelled is False
        eng.run()


class TestPoolBound:
    def test_pool_never_exceeds_max(self):
        eng = Engine()

        def body(eng):
            yield eng.timeout(1.0)

        for _ in range(_RESUME_POOL_MAX + 72):
            eng.process(body(eng))
        eng.run()
        assert len(eng._resume_pool) == _RESUME_POOL_MAX

    def test_overflow_entries_are_dropped_not_errored(self):
        eng = Engine()

        def body(eng):
            return
            yield

        for _ in range(_RESUME_POOL_MAX * 2):
            eng.process(body(eng))
        eng.run()
        assert len(eng._resume_pool) == _RESUME_POOL_MAX
        # And the pool keeps working afterwards.
        done = []

        def tail(eng):
            yield eng.timeout(0.5)
            done.append(True)

        eng.process(tail(eng))
        eng.run()
        assert done == [True]
