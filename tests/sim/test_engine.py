"""Unit tests for the discrete-event engine core."""

import pytest

from repro.errors import SimulationError
from repro.sim import Engine


def test_time_starts_at_zero():
    assert Engine().now == 0.0


def test_time_starts_at_custom_origin():
    assert Engine(start=5.5).now == 5.5


def test_timeout_advances_clock():
    eng = Engine()
    fired = []

    def proc(eng):
        yield eng.timeout(2.5)
        fired.append(eng.now)

    eng.process(proc(eng))
    eng.run()
    assert fired == [2.5]


def test_zero_delay_timeout_fires_without_advancing():
    eng = Engine()
    fired = []

    def proc(eng):
        yield eng.timeout(0.0)
        fired.append(eng.now)

    eng.process(proc(eng))
    eng.run()
    assert fired == [0.0]


def test_negative_timeout_rejected():
    eng = Engine()
    with pytest.raises(ValueError):
        eng.timeout(-1.0)


def test_events_fire_in_time_order():
    eng = Engine()
    order = []

    def proc(eng, delay, label):
        yield eng.timeout(delay)
        order.append(label)

    eng.process(proc(eng, 3.0, "c"))
    eng.process(proc(eng, 1.0, "a"))
    eng.process(proc(eng, 2.0, "b"))
    eng.run()
    assert order == ["a", "b", "c"]


def test_simultaneous_events_fire_in_schedule_order():
    eng = Engine()
    order = []

    def proc(eng, label):
        yield eng.timeout(1.0)
        order.append(label)

    for label in "abcde":
        eng.process(proc(eng, label))
    eng.run()
    assert order == list("abcde")


def test_run_until_stops_at_horizon():
    eng = Engine()
    fired = []

    def proc(eng):
        for _ in range(10):
            yield eng.timeout(1.0)
            fired.append(eng.now)

    eng.process(proc(eng))
    eng.run(until=4.5)
    assert fired == [1.0, 2.0, 3.0, 4.0]
    assert eng.now == 4.5


def test_run_until_exact_boundary_inclusive():
    eng = Engine()
    fired = []

    def proc(eng):
        yield eng.timeout(5.0)
        fired.append(eng.now)

    eng.process(proc(eng))
    eng.run(until=5.0)
    assert fired == [5.0]


def test_run_until_past_raises():
    eng = Engine(start=10.0)
    with pytest.raises(SimulationError):
        eng.run(until=5.0)


def test_run_after_run_continues_time():
    eng = Engine()

    def proc(eng):
        while True:
            yield eng.timeout(1.0)

    eng.process(proc(eng))
    eng.run(until=3.0)
    assert eng.now == 3.0
    eng.run(until=7.0)
    assert eng.now == 7.0


def test_step_empty_calendar_raises():
    with pytest.raises(SimulationError):
        Engine().step()


def test_peek_reports_next_event_time():
    eng = Engine()
    eng.timeout(4.0)
    eng.timeout(2.0)
    assert eng.peek() == 2.0


def test_peek_empty_is_inf():
    assert Engine().peek() == float("inf")


def test_events_processed_counter():
    eng = Engine()

    def proc(eng):
        yield eng.timeout(1.0)
        yield eng.timeout(1.0)

    eng.process(proc(eng))
    eng.run()
    assert eng.events_processed >= 3  # init + 2 timeouts


def test_process_return_value_via_run_until_event():
    eng = Engine()

    def proc(eng):
        yield eng.timeout(1.0)
        return 42

    p = eng.process(proc(eng))
    assert eng.run_until_event(p) == 42


def test_run_until_event_drained_raises():
    eng = Engine()
    ev = eng.event()  # never triggered
    with pytest.raises(SimulationError):
        eng.run_until_event(ev)


def test_run_until_event_exactly_at_limit_is_processed():
    """The limit cut-off is exclusive: an event AT the limit still fires."""
    eng = Engine()
    ev = eng.timeout(5.0, "on-time")
    assert eng.run_until_event(ev, limit=5.0) == "on-time"
    assert eng.now == 5.0


def test_run_until_event_limit_before_event_raises():
    eng = Engine()
    ev = eng.timeout(5.0)
    with pytest.raises(SimulationError, match="limit"):
        eng.run_until_event(ev, limit=4.0)
    assert eng.now < 5.0


def test_run_until_event_drains_earlier_calendar_first():
    """Everything scheduled before the target fires on the way there."""
    eng = Engine()
    fired = []

    def early(eng):
        yield eng.timeout(1.0)
        fired.append(eng.now)
        yield eng.timeout(1.0)
        fired.append(eng.now)

    eng.process(early(eng))
    ev = eng.timeout(3.0, "target")
    assert eng.run_until_event(ev) == "target"
    assert fired == [1.0, 2.0]
    assert eng.now == 3.0


def test_run_until_empty_calendar_closes_clock_at_horizon():
    """run(until=) with nothing pending still advances `now` to the limit."""
    eng = Engine()
    eng.run(until=9.0)
    assert eng.now == 9.0


def test_run_until_after_last_event_closes_clock_at_horizon():
    eng = Engine()

    def proc(eng):
        yield eng.timeout(2.0)

    eng.process(proc(eng))
    eng.run(until=10.0)
    assert eng.now == 10.0


def test_run_bad_until_leaves_engine_usable():
    """A bad `until` must not leave the engine marked as running."""
    eng = Engine()
    with pytest.raises((TypeError, ValueError)):
        eng.run(until="not-a-time")
    eng.timeout(1.0)
    eng.run()  # must not raise "not reentrant"
    assert eng.now == 1.0


def test_process_waits_on_subprocess():
    eng = Engine()

    def child(eng):
        yield eng.timeout(2.0)
        return "child-result"

    def parent(eng, out):
        result = yield eng.process(child(eng))
        out.append((eng.now, result))

    out = []
    eng.process(parent(eng, out))
    eng.run()
    assert out == [(2.0, "child-result")]


def test_unhandled_process_exception_surfaces_in_run():
    eng = Engine()

    def proc(eng):
        yield eng.timeout(1.0)
        raise RuntimeError("boom")

    eng.process(proc(eng))
    with pytest.raises(RuntimeError, match="boom"):
        eng.run()


def test_parent_can_catch_child_failure():
    eng = Engine()

    def child(eng):
        yield eng.timeout(1.0)
        raise ValueError("child blew up")

    def parent(eng, out):
        try:
            yield eng.process(child(eng))
        except ValueError as exc:
            out.append(str(exc))

    out = []
    eng.process(parent(eng, out))
    eng.run()
    assert out == ["child blew up"]


def test_yielding_non_event_is_an_error():
    eng = Engine()

    def proc(eng):
        yield 42

    eng.process(proc(eng))
    with pytest.raises(SimulationError, match="must"):
        eng.run()


def test_event_succeed_twice_raises():
    eng = Engine()
    ev = eng.event()
    ev.succeed(1)
    with pytest.raises(SimulationError):
        ev.succeed(2)


def test_event_value_before_trigger_raises():
    eng = Engine()
    ev = eng.event()
    with pytest.raises(SimulationError):
        _ = ev.value


def test_waiting_on_already_processed_event():
    """A process yielding an event that already fired must still resume."""
    eng = Engine()
    ev = eng.event()
    ev.succeed("early")
    eng.run()  # process the event with no waiters
    assert ev.processed

    def proc(eng, out):
        value = yield ev
        out.append(value)

    out = []
    eng.process(proc(eng, out))
    eng.run()
    assert out == ["early"]


def test_all_of_collects_values_in_order():
    eng = Engine()

    def proc(eng, out):
        values = yield eng.all_of([eng.timeout(3.0, "c"), eng.timeout(1.0, "a")])
        out.append((eng.now, values))

    out = []
    eng.process(proc(eng, out))
    eng.run()
    assert out == [(3.0, ["c", "a"])]


def test_all_of_empty_fires_immediately():
    eng = Engine()

    def proc(eng, out):
        values = yield eng.all_of([])
        out.append(values)

    out = []
    eng.process(proc(eng, out))
    eng.run()
    assert out == [[]]


def test_any_of_returns_winner():
    eng = Engine()

    def proc(eng, out):
        idx, value = yield eng.any_of([eng.timeout(3.0, "slow"), eng.timeout(1.0, "fast")])
        out.append((eng.now, idx, value))

    out = []
    eng.process(proc(eng, out))
    eng.run()
    assert out == [(1.0, 1, "fast")]


def test_any_of_empty_raises():
    eng = Engine()
    with pytest.raises(ValueError):
        eng.any_of([])


def test_kill_terminates_process():
    eng = Engine()
    reached = []

    def proc(eng):
        yield eng.timeout(10.0)
        reached.append(True)

    p = eng.process(proc(eng))

    def killer(eng):
        yield eng.timeout(1.0)
        p.kill()

    eng.process(killer(eng))
    eng.run()
    assert reached == []
    assert not p.is_alive


def test_kill_lets_process_clean_up():
    eng = Engine()
    cleaned = []

    def proc(eng):
        try:
            yield eng.timeout(10.0)
        finally:
            cleaned.append(eng.now)

    p = eng.process(proc(eng))

    def killer(eng):
        yield eng.timeout(2.0)
        p.kill()

    eng.process(killer(eng))
    eng.run()
    assert cleaned == [2.0]


def test_kill_finished_process_is_noop():
    eng = Engine()

    def proc(eng):
        yield eng.timeout(1.0)

    p = eng.process(proc(eng))
    eng.run()
    p.kill()  # must not raise
    eng.run()


def test_determinism_two_identical_runs():
    def build():
        eng = Engine()
        log = []

        def proc(eng, i):
            for k in range(5):
                yield eng.timeout(0.5 * ((i + k) % 3) + 0.1)
                log.append((round(eng.now, 6), i, k))

        for i in range(7):
            eng.process(proc(eng, i))
        eng.run()
        return log

    assert build() == build()


def test_run_is_not_reentrant():
    eng = Engine()
    errors = []

    def proc(eng):
        yield eng.timeout(1.0)
        try:
            eng.run()
        except SimulationError as exc:
            errors.append(str(exc))

    eng.process(proc(eng))
    eng.run()
    assert errors and "reentrant" in errors[0]
