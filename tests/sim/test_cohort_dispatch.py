"""Batched cohort dispatch vs the scalar path (hypothesis).

ISSUE 7 rewrote ``Engine.run()`` to drain same-timestamp cohorts as a
batch with an inline dispatch loop and a staged-timeout chain fast
path. ``Engine.step()`` remains the scalar reference implementation:
one selection, one dispatch, no batching. The determinism contract
says the two are *behaviourally identical* — same dispatch order,
entry for entry, across every schedule shape the kernel supports:
same-instant collisions, kills delivered into the current tick,
already-fired yields, and AnyOf/AllOf composites whose losers fire
after the winner.

These properties execute a random plan through both paths and demand
bit-identical logs, so any divergence between the batched loop and the
scalar semantics is a test failure, not a heisenbug in a long run.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ProcessKilled
from repro.sim.engine import Engine

_INF = float("inf")

# Small integer delays: exact float representation and lots of ties,
# which is exactly the regime where cohort batching could diverge.
_delay = st.integers(min_value=0, max_value=4)
_action = st.one_of(
    st.tuples(st.just("timeout"), _delay),
    st.tuples(st.just("fired")),
    st.tuples(st.just("anyof"),
              st.lists(_delay, min_size=1, max_size=3)),
    st.tuples(st.just("allof"),
              st.lists(_delay, min_size=1, max_size=3)),
)
_script = st.lists(_action, min_size=1, max_size=6)
_plan = st.tuples(
    st.lists(_script, min_size=1, max_size=5),            # process scripts
    st.lists(st.tuples(st.integers(min_value=0, max_value=6),
                       st.integers(min_value=0, max_value=4)),
             max_size=3),                                 # (kill time, victim)
)


def _execute(plan, mode, until=None):
    """Run ``plan`` through the batched or scalar path; return the log."""
    scripts, kills = plan
    eng = Engine()
    log = []
    fired = eng.event()
    fired.succeed("f")

    def body(pid, script):
        try:
            for si, op in enumerate(script):
                kind = op[0]
                if kind == "timeout":
                    yield eng.timeout(float(op[1]))
                elif kind == "fired":
                    yield fired
                elif kind == "anyof":
                    yield eng.any_of(
                        [eng.timeout(float(d)) for d in op[1]])
                else:  # allof
                    yield eng.all_of(
                        [eng.timeout(float(d)) for d in op[1]])
                log.append((eng.now, pid, si))
            log.append((eng.now, pid, "done"))
        except ProcessKilled:
            log.append((eng.now, pid, "killed"))
            raise

    procs = [eng.process(body(pid, script))
             for pid, script in enumerate(scripts)]

    def killer(delay, victim):
        yield eng.timeout(float(delay))
        procs[victim].kill("plan")

    for delay, victim in kills:
        eng.process(killer(delay, victim % len(procs)))

    if mode == "run":
        eng.run(until=until)
    else:
        # Scalar reference loop. run(until=h) processes events scheduled
        # exactly at h (exclusive cut-off on peek), so mirror that here.
        while True:
            nxt = eng.peek()
            if nxt == _INF or (until is not None and nxt > until):
                break
            eng.step()
    return log, eng.events_processed


@settings(max_examples=80, deadline=None)
@given(_plan)
def test_batched_run_matches_scalar_step_loop(plan):
    """run() and a step() loop dispatch the same entries in the same order."""
    batched, n_batched = _execute(plan, "run")
    scalar, n_scalar = _execute(plan, "step")
    assert batched == scalar
    assert n_batched == n_scalar


@settings(max_examples=40, deadline=None)
@given(_plan, st.integers(min_value=0, max_value=8))
def test_bounded_run_matches_bounded_scalar_loop(plan, horizon):
    """The until= cut-off truncates both paths at the same entry."""
    batched, _ = _execute(plan, "run", until=float(horizon))
    scalar, _ = _execute(plan, "step", until=float(horizon))
    assert batched == scalar


@settings(max_examples=40, deadline=None)
@given(st.lists(st.integers(min_value=1, max_value=3),
                min_size=1, max_size=30))
def test_chain_fast_path_matches_scalar(periods):
    """A pure timeout chain (the chained fast path) is scalar-identical.

    A single ticker process hits run()'s staged-timeout chain: each
    yielded timeout fires without touching the calendar. The scalar
    loop always goes through the calendar; the logs must still match.
    """
    plan = ([[("timeout", p) for p in periods]], [])
    assert _execute(plan, "run") == _execute(plan, "step")


def test_cohort_drains_before_clock_advances():
    """All same-instant entries dispatch under one now, in FIFO order."""
    eng = Engine()
    log = []
    for i in range(10):
        ev = eng.timeout(1.0, value=i)
        ev.callbacks.append(lambda e, i=i: log.append((eng.now, i)))
    ev = eng.timeout(2.0, value="late")
    ev.callbacks.append(lambda e: log.append((eng.now, "late")))
    eng.run()
    assert log == [(1.0, i) for i in range(10)] + [(2.0, "late")]


def test_kill_inside_cohort_is_delivered_within_the_same_instant():
    """A kill scheduled in the same cohort cancels the later entry."""
    eng = Engine()
    log = []
    fired = eng.event()
    fired.succeed("v")
    ref = {}

    def killer():
        yield eng.timeout(1.0)
        ref["victim"].kill("now")

    def victim():
        try:
            yield eng.timeout(1.0)
            yield fired
            log.append("resumed")
        except ProcessKilled:
            log.append(("killed", eng.now))

    eng.process(killer())
    ref["victim"] = eng.process(victim())
    eng.run()
    assert log == [("killed", 1.0)]
