"""Unit tests for Resource and WaitQueue."""

import pytest

from repro.errors import SimulationError
from repro.sim import Engine, Resource, WaitQueue


def test_resource_grants_up_to_capacity_immediately():
    eng = Engine()
    res = Resource(eng, capacity=2)
    log = []

    def proc(eng, label):
        yield res.request()
        log.append((eng.now, "got", label))
        yield eng.timeout(5.0)
        res.release()

    for label in "abc":
        eng.process(proc(eng, label))
    eng.run()
    # a and b start at 0, c waits for a release at t=5
    assert log == [(0.0, "got", "a"), (0.0, "got", "b"), (5.0, "got", "c")]


def test_resource_fifo_order():
    eng = Engine()
    res = Resource(eng, capacity=1)
    order = []

    def proc(eng, label, start):
        yield eng.timeout(start)
        yield res.request()
        order.append(label)
        yield eng.timeout(1.0)
        res.release()

    eng.process(proc(eng, "first", 0.0))
    eng.process(proc(eng, "second", 0.1))
    eng.process(proc(eng, "third", 0.2))
    eng.run()
    assert order == ["first", "second", "third"]


def test_resource_invalid_capacity():
    with pytest.raises(ValueError):
        Resource(Engine(), capacity=0)


def test_release_idle_resource_raises():
    res = Resource(Engine(), capacity=1)
    with pytest.raises(SimulationError):
        res.release()


def test_resource_counters():
    eng = Engine()
    res = Resource(eng, capacity=1)

    def proc(eng):
        yield res.request()
        yield eng.timeout(2.0)
        res.release()

    eng.process(proc(eng))
    eng.process(proc(eng))
    eng.run()
    assert res.total_grants == 2
    assert res.total_wait_time == pytest.approx(2.0)  # second waited 2 s
    assert res.in_use == 0
    assert res.queue_length == 0


def test_resource_cancel_pending_request():
    eng = Engine()
    res = Resource(eng, capacity=1)
    granted = []

    def holder(eng):
        yield res.request()
        yield eng.timeout(10.0)
        res.release()

    eng.process(holder(eng))
    eng.run(until=0.0)

    req = res.request()  # queued behind the holder
    res.cancel(req)
    assert res.queue_length == 0

    def late(eng):
        yield res.request()
        granted.append(eng.now)
        res.release()

    eng.process(late(eng))
    eng.run()
    assert granted == [10.0]


def test_waitqueue_predicate_fires_on_notify():
    eng = Engine()
    wq = WaitQueue(eng)
    box = {"n": 0}
    got = []

    def waiter(eng):
        value = yield wq.wait(lambda: box["n"] if box["n"] >= 3 else None)
        got.append((eng.now, value))

    def producer(eng):
        for _ in range(5):
            yield eng.timeout(1.0)
            box["n"] += 1
            wq.notify_all()

    eng.process(waiter(eng))
    eng.process(producer(eng))
    eng.run()
    assert got == [(3.0, 3)]


def test_waitqueue_already_satisfied_predicate_fires_immediately():
    eng = Engine()
    wq = WaitQueue(eng)
    got = []

    def waiter(eng):
        value = yield wq.wait(lambda: "ready")
        got.append((eng.now, value))

    eng.process(waiter(eng))
    eng.run()
    assert got == [(0.0, "ready")]


def test_waitqueue_none_predicate_fires_on_any_notify():
    eng = Engine()
    wq = WaitQueue(eng)
    got = []

    def waiter(eng):
        value = yield wq.wait()
        got.append(value)

    def notifier(eng):
        yield eng.timeout(1.0)
        wq.notify_all("ping")

    eng.process(waiter(eng))
    eng.process(notifier(eng))
    eng.run()
    assert got == ["ping"]


def test_waitqueue_notify_returns_fired_count():
    eng = Engine()
    wq = WaitQueue(eng)

    def setup(eng):
        yield eng.timeout(0.0)

    w1 = wq.wait(lambda: True)
    # w1 fired immediately (predicate already satisfied), not queued
    assert len(wq) == 0
    flag = {"on": False}
    w2 = wq.wait(lambda: flag["on"])
    w3 = wq.wait(lambda: flag["on"])
    assert len(wq) == 2
    flag["on"] = True
    assert wq.notify_all() == 2
    assert len(wq) == 0
    eng.process(setup(eng))
    eng.run()
    assert w1.triggered and w2.triggered and w3.triggered


def test_waitqueue_cancel():
    eng = Engine()
    wq = WaitQueue(eng)
    ev = wq.wait(lambda: None)
    assert len(wq) == 1
    wq.cancel(ev)
    assert len(wq) == 0
    assert wq.notify_all() == 0


def test_waitqueue_multiple_waiters_fifo_wake():
    eng = Engine()
    wq = WaitQueue(eng)
    order = []

    def waiter(eng, label):
        yield wq.wait()
        order.append(label)

    for label in "abc":
        eng.process(waiter(eng, label))

    def notifier(eng):
        yield eng.timeout(1.0)
        wq.notify_all()

    eng.process(notifier(eng))
    eng.run()
    assert order == ["a", "b", "c"]
