"""Edge cases of composite events and process interruption."""

import pytest

from repro.errors import ProcessKilled
from repro.sim import Engine


class TestAllOfFailure:
    def test_allof_fails_fast_on_child_failure(self):
        eng = Engine()
        caught = []

        def failing(eng):
            yield eng.timeout(1.0)
            raise ValueError("child exploded")

        def waiter(eng):
            try:
                yield eng.all_of([
                    eng.timeout(5.0, "slow"),
                    eng.process(failing(eng)),
                ])
            except ValueError as exc:
                caught.append((eng.now, str(exc)))

        eng.process(waiter(eng))
        eng.run()
        assert caught == [(1.0, "child exploded")]

    def test_allof_with_preprocessed_children(self):
        eng = Engine()
        done = eng.timeout(0.5, "early")
        eng.run(until=1.0)  # `done` already processed
        out = []

        def waiter(eng):
            values = yield eng.all_of([done, eng.timeout(0.5, "late")])
            out.append(values)

        eng.process(waiter(eng))
        eng.run()
        assert out == [["early", "late"]]


class TestAnyOfFailure:
    def test_anyof_fails_if_first_completion_is_failure(self):
        eng = Engine()
        caught = []

        def failing(eng):
            yield eng.timeout(0.5)
            raise RuntimeError("first to finish, badly")

        def waiter(eng):
            try:
                yield eng.any_of([
                    eng.process(failing(eng)),
                    eng.timeout(5.0, "slow"),
                ])
            except RuntimeError as exc:
                caught.append(str(exc))

        eng.process(waiter(eng))
        eng.run()
        assert caught == ["first to finish, badly"]

    def test_anyof_ignores_later_children(self):
        eng = Engine()
        out = []

        def waiter(eng):
            idx, value = yield eng.any_of(
                [eng.timeout(1.0, "a"), eng.timeout(1.0, "b")]
            )
            out.append((idx, value))

        eng.process(waiter(eng))
        eng.run()
        # FIFO tie-break: the first-scheduled child wins
        assert out == [(0, "a")]


class TestKillScenarios:
    def test_kill_while_waiting_on_shared_event(self):
        """Killing one waiter must not disturb another on the same event."""
        eng = Engine()
        shared = eng.event()
        survived = []

        def waiter(eng, label):
            value = yield shared
            survived.append((label, value))

        victim = eng.process(waiter(eng, "victim"))
        eng.process(waiter(eng, "survivor"))

        def orchestrator(eng):
            yield eng.timeout(1.0)
            victim.kill()
            yield eng.timeout(1.0)
            shared.succeed("payload")

        eng.process(orchestrator(eng))
        eng.run()
        assert survived == [("survivor", "payload")]

    def test_killed_process_reason_in_exception(self):
        eng = Engine()
        reasons = []

        def victim(eng):
            try:
                yield eng.timeout(10.0)
            except ProcessKilled as exc:
                reasons.append(str(exc))
                raise

        p = eng.process(victim(eng))

        def killer(eng):
            yield eng.timeout(1.0)
            p.kill("maintenance window")

        eng.process(killer(eng))
        eng.run()
        assert reasons == ["maintenance window"]

    def test_kill_can_be_survived(self):
        """A process may catch ProcessKilled and continue."""
        eng = Engine()
        log = []

        def stubborn(eng):
            try:
                yield eng.timeout(10.0)
            except ProcessKilled:
                log.append("caught")
            yield eng.timeout(1.0)
            log.append(("done", eng.now))

        p = eng.process(stubborn(eng))

        def killer(eng):
            yield eng.timeout(2.0)
            p.kill()

        eng.process(killer(eng))
        eng.run()
        assert log == ["caught", ("done", 3.0)]

    def test_double_kill_is_noop(self):
        eng = Engine()

        def victim(eng):
            yield eng.timeout(10.0)

        p = eng.process(victim(eng))

        def killer(eng):
            yield eng.timeout(1.0)
            p.kill()
            p.kill()

        eng.process(killer(eng))
        eng.run()
        assert not p.is_alive
