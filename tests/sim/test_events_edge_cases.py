"""Edge cases of composite events and process interruption."""


from repro.errors import ProcessKilled
from repro.sim import Engine


class TestAllOfFailure:
    def test_allof_fails_fast_on_child_failure(self):
        eng = Engine()
        caught = []

        def failing(eng):
            yield eng.timeout(1.0)
            raise ValueError("child exploded")

        def waiter(eng):
            try:
                yield eng.all_of([
                    eng.timeout(5.0, "slow"),
                    eng.process(failing(eng)),
                ])
            except ValueError as exc:
                caught.append((eng.now, str(exc)))

        eng.process(waiter(eng))
        eng.run()
        assert caught == [(1.0, "child exploded")]

    def test_allof_with_preprocessed_children(self):
        eng = Engine()
        done = eng.timeout(0.5, "early")
        eng.run(until=1.0)  # `done` already processed
        out = []

        def waiter(eng):
            values = yield eng.all_of([done, eng.timeout(0.5, "late")])
            out.append(values)

        eng.process(waiter(eng))
        eng.run()
        assert out == [["early", "late"]]


class TestAnyOfFailure:
    def test_anyof_fails_if_first_completion_is_failure(self):
        eng = Engine()
        caught = []

        def failing(eng):
            yield eng.timeout(0.5)
            raise RuntimeError("first to finish, badly")

        def waiter(eng):
            try:
                yield eng.any_of([
                    eng.process(failing(eng)),
                    eng.timeout(5.0, "slow"),
                ])
            except RuntimeError as exc:
                caught.append(str(exc))

        eng.process(waiter(eng))
        eng.run()
        assert caught == ["first to finish, badly"]

    def test_anyof_ignores_later_children(self):
        eng = Engine()
        out = []

        def waiter(eng):
            idx, value = yield eng.any_of(
                [eng.timeout(1.0, "a"), eng.timeout(1.0, "b")]
            )
            out.append((idx, value))

        eng.process(waiter(eng))
        eng.run()
        # FIFO tie-break: the first-scheduled child wins
        assert out == [(0, "a")]


class TestCompositeLateFailures:
    """Children failing after the composite resolved must be absorbed.

    Regression: a loser failing after the race was decided used to keep
    its failure un-defused; with no waiter left, the engine surfaced the
    exception at top level and crashed the whole run.
    """

    def test_anyof_loser_failure_after_winner_is_defused(self):
        eng = Engine()
        out = []

        def late_failure(eng):
            yield eng.timeout(2.0)
            raise RuntimeError("loser blew up after the race")

        def waiter(eng):
            idx, value = yield eng.any_of([
                eng.timeout(1.0, "fast"),
                eng.process(late_failure(eng)),
            ])
            out.append((idx, value))

        eng.process(waiter(eng))
        eng.run()  # must not surface the loser's RuntimeError
        assert out == [(0, "fast")]
        assert eng.now == 2.0  # the loser still ran to its failure

    def test_allof_second_failure_after_composite_failed_is_defused(self):
        eng = Engine()
        caught = []

        def failing(eng, delay, msg):
            yield eng.timeout(delay)
            raise ValueError(msg)

        def waiter(eng):
            try:
                yield eng.all_of([
                    eng.process(failing(eng, 1.0, "first")),
                    eng.process(failing(eng, 2.0, "second")),
                ])
            except ValueError as exc:
                caught.append(str(exc))

        eng.process(waiter(eng))
        eng.run()  # the second failure must not escape to top level
        assert caught == ["first"]


class TestAlreadyFiredTargets:
    def test_yield_already_failed_event_raises_into_process(self):
        eng = Engine()
        boom = eng.event()
        boom.fail(RuntimeError("stale failure"))
        boom.defused = True  # nobody waits yet; keep run() from raising
        eng.run()
        assert boom.processed
        caught = []

        def late_waiter(eng):
            try:
                yield boom
            except RuntimeError as exc:
                caught.append(str(exc))

        eng.process(late_waiter(eng))
        eng.run()
        assert caught == ["stale failure"]


class TestKillScenarios:
    def test_kill_while_waiting_on_shared_event(self):
        """Killing one waiter must not disturb another on the same event."""
        eng = Engine()
        shared = eng.event()
        survived = []

        def waiter(eng, label):
            value = yield shared
            survived.append((label, value))

        victim = eng.process(waiter(eng, "victim"))
        eng.process(waiter(eng, "survivor"))

        def orchestrator(eng):
            yield eng.timeout(1.0)
            victim.kill()
            yield eng.timeout(1.0)
            shared.succeed("payload")

        eng.process(orchestrator(eng))
        eng.run()
        assert survived == [("survivor", "payload")]

    def test_killed_process_reason_in_exception(self):
        eng = Engine()
        reasons = []

        def victim(eng):
            try:
                yield eng.timeout(10.0)
            except ProcessKilled as exc:
                reasons.append(str(exc))
                raise

        p = eng.process(victim(eng))

        def killer(eng):
            yield eng.timeout(1.0)
            p.kill("maintenance window")

        eng.process(killer(eng))
        eng.run()
        assert reasons == ["maintenance window"]

    def test_kill_can_be_survived(self):
        """A process may catch ProcessKilled and continue."""
        eng = Engine()
        log = []

        def stubborn(eng):
            try:
                yield eng.timeout(10.0)
            except ProcessKilled:
                log.append("caught")
            yield eng.timeout(1.0)
            log.append(("done", eng.now))

        p = eng.process(stubborn(eng))

        def killer(eng):
            yield eng.timeout(2.0)
            p.kill()

        eng.process(killer(eng))
        eng.run()
        assert log == ["caught", ("done", 3.0)]

    def test_kill_while_resume_in_flight_cancels_delivery(self):
        """Kill delivered between a yield of an already-fired event and
        its resume entry firing: the value must never arrive, and the
        kill lands at the current yield point.

        Ordering at t=2.0: the killer's timeout fires first (it was
        scheduled first), so the kill tick sits between the victim's
        timeout and the resume entry the victim schedules by yielding
        the already-processed event.
        """
        eng = Engine()
        fired = eng.event()
        fired.succeed("payload")
        eng.run()  # `fired` processed, no waiters
        log = []
        handle = {}

        def killer(eng):
            yield eng.timeout(2.0)
            handle["victim"].kill()

        def victim(eng):
            try:
                yield eng.timeout(2.0)
                value = yield fired  # schedules an in-flight resume
                log.append(("value", value))
            except ProcessKilled:
                log.append("killed")

        eng.process(killer(eng))
        handle["victim"] = eng.process(victim(eng))
        eng.run()
        assert log == ["killed"]
        assert not handle["victim"].is_alive

    def test_cancelled_resume_does_not_leak_into_new_waiters(self):
        """Pool recycling of a cancelled entry must not cancel its next
        owner: a process spawned after the kill still gets its value."""
        eng = Engine()
        fired = eng.event()
        fired.succeed("x")
        eng.run()
        got = []
        handle = {}

        def innocent(eng):
            value = yield fired
            got.append(("innocent", value))

        def killer(eng):
            yield eng.timeout(2.0)
            handle["victim"].kill()
            eng.process(innocent(eng))

        def victim(eng):
            yield eng.timeout(2.0)
            yield fired
            got.append("victim-resumed")  # must never happen

        eng.process(killer(eng))
        handle["victim"] = eng.process(victim(eng))
        eng.run()
        assert got == [("innocent", "x")]

    def test_parent_catches_processkilled_from_killed_child(self):
        eng = Engine()
        caught = []

        def child(eng):
            yield eng.timeout(10.0)

        def parent(eng):
            c = eng.process(child(eng))
            eng.process(assassin(eng, c))
            try:
                yield c
            except ProcessKilled:
                caught.append(eng.now)

        def assassin(eng, target):
            yield eng.timeout(1.0)
            target.kill()

        eng.process(parent(eng))
        eng.run()
        assert caught == [1.0]

    def test_double_kill_is_noop(self):
        eng = Engine()

        def victim(eng):
            yield eng.timeout(10.0)

        p = eng.process(victim(eng))

        def killer(eng):
            yield eng.timeout(1.0)
            p.kill()
            p.kill()

        eng.process(killer(eng))
        eng.run()
        assert not p.is_alive
