"""Tests for the command-line interface."""

import pytest

from repro.cli import main


def test_run_tracker_summary(capsys):
    rc = main(["run-tracker", "--config", "1", "--policy", "aru-max",
               "--horizon", "15", "--seed", "1"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "config=config1 policy=aru-max" in out
    assert "memory footprint" in out
    assert "throughput" in out


def test_run_tracker_save_and_analyze(tmp_path, capsys):
    trace_path = tmp_path / "run.json"
    rc = main(["run-tracker", "--config", "1", "--policy", "no-aru",
               "--horizon", "12", "--save-trace", str(trace_path)])
    assert rc == 0
    assert trace_path.exists()
    capsys.readouterr()

    rc = main(["analyze", str(trace_path)])
    assert rc == 0
    out = capsys.readouterr().out
    assert "per-channel" in out
    assert "C3" in out
    assert "wasted memory" in out


def test_timeline_command(tmp_path, capsys):
    trace_path = tmp_path / "run.json"
    main(["run-tracker", "--horizon", "12", "--save-trace", str(trace_path)])
    capsys.readouterr()
    rc = main(["timeline", str(trace_path), "--channel", "C3", "--width", "40"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "memory footprint — C3" in out
    assert "MB" in out


def test_profile_command(capsys):
    rc = main(["profile", "--horizon", "8", "--policy", "no-aru",
               "--sort", "tottime", "--limit", "5"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "profiled: config1 policy=no-aru" in out
    assert "frames delivered" in out
    # the pstats hot-function table
    assert "ncalls" in out and "tottime" in out
    assert "function calls" in out


def test_profile_cumtime_sort_and_top(capsys):
    # ISSUE-7 triage flags: --sort cumtime (pstats alias) and --top N
    # (preferred spelling of --limit).
    rc = main(["profile", "--horizon", "8", "--policy", "no-aru",
               "--sort", "cumtime", "--top", "3"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "profiled: config1 policy=no-aru" in out
    assert "cumtime" in out


def test_paper_tables_quick(capsys):
    rc = main(["paper-tables", "--seeds", "1", "--horizon", "30"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "[fig 6]" in out and "[fig 7]" in out and "[fig 10]" in out
    assert "Shape checks vs the paper" in out


def test_sweep_smoke_parallel(tmp_path, capsys):
    """The documented smoke target: ``repro sweep --workers 2 --horizon 5``
    (cache pointed into tmp so tests never touch the working tree)."""
    cache_dir = tmp_path / "cache"
    rc = main(["sweep", "--workers", "2", "--horizon", "5",
               "--cache-dir", str(cache_dir)])
    assert rc == 0
    out = capsys.readouterr().out
    assert "[fig 6]" in out and "[fig 10]" in out
    assert "18 cells" in out
    assert "18 executed, 0 cache hits" in out
    assert cache_dir.exists()

    # the repeated sweep is a pure cache replay: zero re-executions
    rc = main(["sweep", "--workers", "2", "--horizon", "5",
               "--cache-dir", str(cache_dir)])
    assert rc == 0
    assert "0 executed, 18 cache hits" in capsys.readouterr().out


def test_sweep_single_policy(tmp_path, capsys):
    """``sweep --policy`` restricts the grid to one (custom) policy; the
    tables must render it even though it isn't a paper column."""
    rc = main(["sweep", "--policy", "aru-pid", "--horizon", "5",
               "--cache-dir", str(tmp_path / "cache")])
    assert rc == 0
    out = capsys.readouterr().out
    assert "1 policies" in out
    assert "aru-pid" in out
    assert "6 cells" in out and "6 executed" in out


def test_sweep_list_policies(capsys):
    rc = main(["sweep", "--list-policies"])
    assert rc == 0
    out = capsys.readouterr().out
    for name in ("no-aru", "aru-min", "aru-max", "aru-pid", "null"):
        assert name in out


def test_chaos_policy_override_unknown_name():
    with pytest.raises(SystemExit, match="unknown policy"):
        main(["chaos", "examples/chaos_tracker.yaml",
              "--policy", "warp-speed"])


def test_compare_command(tmp_path, capsys):
    a, b = tmp_path / "a.json", tmp_path / "b.json"
    main(["run-tracker", "--horizon", "10", "--policy", "no-aru",
          "--save-trace", str(a)])
    main(["run-tracker", "--horizon", "10", "--policy", "aru-max",
          "--save-trace", str(b)])
    capsys.readouterr()
    rc = main(["compare", str(a), str(b)])
    assert rc == 0
    out = capsys.readouterr().out
    assert "wasted_memory" in out and "trace comparison" in out


def test_dot_command(capsys):
    rc = main(["dot", "tracker"])
    assert rc == 0
    out = capsys.readouterr().out
    assert out.startswith("digraph") and '"C1"' in out


def test_gantt_command(tmp_path, capsys):
    trace_path = tmp_path / "run.json"
    main(["run-tracker", "--horizon", "12", "--policy", "aru-max",
          "--save-trace", str(trace_path)])
    capsys.readouterr()
    rc = main(["gantt", str(trace_path), "--width", "50"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "digitizer" in out and "gui" in out
    assert "#" in out


def test_paper_tables_save_csv(tmp_path, capsys):
    path = tmp_path / "grid.csv"
    rc = main(["paper-tables", "--seeds", "1", "--horizon", "20",
               "--save-csv", str(path)])
    assert rc == 0
    assert path.exists()
    header = path.read_text().splitlines()[0]
    assert header.startswith("config,policy,seed")


def test_unknown_policy_exits():
    with pytest.raises(SystemExit):
        main(["run-tracker", "--policy", "warp-speed"])


def test_missing_command_exits():
    with pytest.raises(SystemExit):
        main([])


def test_chaos_list_faults(capsys):
    from repro.faults import FAULT_KINDS

    rc = main(["chaos", "--list-faults"])
    assert rc == 0
    out = capsys.readouterr().out
    for kind in FAULT_KINDS:
        assert kind in out


def test_chaos_requires_a_schedule():
    with pytest.raises(SystemExit, match="schedule"):
        main(["chaos"])


def test_chaos_run_from_json(tmp_path, capsys):
    import json

    chaos = {
        "experiment": {"app": "tracker", "config": "config1",
                       "aru": {"preset": "aru-min", "staleness_ttl": 2.0},
                       "horizon": 20},
        "detector": {"interval": 0.25},
        "faults": [
            {"kind": "thread_crash", "at": 5.0, "thread": "target_detect2"},
            {"kind": "thread_restart", "at": 9.0, "thread": "target_detect2"},
        ],
    }
    path = tmp_path / "chaos.json"
    path.write_text(json.dumps(chaos))
    trace_path = tmp_path / "run.json"
    rc = main(["chaos", str(path), "--save-trace", str(trace_path)])
    assert rc == 0
    out = capsys.readouterr().out
    assert "2 scheduled faults" in out
    assert "2 faults injected, 2 detected, 2 recovered" in out
    assert "faults: !=injected d=detected r=recovered" in out
    assert "throttle recovery" in out
    assert trace_path.exists()


def test_chaos_horizon_override(tmp_path, capsys):
    import json

    chaos = {
        "app": "tracker", "config": "config1", "horizon": 120,
        "faults": [{"kind": "thread_crash", "at": 2.0, "thread": "gui"}],
    }
    path = tmp_path / "chaos.json"
    path.write_text(json.dumps(chaos))
    rc = main(["chaos", str(path), "--horizon", "6"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "6.0s simulated" in out


def test_run_tracker_telemetry_exports(tmp_path, capsys):
    out_dir = tmp_path / "tel"
    rc = main(["run-tracker", "--horizon", "8", "--policy", "aru-min",
               "--telemetry", str(out_dir)])
    assert rc == 0
    out = capsys.readouterr().out
    assert "throughput" in out            # the normal run summary
    assert "threads" in out               # the telemetry summary table
    assert "load in Perfetto" in out
    label = "tracker-config1-aru-min-s0"
    assert (out_dir / f"{label}.trace.json").exists()
    assert (out_dir / f"{label}.jsonl").exists()
    prom = (out_dir / f"{label}.prom").read_text()
    assert "repro_iterations_total" in prom


def test_obs_summarizes_jsonl(tmp_path, capsys):
    out_dir = tmp_path / "tel"
    main(["run-tracker", "--horizon", "8", "--telemetry", str(out_dir)])
    capsys.readouterr()
    (jsonl,) = out_dir.glob("*.jsonl")
    rc = main(["obs", str(jsonl)])
    assert rc == 0
    out = capsys.readouterr().out
    assert "records)" in out
    assert "digitizer" in out and "buffers" in out


def test_chaos_telemetry_trace_has_fault_instants(tmp_path, capsys):
    import json

    chaos = {
        "app": "tracker", "config": "config1", "horizon": 12,
        "faults": [{"kind": "thread_crash", "at": 3.0,
                    "thread": "target_detect2"},
                   {"kind": "thread_restart", "at": 7.0,
                    "thread": "target_detect2"}],
    }
    path = tmp_path / "chaos.json"
    path.write_text(json.dumps(chaos))
    out_dir = tmp_path / "tel"
    rc = main(["chaos", str(path), "--telemetry", str(out_dir)])
    assert rc == 0
    capsys.readouterr()
    doc = json.loads((out_dir / "chaos-chaos.trace.json").read_text())
    instants = [e for e in doc["traceEvents"] if e["ph"] == "i"]
    assert any(e["name"] == "injected:thread_crash" for e in instants)


def test_elastic_run_scales_and_reports(capsys):
    rc = main(["elastic", "--horizon", "25", "--swing-start", "4",
               "--swing-end", "16", "--swing-factor", "8",
               "--worker-cost", "0.03", "--period", "0.1", "--seed", "0"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "elastic run: scale-policy=erlang" in out
    assert "throughput" in out and "latency p95" in out
    assert "stage 'workers':" in out
    # the swing actually triggered the controller
    assert "scale-out" in out


def test_elastic_fixed_pool_has_no_scale_events(capsys):
    rc = main(["elastic", "--scale-policy", "no-scale", "--horizon", "10",
               "--swing-factor", "1"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "scale-policy=no-scale" in out
    assert "0 control decisions" in out
    assert "scale-out" not in out


def test_elastic_list_scale_policies(capsys):
    rc = main(["elastic", "--list-scale-policies"])
    assert rc == 0
    out = capsys.readouterr().out
    for name in ("erlang", "erlang-latency", "no-scale", "null-scale"):
        assert name in out


def test_elastic_unknown_scale_policy_exits():
    with pytest.raises(SystemExit, match="scale policy"):
        main(["elastic", "--scale-policy", "warp-speed"])


def test_elastic_telemetry_exports(tmp_path, capsys):
    out_dir = tmp_path / "tel"
    rc = main(["elastic", "--horizon", "10", "--swing-factor", "1",
               "--telemetry", str(out_dir)])
    assert rc == 0
    capsys.readouterr()
    label = "elastic-erlang-s0"
    assert (out_dir / f"{label}.trace.json").exists()
    assert (out_dir / f"{label}.jsonl").exists()


def test_sweep_telemetry_writes_cell_snapshots(tmp_path, capsys):
    import json

    out_dir = tmp_path / "tel"
    rc = main(["sweep", "--seeds", "1", "--horizon", "5", "--workers", "1",
               "--policy", "aru-min", "--no-cache",
               "--telemetry", str(out_dir)])
    assert rc == 0
    capsys.readouterr()
    snaps = sorted(out_dir.glob("*.telemetry.json"))
    assert len(snaps) == 2  # config1 + config2, one seed
    snap = json.loads(snaps[0].read_text())
    assert snap["enabled"] is True
    assert any(m["name"] == "repro_iterations_total"
               for m in snap["metrics"])


def test_tenants_list_placements(capsys):
    rc = main(["tenants", "--list-placements"])
    assert rc == 0
    out = capsys.readouterr().out
    for name in ("round-robin", "rstorm", "spread"):
        assert name in out


def test_tenants_synthetic_fleet(capsys):
    rc = main(["tenants", "--tenants", "3", "--nodes", "2",
               "--horizon", "3", "--seed", "1"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "3 declared, 3 admitted" in out
    assert "placement=rstorm" in out
    assert "tenant2" in out
    assert "jain=" in out


def test_tenants_json_output(capsys):
    import json

    rc = main(["tenants", "--tenants", "2", "--nodes", "2",
               "--horizon", "3", "--json"])
    assert rc == 0
    out = capsys.readouterr().out
    payload = json.loads(out[out.index("{"):])
    assert set(payload["tenants"]) == {"tenant0", "tenant1"}
    assert payload["tenants"]["tenant0"]["state"] == "running"
    assert 0.0 <= payload["jain"] <= 1.0


def test_tenants_spec_file_round_trip(tmp_path, capsys):
    import json

    spec_path = tmp_path / "fleet.json"
    spec_path.write_text(json.dumps({
        "cluster": {"nodes": 2, "ncpus": 8},
        "horizon": 3.0,
        "tenants": [
            {"name": "cam", "count": 2,
             "tracker": {"frame_period": 0.2},
             "demand": {"cpu": 0.25, "mem_mb": 16, "bandwidth_mbps": 1}},
        ],
    }))
    rc = main(["tenants", str(spec_path)])
    assert rc == 0
    out = capsys.readouterr().out
    assert "cam-0" in out and "cam-1" in out
    assert "2 declared, 2 admitted" in out


def test_tenants_spec_file_placement_override(tmp_path, capsys):
    import json

    spec_path = tmp_path / "fleet.json"
    spec_path.write_text(json.dumps({
        "horizon": 2.0,
        "tenants": [{"name": "a", "tracker": {"frame_period": 0.2}}],
    }))
    rc = main(["tenants", str(spec_path), "--placement", "spread"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "placement=spread" in out


def test_tenants_unknown_placement_fails(capsys):
    with pytest.raises(SystemExit, match="placement"):
        main(["tenants", "--tenants", "1", "--placement", "rstrom"])


def test_tenants_bad_spec_file_fails(tmp_path):
    spec_path = tmp_path / "bad.json"
    spec_path.write_text('{"tenants": [{"name": "a", "cpu": 1}]}')
    with pytest.raises(SystemExit, match="unknown key"):
        main(["tenants", str(spec_path)])
