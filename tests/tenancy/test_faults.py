"""Faults x tenancy: node crashes evict and re-place only the victims."""

import pytest

from repro.cluster.spec import uniform_spec
from repro.faults.spec import FaultSpec
from repro.tenancy import (
    TenancySpec,
    TenantSpec,
    run_tenants,
    scaled_tracker_config,
)
from repro.tenancy.tenant import ResourceDemand

CHEAP = scaled_tracker_config(0.1, frame_period=0.2, cv=0.0)


def _run(tenants, cluster, faults, horizon=8.0, **kwargs):
    return run_tenants(TenancySpec(
        tenants=tenants, cluster=cluster, faults=faults, horizon=horizon,
        **kwargs))


class TestNodeCrash:
    def test_crash_replaces_only_resident_tenants(self):
        # 4 tenants on 6 nodes (rstorm packs each tenant onto one node);
        # crashing node0 must move only its residents.
        tenants = tuple(TenantSpec(f"t{i}", app_config=CHEAP)
                        for i in range(4))
        result = _run(tenants, uniform_spec(6, ncpus=4),
                      (FaultSpec(kind="node_crash", at=3.0,
                                 target="node0"),))
        runtime = result.runtime
        victims = [n for n, rec in result.records.items()
                   if "re-placed off node0" in rec.detail]
        untouched = [n for n in result.records if n not in victims]
        assert victims, "someone must have lived on node0"
        assert untouched, "crash must not touch the whole fleet"
        # victims moved entirely off the dead node and kept running
        for name in victims:
            record = result.records[name]
            assert record.state == "running"
            assert "node0" not in record.placement.values()
            assert record.deliveries > 0
        # untouched tenants never logged a replacement
        replaced = {e[1] for e in result.admission_log
                    if e[2] == "replaced"}
        assert replaced == set(victims)
        # the scheduler ledger moved with the threads
        assert runtime.scheduler.committed["node0"] == [0.0, 0.0, 0.0]
        assert "node0" in runtime.scheduler.failed

    def test_crash_without_capacity_evicts(self):
        # 2 nodes exactly full; crashing one leaves nowhere to go.
        demand = ResourceDemand(cpu=1.0)
        tenants = (
            TenantSpec("a", app_config=CHEAP, demand=demand),
            TenantSpec("b", app_config=CHEAP, demand=demand),
        )
        result = _run(tenants, uniform_spec(2, ncpus=6),
                      (FaultSpec(kind="node_crash", at=3.0,
                                 target="node0"),),
                      admission="reject")
        states = sorted(r.state for r in result.records.values())
        assert states == ["evicted", "running"]
        evicted = next(r for r in result.records.values()
                       if r.state == "evicted")
        assert evicted.departed_at == pytest.approx(3.0)
        assert evicted.deliveries > 0  # it ran until the crash
        # eviction released every reservation the tenant held
        runtime = result.runtime
        total = sum(v[0] for v in runtime.scheduler.committed.values())
        assert total == pytest.approx(6.0)  # only the survivor remains

    def test_restart_node_readmits_queued(self):
        demand = ResourceDemand(cpu=1.0)
        tenants = (
            TenantSpec("a", app_config=CHEAP, demand=demand),
            TenantSpec("b", app_config=CHEAP, demand=demand),
        )
        result = _run(tenants, uniform_spec(2, ncpus=6),
                      (FaultSpec(kind="node_crash", at=2.0, target="node0"),
                       FaultSpec(kind="node_restart", at=4.0,
                                 target="node0")),
                      horizon=8.0)
        # under queue admission the evicted... actually the displaced
        # tenant is evicted terminally; but the recovered node must be
        # placeable again for later arrivals.
        runtime = result.runtime
        assert "node0" not in runtime.scheduler.failed

    def test_replaced_tenant_keeps_delivering(self):
        # Regression: a re-placed producer restarts its timestamp
        # counter at 0 while its pre-crash output items survive in the
        # channels (stable-storage model). Without draining those
        # buffers on re-placement the restarted producer collides with
        # its own surviving items once the counter catches up
        # (``duplicate timestamp`` SimulationError). Needs cross-tenant
        # contention to keep the colliding item alive: full-cost
        # trackers, a throttled victim, a shared heterogeneous cluster.
        from repro.tenancy import run_tenants, tenancy_from_dict

        spec = tenancy_from_dict({
            "cluster": {"kind": "heterogeneous", "n_big": 1, "n_small": 3},
            "horizon": 6.0,
            "tenants": [
                {"name": "cam", "count": 3,
                 "tracker": {"frame_period": 0.2},
                 "demand": {"cpu": 0.4, "mem_mb": 8, "bandwidth_mbps": 4}},
                {"name": "vip", "priority": 3, "policy": "aru-max",
                 "tracker": {"frame_period": 0.2},
                 "demand": {"cpu": 0.4, "mem_mb": 8, "bandwidth_mbps": 4}},
            ],
            "faults": [{"kind": "node_crash", "at": 3.0, "node": "small0"}],
        })
        result = run_tenants(spec)
        assert all(r.state == "running" for r in result.records.values())
        victims = [n for n, rec in result.records.items()
                   if "re-placed off small0" in rec.detail]
        assert victims
        for name in victims:
            sink = result.runtime.tenants[name].mapping["gui"]
            post_crash = [it for it in result.trace.iterations_of(sink)
                          if it.t_end > 4.0]
            assert post_crash, f"{name} must keep delivering after move"

    def test_fault_hook_sees_replacement(self):
        tenants = tuple(TenantSpec(f"t{i}", app_config=CHEAP)
                        for i in range(3))
        result = _run(tenants, uniform_spec(4, ncpus=4),
                      (FaultSpec(kind="node_crash", at=3.0,
                                 target="node0"),))
        assert result.fault_log is not None
        symptoms = [e.symptom for e in result.fault_log.symptoms]
        assert "tenant_replaced" in symptoms


class TestStorageTeardown:
    def test_departed_tenant_buffers_drained(self):
        tenants = (
            TenantSpec("stays", app_config=CHEAP),
            TenantSpec("leaves", app_config=CHEAP, departure=3.0),
        )
        result = _run(tenants, uniform_spec(2, ncpus=8), (), horizon=6.0)
        runtime = result.runtime
        leaver = runtime.tenants["leaves"]
        for name in leaver.buffers:
            buffer = runtime.buffers[name]
            assert len(buffer) == 0
            assert buffer.bytes_held == 0
        # the stayer's buffers keep working after the departure
        assert result.records["stays"].deliveries > \
            result.records["leaves"].deliveries
