"""The zero-cost-abstraction contract: one static tenant through the
scheduler is indistinguishable from the same app through
``run_experiment`` — identical metrics fingerprint, identical engine
event count. Multi-tenancy must cost nothing when unused."""

from types import SimpleNamespace

import pytest

from repro.bench.experiments import metrics_from_trace
from repro.bench.identity import metrics_fingerprint
from repro.cluster.spec import uniform_spec
from repro.experiment import ExperimentSpec, run_experiment
from repro.tenancy import TenancySpec, TenantSpec, run_tenants

SEED = 7
HORIZON = 10.0


def _fingerprint(trace):
    metrics = metrics_from_trace("uniform4", "aru-max", SEED, HORIZON, trace)
    return metrics_fingerprint(SimpleNamespace(metrics=metrics, extras={}))


@pytest.fixture(scope="module")
def pair():
    cluster = uniform_spec(4)
    tenancy = run_tenants(TenancySpec(
        tenants=(TenantSpec("solo", namespace="", seed=SEED,
                            policy="aru-max"),),
        cluster=cluster, seed=SEED, horizon=HORIZON,
    ))
    classic = run_experiment(ExperimentSpec(
        config=cluster, seed=SEED, policy="aru-max", horizon=HORIZON,
        placement=tenancy.records["solo"].placement,
    ))
    return tenancy, classic


def test_fingerprints_identical(pair):
    tenancy, classic = pair
    assert _fingerprint(tenancy.trace) == _fingerprint(classic.trace)


def test_zero_added_events(pair):
    # No manager process, no extra timers: a static population adds
    # nothing to the engine.
    tenancy, classic = pair
    assert tenancy.stats["engine"]["events_processed"] == \
        classic.stats["engine"]["events_processed"]


def test_blank_namespace_keeps_thread_names(pair):
    tenancy, _ = pair
    assert "gui" in tenancy.runtime.drivers
    assert "digitizer" in tenancy.trace.threads()


def test_fingerprint_differs_without_contract(pair):
    # Sanity: the fingerprint is sensitive — a different seed breaks it.
    tenancy, _ = pair
    other = run_tenants(TenancySpec(
        tenants=(TenantSpec("solo", namespace="", seed=SEED + 1,
                            policy="aru-max"),),
        cluster=uniform_spec(4), seed=SEED, horizon=HORIZON,
    ))
    assert _fingerprint(other.trace) != _fingerprint(tenancy.trace)
