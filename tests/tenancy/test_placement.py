"""Property tests for placement strategies and the registry."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.spec import heterogeneous_spec, uniform_spec
from repro.errors import ConfigError
from repro.tenancy import (
    PlacementView,
    Scheduler,
    available_placements,
    placements_help_text,
    register_placement,
    resolve_placement,
)
from repro.tenancy.tenant import ResourceDemand

STRATEGIES = ("round-robin", "rstorm", "spread")


def _demands(cpus):
    return {f"t{i}": ResourceDemand(cpu=c, mem_bytes=1, bandwidth_bps=1)
            for i, c in enumerate(cpus)}


# -- hypothesis invariants ---------------------------------------------------

cpu_lists = st.lists(
    st.floats(min_value=0.1, max_value=4.0, allow_nan=False,
              allow_infinity=False),
    min_size=1, max_size=12,
)


@settings(max_examples=60, deadline=None)
@given(cpus=cpu_lists, n_nodes=st.integers(1, 6),
       ncpus=st.integers(1, 8),
       strategy=st.sampled_from(STRATEGIES))
def test_placement_never_exceeds_node_budget(cpus, n_nodes, ncpus, strategy):
    """Accepted placements fit; every node stays within capacity."""
    scheduler = Scheduler(uniform_spec(n_nodes, ncpus=ncpus),
                          placement=strategy)
    demands = _demands(cpus)
    placement = scheduler.admit("t", list(demands), demands)
    if placement is None:
        return
    assert set(placement) == set(demands)
    for node in scheduler.committed:
        cap = scheduler.capacity(node)
        committed = scheduler.committed[node]
        for axis in range(3):
            assert committed[axis] <= cap[axis] + 1e-6


@settings(max_examples=40, deadline=None)
@given(cpus=cpu_lists, n_nodes=st.integers(1, 6),
       strategy=st.sampled_from(STRATEGIES))
def test_placement_deterministic(cpus, n_nodes, strategy):
    """Same cluster + same demands -> bit-identical placement."""
    demands = _demands(cpus)

    def run():
        scheduler = Scheduler(uniform_spec(n_nodes, ncpus=8),
                              placement=strategy)
        return scheduler.admit("t", list(demands), demands)

    assert run() == run()


@settings(max_examples=40, deadline=None)
@given(n_nodes=st.integers(1, 5), ncpus=st.integers(1, 4),
       strategy=st.sampled_from(STRATEGIES))
def test_full_cluster_rejects(n_nodes, ncpus, strategy):
    """A saturated cluster refuses admission (None, ledger untouched)."""
    scheduler = Scheduler(uniform_spec(n_nodes, ncpus=ncpus),
                          placement=strategy)
    filler = {f"f{i}": ResourceDemand(cpu=float(ncpus))
              for i in range(n_nodes)}
    assert scheduler.admit("filler", list(filler), filler) is not None
    before = {n: list(v) for n, v in scheduler.committed.items()}
    extra = {"x": ResourceDemand(cpu=0.5)}
    assert scheduler.admit("late", ["x"], extra) is None
    assert {n: list(v) for n, v in scheduler.committed.items()} == before


@settings(max_examples=40, deadline=None)
@given(cpus=cpu_lists, strategy=st.sampled_from(STRATEGIES))
def test_failed_placement_has_no_side_effects(cpus, strategy):
    """try_place never mutates the ledger, success or failure."""
    scheduler = Scheduler(uniform_spec(2, ncpus=4), placement=strategy)
    demands = _demands(cpus)
    before = {n: list(v) for n, v in scheduler.committed.items()}
    scheduler.try_place("t", list(demands), demands)
    assert {n: list(v) for n, v in scheduler.committed.items()} == before


# -- strategy behaviour -------------------------------------------------------


class TestRStorm:
    def test_colocates_neighbors(self):
        scheduler = Scheduler(uniform_spec(4, ncpus=8), placement="rstorm")
        demands = {t: ResourceDemand(cpu=1.0) for t in ("a", "b", "c")}
        neighbors = {"a": frozenset({"b"}), "b": frozenset({"a", "c"}),
                     "c": frozenset({"b"})}
        placement = scheduler.admit("t", ["a", "b", "c"], demands, neighbors)
        assert len(set(placement.values())) == 1

    def test_packs_small_nodes_first(self):
        # Min-distance packing fills the node whose remainder is
        # smallest: a thin node beats a fat one for a small thread.
        cluster = heterogeneous_spec(n_big=1, n_small=1, big_ncpus=16,
                                     small_ncpus=2)
        scheduler = Scheduler(cluster, placement="rstorm")
        demands = {"a": ResourceDemand(cpu=1.0, mem_bytes=1,
                                       bandwidth_bps=1)}
        placement = scheduler.admit("t", ["a"], demands)
        assert placement["a"] == "small0"

    def test_big_thread_needs_big_node(self):
        cluster = heterogeneous_spec(n_big=1, n_small=1, big_ncpus=16,
                                     small_ncpus=2)
        scheduler = Scheduler(cluster, placement="rstorm")
        demands = {"a": ResourceDemand(cpu=8.0, mem_bytes=1,
                                       bandwidth_bps=1)}
        assert scheduler.admit("t", ["a"], demands)["a"] == "big0"


class TestRoundRobin:
    def test_cursor_cycles_across_admissions(self):
        scheduler = Scheduler(uniform_spec(3, ncpus=8),
                              placement="round-robin")
        nodes = []
        for i in range(3):
            demands = {"a": ResourceDemand(cpu=1.0)}
            nodes.append(scheduler.admit(f"t{i}", ["a"], demands)["a"])
        assert nodes == ["node0", "node1", "node2"]


class TestSpread:
    def test_levels_load(self):
        scheduler = Scheduler(uniform_spec(3, ncpus=8), placement="spread")
        demands = {f"t{i}": ResourceDemand(cpu=1.0) for i in range(3)}
        placement = scheduler.admit("t", list(demands), demands)
        assert len(set(placement.values())) == 3


# -- registry ----------------------------------------------------------------


class TestRegistry:
    def test_builtins_listed(self):
        assert set(STRATEGIES) <= set(available_placements())

    def test_help_text_catalogs_all(self):
        text = placements_help_text()
        for name in STRATEGIES:
            assert name in text

    def test_unknown_name_suggests(self):
        with pytest.raises(ConfigError, match="did you mean 'rstorm'"):
            resolve_placement("rstrom")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ConfigError, match="already registered"):
            register_placement("rstorm", object)

    def test_replace_and_custom(self):
        class Custom:
            name = "custom"

            def place(self, tenant, threads, demands, view):
                return None

        register_placement("custom", Custom, help="test-only")
        assert isinstance(resolve_placement("custom"), Custom)
        # instances pass straight through
        instance = Custom()
        assert resolve_placement(instance) is instance

    def test_none_defaults_to_rstorm(self):
        assert resolve_placement(None).name == "rstorm"

    def test_non_string_rejected(self):
        with pytest.raises(ConfigError, match="registered name"):
            resolve_placement(42)


def test_view_fits_epsilon():
    view = PlacementView(
        nodes=("n",), capacity={"n": (1.0, 1.0, 1.0)},
        available={"n": [1.0, 1.0, 1.0]},
    )
    # float-noise demand at the boundary still fits
    assert view.fits("n", (1.0, 1.0, 1.0))
    assert not view.fits("n", (1.0 + 1e-6, 1.0, 1.0))
