"""The declarative tenancy-spec grammar (JSON -> TenancySpec)."""

import pytest

from repro.cluster.spec import ClusterSpec
from repro.errors import ConfigError
from repro.tenancy import ResourceDemand, TenancySpec, tenancy_from_dict
from repro.tenancy.specfile import cluster_from_dict, demand_from_dict


class TestDemandGrammar:
    def test_unit_conversions(self):
        demand = demand_from_dict(
            {"cpu": 0.5, "mem_mb": 64, "bandwidth_mbps": 10}, "d")
        assert demand.cpu == 0.5
        assert demand.mem_bytes == 64 * 2**20
        assert demand.bandwidth_bps == 10_000_000

    def test_raw_units(self):
        demand = demand_from_dict({"mem_bytes": 123, "bandwidth_bps": 456},
                                  "d")
        assert (demand.mem_bytes, demand.bandwidth_bps) == (123, 456)

    def test_conflicting_units_rejected(self):
        with pytest.raises(ConfigError, match="not both"):
            demand_from_dict({"mem_mb": 1, "mem_bytes": 1}, "d")

    def test_unknown_key_rejected(self):
        with pytest.raises(ConfigError, match="unknown key"):
            demand_from_dict({"gpus": 2}, "d")

    def test_passthrough(self):
        demand = ResourceDemand()
        assert demand_from_dict(demand, "d") is demand


class TestClusterGrammar:
    def test_uniform(self):
        cluster = cluster_from_dict({"nodes": 3, "ncpus": 2})
        assert len(cluster.nodes) == 3
        assert cluster.nodes[0].ncpus == 2

    def test_heterogeneous(self):
        cluster = cluster_from_dict(
            {"kind": "heterogeneous", "n_big": 1, "n_small": 2})
        names = [n.name for n in cluster.nodes]
        assert names == ["big0", "small0", "small1"]

    def test_int_and_none(self):
        assert len(cluster_from_dict(2).nodes) == 2
        assert len(cluster_from_dict(None).nodes) == 4

    def test_mismatched_keys_rejected(self):
        with pytest.raises(ConfigError, match="heterogeneous"):
            cluster_from_dict({"n_big": 2})
        with pytest.raises(ConfigError, match="unknown"):
            cluster_from_dict({"kind": "heterogeneous", "ncpus": 4})

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigError, match="unknown cluster kind"):
            cluster_from_dict({"kind": "mesh"})


class TestTenancyGrammar:
    def test_full_round_trip(self):
        spec = tenancy_from_dict({
            "cluster": {"nodes": 8, "ncpus": 16},
            "placement": "round-robin",
            "admission": "reject",
            "seed": 3,
            "horizon": 20.0,
            "tenants": [
                {"name": "cam", "count": 3,
                 "demand": {"cpu": 0.5, "mem_mb": 64},
                 "tracker": {"frame_period": 0.1}},
                {"name": "vip", "priority": 2, "weight": 2.0,
                 "arrival": 5.0, "policy": "aru-max"},
            ],
        })
        assert isinstance(spec, TenancySpec)
        assert isinstance(spec.resolve_cluster(), ClusterSpec)
        names = [t.name for t in spec.tenants]
        assert names == ["cam-0", "cam-1", "cam-2", "vip"]
        assert spec.tenants[0].app_config.frame_period == 0.1
        assert spec.tenants[0].demand.mem_bytes == 64 * 2**20
        vip = spec.tenants[-1]
        assert vip.priority == 2 and vip.weight == 2.0
        assert vip.policy.enabled
        assert spec.placement == "round-robin"
        assert spec.admission == "reject"

    def test_count_expansion_derives_distinct_names(self):
        spec = tenancy_from_dict({
            "tenants": [{"name": "t", "count": 2}]})
        a, b = spec.tenants
        assert (a.name, b.name) == ("t-0", "t-1")
        assert a.prefix != b.prefix

    def test_thread_demand_overrides(self):
        spec = tenancy_from_dict({
            "tenants": [{"name": "a",
                         "thread_demands": {"gui": {"cpu": 2.0}}}]})
        assert spec.tenants[0].thread_demands["gui"].cpu == 2.0

    def test_faults_parse(self):
        spec = tenancy_from_dict({
            "tenants": [{"name": "a"}],
            "faults": [{"kind": "node_crash", "at": 3.0, "node": "node0"}],
        })
        assert spec.faults[0].kind == "node_crash"

    def test_unknown_keys_fail_loudly(self):
        with pytest.raises(ConfigError, match="unknown key"):
            tenancy_from_dict({"tenants": [{"name": "a"}], "xyz": 1})
        with pytest.raises(ConfigError, match="unknown key"):
            tenancy_from_dict({"tenants": [{"name": "a", "cpu": 1}]})

    def test_app_config_mismatch_rejected(self):
        with pytest.raises(ConfigError, match="app is"):
            tenancy_from_dict({
                "tenants": [{"name": "a", "app": "gesture",
                             "tracker": {"frame_period": 0.1}}]})

    def test_missing_tenants_rejected(self):
        with pytest.raises(ConfigError, match="tenants"):
            tenancy_from_dict({})

    def test_blank_namespace_cannot_expand(self):
        with pytest.raises(ConfigError, match="blank namespace"):
            tenancy_from_dict({
                "tenants": [{"name": "a", "count": 2, "namespace": ""}]})
