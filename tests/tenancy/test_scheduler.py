"""Scheduler ledger, admission modes, and fault surface."""

import pytest

from repro.cluster.spec import uniform_spec
from repro.errors import ConfigError, SimulationError
from repro.tenancy import Scheduler
from repro.tenancy.tenant import ResourceDemand


def _sched(**kwargs):
    return Scheduler(uniform_spec(2, ncpus=4), **kwargs)


class TestLedger:
    def test_admit_commits_and_release_returns(self):
        scheduler = _sched()
        demands = {"a": ResourceDemand(cpu=2.0, mem_bytes=100,
                                       bandwidth_bps=10)}
        placement = scheduler.admit("t", ["a"], demands)
        node = placement["a"]
        assert scheduler.committed[node][0] == pytest.approx(2.0)
        scheduler.release(placement, demands)
        assert scheduler.committed[node] == [0.0, 0.0, 0.0]

    def test_over_commit_raises(self):
        scheduler = _sched()
        demands = {"a": ResourceDemand(cpu=3.0)}
        with pytest.raises(SimulationError, match="over-commit"):
            scheduler.commit({"a": "node0", "b": "node0"},
                             {"a": demands["a"], "b": ResourceDemand(cpu=3.0)})

    def test_under_release_raises(self):
        scheduler = _sched()
        with pytest.raises(SimulationError, match="more than committed"):
            scheduler.release({"a": "node0"}, {"a": ResourceDemand(cpu=1.0)})

    def test_missing_demand_rejected(self):
        scheduler = _sched()
        with pytest.raises(ConfigError, match="no demand declared"):
            scheduler.try_place("t", ["a"], {})

    def test_available_tracks_commitments(self):
        scheduler = _sched()
        demands = {"a": ResourceDemand(cpu=1.5)}
        placement = scheduler.admit("t", ["a"], demands)
        node = placement["a"]
        assert scheduler.available(node)[0] == pytest.approx(2.5)
        assert scheduler.utilization()[node]["cpu"] == pytest.approx(1.5 / 4)

    def test_utilization_reports_every_axis(self):
        # The CPU-only report hid memory/bandwidth saturation; every
        # node must report all three committed fractions.
        scheduler = _sched()
        demands = {"a": ResourceDemand(cpu=1.0, mem_bytes=2**20,
                                       bandwidth_bps=1000)}
        placement = scheduler.admit("t", ["a"], demands)
        node = placement["a"]
        cap = scheduler.capacity(node)
        util = scheduler.utilization()
        assert set(util[node]) == {"cpu", "mem", "bandwidth"}
        assert util[node]["mem"] == pytest.approx(2**20 / cap[1])
        assert util[node]["bandwidth"] == pytest.approx(1000 / cap[2])
        other = next(n for n in util if n != node)
        assert util[other] == {"cpu": 0.0, "mem": 0.0, "bandwidth": 0.0}


class TestAdmissionModes:
    def test_invalid_mode_rejected(self):
        with pytest.raises(ConfigError, match="admission"):
            _sched(admission="maybe")

    def test_close_typo_gets_suggestion(self):
        with pytest.raises(ConfigError, match="did you mean 'queue'"):
            _sched(admission="qeue")

    def test_modes_accepted(self):
        assert _sched(admission="queue").admission == "queue"
        assert _sched(admission="reject").admission == "reject"


class TestFaultSurface:
    def test_failed_node_excluded_from_placement(self):
        scheduler = _sched()
        scheduler.mark_failed("node0")
        demands = {f"t{i}": ResourceDemand(cpu=1.0) for i in range(4)}
        placement = scheduler.admit("t", list(demands), demands)
        assert set(placement.values()) == {"node1"}

    def test_all_failed_rejects(self):
        scheduler = _sched()
        scheduler.mark_failed("node0")
        scheduler.mark_failed("node1")
        assert scheduler.admit("t", ["a"],
                               {"a": ResourceDemand(cpu=0.1)}) is None

    def test_recovery_restores(self):
        scheduler = _sched()
        scheduler.mark_failed("node0")
        scheduler.mark_recovered("node0")
        assert not scheduler.failed

    def test_unknown_node_rejected(self):
        with pytest.raises(ConfigError, match="no node"):
            _sched().mark_failed("nope")


class TestBudgets:
    """The ledger's elastic-budget surface (the arbiter's grant plane)."""

    def test_headroom_denied_without_budget(self):
        scheduler = _sched()
        assert not scheduler.request_headroom("t", 0.5, "node0")
        assert scheduler.ledger.denials["t"] == 1
        assert scheduler.committed["node0"][0] == 0.0

    def test_grant_commits_and_release_returns(self):
        scheduler = _sched()
        scheduler.set_budget("t", 1.0)
        assert scheduler.request_headroom("t", 0.5, "node0")
        assert scheduler.used_budget("t") == pytest.approx(0.5)
        assert scheduler.committed["node0"][0] == pytest.approx(0.5)
        assert scheduler.ledger.grants["t"] == 1
        scheduler.release_headroom("t", 0.5, "node0")
        assert scheduler.used_budget("t") == 0.0
        assert scheduler.committed["node0"][0] == 0.0

    def test_budget_exhaustion_denies_even_on_idle_node(self):
        scheduler = _sched()
        scheduler.set_budget("t", 0.5)
        assert scheduler.request_headroom("t", 0.5, "node0")
        assert not scheduler.request_headroom("t", 0.5, "node1")
        assert scheduler.ledger.denials["t"] == 1

    def test_full_node_denies_even_with_budget(self):
        scheduler = _sched()
        demands = {"a": ResourceDemand(cpu=4.0)}
        scheduler.commit({"a": "node0"}, demands, tenant="other")
        scheduler.set_budget("t", 2.0)
        assert not scheduler.request_headroom("t", 1.0, "node0")
        assert scheduler.request_headroom("t", 1.0, "node1")

    def test_clear_tenant_drops_budget_keeps_audit(self):
        scheduler = _sched()
        scheduler.set_budget("t", 1.0)
        scheduler.request_headroom("t", 1.0, "node0")
        scheduler.ledger.clear_tenant("t")
        assert scheduler.budget("t") == 0.0
        assert scheduler.ledger.audit()["t"]["grants"] == 1

    def test_negative_budget_rejected(self):
        with pytest.raises(ConfigError, match="non-negative"):
            _sched().set_budget("t", -1.0)

    def test_tenant_committed_tracks_ownership(self):
        scheduler = _sched()
        demands = {"a": ResourceDemand(cpu=2.0)}
        placement = scheduler.admit("t", ["a"], demands)
        assert scheduler.ledger.tenant_committed["t"][0] == pytest.approx(2.0)
        scheduler.release(placement, demands, tenant="t")
        assert scheduler.ledger.tenant_committed["t"][0] == 0.0


class TestNodeMirroring:
    def test_bind_mirrors_commitments_into_nodes(self):
        from repro.sim.engine import Engine
        from repro.cluster.node import Node
        from repro.sim.rng import RngRegistry

        cluster = uniform_spec(1, ncpus=4)
        scheduler = Scheduler(cluster)
        demands = {"a": ResourceDemand(cpu=2.0, mem_bytes=64,
                                       bandwidth_bps=8)}
        placement = scheduler.admit("t", ["a"], demands)
        engine = Engine()
        rngs = RngRegistry(seed=0)
        nodes = {s.name: Node(engine, s, rngs) for s in cluster.nodes}
        scheduler.bind(nodes)
        node = nodes[placement["a"]]
        assert node.cpu_committed == pytest.approx(2.0)
        scheduler.release(placement, demands)
        assert node.cpu_committed == pytest.approx(0.0)
