"""End-to-end multi-tenant runs: coexistence, fairness, dynamics."""

import os

import pytest

from repro.cluster.spec import uniform_spec
from repro.errors import ConfigError
from repro.tenancy import (
    TenancySpec,
    TenantSpec,
    churn,
    poisson_arrivals,
    run_tenants,
    scaled_tracker_config,
)
from repro.tenancy.tenant import ResourceDemand

CHEAP = scaled_tracker_config(0.1, frame_period=0.2, cv=0.0)


def _fleet(n, **kwargs):
    return tuple(TenantSpec(f"t{i}", app_config=CHEAP, **kwargs)
                 for i in range(n))


class TestCoexistence:
    def test_tenants_share_one_engine(self):
        result = run_tenants(TenancySpec(tenants=_fleet(3), cluster=4,
                                         horizon=4.0))
        runtime = result.runtime
        # one engine, namespaced threads from every tenant
        assert "t0/gui" in runtime.drivers
        assert "t2/digitizer" in runtime.drivers
        assert all(r.state == "running" for r in result.records.values())
        assert all(r.deliveries > 0 for r in result.records.values())

    def test_equal_tenants_equal_goodput(self):
        # Identical derived workloads? No — each tenant derives its own
        # seed. But with cv=0 costs the goodputs still match exactly.
        result = run_tenants(TenancySpec(tenants=_fleet(6), cluster=6,
                                         horizon=5.0))
        deliveries = {r.deliveries for r in result.records.values()}
        assert len(deliveries) == 1

    def test_per_tenant_policies_are_private(self):
        tenants = (
            TenantSpec("throttled", app_config=CHEAP, policy="aru-max"),
            TenantSpec("free", app_config=CHEAP),
        )
        result = run_tenants(TenancySpec(tenants=tenants, cluster=2,
                                         horizon=5.0))
        runtime = result.runtime
        throttled = runtime.tenants["throttled"]
        free = runtime.tenants["free"]
        assert throttled.aru.enabled and not free.aru.enabled
        assert throttled.bus(None) is not free.bus(None)

    def test_jain_fairness_medium_fleet(self):
        # The acceptance bar scaled to tier-1 budget: a few dozen
        # equal-priority tenants under rstorm must share near-evenly.
        n = 60
        light = ResourceDemand(cpu=0.2, mem_bytes=2**20,
                               bandwidth_bps=1_000_000)
        result = run_tenants(TenancySpec(
            tenants=_fleet(n, demand=light),
            cluster=uniform_spec(8, ncpus=16),
            horizon=3.0,
        ))
        assert len(result.admitted) == n
        assert result.fairness.jain >= 0.9


class TestDynamics:
    def test_arrival_and_departure(self):
        tenants = (
            TenantSpec("early", app_config=CHEAP),
            TenantSpec("late", app_config=CHEAP, arrival=2.0, departure=4.0),
        )
        result = run_tenants(TenancySpec(tenants=tenants, cluster=2,
                                         horizon=6.0))
        late = result.records["late"]
        assert late.state == "departed"
        assert late.admitted_at == pytest.approx(2.0)
        assert late.departed_at == pytest.approx(4.0)
        # a departed tenant's storage is reclaimed
        runtime = result.runtime
        for name in runtime.tenants["late"].buffers:
            assert len(runtime.buffers[name]) == 0
        assert result.records["early"].state == "running"

    def test_queue_admission_waits_for_capacity(self):
        demand = ResourceDemand(cpu=1.0)
        tenants = (
            TenantSpec("hog", app_config=CHEAP, demand=demand,
                       departure=3.0),
            TenantSpec("waiter", app_config=CHEAP, demand=demand,
                       arrival=1.0),
        )
        result = run_tenants(TenancySpec(
            tenants=tenants, cluster=uniform_spec(1, ncpus=6),
            horizon=6.0))
        waiter = result.records["waiter"]
        assert waiter.state == "running"
        # admitted only after the hog departed at t=3
        assert waiter.admitted_at == pytest.approx(3.0)
        decisions = [(t, n, d) for t, n, d, _ in result.admission_log]
        assert (1.0, "waiter", "queued") in decisions

    def test_reject_admission_is_terminal(self):
        demand = ResourceDemand(cpu=1.0)
        tenants = (
            TenantSpec("hog", app_config=CHEAP, demand=demand,
                       departure=2.0),
            TenantSpec("turned-away", app_config=CHEAP, demand=demand,
                       arrival=1.0),
        )
        result = run_tenants(TenancySpec(
            tenants=tenants, cluster=uniform_spec(1, ncpus=6),
            admission="reject", horizon=5.0))
        assert result.records["turned-away"].state == "rejected"
        assert result.records["turned-away"].deliveries == 0

    def test_priority_orders_static_admission(self):
        demand = ResourceDemand(cpu=1.0)
        tenants = (
            TenantSpec("low", app_config=CHEAP, demand=demand, priority=0),
            TenantSpec("high", app_config=CHEAP, demand=demand, priority=5),
        )
        result = run_tenants(TenancySpec(
            tenants=tenants, cluster=uniform_spec(1, ncpus=6),
            admission="reject", horizon=3.0))
        assert result.records["high"].state == "running"
        assert result.records["low"].state == "rejected"

    def test_departure_while_queued_leaves_queue(self):
        demand = ResourceDemand(cpu=1.0)
        tenants = (
            TenantSpec("hog", app_config=CHEAP, demand=demand),
            TenantSpec("gives-up", app_config=CHEAP, demand=demand,
                       arrival=1.0, departure=2.0),
        )
        result = run_tenants(TenancySpec(
            tenants=tenants, cluster=uniform_spec(1, ncpus=6),
            horizon=4.0))
        record = result.records["gives-up"]
        assert record.state == "departed"
        assert record.admitted_at is None
        assert not result.runtime.queued


class TestDeterminism:
    def test_same_spec_same_results(self):
        spec = TenancySpec(tenants=_fleet(4), cluster=4, horizon=3.0,
                           seed=3)
        a = run_tenants(spec)
        b = run_tenants(spec)
        assert {n: r.deliveries for n, r in a.records.items()} == \
            {n: r.deliveries for n, r in b.records.items()}
        assert a.stats["engine"]["events_processed"] == \
            b.stats["engine"]["events_processed"]

    def test_poisson_arrivals_deterministic(self):
        base = _fleet(5)
        a = poisson_arrivals(base, rate=2.0, seed=1)
        b = poisson_arrivals(base, rate=2.0, seed=1)
        assert [t.arrival for t in a] == [t.arrival for t in b]
        assert all(t.arrival > 0 for t in a)
        assert [t.arrival for t in poisson_arrivals(base, rate=2.0, seed=2)] \
            != [t.arrival for t in a]

    def test_churn_stamps_departures(self):
        stamped = churn(_fleet(5), rate=2.0, mean_lifetime=3.0, seed=1)
        for spec in stamped:
            assert spec.departure > spec.arrival

    def test_churn_run_completes(self):
        tenants = churn(_fleet(6), rate=3.0, mean_lifetime=2.0, seed=5)
        result = run_tenants(TenancySpec(tenants=tenants, cluster=4,
                                         horizon=6.0))
        states = {r.state for r in result.records.values()}
        assert states <= {"running", "departed", "queued"}
        assert "departed" in states


class TestValidation:
    def test_duplicate_names_rejected(self):
        with pytest.raises(ConfigError, match="duplicate"):
            TenancySpec(tenants=(TenantSpec("a"), TenantSpec("a")))

    def test_two_blank_namespaces_rejected(self):
        with pytest.raises(ConfigError, match="blank-namespace"):
            TenancySpec(tenants=(TenantSpec("a", namespace=""),
                                 TenantSpec("b", namespace="")))

    def test_empty_population_rejected(self):
        with pytest.raises(ConfigError, match="at least one"):
            run_tenants(TenancySpec(horizon=1.0))

    def test_bad_cluster_rejected(self):
        with pytest.raises(ConfigError, match="cluster"):
            TenancySpec(tenants=(TenantSpec("a"),),
                        cluster="nope").resolve_cluster()

    def test_scaled_tracker_config_validation(self):
        with pytest.raises(ConfigError, match="factor"):
            scaled_tracker_config(0)
        cfg = scaled_tracker_config(0.5, cv=0.0)
        assert cfg.grab_cost.mean == pytest.approx(0.003)
        assert cfg.grab_cost.cv == 0.0


class TestTelemetry:
    def test_per_tenant_delivery_counters(self):
        result = run_tenants(TenancySpec(tenants=_fleet(2), cluster=2,
                                         horizon=3.0, telemetry=True))
        from repro.obs import prometheus_text

        hub = result.telemetry
        text = prometheus_text(hub)
        assert 'repro_tenant_deliveries_total{tenant="t0"}' in text
        assert 'repro_tenant_events_total{phase="admitted"}' in text
        # the counter agrees with the trace
        for name, record in result.records.items():
            value = hub.metrics.value("repro_tenant_deliveries_total",
                                      {"tenant": name})
            assert int(value) == record.deliveries


@pytest.mark.perf
@pytest.mark.skipif(
    not os.environ.get("REPRO_PERF"),
    reason="wall-clock gate; set REPRO_PERF=1 to run",
)
def test_thousand_tenants_on_32_nodes():
    """The acceptance-scale fleet: 1000 tenants, one engine, Jain >= 0.9."""
    import time

    cfg = scaled_tracker_config(0.02, frame_period=0.25, cv=0.0)
    tenants = tuple(
        TenantSpec(f"t{i}", app_config=cfg,
                   demand=ResourceDemand(cpu=0.05, mem_bytes=2**20,
                                         bandwidth_bps=1_000_000))
        for i in range(1000)
    )
    t0 = time.perf_counter()
    result = run_tenants(TenancySpec(
        tenants=tenants,
        cluster=uniform_spec(32, ncpus=16, bandwidth_bps=10**9),
        horizon=3.0,
    ))
    wall = time.perf_counter() - t0
    assert len(result.admitted) == 1000
    assert result.fairness.jain >= 0.9
    assert wall < 300, f"1000-tenant run took {wall:.0f}s"
