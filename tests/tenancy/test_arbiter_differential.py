"""The arbitration zero-cost contract: ``arbiter=None`` and
``arbiter="null"`` are indistinguishable — identical metrics
fingerprint, identical engine event count — on a *churned* fleet, the
very workload arbitration exists for. Turning the feature off must
leave no residue in the schedule."""

from types import SimpleNamespace

import pytest

from repro.bench.experiments import metrics_from_trace
from repro.bench.identity import metrics_fingerprint
from repro.cluster.spec import uniform_spec
from repro.tenancy import (
    TenancySpec,
    TenantSpec,
    churn,
    run_tenants,
    scaled_tracker_config,
)
from repro.tenancy.tenant import ResourceDemand

SEED = 11
HORIZON = 8.0


def _fingerprint(trace):
    metrics = metrics_from_trace("uniform2", "none", SEED, HORIZON, trace)
    return metrics_fingerprint(SimpleNamespace(metrics=metrics, extras={}))


def _spec(arbiter):
    cfg = scaled_tracker_config(0.1, frame_period=0.2, cv=0.0)
    tenants = churn(
        tuple(
            TenantSpec(f"t{i}", app_config=cfg,
                       demand=ResourceDemand(cpu=0.75, bandwidth_bps=100))
            for i in range(5)
        ),
        rate=1.0, mean_lifetime=4.0, seed=SEED,
    )
    return TenancySpec(
        tenants=tenants, cluster=uniform_spec(2, ncpus=4),
        seed=SEED, horizon=HORIZON, arbiter=arbiter,
    )


@pytest.fixture(scope="module")
def runs():
    return run_tenants(_spec(None)), run_tenants(_spec("null"))


def test_fingerprints_identical(runs):
    off, null = runs
    assert _fingerprint(off.trace) == _fingerprint(null.trace)


def test_event_counts_identical(runs):
    off, null = runs
    assert off.stats["engine"]["events_processed"] == \
        null.stats["engine"]["events_processed"]


def test_neither_reports_arbitration(runs):
    off, null = runs
    assert off.arbitration is None
    assert null.arbitration is None


def test_live_arbiter_changes_the_schedule(runs):
    # Sanity that the differential is meaningful: the proportional
    # arbiter on the same churned fleet adds events (its controller
    # ticks) — the contract is only that *off* costs nothing.
    off, _ = runs
    live = run_tenants(_spec("proportional"))
    assert live.arbitration is not None
    assert live.stats["engine"]["events_processed"] > \
        off.stats["engine"]["events_processed"]
