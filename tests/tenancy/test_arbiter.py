"""The arbitration plane: registry, policies on hand-built views, and
the runtime's revoke/migrate/budget machinery end to end."""

import pytest

from repro.cluster.spec import uniform_spec
from repro.errors import ConfigError
from repro.tenancy import (
    ArbiterConfig,
    TenancySpec,
    TenantSpec,
    available_arbiters,
    register_arbiter,
    resolve_arbiter_config,
    run_tenants,
    scaled_tracker_config,
)
from repro.tenancy.arbiter import (
    Arbiter,
    ArbiterView,
    Decision,
    DemandArbiter,
    ProportionalArbiter,
    TenantView,
    arbiters_help_text,
    build_arbiter,
)
from repro.tenancy.tenant import ResourceDemand


# -- view builders -----------------------------------------------------------

def _tenant(name, state="running", **kw):
    defaults = dict(
        priority=0, weight=1.0, base_cpu=2.0, demand_cpu=2.0, n_threads=4,
        budget=0.0, budget_used=0.0, nodes=("node0",), admitted_at=0.0,
    )
    defaults.update(kw)
    return TenantView(name=name, state=state, **defaults)


def _view(tenants, now=10.0, total=8.0, free=0.0, **kw):
    return ArbiterView(now=now, total_cpu=total, free_cpu=free,
                       tenants=tuple(tenants), **kw)


# -- registry ----------------------------------------------------------------

class TestRegistry:
    def test_builtins_listed(self):
        assert {"proportional", "demand", "null"} <= set(available_arbiters())

    def test_help_text_covers_builtins(self):
        text = arbiters_help_text()
        for name in available_arbiters():
            assert name in text

    def test_unknown_name_gets_suggestion(self):
        with pytest.raises(ConfigError, match="did you mean 'proportional'"):
            resolve_arbiter_config("proportionol")

    def test_name_resolves_to_config(self):
        config = resolve_arbiter_config("demand")
        assert isinstance(config, ArbiterConfig)
        assert config.policy == "demand"

    def test_none_means_off(self):
        assert resolve_arbiter_config(None) is None

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ConfigError, match="already registered"):
            register_arbiter("proportional", ProportionalArbiter)

    def test_custom_arbiter_registers_and_builds(self):
        class Greedy(Arbiter):
            name = "greedy-test"

            def decide(self, view):
                return []

        register_arbiter("greedy-test", lambda cfg: Greedy(), replace=True)
        built = build_arbiter(ArbiterConfig(policy="greedy-test"))
        assert isinstance(built, Greedy)


class TestConfigValidation:
    @pytest.mark.parametrize("kwargs", [
        {"interval": 0.0},
        {"patience": -1.0},
        {"min_residency": -0.1},
        {"target_utilization": 1.5},
        {"latency_bias": -1.0},
        {"max_revocations": -1},
    ])
    def test_bad_values_rejected(self, kwargs):
        with pytest.raises(ConfigError):
            ArbiterConfig(**kwargs)

    def test_bad_decision_kind_rejected(self):
        with pytest.raises(ConfigError, match="decision kind"):
            Decision("evaporate", "t")


# -- proportional ------------------------------------------------------------

class TestProportional:
    def test_budgets_fill_to_weighted_share(self):
        arb = ProportionalArbiter(ArbiterConfig())
        view = _view([
            _tenant("heavy", weight=3.0, base_cpu=2.0),
            _tenant("light", weight=1.0, base_cpu=2.0),
        ], total=8.0)
        by_tenant = {d.tenant: d for d in arb.decide(view)
                     if d.kind == "grow"}
        # heavy's share = 8 * 3/4 = 6 -> budget 4; light's share 2 -> 0.
        assert by_tenant["heavy"].cpu == pytest.approx(4.0)
        assert "light" not in by_tenant

    def test_shrink_when_over_share(self):
        arb = ProportionalArbiter(ArbiterConfig())
        view = _view([
            _tenant("a", weight=1.0, base_cpu=2.0, budget=5.0),
            _tenant("b", weight=1.0, base_cpu=2.0),
        ], total=8.0)
        shrink = [d for d in arb.decide(view) if d.kind == "shrink"]
        assert shrink and shrink[0].tenant == "a"
        assert shrink[0].cpu == pytest.approx(2.0)

    def test_starved_queued_tenant_triggers_revocation(self):
        arb = ProportionalArbiter(ArbiterConfig(patience=2.0,
                                                min_residency=3.0))
        view = _view([
            _tenant("hog", weight=1.0, base_cpu=6.0, admitted_at=0.0),
            _tenant("waiting", state="queued", base_cpu=0.0, demand_cpu=3.0,
                    queued_since=5.0, nodes=()),
        ], now=10.0, total=8.0, free=2.0)
        revokes = [d for d in arb.decide(view) if d.kind == "revoke"]
        assert revokes and revokes[0].tenant == "hog"
        assert "waiting" in revokes[0].reason

    def test_no_revocation_within_patience(self):
        arb = ProportionalArbiter(ArbiterConfig(patience=4.0))
        view = _view([
            _tenant("hog", base_cpu=6.0),
            _tenant("waiting", state="queued", base_cpu=0.0, demand_cpu=3.0,
                    queued_since=8.0, nodes=()),
        ], now=10.0, total=8.0, free=2.0)
        assert not [d for d in arb.decide(view) if d.kind == "revoke"]

    def test_no_revocation_within_min_residency(self):
        arb = ProportionalArbiter(ArbiterConfig(min_residency=5.0))
        view = _view([
            _tenant("young", base_cpu=6.0, admitted_at=8.0),
            _tenant("waiting", state="queued", base_cpu=0.0, demand_cpu=3.0,
                    queued_since=0.0, nodes=()),
        ], now=10.0, total=8.0, free=2.0)
        assert not [d for d in arb.decide(view) if d.kind == "revoke"]

    def test_no_revocation_when_free_cpu_suffices(self):
        # Fragmentation, not scarcity: revoking would be pure churn.
        arb = ProportionalArbiter(ArbiterConfig())
        view = _view([
            _tenant("hog", base_cpu=4.0),
            _tenant("waiting", state="queued", base_cpu=0.0, demand_cpu=3.0,
                    queued_since=0.0, nodes=()),
        ], now=10.0, total=8.0, free=4.0)
        assert not [d for d in arb.decide(view) if d.kind == "revoke"]

    def test_higher_priority_tenant_never_revoked_for_lower(self):
        arb = ProportionalArbiter(ArbiterConfig())
        view = _view([
            _tenant("vip", priority=2, base_cpu=6.0),
            _tenant("waiting", state="queued", priority=0, base_cpu=0.0,
                    demand_cpu=3.0, queued_since=0.0, nodes=()),
        ], now=10.0, total=8.0, free=2.0)
        assert not [d for d in arb.decide(view) if d.kind == "revoke"]

    def test_defrag_migration_for_fragmented_fit(self):
        arb = ProportionalArbiter(ArbiterConfig())
        view = _view([
            _tenant("scattered", base_cpu=2.0, nodes=("node0", "node1")),
            _tenant("waiting", state="queued", base_cpu=0.0, demand_cpu=3.0,
                    queued_since=0.0, nodes=()),
        ], now=10.0, total=8.0, free=4.0)
        migrates = [d for d in arb.decide(view) if d.kind == "migrate"]
        assert migrates and migrates[0].tenant == "scattered"

    def test_latency_bias_shifts_share_toward_backlogged(self):
        flat = ProportionalArbiter(ArbiterConfig(latency_bias=0.0))
        biased = ProportionalArbiter(ArbiterConfig(latency_bias=1.0))
        tenants = [
            _tenant("behind", base_cpu=2.0, backlog=40, n_threads=4),
            _tenant("ahead", base_cpu=2.0, backlog=0, n_threads=4),
        ]
        flat_b = {d.tenant: d.cpu for d in flat.decide(_view(tenants))
                  if d.kind in ("grow", "shrink")}
        biased_b = {d.tenant: d.cpu for d in biased.decide(_view(tenants))
                    if d.kind in ("grow", "shrink")}
        assert biased_b.get("behind", 0.0) > flat_b.get("behind", 0.0)


# -- demand ------------------------------------------------------------------

class TestDemand:
    def test_erlang_estimate_sizes_budget(self):
        arb = DemandArbiter(ArbiterConfig(policy="demand",
                                          target_utilization=0.7))
        view = _view([_tenant(
            "busy", base_cpu=2.0, demand_cpu=2.0, n_threads=4,
            arrival_rate=20.0, service_time=0.2, observed_cpu=4.0,
        )], total=16.0)
        grows = [d for d in arb.decide(view) if d.kind == "grow"]
        # lambda*s = 4 erlangs at 70% target needs >= 6 servers
        # (required_replicas), so > 3 cpu at 0.5/server -> budget > 1.
        assert grows and grows[0].tenant == "busy"
        assert grows[0].cpu > 0.0

    def test_observed_fallback_without_rates(self):
        arb = DemandArbiter(ArbiterConfig(policy="demand",
                                          target_utilization=0.5))
        view = _view([_tenant(
            "warm", base_cpu=2.0, observed_cpu=3.0, arrival_rate=0.0,
        )], total=16.0)
        grows = [d for d in arb.decide(view) if d.kind == "grow"]
        # 3.0 observed / 0.5 target = 6 estimated -> budget 4 over base.
        assert grows and grows[0].cpu == pytest.approx(4.0)

    def test_hot_node_sheds_smallest_tenant(self):
        arb = DemandArbiter(ArbiterConfig(policy="demand"))
        view = _view(
            [
                _tenant("big", observed_cpu=5.0, nodes=("node0",)),
                _tenant("small", observed_cpu=1.0, nodes=("node0",)),
            ],
            total=8.0,
            node_capacity={"node0": 4.0, "node1": 4.0},
            node_observed={"node0": 6.0, "node1": 0.0},
        )
        migrates = [d for d in arb.decide(view) if d.kind == "migrate"]
        assert migrates and migrates[0].tenant == "small"
        assert migrates[0].exclude == ("node0",)

    def test_no_migration_when_rest_of_cluster_full(self):
        arb = DemandArbiter(ArbiterConfig(policy="demand"))
        view = _view(
            [_tenant("small", observed_cpu=1.0, nodes=("node0",))],
            total=8.0,
            node_capacity={"node0": 4.0, "node1": 4.0},
            node_observed={"node0": 6.0, "node1": 4.5},
        )
        assert not [d for d in arb.decide(view) if d.kind == "migrate"]


# -- runtime integration -----------------------------------------------------

def _fleet(n, cluster_nodes=2, arbiter=None, horizon=8.0, cpu=0.5, **kw):
    cfg = scaled_tracker_config(0.1, frame_period=0.2, cv=0.0)
    return TenancySpec(
        tenants=tuple(
            TenantSpec(f"t{i}", app_config=cfg, weight=float(1 + i),
                       demand=ResourceDemand(cpu=cpu, bandwidth_bps=100))
            for i in range(n)
        ),
        cluster=uniform_spec(cluster_nodes, ncpus=4),
        arbiter=arbiter, horizon=horizon, **kw,
    )


class TestRuntimeIntegration:
    def test_revocation_time_shares_a_scarce_cluster(self):
        # One 2-node cluster, tenants too big to all fit: without an
        # arbiter the late arrivals starve in the queue forever; with
        # the proportional arbiter the hogs get revoked and the queue
        # drains — every tenant runs at some point.
        spec = _fleet(
            4, arbiter=ArbiterConfig(interval=1.0, patience=1.5,
                                     min_residency=2.0, max_revocations=1),
            horizon=16.0, cpu=1.0,
        )
        packed = run_tenants(spec.with_(arbiter=None))
        arbitrated = run_tenants(spec)
        starved = [r for r in packed.records.values() if r.residence == 0]
        assert starved, "scenario must actually starve someone"
        assert arbitrated.arbitration["revocations"] > 0
        assert all(r.residence > 0 for r in arbitrated.records.values())
        revoked = [r for r in arbitrated.records.values()
                   if r.revocations > 0]
        assert revoked
        phases = [row[2] for row in arbitrated.admission_log]
        assert "revoked" in phases

    def test_null_arbiter_installs_nothing(self):
        spec = _fleet(2, arbiter="null")
        result = run_tenants(spec)
        assert result.arbitration is None
        assert result.runtime.arbiter is None

    def test_revoked_tenant_readmits_and_counts_residence(self):
        spec = _fleet(
            4, arbiter=ArbiterConfig(interval=1.0, patience=1.5,
                                     min_residency=2.0),
            horizon=16.0, cpu=1.0,
        )
        result = run_tenants(spec)
        revoked = [r for r in result.records.values() if r.revocations > 0]
        assert revoked
        for rec in revoked:
            assert rec.residence > 0
            # A revoked-then-readmitted tenant keeps producing.
            assert rec.deliveries > 0

    def test_arbitrated_run_reports_budget_audit(self):
        spec = _fleet(3, arbiter="proportional")
        result = run_tenants(spec)
        assert result.arbitration["ticks"] > 0
        assert isinstance(result.arbitration["tenants"], dict)

    def test_migrate_tenant_moves_placement(self):
        from repro.tenancy.runtime import TenantRuntime
        from repro.tenancy.scheduler import Scheduler
        from repro.runtime.runtime import RuntimeConfig
        from repro.tenancy.tenant import Tenant

        cluster = uniform_spec(3, ncpus=8)
        config = RuntimeConfig(cluster=cluster, placement={})
        runtime = TenantRuntime(config, Scheduler(cluster))
        tenant = Tenant(TenantSpec(
            "mover", demand=ResourceDemand(cpu=0.25, bandwidth_bps=100)))
        assert runtime.arrive(tenant) == "admitted"
        before = dict(tenant.placement)
        moved = runtime.migrate_tenant(
            tenant, exclude=tuple(set(before.values())), reason="test")
        if moved:
            assert tenant.placement != before
            assert tenant.migrations == 1
            assert not (set(tenant.placement.values())
                        & set(before.values()))
        else:
            # No feasible placement off the original nodes: unchanged.
            assert tenant.placement == before
            ledger = runtime.scheduler.ledger
            total = sum(d.cpu for d in tenant.demands.values())
            assert ledger.tenant_committed["mover"][0] == pytest.approx(total)

    def test_budget_gates_scale_out(self):
        from repro.apps import elastic_pipeline
        from repro.tenancy.runtime import TenantRuntime
        from repro.tenancy.scheduler import Scheduler
        from repro.runtime.runtime import RuntimeConfig
        from repro.tenancy.tenant import Tenant

        graph = elastic_pipeline(replicas=1, max_replicas=6)
        cluster = uniform_spec(1, ncpus=16)
        config = RuntimeConfig(cluster=cluster, placement={})
        runtime = TenantRuntime(config, Scheduler(cluster))
        tenant = Tenant(TenantSpec(
            "elastic", app=graph,
            demand=ResourceDemand(cpu=0.5, bandwidth_bps=100)))
        assert runtime.arrive(tenant) == "admitted"
        runtime.arbiter = object()  # arbitration on: budget gate active
        stage = tenant.stages[0]
        # No budget granted -> scale-out denied despite idle node.
        assert runtime.scale_out(stage) is None
        assert runtime.scheduler.ledger.denials["elastic"] == 1
        # Grant one replica's worth -> exactly one scale-out succeeds.
        runtime.set_tenant_budget(tenant, 0.5)
        name = runtime.scale_out(stage)
        assert name is not None
        assert runtime.scale_out(stage) is None
        assert runtime.scheduler.used_budget("elastic") == pytest.approx(0.5)
        # Shrinking the budget to zero retires the granted replica.
        runtime.set_tenant_budget(tenant, 0.0)
        assert runtime.scheduler.used_budget("elastic") == 0.0
        assert name not in runtime.drivers
