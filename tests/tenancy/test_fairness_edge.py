"""Weighted-Jain edge cases the fleet reports actually hit: tenants
that never delivered, degenerate weight vectors, single-tenant runs,
and the utilization axes riding on the report."""

import math

import pytest

from repro.errors import ConfigError
from repro.tenancy import (
    FairnessReport,
    fairness_report,
    jain_index,
    weighted_jain_index,
)


class TestJainEdges:
    def test_empty_is_nan(self):
        assert math.isnan(jain_index([]))

    def test_all_zero_deliveries_is_perfectly_fair(self):
        # A fleet where nobody delivered is (vacuously) fair — the
        # 0/0 must not poison the report with nan.
        assert jain_index([0.0, 0.0, 0.0]) == 1.0

    def test_single_tenant_is_one(self):
        assert jain_index([42.0]) == pytest.approx(1.0)

    def test_one_zero_delivery_tenant_drags_index(self):
        # n tenants, one starved: J = (n-1)/n exactly for equal others.
        assert jain_index([5.0, 5.0, 5.0, 0.0]) == pytest.approx(3 / 4)

    def test_negative_allocation_rejected(self):
        with pytest.raises(ConfigError, match="non-negative"):
            jain_index([1.0, -0.1])


class TestWeightedJainEdges:
    def test_zero_total_weight_rejected(self):
        with pytest.raises(ConfigError, match="positive"):
            weighted_jain_index([1.0, 2.0], [0.0, 0.0])

    def test_any_nonpositive_weight_rejected(self):
        with pytest.raises(ConfigError, match="positive"):
            weighted_jain_index([1.0, 2.0], [1.0, -1.0])

    def test_length_mismatch_rejected(self):
        with pytest.raises(ConfigError, match="2 allocations but 1"):
            weighted_jain_index([1.0, 2.0], [1.0])

    def test_weight_proportional_allocation_scores_one(self):
        assert weighted_jain_index([1.0, 2.0, 3.0],
                                   [1.0, 2.0, 3.0]) == pytest.approx(1.0)

    def test_zero_deliveries_with_weights_still_fair(self):
        assert weighted_jain_index([0.0, 0.0], [1.0, 3.0]) == 1.0

    def test_single_tenant_is_one(self):
        assert weighted_jain_index([7.0], [2.0]) == pytest.approx(1.0)


class TestReport:
    def test_empty_report_is_nan_not_crash(self):
        report = fairness_report({}, {})
        assert math.isnan(report.jain)
        assert math.isnan(report.weighted_jain)
        assert report.format()  # renders without raising

    def test_zero_delivery_tenant_included(self):
        report = fairness_report({"a": 2.0, "b": 0.0}, {"a": 1.0, "b": 1.0})
        assert report.jain == pytest.approx(0.5)
        assert report.shares == {"a": 1.0, "b": 0.0}

    def test_all_zero_shares_are_zero(self):
        report = fairness_report({"a": 0.0, "b": 0.0}, {"a": 1.0, "b": 1.0})
        assert report.shares == {"a": 0.0, "b": 0.0}
        assert report.jain == 1.0

    def test_missing_weight_defaults_to_one(self):
        report = fairness_report({"a": 1.0, "b": 1.0}, {"a": 1.0})
        assert report.weights["b"] == 1.0

    def test_utilization_rides_along_and_formats(self):
        util = {"node0": {"cpu": 0.5, "mem": 0.25, "bandwidth": 1.0}}
        report = fairness_report({"a": 1.0}, {"a": 1.0}, utilization=util)
        assert report.utilization == util
        text = report.format()
        assert "utilization:" in text
        assert "bandwidth=100.0%" in text

    def test_utilization_defaults_empty(self):
        assert fairness_report({"a": 1.0}, {"a": 1.0}).utilization == {}
        assert FairnessReport().utilization == {}
