"""TenantSpec validation, seed derivation, and fairness math."""

import math

import pytest

from repro.errors import ConfigError
from repro.tenancy import (
    ResourceDemand,
    TenantSpec,
    fairness_report,
    jain_index,
    weighted_jain_index,
)
from repro.tenancy.tenant import Tenant


class TestResourceDemand:
    def test_vector(self):
        d = ResourceDemand(cpu=1.5, mem_bytes=100, bandwidth_bps=10)
        assert d.as_vector() == (1.5, 100.0, 10.0)

    def test_negative_rejected(self):
        with pytest.raises(ConfigError):
            ResourceDemand(cpu=-1)


class TestTenantSpec:
    def test_validation(self):
        with pytest.raises(ConfigError, match="non-empty"):
            TenantSpec(name="")
        with pytest.raises(ConfigError, match="'/'"):
            TenantSpec(name="a/b")
        with pytest.raises(ConfigError, match="weight"):
            TenantSpec(name="a", weight=0)
        with pytest.raises(ConfigError, match="arrival"):
            TenantSpec(name="a", arrival=-1)
        with pytest.raises(ConfigError, match="departure"):
            TenantSpec(name="a", arrival=5.0, departure=5.0)
        with pytest.raises(ConfigError, match="namespace"):
            TenantSpec(name="a", namespace="x")

    def test_prefix(self):
        assert TenantSpec(name="a").prefix == "a/"
        assert TenantSpec(name="a", namespace="").prefix == ""
        assert TenantSpec(name="a", namespace="x/").prefix == "x/"

    def test_derive_seed_stable_and_name_dependent(self):
        a = TenantSpec(name="a")
        assert a.derive_seed(0) == a.derive_seed(0)
        assert a.derive_seed(0) != a.derive_seed(1)
        assert a.derive_seed(0) != TenantSpec(name="b").derive_seed(0)
        assert TenantSpec(name="a", seed=7).derive_seed(0) == 7

    def test_demand_override(self):
        spec = TenantSpec(
            name="a",
            demand=ResourceDemand(cpu=0.5),
            thread_demands={"gui": ResourceDemand(cpu=2.0)},
        )
        tenant = Tenant(spec)
        assert tenant.demand_for("gui").cpu == 2.0
        assert tenant.demand_for("digitizer").cpu == 0.5

    def test_build_fills_demands_and_neighbors(self):
        tenant = Tenant(TenantSpec(name="a"))
        tenant.build(root_seed=0)
        assert set(tenant.demands) == {
            "digitizer", "change_detection", "histogram",
            "target_detect1", "target_detect2", "gui",
        }
        neighbors = tenant.neighbors()
        assert "change_detection" in neighbors["digitizer"]
        assert "gui" in neighbors["target_detect1"]
        assert "gui" not in neighbors["digitizer"]

    def test_local_name(self):
        tenant = Tenant(TenantSpec(name="a"))
        assert tenant.local_name("a/gui") == "gui"
        assert tenant.local_name("other") == "other"

    def test_unknown_app_rejected(self):
        with pytest.raises(ConfigError, match="unknown app"):
            TenantSpec(name="a", app="nope").resolve_graph()


class TestJain:
    def test_equal_allocations_score_one(self):
        assert jain_index([3, 3, 3]) == pytest.approx(1.0)

    def test_single_hog_scores_one_over_n(self):
        assert jain_index([9, 0, 0]) == pytest.approx(1 / 3)

    def test_empty_is_nan_and_zero_is_fair(self):
        assert math.isnan(jain_index([]))
        assert jain_index([0, 0]) == 1.0

    def test_negative_rejected(self):
        with pytest.raises(ConfigError):
            jain_index([1, -1])

    def test_weighted_normalizes(self):
        # a 2x-weight tenant earning 2x goodput is perfectly fair
        assert weighted_jain_index([2.0, 1.0], [2.0, 1.0]) == pytest.approx(1.0)
        assert weighted_jain_index([1.0, 1.0], [2.0, 1.0]) < 1.0

    def test_weighted_validation(self):
        with pytest.raises(ConfigError, match="weights"):
            weighted_jain_index([1.0], [1.0, 2.0])
        with pytest.raises(ConfigError, match="positive"):
            weighted_jain_index([1.0], [0.0])

    def test_report(self):
        report = fairness_report({"a": 2.0, "b": 2.0}, {"a": 1.0, "b": 1.0})
        assert report.jain == pytest.approx(1.0)
        assert report.shares == {"a": 0.5, "b": 0.5}
        assert "jain=1.000" in report.format()
