"""Tests for cluster specifications."""

import pytest

from repro.cluster import ClusterSpec, LinkSpec, NodeSpec, config1_spec, config2_spec
from repro.cluster.spec import PairLink, heterogeneous_spec, uniform_spec
from repro.errors import ConfigError


class TestNodeSpec:
    def test_defaults(self):
        n = NodeSpec(name="n0")
        assert n.ncpus == 8
        assert n.smp_contention_alpha == 0.0

    def test_validation(self):
        with pytest.raises(ConfigError):
            NodeSpec(name="n", ncpus=0)
        with pytest.raises(ConfigError):
            NodeSpec(name="n", mem_bytes=0)
        with pytest.raises(ConfigError):
            NodeSpec(name="n", smp_contention_alpha=-0.1)
        with pytest.raises(ConfigError):
            NodeSpec(name="n", sched_noise_cv=-0.1)


class TestLinkSpec:
    def test_transfer_time_includes_latency_and_bandwidth(self):
        link = LinkSpec(latency_s=0.001, bandwidth_bps=1_000_000)
        assert link.transfer_time(500_000) == pytest.approx(0.501)

    def test_zero_bytes_costs_latency_only(self):
        link = LinkSpec(latency_s=0.002, bandwidth_bps=10**9)
        assert link.transfer_time(0) == pytest.approx(0.002)

    def test_negative_size_rejected(self):
        with pytest.raises(ConfigError):
            LinkSpec().transfer_time(-1)

    def test_validation(self):
        with pytest.raises(ConfigError):
            LinkSpec(latency_s=-1)
        with pytest.raises(ConfigError):
            LinkSpec(bandwidth_bps=0)


class TestClusterSpec:
    def test_node_lookup(self):
        spec = config2_spec()
        assert spec.node_spec("node3").name == "node3"

    def test_unknown_node_raises(self):
        with pytest.raises(ConfigError):
            config1_spec().node_spec("nope")

    def test_duplicate_names_rejected(self):
        with pytest.raises(ConfigError):
            ClusterSpec(nodes=(NodeSpec(name="a"), NodeSpec(name="a")))

    def test_empty_rejected(self):
        with pytest.raises(ConfigError):
            ClusterSpec(nodes=())

    def test_capacity_vector(self):
        node = NodeSpec(name="n", ncpus=4, mem_bytes=100, bandwidth_bps=10)
        assert node.capacity_vector == (4.0, 100, 10)


class TestPairLink:
    def _nodes(self):
        return (NodeSpec(name="a"), NodeSpec(name="b"), NodeSpec(name="c"))

    def test_override_wins_only_for_its_pair(self):
        slow = LinkSpec(latency_s=0.1, bandwidth_bps=1_000)
        spec = ClusterSpec(nodes=self._nodes(),
                           links=(PairLink("a", "b", slow),))
        assert spec.link_spec("a", "b") is slow
        assert spec.link_spec("b", "a") is spec.link  # directed
        assert spec.link_spec("a", "c") is spec.link

    def test_empty_endpoint_rejected(self):
        with pytest.raises(ConfigError, match="non-empty"):
            PairLink("", "b")

    def test_self_link_rejected(self):
        with pytest.raises(ConfigError, match="self-link"):
            PairLink("a", "a")

    def test_duplicate_link_endpoints_rejected(self):
        with pytest.raises(ConfigError, match="duplicate link"):
            ClusterSpec(nodes=self._nodes(),
                        links=(PairLink("a", "b"), PairLink("a", "b")))

    def test_unknown_endpoint_rejected(self):
        with pytest.raises(ConfigError, match="not a node"):
            ClusterSpec(nodes=self._nodes(), links=(PairLink("a", "zz"),))

    def test_non_pairlink_rejected(self):
        with pytest.raises(ConfigError, match="PairLink"):
            ClusterSpec(nodes=self._nodes(), links=(("a", "b"),))


class TestSpecFactories:
    def test_uniform_spec_shape(self):
        spec = uniform_spec(3, ncpus=2)
        assert spec.node_names == ["node0", "node1", "node2"]
        assert all(n.ncpus == 2 for n in spec.nodes)

    def test_heterogeneous_spec_shape(self):
        spec = heterogeneous_spec(n_big=2, n_small=3)
        names = spec.node_names
        assert names == ["big0", "big1", "small0", "small1", "small2"]
        big, small = spec.node_spec("big0"), spec.node_spec("small0")
        assert big.ncpus > small.ncpus
        assert big.bandwidth_bps > small.bandwidth_bps


class TestPaperConfigs:
    def test_config1_single_contended_node(self):
        spec = config1_spec()
        assert len(spec.nodes) == 1
        assert spec.nodes[0].smp_contention_alpha > 0

    def test_config2_five_uncontended_nodes(self):
        spec = config2_spec()
        assert len(spec.nodes) == 5
        assert all(n.smp_contention_alpha == 0 for n in spec.nodes)

    def test_config2_node_count_override(self):
        assert len(config2_spec(n_nodes=3).nodes) == 3

    def test_names_distinct(self):
        assert config1_spec().name != config2_spec().name
