"""Tests for the simulated SMP node."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import Node, NodeSpec, contention_factor
from repro.errors import SimulationError
from repro.sim import Engine, RngRegistry


def make_node(**kw):
    seed = kw.pop("seed", 0)
    eng = Engine()
    spec = NodeSpec(name=kw.pop("name", "n0"), **kw)
    return eng, Node(eng, spec, RngRegistry(seed=seed))


class TestContentionFactor:
    def test_no_contention(self):
        assert contention_factor(0.5, 0) == 1.0

    def test_linear_in_others(self):
        assert contention_factor(0.1, 3) == pytest.approx(1.3)

    def test_zero_alpha(self):
        assert contention_factor(0.0, 100) == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            contention_factor(-0.1, 0)
        with pytest.raises(ValueError):
            contention_factor(0.1, -1)

    @given(st.floats(0, 1), st.integers(0, 64))
    def test_factor_at_least_one(self, alpha, others):
        assert contention_factor(alpha, others) >= 1.0


class TestNodeCompute:
    def test_noiseless_compute_is_exact(self):
        eng, node = make_node(sched_noise_cv=0.0)

        def proc(eng):
            actual = yield eng.process(node.compute(0.5))
            return actual

        p = eng.process(proc(eng))
        assert eng.run_until_event(p) == pytest.approx(0.5)
        assert eng.now == pytest.approx(0.5)

    def test_busy_time_accumulates(self):
        eng, node = make_node(sched_noise_cv=0.0)

        def proc(eng):
            yield eng.process(node.compute(0.5))
            yield eng.process(node.compute(0.25))

        eng.process(proc(eng))
        eng.run()
        assert node.busy_time == pytest.approx(0.75)

    def test_cpu_pool_queues_when_oversubscribed(self):
        eng, node = make_node(ncpus=1, sched_noise_cv=0.0)
        done = []

        def proc(eng, label):
            yield eng.process(node.compute(1.0))
            done.append((label, eng.now))

        eng.process(proc(eng, "a"))
        eng.process(proc(eng, "b"))
        eng.run()
        assert done == [("a", pytest.approx(1.0)), ("b", pytest.approx(2.0))]

    def test_parallel_when_cpus_available(self):
        eng, node = make_node(ncpus=2, sched_noise_cv=0.0)
        done = []

        def proc(eng, label):
            yield eng.process(node.compute(1.0))
            done.append(eng.now)

        eng.process(proc(eng, "a"))
        eng.process(proc(eng, "b"))
        eng.run()
        assert done == [pytest.approx(1.0), pytest.approx(1.0)]

    def test_contention_inflates_second_segment(self):
        eng, node = make_node(ncpus=4, smp_contention_alpha=0.5, sched_noise_cv=0.0)
        done = {}

        def first(eng):
            yield eng.process(node.compute(2.0))
            done["first"] = eng.now

        def second(eng):
            yield eng.timeout(0.1)  # starts while `first` is active
            actual = yield eng.process(node.compute(1.0))
            done["second_actual"] = actual

        eng.process(first(eng))
        eng.process(second(eng))
        eng.run()
        # second saw 1 active other segment: 1.0 * (1 + 0.5*1) = 1.5
        assert done["second_actual"] == pytest.approx(1.5)

    def test_zero_duration_compute(self):
        eng, node = make_node(sched_noise_cv=0.3)

        def proc(eng):
            actual = yield eng.process(node.compute(0.0))
            return actual

        p = eng.process(proc(eng))
        assert eng.run_until_event(p) == 0.0

    def test_negative_duration_rejected(self):
        eng, node = make_node()
        with pytest.raises(SimulationError):
            node.effective_duration(-1.0)

    def test_noise_is_reproducible(self):
        def run_once():
            eng, node = make_node(sched_noise_cv=0.2, seed=5)
            out = []

            def proc(eng):
                for _ in range(5):
                    actual = yield eng.process(node.compute(0.1))
                    out.append(actual)

            eng.process(proc(eng))
            eng.run()
            return out

        assert run_once() == run_once()

    @settings(max_examples=25, deadline=None)
    @given(cv=st.floats(0.0, 0.5), dur=st.floats(0.001, 10.0))
    def test_effective_duration_positive(self, cv, dur):
        eng, node = make_node(sched_noise_cv=cv)
        assert node.effective_duration(dur) > 0


class TestNodeMemory:
    def test_alloc_free_cycle(self):
        _, node = make_node()
        node.alloc(100)
        node.alloc(50)
        assert node.mem_in_use == 150
        node.free(100)
        assert node.mem_in_use == 50
        assert node.mem_peak == 150

    def test_over_free_raises(self):
        _, node = make_node()
        node.alloc(10)
        with pytest.raises(SimulationError):
            node.free(11)

    def test_negative_alloc_free_rejected(self):
        _, node = make_node()
        with pytest.raises(SimulationError):
            node.alloc(-1)
        with pytest.raises(SimulationError):
            node.free(-1)
