"""Tests for the simulated interconnect."""

import pytest

from repro.cluster import LinkSpec, Network, config2_spec
from repro.errors import ConfigError
from repro.sim import Engine


def make_net(latency=0.001, bw=1_000_000):
    eng = Engine()
    spec = config2_spec(link=LinkSpec(latency_s=latency, bandwidth_bps=bw))
    return eng, Network(eng, spec)


def test_transfer_time_matches_linkspec():
    eng, net = make_net(latency=0.001, bw=1_000_000)

    def proc(eng):
        t = yield eng.process(net.transfer("node0", "node1", 500_000))
        return t

    p = eng.process(proc(eng))
    assert eng.run_until_event(p) == pytest.approx(0.501)
    assert eng.now == pytest.approx(0.501)


def test_local_transfer_is_free():
    eng, net = make_net()

    def proc(eng):
        t = yield from net.transfer("node0", "node0", 10**9)
        return t

    p = eng.process(proc(eng))
    assert eng.run_until_event(p) == 0.0
    assert eng.now == 0.0


def test_link_serializes_transfers():
    eng, net = make_net(latency=0.0, bw=1_000_000)
    done = []

    def proc(eng, label):
        yield eng.process(net.transfer("node0", "node1", 1_000_000))
        done.append((label, eng.now))

    eng.process(proc(eng, "a"))
    eng.process(proc(eng, "b"))
    eng.run()
    assert done == [("a", pytest.approx(1.0)), ("b", pytest.approx(2.0))]


def test_distinct_pairs_do_not_serialize():
    eng, net = make_net(latency=0.0, bw=1_000_000)
    done = []

    def proc(eng, dst):
        yield eng.process(net.transfer("node0", dst, 1_000_000))
        done.append(eng.now)

    eng.process(proc(eng, "node1"))
    eng.process(proc(eng, "node2"))
    eng.run()
    assert done == [pytest.approx(1.0), pytest.approx(1.0)]


def test_direction_matters():
    eng, net = make_net()
    assert net.link("node0", "node1") is not net.link("node1", "node0")
    assert net.link("node0", "node1") is net.link("node0", "node1")


def test_self_link_rejected():
    _, net = make_net()
    with pytest.raises(ConfigError):
        net.link("node0", "node0")


def test_unknown_node_rejected():
    _, net = make_net()
    with pytest.raises(ConfigError):
        net.link("node0", "ghost")


def test_byte_accounting():
    eng, net = make_net()

    def proc(eng):
        yield eng.process(net.transfer("node0", "node1", 1000))
        yield eng.process(net.transfer("node2", "node3", 500))

    eng.process(proc(eng))
    eng.run()
    assert net.total_bytes == 1500
    assert net.link("node0", "node1").bytes_transferred == 1000
