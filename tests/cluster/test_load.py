"""Tests for background-load injection."""

import pytest

from repro.cluster import LoadSpec, Node, NodeSpec, spawn_load
from repro.errors import ConfigError
from repro.sim import Engine, RngRegistry


class TestLoadSpec:
    def test_validation(self):
        with pytest.raises(ConfigError):
            LoadSpec(node="n", start=5.0, stop=5.0)
        with pytest.raises(ConfigError):
            LoadSpec(node="n", start=0.0, stop=1.0, threads=0)
        with pytest.raises(ConfigError):
            LoadSpec(node="n", start=0.0, stop=1.0, burst_s=0.0)
        with pytest.raises(ConfigError):
            LoadSpec(node="n", start=0.0, stop=1.0, duty=0.0)
        with pytest.raises(ConfigError):
            LoadSpec(node="n", start=0.0, stop=1.0, duty=1.5)


class TestLoadProcess:
    def _run(self, spec, horizon=10.0, ncpus=4):
        eng = Engine()
        node = Node(eng, NodeSpec(name="n0", ncpus=ncpus, sched_noise_cv=0.0),
                    RngRegistry(0))
        spawn_load(eng, node, spec)
        eng.run(until=horizon)
        return node

    def test_full_duty_busy_time_matches_window(self):
        node = self._run(LoadSpec(node="n0", start=2.0, stop=6.0, threads=1))
        assert node.busy_time == pytest.approx(4.0, rel=0.02)

    def test_threads_multiply_busy_time(self):
        node = self._run(LoadSpec(node="n0", start=0.0, stop=4.0, threads=3))
        assert node.busy_time == pytest.approx(12.0, rel=0.02)

    def test_half_duty_halves_busy_time(self):
        node = self._run(
            LoadSpec(node="n0", start=0.0, stop=8.0, threads=1, duty=0.5)
        )
        assert node.busy_time == pytest.approx(4.0, rel=0.1)

    def test_load_stops_after_window(self):
        eng = Engine()
        node = Node(eng, NodeSpec(name="n0", sched_noise_cv=0.0), RngRegistry(0))
        spawn_load(eng, node, LoadSpec(node="n0", start=0.0, stop=1.0))
        eng.run(until=1.5)
        busy_at_window = node.busy_time
        eng.run(until=10.0)
        assert node.busy_time == busy_at_window
        assert node.active_segments == 0


class TestRuntimeIntegration:
    def test_load_slows_application_during_burst(self):
        from repro.aru import aru_disabled
        from repro.cluster import ClusterSpec
        from repro.runtime import (
            Compute, PeriodicitySync, Put, Runtime, RuntimeConfig, TaskGraph,
        )

        def worker(ctx):
            ts = 0
            while True:
                yield Compute(0.05)
                yield Put("c", ts=ts, size=1)
                ts += 1
                yield PeriodicitySync()

        g = TaskGraph()
        g.add_thread("w", worker)
        g.add_channel("c").connect("w", "c")
        cluster = ClusterSpec(
            nodes=(NodeSpec(name="node0", ncpus=1, sched_noise_cv=0.0),)
        )
        # load quantum matching the worker's: FIFO alternation halves it
        burst = LoadSpec(node="node0", start=5.0, stop=10.0, threads=1,
                         burst_s=0.05)
        rec = Runtime(
            g,
            RuntimeConfig(cluster=cluster, aru=aru_disabled(), loads=(burst,)),
        ).run(until=15.0)
        before = [it for it in rec.iterations_of("w") if it.t_end < 5.0]
        during = [it for it in rec.iterations_of("w")
                  if 5.0 < it.t_start and it.t_end < 10.0]
        after = [it for it in rec.iterations_of("w") if it.t_start > 10.0]
        rate = lambda its: len(its) / 5.0
        # with 1 CPU shared against a full-duty load loop, the worker
        # runs at roughly half speed during the burst
        assert rate(during) < 0.7 * rate(before)
        assert rate(after) > 0.8 * rate(before)

    def test_unknown_node_rejected(self):
        from repro.runtime import Put, Runtime, RuntimeConfig, TaskGraph

        def w(ctx):
            yield Put("c", ts=0, size=1)

        g = TaskGraph()
        g.add_thread("w", w)
        g.add_channel("c").connect("w", "c")
        with pytest.raises(ConfigError):
            Runtime(
                g,
                RuntimeConfig(
                    loads=(LoadSpec(node="mars", start=0.0, stop=1.0),)
                ),
            )

    def test_non_loadspec_rejected(self):
        from repro.runtime import Put, Runtime, RuntimeConfig, TaskGraph

        def w(ctx):
            yield Put("c", ts=0, size=1)

        g = TaskGraph()
        g.add_thread("w", w)
        g.add_channel("c").connect("w", "c")
        with pytest.raises(ConfigError):
            Runtime(g, RuntimeConfig(loads=("burst",)))
