"""FaultInjector/FaultDetector against the two-node pipeline."""

import pytest

from repro.errors import FaultError
from repro.faults import FaultInjector, FaultSchedule, FaultSpec
from repro.metrics import trace_to_dict


def install(runtime, *faults, **kwargs):
    return FaultInjector(runtime, FaultSchedule(faults), **kwargs).install()


class TestCrashDetection:
    def test_crash_is_detected_within_poll_interval(self, make_pipeline):
        rt = make_pipeline()
        inj = install(
            rt, FaultSpec(kind="thread_crash", at=1.0, target="dst"),
            detect_interval=0.1)
        rt.run(until=2.0)
        assert not rt.thread_alive("dst")
        (record,) = inj.log.records
        assert record.detected and record.detected_by == "thread_dead"
        assert record.detection_latency == pytest.approx(0.1, abs=0.11)
        assert not record.recovered

    def test_injection_at_time_zero(self, make_pipeline):
        rt = make_pipeline()
        inj = install(rt, FaultSpec(kind="thread_crash", at=0.0, target="src"))
        rt.run(until=1.0)
        assert not rt.thread_alive("src")
        assert inj.log.records[0].t_injected == 0.0


class TestStall:
    def test_stall_detected_and_self_recovers(self, make_pipeline):
        rt = make_pipeline()
        inj = install(
            rt, FaultSpec(kind="thread_stall", at=1.0, target="dst",
                          duration=1.0),
            detect_interval=0.1, stall_timeout=0.3)
        rt.run(until=4.0)
        (record,) = inj.log.records
        assert record.detected and record.detected_by == "thread_stalled"
        assert record.recovered and record.t_recovered == pytest.approx(2.0)
        # the thread survived the stall and went back to work
        assert rt.thread_alive("dst")
        late = [it for it in rt.recorder.iterations_of("dst")
                if it.t_end > 2.5]
        assert late

    def test_blocked_thread_is_not_flagged_as_stalled(self, make_pipeline):
        """A sink starved of input is waiting, not stalled."""
        rt = make_pipeline()
        inj = install(
            rt, FaultSpec(kind="thread_crash", at=1.0, target="src"),
            detect_interval=0.1, stall_timeout=0.3)
        rt.run(until=4.0)
        stalls = [s for s in inj.log.symptoms if s.symptom == "thread_stalled"]
        assert not stalls


class TestRestart:
    def test_restart_revives_a_crashed_thread(self, make_pipeline):
        rt = make_pipeline()
        inj = install(
            rt,
            FaultSpec(kind="thread_crash", at=1.0, target="dst"),
            FaultSpec(kind="thread_restart", at=2.0, target="dst"),
            detect_interval=0.1)
        rt.run(until=4.0)
        assert rt.thread_alive("dst")
        crash, restart = inj.log.records
        assert crash.recovered and crash.t_recovered == pytest.approx(2.0)
        assert restart.detected and restart.detected_by == "thread_back"
        late = [it for it in rt.recorder.iterations_of("dst")
                if it.t_end > 2.0]
        assert late

    def test_restart_reregisters_connections_exactly_once(self, make_pipeline):
        rt = make_pipeline()
        channel = rt.channel("c")
        consumers_before = len(channel.in_conns)
        install(
            rt,
            FaultSpec(kind="thread_crash", at=1.0, target="dst"),
            FaultSpec(kind="thread_restart", at=2.0, target="dst"),
            FaultSpec(kind="thread_restart", at=3.0, target="dst"))
        rt.run(until=4.0)
        assert len(channel.in_conns) == consumers_before

    def test_restart_of_a_live_thread_is_a_clean_respawn(self, make_pipeline):
        rt = make_pipeline()
        install(rt, FaultSpec(kind="thread_restart", at=1.0, target="src"))
        rt.run(until=2.0)
        assert rt.thread_alive("src")
        assert len(rt.channel("c").out_conns) == 1


class TestNodeFaults:
    def test_node_crash_kills_residents_and_is_detected(self, make_pipeline):
        rt = make_pipeline()
        inj = install(
            rt, FaultSpec(kind="node_crash", at=1.0, target="n1"),
            detect_interval=0.1)
        rt.run(until=2.0)
        assert not rt.thread_alive("dst")
        assert rt.nodes["n1"].failed
        (record,) = inj.log.records
        assert record.detected and record.detected_by == "node_dead"

    def test_node_restart_respawns_dead_residents(self, make_pipeline):
        rt = make_pipeline()
        inj = install(
            rt,
            FaultSpec(kind="node_crash", at=1.0, target="n1"),
            FaultSpec(kind="node_restart", at=2.0, target="n1"),
            detect_interval=0.1)
        rt.run(until=4.0)
        assert rt.thread_alive("dst")
        assert not rt.nodes["n1"].failed
        assert rt.nodes["n1"].crash_count == 1
        crash, restart = inj.log.records
        assert crash.recovered
        assert restart.detected and restart.detected_by == "node_back"


class TestInstallContract:
    def test_empty_schedule_is_bit_identical_to_no_injector(
            self, make_pipeline):
        from repro.runtime.connection import reset_conn_ids
        from repro.runtime.item import reset_item_ids

        reset_item_ids(), reset_conn_ids()
        plain = make_pipeline()
        plain_trace = plain.run(until=3.0)

        reset_item_ids(), reset_conn_ids()
        chaotic = make_pipeline()
        FaultInjector(chaotic, FaultSchedule()).install()
        chaos_trace = chaotic.run(until=3.0)

        assert trace_to_dict(chaos_trace) == trace_to_dict(plain_trace)
        assert chaotic.fault_hook is None

    def test_install_twice_raises(self, make_pipeline):
        rt = make_pipeline()
        inj = FaultInjector(rt, FaultSchedule())
        inj.install()
        with pytest.raises(FaultError, match="twice"):
            inj.install()

    @pytest.mark.parametrize("spec", [
        FaultSpec(kind="thread_crash", at=1.0, target="ghost"),
        FaultSpec(kind="node_crash", at=1.0, target="n9"),
        FaultSpec(kind="link_restore", at=1.0, target="n0->n9"),
        FaultSpec(kind="link_restore", at=1.0, target="n0->n0"),
        FaultSpec(kind="message_drop", at=1.0, target="nope->n1",
                  probability=0.5),
    ])
    def test_unknown_targets_rejected_at_install(self, make_pipeline, spec):
        rt = make_pipeline()
        with pytest.raises(FaultError, match="targets"):
            FaultInjector(rt, FaultSchedule([spec])).install()

    def test_detector_parameters_validated(self, make_pipeline):
        rt = make_pipeline()
        with pytest.raises(FaultError, match="interval"):
            FaultInjector(rt, FaultSchedule(), detect_interval=0.0)
        with pytest.raises(FaultError, match="stall_timeout"):
            FaultInjector(rt, FaultSchedule(), stall_timeout=-1.0)
        with pytest.raises(FaultError, match="degrade_ratio"):
            FaultInjector(rt, FaultSchedule(), degrade_ratio=1.0)
