"""Ghost-consumer regression: stale summary slots must stop throttling.

Under min-compression a source throttles to its slowest consumer's
advertised period. When that consumer dies its last advertisement stays
in the backwardSTP slots forever — unless a staleness TTL evicts it.
These tests pin the TTL mechanism end-to-end: with a TTL the source
un-throttles back toward its intrinsic period within ~2x TTL (channel
slot, then the thread's own slot); without one it stays pinned to the
ghost.
"""

import pytest

from repro.aru import aru_min
from repro.faults import (
    FaultInjector,
    FaultSchedule,
    FaultSpec,
    mean_period,
)

TTL = 1.0
T_KILL = 3.0
HORIZON = 10.0
# source: 10 ms sleep; sink: 20 ms compute + ~2 ms transfer


def run_with(ttl, make_pipeline):
    rt = make_pipeline(aru=aru_min().with_(staleness_ttl=ttl))
    FaultInjector(rt, FaultSchedule(
        [FaultSpec(kind="thread_crash", at=T_KILL, target="dst")]
    )).install()
    trace = rt.run(until=HORIZON)
    throttled = mean_period(trace, "src", T_KILL - 1.5, T_KILL)
    post = mean_period(trace, "src", T_KILL + 2 * TTL + 0.5, HORIZON)
    return throttled, post


def test_source_unthrottles_within_two_ttls_of_the_kill(make_pipeline):
    throttled, post = run_with(TTL, make_pipeline)
    assert throttled > 0.02  # pinned to the consumer pre-kill
    assert post < 0.015      # back near the intrinsic 10 ms period


def test_without_ttl_the_ghost_pins_the_throttle_forever(make_pipeline):
    throttled, post = run_with(None, make_pipeline)
    assert throttled > 0.02
    assert post == pytest.approx(throttled, rel=0.25)
    assert post > 0.02


def test_restart_repropagates_and_rethrottles(make_pipeline):
    rt = make_pipeline(aru=aru_min().with_(staleness_ttl=TTL))
    FaultInjector(rt, FaultSchedule([
        FaultSpec(kind="thread_crash", at=T_KILL, target="dst"),
        FaultSpec(kind="thread_restart", at=7.0, target="dst"),
    ])).install()
    trace = rt.run(until=14.0)
    throttled = mean_period(trace, "src", 1.5, T_KILL)
    ghost = mean_period(trace, "src", T_KILL + 2 * TTL + 0.5, 7.0)
    rethrottled = mean_period(trace, "src", 11.0, 14.0)
    assert ghost < 0.015
    assert rethrottled == pytest.approx(throttled, rel=0.25)
    assert rethrottled > 0.02
