"""Link faults: degrade, partition (fail/block), message drop, retry."""

import pytest

from repro.faults import FaultInjector, FaultSchedule, FaultSpec
from repro.metrics import trace_to_dict
from repro.runtime.retry import RetryPolicy


def install(runtime, *faults, **kwargs):
    return FaultInjector(runtime, FaultSchedule(faults), **kwargs).install()


class TestDegrade:
    def test_degrade_slows_transfers_and_is_detected(self, make_pipeline):
        rt = make_pipeline()
        inj = install(
            rt,
            FaultSpec(kind="link_degrade", at=1.0, target="n0->n1",
                      factor=50.0, duration=1.0),
            detect_interval=0.1)
        rt.run(until=4.0)
        degrade = inj.log.records[0]
        assert degrade.detected and degrade.detected_by == "link_slow"
        assert degrade.recovered and degrade.t_recovered == pytest.approx(2.0)
        # the detector also saw the link come back
        assert any(s.symptom == "link_ok" for s in inj.log.symptoms)
        # transfers inside the window took ~50x the nominal ~2 ms
        in_window = [it for it in rt.recorder.iterations_of("dst")
                     if 1.0 < it.t_end <= 2.2]
        assert in_window
        assert max(it.t_end - it.t_start for it in in_window) > 0.05

    def test_explicit_restore_clears_an_unbounded_degrade(self, make_pipeline):
        rt = make_pipeline()
        inj = install(
            rt,
            FaultSpec(kind="link_degrade", at=1.0, target="n0->n1",
                      factor=50.0),
            FaultSpec(kind="link_restore", at=2.0, target="n0->n1"),
            detect_interval=0.1)
        rt.run(until=4.0)
        degrade, restore = inj.log.records
        assert degrade.recovered and degrade.t_recovered == pytest.approx(2.0)
        assert restore.detected and restore.detected_by == "link_ok"
        assert rt.network.link("n0", "n1").healthy


class TestPartition:
    def test_fail_mode_is_survived_by_retries(self, make_pipeline):
        rt = make_pipeline()
        inj = install(
            rt,
            FaultSpec(kind="link_partition", at=1.0, target="n0->n1",
                      duration=1.0),
            detect_interval=0.1)
        rt.run(until=4.0)
        partition = inj.log.records[0]
        assert partition.detected and partition.detected_by == "link_down"
        assert partition.recovered
        driver = rt.drivers["dst"]
        assert driver.transport_errors > 0
        assert driver.transport_retries > 0
        assert rt.thread_alive("dst")
        # deliveries resume after the window closes
        late = [it for it in rt.recorder.iterations_of("dst")
                if it.t_end > 2.0]
        assert late

    def test_block_mode_parks_transfers_until_restore(self, make_pipeline):
        rt = make_pipeline()
        inj = install(
            rt,
            FaultSpec(kind="link_partition", at=1.0, target="n0->n1",
                      mode="block", duration=1.0),
            detect_interval=0.1)
        rt.run(until=4.0)
        partition = inj.log.records[0]
        assert partition.detected and partition.detected_by == "link_blocked"
        link = rt.network.link("n0", "n1")
        assert link.transfers_blocked > 0
        # blocked transfers never error — they wait
        assert rt.drivers["dst"].transport_errors == 0
        assert rt.thread_alive("dst")
        late = [it for it in rt.recorder.iterations_of("dst")
                if it.t_end > 2.0]
        assert late

    def test_exhausted_retries_kill_the_thread(self, make_pipeline):
        rt = make_pipeline(retry=RetryPolicy(max_attempts=2,
                                             backoff_base=0.01))
        install(
            rt,
            FaultSpec(kind="link_partition", at=1.0, target="n0->n1",
                      duration=30.0))
        rt.run(until=4.0)
        assert not rt.thread_alive("dst")


class TestMessageDrop:
    def test_drops_are_retried_and_detected(self, make_pipeline):
        rt = make_pipeline()
        inj = install(
            rt,
            FaultSpec(kind="message_drop", at=1.0, target="n0->n1",
                      probability=0.5, duration=1.0),
            detect_interval=0.1)
        rt.run(until=4.0)
        drop = inj.log.records[0]
        assert drop.detected and drop.detected_by == "message_dropped"
        assert drop.recovered and drop.t_recovered == pytest.approx(2.0)
        assert rt.network.link("n0", "n1").transfers_dropped > 0
        assert rt.thread_alive("dst")

    def test_certain_loss_with_finite_retries_kills_the_thread(
            self, make_pipeline):
        rt = make_pipeline(retry=RetryPolicy(max_attempts=3,
                                             backoff_base=0.01))
        install(
            rt,
            FaultSpec(kind="message_drop", at=1.0, target="n0->n1",
                      probability=1.0, duration=30.0))
        rt.run(until=4.0)
        assert not rt.thread_alive("dst")

    def test_identical_runs_are_bit_identical(self, make_pipeline):
        from repro.runtime.connection import reset_conn_ids
        from repro.runtime.item import reset_item_ids

        def run_once():
            reset_item_ids(), reset_conn_ids()
            rt = make_pipeline()
            install(
                rt,
                FaultSpec(kind="message_drop", at=1.0, target="n0->n1",
                          probability=0.3, duration=2.0, seed=5))
            trace = rt.run(until=4.0)
            return (trace_to_dict(trace),
                    rt.network.link("n0", "n1").transfers_dropped,
                    rt.drivers["dst"].transport_retries)

        assert run_once() == run_once()

    def test_drop_seed_changes_the_outcome_stream(self, make_pipeline):
        def dropped(seed):
            rt = make_pipeline()
            install(
                rt,
                FaultSpec(kind="message_drop", at=1.0, target="n0->n1",
                          probability=0.5, duration=2.0, seed=seed))
            rt.run(until=4.0)
            return [it.t_end for it in rt.recorder.iterations_of("dst")]

        assert dropped(0) != dropped(1)


class TestRetryPolicy:
    def test_backoff_doubles_and_caps(self):
        policy = RetryPolicy(backoff_base=0.1, backoff_max=0.5)
        assert policy.backoff(1) == pytest.approx(0.1)
        assert policy.backoff(2) == pytest.approx(0.2)
        assert policy.backoff(3) == pytest.approx(0.4)
        assert policy.backoff(4) == pytest.approx(0.5)
        assert policy.backoff(10) == pytest.approx(0.5)

    def test_default_never_exhausts(self):
        policy = RetryPolicy()
        assert not policy.exhausted(10 ** 6)

    def test_finite_attempts_exhaust(self):
        policy = RetryPolicy(max_attempts=3)
        assert not policy.exhausted(2)
        assert policy.exhausted(3)

    def test_validation(self):
        from repro.errors import ConfigError

        with pytest.raises(ConfigError):
            RetryPolicy(backoff_base=-0.1)
        with pytest.raises(ConfigError):
            RetryPolicy(backoff_max=0.01, backoff_base=0.02)
        with pytest.raises(ConfigError):
            RetryPolicy(max_attempts=0)
