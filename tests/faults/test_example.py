"""Smoke + acceptance: the failure_injection example and the bundled
chaos schedule, both at tracker scale."""

import importlib.util
import sys
from pathlib import Path

import pytest

REPO = Path(__file__).parents[2]


def load_example(name):
    path = REPO / "examples" / f"{name}.py"
    spec = importlib.util.spec_from_file_location(f"examples_{name}", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


@pytest.fixture(scope="module")
def example_result():
    module = load_example("failure_injection")
    return module.main()


def test_example_unthrottles_after_the_crash(example_result):
    # healthy: throttled well above the ~33 ms intrinsic frame period
    assert example_result["pre"] > 0.1
    # crashed + TTL evictions: back under half the throttled period
    assert example_result["ghost"] < example_result["pre"] / 2


def test_example_rethrottles_after_the_restarts(example_result):
    pre, final = example_result["pre"], example_result["final"]
    assert final == pytest.approx(pre, rel=0.15)


def test_example_detects_every_fault(example_result):
    log = example_result["log"]
    summary = log.summary()
    assert summary["injected"] == 8
    assert summary["detected"] == 8
    assert summary["recovered"] == 8


def test_bundled_chaos_schedule_acceptance(capsys):
    """`repro chaos examples/chaos_tracker.yaml`: every fault detected,
    source throttle back within 10 % of its pre-fault period."""
    pytest.importorskip("yaml")
    from repro.cli import main

    rc = main(["chaos", str(REPO / "examples" / "chaos_tracker.yaml")])
    assert rc == 0
    out = capsys.readouterr().out
    assert "9 faults injected, 9 detected, 9 recovered" in out
    assert "MISSED" not in out
    assert "NOT recovered" not in out
    assert "digitizer" in out and "— recovered" in out
