"""Shared fixtures: a tiny noise-free two-node pipeline to break.

``build_pipeline`` places the source on ``n0`` and the sink on the last
node, so the sink's gets are remote transfers over the ``n0->n1`` link —
the surface every link fault acts on.
"""

import pytest

from repro.aru import aru_disabled
from repro.cluster import ClusterSpec, LinkSpec, NodeSpec
from repro.runtime import (
    Compute,
    Get,
    PeriodicitySync,
    Put,
    Runtime,
    RuntimeConfig,
    Sleep,
    TaskGraph,
)


def quiet_cluster(n_nodes=2):
    """Deterministic nodes, a link slow enough to measure (2 ms/item)."""
    return ClusterSpec(
        nodes=tuple(NodeSpec(name=f"n{i}") for i in range(n_nodes)),
        link=LinkSpec(latency_s=1e-3, bandwidth_bps=10**8),
    )


def build_pipeline(aru=None, retry=None, seed=0, item_size=100_000,
                   src_sleep=0.01, dst_compute=0.02):
    def src(ctx):
        ts = 0
        while True:
            yield Sleep(src_sleep)
            yield Put("c", ts=ts, size=item_size)
            ts += 1
            yield PeriodicitySync()

    def dst(ctx):
        while True:
            yield Get("c")
            yield Compute(dst_compute)
            yield PeriodicitySync()

    g = TaskGraph()
    g.add_thread("src", src)
    g.add_thread("dst", dst, sink=True)
    g.add_channel("c")
    g.connect("src", "c").connect("c", "dst")
    config = {
        "cluster": quiet_cluster(),
        "aru": aru or aru_disabled(),
        "placement": {"src": "n0", "dst": "n1"},
        "seed": seed,
    }
    if retry is not None:
        config["retry"] = retry
    return Runtime(g, RuntimeConfig(**config))


@pytest.fixture
def make_pipeline():
    """The :func:`build_pipeline` factory, as a fixture (tests are not a
    package, so helpers travel through conftest fixtures)."""
    return build_pipeline
