"""Faults x elastic scaling: crashes and partitions around a worker pool.

The elastic machinery must compose with the fault model:

* a replica crashed while the controller is scaling out is reaped (its
  partition slot reassigned, its merge timestamps abandoned) and the
  pool re-converges to the Erlang-C target — no ghost consumers, no
  wedged merge frontier;
* a crash that drops the pool to its ``min_replicas`` floor triggers a
  restart instead of a retirement, so the stage never loses its
  guaranteed capacity;
* partitioning the link under the merge->sink edge stalls delivery but
  not ordering: after the link restores, the sink drains the backlog
  still in timestamp order;
* all of it is deterministic — same schedule, same seed, same trace.
"""

import pytest

from repro.apps import elastic_pipeline
from repro.cluster import ClusterSpec, LinkSpec, NodeSpec
from repro.control.scale import ScaleConfig
from repro.faults import FaultInjector, FaultSchedule, FaultSpec
from repro.metrics import trace_to_dict
from repro.runtime import Runtime, RuntimeConfig

HORIZON = 10.0


def quiet_cluster(n_nodes=1, ncpus=8):
    return ClusterSpec(
        nodes=tuple(
            NodeSpec(name=f"n{i}", sched_noise_cv=0.0, ncpus=ncpus)
            for i in range(n_nodes)
        ),
        link=LinkSpec(latency_s=1e-3, bandwidth_bps=10**8),
    )


def fast_scaler(**overrides):
    base = dict(interval=0.25, cooldown=0.5, name="erlang-test")
    base.update(overrides)
    return ScaleConfig(**base)


def elastic_runtime(scale=None, placement=None, n_nodes=1, seed=0, **graph_kw):
    kw = dict(
        replicas=2, min_replicas=1, max_replicas=4,
        worker_cost=0.03, steady_period=0.1,
        swing=(1.0, HORIZON, 8.0), item_size=10_000,
    )
    kw.update(graph_kw)
    graph = elastic_pipeline(**kw)
    return Runtime(graph, RuntimeConfig(
        cluster=quiet_cluster(n_nodes=n_nodes),
        placement=placement or {},
        seed=seed,
        scale=scale,
    ))


def install(runtime, *faults, **kwargs):
    return FaultInjector(runtime, FaultSchedule(faults), **kwargs).install()


def assert_no_ghost_consumers(rt):
    """Every partition slot and in-flight item belongs to a live conn."""
    part = rt.buffers["part"]
    live = {c.conn_id for c in part.in_conns}
    assert set(part._pending) == live
    assert set(part.inflight.values()) <= live


def sink_ts_sequence(rt):
    touches = []
    for trace in rt.recorder.items.values():
        for get in trace.gets:
            if get.consumer == "sink":
                touches.append((get.t, trace.ts))
    touches.sort()
    return [ts for (_, ts) in touches]


class TestReplicaCrash:
    def test_crash_mid_scale_out_reconverges(self):
        """Kill a replica while the controller is ramping 2 -> 4."""
        rt = elastic_runtime(scale=fast_scaler())
        inj = install(
            rt,
            FaultSpec(kind="thread_crash", at=2.0, target="workers[1]"),
            detect_interval=0.1)
        rt.run(until=HORIZON)
        # The dead replica was reaped, not left as a ghost slot.
        assert "workers[1]" not in rt.drivers
        assert_no_ghost_consumers(rt)
        # Erlang-C sizing re-filled the pool: ~2.4 erlangs at 0.7 target
        # utilisation wants 4 workers despite losing one mid-ramp.
        assert rt.replica_count("workers") >= 3
        assert rt.graph.stage_spec("workers")["next_index"] >= 4
        # The detector saw the crash...
        assert any(s.symptom == "thread_dead" and s.target == "workers[1]"
                   for s in inj.log.symptoms)
        # ...and the pipeline kept delivering well past it, in order.
        seq = sink_ts_sequence(rt)
        assert seq == sorted(seq)
        late = [it for it in rt.recorder.iterations_of("sink")
                if it.t_end > 4.0]
        assert late

    def test_crash_at_floor_restarts_the_replica(self):
        """At min_replicas the reaper restarts instead of retiring."""
        rt = elastic_runtime(
            scale=fast_scaler(),
            min_replicas=2, swing=None)
        inj = install(
            rt,
            FaultSpec(kind="thread_crash", at=2.0, target="workers[0]"),
            detect_interval=0.1)
        rt.run(until=6.0)
        # Same name, fresh incarnation: the floor is defended.
        assert rt.thread_alive("workers[0]")
        assert rt.replica_count("workers") == 2
        assert rt.graph.replicas_of("workers") == ["workers[0]", "workers[1]"]
        assert_no_ghost_consumers(rt)
        symptoms = [s.symptom for s in inj.log.symptoms
                    if s.target == "workers[0]"]
        assert "thread_dead" in symptoms
        assert "thread_back" in symptoms

    def test_crash_without_controller_wedges_until_reaped(self):
        """No controller: the dead slot pins the merge frontier.

        This is the failure mode the reaper exists for — the crashed
        worker's slot keeps absorbing round-robin items and its
        in-flight timestamp stays outstanding, so the sink wedges. One
        ``reap_dead_replicas`` call (what the controller runs every
        poll) recovers the stage."""
        rt = elastic_runtime(scale=None, swing=None)
        install(rt, FaultSpec(kind="thread_crash", at=2.0,
                              target="workers[1]"))
        rt.advance(6.0)
        assert not rt.thread_alive("workers[1]")
        wedge_t = max((it.t_end for it in rt.recorder.iterations_of("sink")),
                      default=0.0)
        assert wedge_t < 4.0
        assert rt.buffers["merge"].outstanding > 0
        assert rt.reap_dead_replicas("workers") == 1
        assert_no_ghost_consumers(rt)
        rt.advance(4.0)
        rt.finalize()
        seq = sink_ts_sequence(rt)
        assert seq == sorted(seq)
        late = [it for it in rt.recorder.iterations_of("sink")
                if it.t_end > 6.0]
        assert late


class TestLinkPartitionUnderMerge:
    def run_partitioned(self, mode_kwargs):
        rt = elastic_runtime(
            scale=None, swing=None, n_nodes=2,
            placement={"sink": "n1"},
            item_size=100_000, steady_period=0.05, worker_cost=0.02,
        )
        inj = install(
            rt,
            FaultSpec(kind="link_partition", at=2.0, target="n0->n1",
                      duration=1.5, **mode_kwargs),
            detect_interval=0.1)
        rt.run(until=8.0)
        return rt, inj

    def test_fail_mode_partition_is_survived_in_order(self):
        rt, inj = self.run_partitioned({})
        record = inj.log.records[0]
        assert record.detected and record.detected_by == "link_down"
        assert record.recovered
        assert rt.thread_alive("sink")
        # Delivery resumed after restore and stayed ts-ordered through
        # the retry storm.
        seq = sink_ts_sequence(rt)
        assert seq == sorted(seq)
        late = [it for it in rt.recorder.iterations_of("sink")
                if it.t_end > 4.0]
        assert late

    def test_block_mode_partition_parks_then_drains(self):
        rt, inj = self.run_partitioned({"mode": "block"})
        record = inj.log.records[0]
        assert record.detected and record.detected_by == "link_blocked"
        assert rt.network.link("n0", "n1").transfers_blocked > 0
        assert rt.drivers["sink"].transport_errors == 0
        seq = sink_ts_sequence(rt)
        assert seq == sorted(seq)
        # The pool kept producing during the stall (results buffer in
        # the merge channel), so the post-restore drain has a backlog.
        late = [it for it in rt.recorder.iterations_of("sink")
                if it.t_end > 4.0]
        assert late


def test_faulted_elastic_run_is_deterministic():
    """Crash + controller + scaling, replayed: bit-identical traces."""
    from repro.runtime.connection import reset_conn_ids
    from repro.runtime.item import reset_item_ids

    def run_once():
        reset_item_ids(), reset_conn_ids()
        rt = elastic_runtime(scale=fast_scaler())
        install(rt, FaultSpec(kind="thread_crash", at=2.0,
                              target="workers[1]"))
        trace = rt.run(until=HORIZON)
        decisions = tuple(rt.scalers["workers"].decisions)
        return trace_to_dict(trace), decisions, sorted(rt.drivers)

    first = run_once()
    second = run_once()
    assert first[1] == second[1]
    assert first[2] == second[2]
    assert first[0] == second[0]
