"""FaultSpec/FaultSchedule validation, dict round-trips, chaos files."""

import json

import pytest

from repro.errors import FaultError
from repro.faults import (
    FAULT_KINDS,
    FaultSchedule,
    FaultSpec,
    chaos_from_dict,
    list_faults_text,
    load_chaos_file,
)


def crash(at=1.0, target="t"):
    return FaultSpec(kind="thread_crash", at=at, target=target)


class TestFaultSpecValidation:
    def test_minimal_specs_for_every_kind(self):
        FaultSpec(kind="thread_crash", at=0.0, target="t")
        FaultSpec(kind="thread_stall", at=0.0, target="t", duration=1.0)
        FaultSpec(kind="thread_restart", at=0.0, target="t")
        FaultSpec(kind="node_crash", at=0.0, target="n")
        FaultSpec(kind="node_restart", at=0.0, target="n")
        FaultSpec(kind="link_degrade", at=0.0, target="a->b", factor=2.0)
        FaultSpec(kind="link_partition", at=0.0, target="a->b", mode="block")
        FaultSpec(kind="link_restore", at=0.0, target="a->b")
        FaultSpec(kind="message_drop", at=0.0, target="a->b", probability=0.5)

    def test_unknown_kind(self):
        with pytest.raises(FaultError, match="unknown fault kind"):
            FaultSpec(kind="gamma_ray", at=0.0, target="t")

    def test_negative_time(self):
        with pytest.raises(FaultError, match=">= 0"):
            crash(at=-1.0)

    def test_empty_target(self):
        with pytest.raises(FaultError, match="non-empty"):
            crash(target="")

    def test_link_kind_needs_arrow_target(self):
        with pytest.raises(FaultError, match="src->dst"):
            FaultSpec(kind="link_restore", at=0.0, target="a")

    def test_thread_kind_rejects_link_target(self):
        with pytest.raises(FaultError, match="looks like a link"):
            crash(target="a->b")

    def test_duration_only_on_window_kinds(self):
        with pytest.raises(FaultError, match="takes no duration"):
            FaultSpec(kind="thread_crash", at=0.0, target="t", duration=1.0)

    def test_negative_duration(self):
        with pytest.raises(FaultError, match="duration must be positive"):
            FaultSpec(kind="thread_stall", at=0.0, target="t", duration=-1.0)

    def test_stall_requires_duration(self):
        with pytest.raises(FaultError, match="requires a duration"):
            FaultSpec(kind="thread_stall", at=0.0, target="t")

    def test_degrade_requires_factor_above_one(self):
        with pytest.raises(FaultError, match="factor > 1"):
            FaultSpec(kind="link_degrade", at=0.0, target="a->b")
        with pytest.raises(FaultError, match="factor > 1"):
            FaultSpec(kind="link_degrade", at=0.0, target="a->b", factor=0.5)

    def test_factor_rejected_elsewhere(self):
        with pytest.raises(FaultError, match="takes no factor"):
            crash(target="t").with_(factor=2.0)

    def test_drop_requires_probability_in_unit_interval(self):
        with pytest.raises(FaultError, match="probability"):
            FaultSpec(kind="message_drop", at=0.0, target="a->b")
        with pytest.raises(FaultError, match="probability"):
            FaultSpec(kind="message_drop", at=0.0, target="a->b",
                      probability=1.5)

    def test_mode_only_on_partition(self):
        with pytest.raises(FaultError, match="takes no mode"):
            FaultSpec(kind="link_degrade", at=0.0, target="a->b",
                      factor=2.0, mode="block")
        with pytest.raises(FaultError, match="fail/block"):
            FaultSpec(kind="link_partition", at=0.0, target="a->b",
                      mode="maybe")

    def test_link_endpoints(self):
        spec = FaultSpec(kind="link_restore", at=0.0, target="n0 -> n1")
        assert spec.link_endpoints == ("n0", "n1")


class TestFaultSchedule:
    def test_sorted_by_time_stably(self):
        a, b, c = crash(at=5.0, target="a"), crash(at=1.0, target="b"), \
            crash(at=5.0, target="c")
        sched = FaultSchedule([a, b, c])
        assert [f.target for f in sched] == ["b", "a", "c"]

    def test_rejects_non_spec_entries(self):
        with pytest.raises(FaultError, match="must be FaultSpec"):
            FaultSchedule([{"kind": "thread_crash"}])

    def test_empty_properties(self):
        sched = FaultSchedule()
        assert sched.is_empty and not sched and len(sched) == 0

    def test_dict_roundtrip(self):
        sched = FaultSchedule([
            FaultSpec(kind="thread_crash", at=1.0, target="t"),
            FaultSpec(kind="link_partition", at=2.0, target="a->b",
                      mode="block", duration=3.0),
            FaultSpec(kind="message_drop", at=4.0, target="a->b",
                      probability=0.25, duration=1.0, seed=7),
        ])
        again = FaultSchedule.from_dicts(sched.to_dicts())
        assert again.faults == sched.faults


class TestFromDict:
    def test_family_key_selects_target(self):
        spec = FaultSpec.from_dict(
            {"kind": "thread_crash", "at": 1.0, "thread": "t"})
        assert spec.target == "t"

    def test_generic_target_key_accepted(self):
        spec = FaultSpec.from_dict(
            {"kind": "node_crash", "at": 1.0, "target": "n"})
        assert spec.target == "n"

    def test_family_mismatch(self):
        with pytest.raises(FaultError, match="targets a thread"):
            FaultSpec.from_dict(
                {"kind": "thread_crash", "at": 1.0, "node": "n"})

    def test_missing_kind(self):
        with pytest.raises(FaultError, match="missing 'kind'"):
            FaultSpec.from_dict({"at": 1.0, "thread": "t"})

    def test_missing_at(self):
        with pytest.raises(FaultError, match="missing 'at'"):
            FaultSpec.from_dict({"kind": "thread_crash", "thread": "t"})

    def test_two_target_keys(self):
        with pytest.raises(FaultError, match="exactly one"):
            FaultSpec.from_dict({"kind": "thread_crash", "at": 1.0,
                                 "thread": "t", "node": "n"})

    def test_unknown_key(self):
        with pytest.raises(FaultError, match="unknown key"):
            FaultSpec.from_dict({"kind": "thread_crash", "at": 1.0,
                                 "thread": "t", "severity": "high"})


class TestChaosFiles:
    CHAOS = {
        "experiment": {"app": "tracker", "config": "config1",
                       "horizon": 30},
        "detector": {"interval": 0.5},
        "faults": [
            {"kind": "thread_crash", "at": 5.0, "thread": "gui"},
        ],
    }

    def test_nested_layout(self):
        experiment, schedule, detector = chaos_from_dict(dict(self.CHAOS))
        assert experiment["app"] == "tracker"
        assert len(schedule) == 1
        assert detector == {"interval": 0.5}

    def test_flat_layout(self):
        experiment, schedule, detector = chaos_from_dict({
            "app": "tracker", "config": "config1",
            "faults": [{"kind": "node_crash", "at": 1.0, "node": "node0"}],
        })
        assert experiment == {"app": "tracker", "config": "config1"}
        assert len(schedule) == 1 and detector == {}

    def test_unknown_detector_key(self):
        bad = dict(self.CHAOS)
        bad["detector"] = {"paranoia": 11}
        with pytest.raises(FaultError, match="detector"):
            chaos_from_dict(bad)

    def test_extra_top_level_key_next_to_experiment(self):
        bad = dict(self.CHAOS)
        bad["bonus"] = 1
        with pytest.raises(FaultError, match="unexpected top-level"):
            chaos_from_dict(bad)

    def test_load_json_file(self, tmp_path):
        path = tmp_path / "chaos.json"
        path.write_text(json.dumps(self.CHAOS))
        _, schedule, detector = load_chaos_file(path)
        assert len(schedule) == 1 and detector == {"interval": 0.5}

    def test_load_yaml_file(self, tmp_path):
        pytest.importorskip("yaml")
        path = tmp_path / "chaos.yaml"
        path.write_text(
            "experiment: {app: tracker, config: config1, horizon: 30}\n"
            "faults:\n"
            "  - {kind: thread_crash, at: 5.0, thread: gui}\n"
        )
        _, schedule, _ = load_chaos_file(path)
        assert schedule.faults[0].target == "gui"

    def test_bundled_chaos_file_parses(self):
        pytest.importorskip("yaml")
        from pathlib import Path

        bundled = Path(__file__).parents[2] / "examples" / "chaos_tracker.yaml"
        _, schedule, detector = load_chaos_file(bundled)
        assert {f.kind for f in schedule} == set(FAULT_KINDS)
        assert detector["stall_timeout"] == 1.5


def test_catalog_covers_every_kind():
    text = list_faults_text()
    for kind in FAULT_KINDS:
        assert kind in text
