"""Tests for the trace recorder."""

import pytest

from repro.errors import TraceError
from repro.metrics import TraceRecorder


def alloc(rec, item_id, t=0.0, channel="ch", ts=0, size=10, parents=()):
    rec.on_alloc(
        item_id=item_id,
        channel=channel,
        node="n0",
        ts=ts,
        size=size,
        producer="p",
        parents=parents,
        t=t,
    )


class TestItemLifecycle:
    def test_alloc_get_free(self):
        rec = TraceRecorder()
        alloc(rec, 1, t=1.0)
        rec.on_get(1, conn_id=5, consumer="c", t=2.0)
        rec.on_free(1, t=3.0)
        trace = rec.items[1]
        assert trace.t_alloc == 1.0
        assert trace.t_free == 3.0
        assert trace.ever_got
        assert trace.last_get_time() == 2.0

    def test_duplicate_alloc_rejected(self):
        rec = TraceRecorder()
        alloc(rec, 1)
        with pytest.raises(TraceError):
            alloc(rec, 1)

    def test_double_free_rejected(self):
        rec = TraceRecorder()
        alloc(rec, 1)
        rec.on_free(1, t=1.0)
        with pytest.raises(TraceError):
            rec.on_free(1, t=2.0)

    def test_free_before_alloc_time_rejected(self):
        rec = TraceRecorder()
        alloc(rec, 1, t=5.0)
        with pytest.raises(TraceError):
            rec.on_free(1, t=4.0)

    def test_unknown_item_rejected(self):
        rec = TraceRecorder()
        with pytest.raises(TraceError):
            rec.on_get(99, 1, "c", 0.0)
        with pytest.raises(TraceError):
            rec.on_free(99, 0.0)

    def test_lifetime_unfreed_extends_to_horizon(self):
        rec = TraceRecorder()
        alloc(rec, 1, t=2.0)
        assert rec.items[1].lifetime(horizon=10.0) == 8.0

    def test_skip_recording(self):
        rec = TraceRecorder()
        alloc(rec, 1)
        rec.on_skip(1, conn_id=2, consumer="c", t=1.0)
        assert len(rec.items[1].skips) == 1
        assert not rec.items[1].ever_got


class TestIterations:
    def test_indices_per_thread(self):
        rec = TraceRecorder()
        for _ in range(3):
            rec.on_iteration("a", 0, 1, 0.5, 0, 0, (), ())
        rec.on_iteration("b", 0, 1, 0.5, 0, 0, (), ())
        assert [it.index for it in rec.iterations_of("a")] == [0, 1, 2]
        assert [it.index for it in rec.iterations_of("b")] == [0]

    def test_sink_iterations_filter(self):
        rec = TraceRecorder()
        rec.on_iteration("gui", 0, 1, 0.1, 0, 0, (1,), (), is_sink=True)
        rec.on_iteration("td", 0, 1, 0.1, 0, 0, (), ())
        assert len(rec.sink_iterations()) == 1
        assert rec.sink_iterations()[0].thread == "gui"

    def test_threads_listing(self):
        rec = TraceRecorder()
        rec.on_iteration("a", 0, 1, 0, 0, 0, (), ())
        rec.on_iteration("b", 0, 1, 0, 0, 0, (), ())
        rec.on_iteration("a", 1, 2, 0, 0, 0, (), ())
        assert rec.threads() == ["a", "b"]


class TestStpSamples:
    def test_recorded_by_default(self):
        rec = TraceRecorder()
        rec.on_stp("t", 1.0, 0.1, 0.2, None, 0.0)
        assert len(rec.stp_samples) == 1

    def test_disabled(self):
        rec = TraceRecorder(record_stp=False)
        rec.on_stp("t", 1.0, 0.1, 0.2, None, 0.0)
        assert rec.stp_samples == []


class TestFinalize:
    def test_duration(self):
        rec = TraceRecorder()
        rec.finalize(12.5)
        assert rec.duration == 12.5

    def test_double_finalize_rejected(self):
        rec = TraceRecorder()
        rec.finalize(1.0)
        with pytest.raises(TraceError):
            rec.finalize(2.0)

    def test_duration_before_finalize_rejected(self):
        with pytest.raises(TraceError):
            _ = TraceRecorder().duration

    def test_channel_listing(self):
        rec = TraceRecorder()
        alloc(rec, 1, channel="a")
        alloc(rec, 2, channel="b", ts=1)
        assert rec.channels() == ["a", "b"]
        assert len(rec.items_of_channel("a")) == 1


class TestViewIndexes:
    """The lazily built indexes must stay coherent with the raw trace."""

    def test_iteration_index_extends_after_queries(self):
        rec = TraceRecorder()
        rec.on_iteration("a", 0, 1, 0.1, 0, 0, (), ())
        assert [it.index for it in rec.iterations_of("a")] == [0]
        # Records arriving after a query must show up on the next query.
        rec.on_iteration("a", 1, 2, 0.1, 0, 0, (), ())
        rec.on_iteration("b", 1, 2, 0.1, 0, 0, (), (), is_sink=True)
        assert [it.index for it in rec.iterations_of("a")] == [0, 1]
        assert [it.thread for it in rec.sink_iterations()] == ["b"]
        assert rec.threads() == ["a", "b"]

    def test_channel_index_extends_after_queries(self):
        rec = TraceRecorder()
        alloc(rec, 1, channel="x")
        assert len(rec.items_of_channel("x")) == 1
        alloc(rec, 2, channel="x", ts=1)
        alloc(rec, 3, channel="y", ts=2)
        assert [i.item_id for i in rec.items_of_channel("x")] == [1, 2]
        assert rec.channels() == ["x", "y"]

    def test_unknown_keys_return_empty(self):
        rec = TraceRecorder()
        assert rec.items_of_channel("nope") == []
        assert rec.iterations_of("nope") == []

    def test_finalize_drops_and_rebuilds_indexes(self):
        rec = TraceRecorder()
        alloc(rec, 1, channel="a")
        rec.on_iteration("t", 0, 1, 0.1, 0, 0, (), ())
        assert rec.channels() == ["a"]  # builds indexes mid-run
        rec.finalize(5.0)
        assert rec.channels() == ["a"]
        assert [it.thread for it in rec.iterations_of("t")] == ["t"]

    def test_direct_dict_insertion_resyncs(self):
        """trace_io rebuilds recorders by writing ``items`` directly; the
        channel index must notice and regroup instead of serving a stale
        (or empty) view."""
        rec = TraceRecorder()
        alloc(rec, 1, channel="a")
        assert rec.channels() == ["a"]
        trace = rec.items[1]
        rec.items[2] = type(trace)(
            item_id=2, channel="b", node="n0", ts=1, size=10,
            producer="p", parents=(), t_alloc=1.0,
        )
        assert rec.channels() == ["a", "b"]
        assert [i.item_id for i in rec.items_of_channel("b")] == [2]
