"""FaultEventLog matching semantics and the gantt fault row."""

import pytest

from repro.metrics import FaultEventLog, gantt
from repro.metrics.gantt import fault_markers
from repro.metrics.recorder import TraceRecorder


class TestSymptomMatching:
    def test_symptom_confirms_matching_record(self):
        log = FaultEventLog()
        log.on_injected("thread_crash", "worker", 1.0)
        record = log.on_symptom("thread_dead", "worker", 1.25)
        assert record is not None
        assert record.detected_by == "thread_dead"
        assert record.detection_latency == pytest.approx(0.25)

    def test_symptom_for_wrong_target_stays_unmatched(self):
        log = FaultEventLog()
        log.on_injected("thread_crash", "worker", 1.0)
        assert log.on_symptom("thread_dead", "other", 1.25) is None
        assert len(log.unmatched_symptoms()) == 1

    def test_symptom_before_injection_cannot_confirm(self):
        log = FaultEventLog()
        log.on_injected("thread_crash", "worker", 2.0)
        assert log.on_symptom("thread_dead", "worker", 1.0) is None
        assert log.undetected()

    def test_earliest_undetected_record_wins(self):
        log = FaultEventLog()
        first = log.on_injected("thread_crash", "worker", 1.0)
        second = log.on_injected("thread_crash", "worker", 2.0)
        log.on_symptom("thread_dead", "worker", 2.5)
        assert first.detected and not second.detected

    def test_unknown_symptom_is_kept_but_matches_nothing(self):
        log = FaultEventLog()
        log.on_injected("thread_crash", "worker", 1.0)
        assert log.on_symptom("coffee_cold", "worker", 1.5) is None
        assert log.summary()["unmatched_symptoms"] == 1

    def test_both_partition_symptoms_match(self):
        log = FaultEventLog()
        log.on_injected("link_partition", "a->b", 1.0)
        assert log.on_symptom("link_blocked", "a->b", 1.5) is not None
        log.on_injected("link_partition", "a->b", 3.0)
        assert log.on_symptom("link_down", "a->b", 3.5) is not None


class TestRecovery:
    def test_recovery_marks_open_records_of_given_kinds(self):
        log = FaultEventLog()
        crash = log.on_injected("thread_crash", "worker", 1.0)
        stall = log.on_injected("thread_stall", "worker", 2.0)
        resolved = log.on_recovered("worker", 5.0,
                                    kinds=("thread_crash", "thread_stall"))
        assert resolved == [crash, stall]
        assert crash.recovery_latency == pytest.approx(4.0)

    def test_recovery_ignores_other_targets_and_earlier_times(self):
        log = FaultEventLog()
        log.on_injected("thread_crash", "worker", 4.0)
        assert log.on_recovered("other", 5.0) == []
        assert log.on_recovered("worker", 3.0) == []

    def test_summary_counts(self):
        log = FaultEventLog()
        log.on_injected("thread_crash", "worker", 1.0)
        log.on_symptom("thread_dead", "worker", 1.2)
        log.on_recovered("worker", 2.0)
        assert log.summary() == {"injected": 1, "detected": 1,
                                 "recovered": 1, "symptoms": 1,
                                 "unmatched_symptoms": 0}
        assert len(log) == 1


class TestGanttFaultRow:
    def make_log(self):
        log = FaultEventLog()
        log.on_injected("thread_crash", "worker", 1.0)
        log.on_symptom("thread_dead", "worker", 2.0)
        log.on_recovered("worker", 3.0)
        return log

    def test_markers_land_in_their_buckets(self):
        cells = fault_markers(self.make_log(), 4, 0.0, 4.0)
        assert cells == [" ", "!", "d", "r"]

    def test_detection_beats_recovery_in_a_shared_bucket(self):
        # two buckets over [0,4]: detection (t=2) and recovery (t=3)
        # share the second; 'd' outranks 'r'
        cells = fault_markers(self.make_log(), 2, 0.0, 4.0)
        assert cells == ["!", "d"]

    def test_empty_span_is_blank(self):
        assert fault_markers(self.make_log(), 4, 2.0, 2.0) == [" "] * 4

    def test_gantt_appends_fault_row(self):
        recorder = TraceRecorder()
        recorder.on_iteration(
            thread="worker", t_start=0.0, t_end=4.0,
            compute=4.0, blocked=0.0, slept=0.0,
            inputs=(), outputs=(), is_sink=True,
        )
        recorder.finalize(4.0)
        chart = gantt(recorder, width=8, fault_log=self.make_log())
        assert "faults" in chart
        assert "!=injected d=detected r=recovered" in chart
