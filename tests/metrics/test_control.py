"""Tests for control-signal analysis."""

import numpy as np
import pytest

from repro.errors import TraceError
from repro.metrics import (
    TraceRecorder,
    control_series,
    settling_time,
    smoothness,
    throttle_duty,
    tracking_error,
)


def make_rec(targets, slept=None, thread="src"):
    rec = TraceRecorder()
    slept = slept or [0.0] * len(targets)
    for k, (target, s) in enumerate(zip(targets, slept)):
        rec.on_stp(thread, float(k), 0.1, target, target, s)
    rec.finalize(float(len(targets)))
    return rec


class TestSeries:
    def test_extraction(self):
        rec = make_rec([0.2, 0.3, None])
        series = control_series(rec, "src")
        assert len(series) == 3
        assert series.times[1] == 1.0
        assert series.throttle_target[1] == 0.3
        assert np.isnan(series.throttle_target[2])

    def test_unknown_thread_raises(self):
        rec = make_rec([0.1])
        with pytest.raises(TraceError):
            control_series(rec, "ghost")

    def test_per_thread_isolation(self):
        rec = TraceRecorder()
        rec.on_stp("a", 0.0, 0.1, 0.1, 0.1, 0.0)
        rec.on_stp("b", 1.0, 0.2, 0.2, 0.2, 0.0)
        rec.finalize(2.0)
        assert len(control_series(rec, "a")) == 1


class TestSettling:
    def test_settles_after_transient(self):
        # ramp toward 0.2, in band from index 3 onward
        rec = make_rec([0.05, 0.1, 0.15, 0.2, 0.2, 0.19])
        series = control_series(rec, "src")
        assert settling_time(series, target=0.2) == pytest.approx(3.0)

    def test_never_settles(self):
        rec = make_rec([0.05, 0.4, 0.05, 0.4])
        series = control_series(rec, "src")
        assert settling_time(series, target=0.2) is None

    def test_settled_from_start(self):
        rec = make_rec([0.2, 0.2, 0.2])
        series = control_series(rec, "src")
        assert settling_time(series, target=0.2) == 0.0

    def test_all_nan(self):
        rec = make_rec([None, None])
        assert settling_time(control_series(rec, "src"), target=0.2) is None


class TestErrorAndSmoothness:
    def test_tracking_error_zero_when_exact(self):
        rec = make_rec([0.2] * 5)
        assert tracking_error(control_series(rec, "src"), 0.2) == 0.0

    def test_tracking_error_rms(self):
        rec = make_rec([0.1, 0.3])  # rel errors -0.5, +0.5
        err = tracking_error(control_series(rec, "src"), 0.2)
        assert err == pytest.approx(0.5)

    def test_tracking_error_after_filter(self):
        rec = make_rec([99.0, 0.2, 0.2])
        err = tracking_error(control_series(rec, "src"), 0.2, after=1.0)
        assert err == 0.0

    def test_smoothness_constant_signal(self):
        rec = make_rec([0.2] * 10)
        assert smoothness(control_series(rec, "src")) == 0.0

    def test_smoothness_ranks_noisy_above_smooth(self):
        rng = np.random.default_rng(0)
        noisy = make_rec(list(0.2 + 0.05 * rng.standard_normal(50)))
        smooth = make_rec(list(0.2 + 0.005 * rng.standard_normal(50)))
        assert smoothness(control_series(noisy, "src")) > \
            smoothness(control_series(smooth, "src"))

    def test_smoothness_insufficient_data(self):
        rec = make_rec([0.2])
        assert np.isnan(smoothness(control_series(rec, "src")))


class TestDuty:
    def test_throttle_duty(self):
        rec = make_rec([0.2] * 4, slept=[0.0, 0.1, 0.1, 0.0])
        assert throttle_duty(control_series(rec, "src")) == pytest.approx(0.5)


class TestOnRealRun:
    def test_source_loop_settles_on_consumer_period(self):
        from repro.aru import aru_min
        from repro.cluster import ClusterSpec, NodeSpec
        from repro.runtime import (
            Compute, Get, PeriodicitySync, Put, Runtime, RuntimeConfig,
            Sleep, TaskGraph,
        )

        def src(ctx):
            ts = 0
            while True:
                yield Sleep(0.005)
                yield Put("c", ts=ts, size=10)
                ts += 1
                yield PeriodicitySync()

        def dst(ctx):
            while True:
                yield Get("c")
                yield Compute(0.1)
                yield PeriodicitySync()

        g = TaskGraph()
        g.add_thread("src", src)
        g.add_thread("dst", dst, sink=True)
        g.add_channel("c")
        g.connect("src", "c").connect("c", "dst")
        cluster = ClusterSpec(nodes=(NodeSpec(name="node0", sched_noise_cv=0.0),))
        rec = Runtime(g, RuntimeConfig(cluster=cluster, aru=aru_min())).run(until=20.0)
        series = control_series(rec, "src")
        settled = settling_time(series, target=0.1, tolerance=0.1)
        assert settled is not None and settled < 2.0
        assert tracking_error(series, 0.1, after=5.0) < 0.05
        assert throttle_duty(series, after=5.0) > 0.9
