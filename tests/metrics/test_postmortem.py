"""Tests for success marking, wasted-resource fractions, and the IGC bound."""

import pytest

from repro.errors import TraceError
from repro.gc import ideal_gc_analysis
from repro.metrics import PostmortemAnalyzer, TraceRecorder


def build_trace():
    """A hand-built pipeline trace:

    source items:  1 (used), 2 (skipped/wasted)
    derived:       3 = f(1)  -> delivered to sink
                   4 = f(2)  -> never delivered (wasted)
    """
    rec = TraceRecorder()

    def alloc(item_id, size, t, parents=()):
        rec.on_alloc(
            item_id=item_id, channel="ch", node="n0", ts=item_id, size=size,
            producer="p", parents=parents, t=t,
        )

    alloc(1, 100, 0.0)
    alloc(2, 100, 1.0)
    rec.on_get(1, 1, "mid", 2.0)
    rec.on_skip(2, 1, "mid", 2.0)
    alloc(3, 10, 3.0, parents=(1,))
    alloc(4, 10, 3.5, parents=(2,))
    rec.on_get(3, 2, "sink", 4.0)
    rec.on_free(1, 5.0)
    rec.on_free(2, 5.0)
    rec.on_free(3, 6.0)
    # item 4 never freed
    # iterations: src makes 1 and 2 (2 iters), mid makes 3 and 4, sink consumes 3
    rec.on_iteration("src", 0.0, 0.5, 0.4, 0, 0, (), (1,))
    rec.on_iteration("src", 1.0, 1.5, 0.4, 0, 0, (), (2,))
    rec.on_iteration("mid", 2.0, 3.0, 0.8, 0.1, 0, (1,), (3,))
    rec.on_iteration("mid", 3.0, 3.6, 0.5, 0.0, 0, (2,), (4,))
    rec.on_iteration("sink", 4.0, 4.5, 0.2, 0, 0, (3,), (), is_sink=True)
    rec.finalize(10.0)
    return rec


class TestSuccessMarking:
    def test_delivered(self):
        pm = PostmortemAnalyzer(build_trace())
        assert pm.delivered_ids == {3}

    def test_success_closure_includes_ancestors(self):
        pm = PostmortemAnalyzer(build_trace())
        assert pm.successful_ids == {1, 3}
        assert pm.is_successful(1)
        assert not pm.is_successful(2)
        assert not pm.is_successful(4)

    def test_unfinalized_trace_rejected(self):
        with pytest.raises(TraceError):
            PostmortemAnalyzer(TraceRecorder())


class TestWastedMemory:
    def test_fraction(self):
        pm = PostmortemAnalyzer(build_trace())
        # byte-seconds: item1 100*5=500 (success), item2 100*4=400 (waste),
        # item3 10*3=30 (success), item4 10*6.5=65 (waste)
        assert pm.total_byte_seconds == pytest.approx(995.0)
        assert pm.wasted_byte_seconds == pytest.approx(465.0)
        assert pm.wasted_memory_fraction == pytest.approx(465.0 / 995.0)

    def test_all_successful_run_has_zero_waste(self):
        rec = TraceRecorder()
        rec.on_alloc(item_id=1, channel="c", node="n", ts=0, size=10,
                     producer="p", parents=(), t=0.0)
        rec.on_get(1, 1, "sink", 1.0)
        rec.on_free(1, 2.0)
        rec.on_iteration("sink", 0.0, 1.0, 0.5, 0, 0, (1,), (), is_sink=True)
        rec.finalize(5.0)
        pm = PostmortemAnalyzer(rec)
        assert pm.wasted_memory_fraction == 0.0

    def test_empty_trace(self):
        rec = TraceRecorder()
        rec.finalize(1.0)
        pm = PostmortemAnalyzer(rec)
        assert pm.wasted_memory_fraction == 0.0
        assert pm.wasted_computation_fraction == 0.0


class TestWastedComputation:
    def test_fraction(self):
        pm = PostmortemAnalyzer(build_trace())
        # total compute = .4+.4+.8+.5+.2 = 2.3
        # wasted: src iter 2 (.4, output 2) + mid iter 2 (.5, output 4) = 0.9
        assert pm.total_compute == pytest.approx(2.3)
        assert pm.wasted_compute == pytest.approx(0.9)
        assert pm.wasted_computation_fraction == pytest.approx(0.9 / 2.3)

    def test_sink_compute_never_wasted(self):
        pm = PostmortemAnalyzer(build_trace())
        # sink's 0.2 is in total but never in wasted
        assert pm.wasted_compute < pm.total_compute


class TestFootprints:
    def test_measured_footprint(self):
        pm = PostmortemAnalyzer(build_trace())
        tl = pm.footprint()
        # t in [1,3): items 1+2 -> 200 bytes
        assert tl.at(2.0) == 200.0
        # after frees at 5/6, only item4 (10B) remains to horizon
        assert tl.at(8.0) == 10.0

    def test_channel_filter(self):
        pm = PostmortemAnalyzer(build_trace())
        assert pm.footprint("nochannel").mean() == 0.0

    def test_ideal_footprint_smaller(self):
        pm = PostmortemAnalyzer(build_trace())
        ideal = pm.ideal_footprint()
        real = pm.footprint()
        assert ideal.mean() < real.mean()
        # IGC lifetime runs to the END of the consuming iteration:
        # item1 alive [0, 3.0] (mid's iteration end), item3 alive [3, 4.5]
        # (sink's iteration end); wasted items 2 and 4 absent entirely.
        assert ideal.at(1.0) == 100.0
        assert ideal.at(2.5) == 100.0
        assert ideal.at(3.5) == 10.0
        assert ideal.at(7.0) == 0.0

    def test_igc_entry_point(self):
        result = ideal_gc_analysis(build_trace())
        # mean: (100*3 + 10*1.5)/10 = 31.5
        assert result.mean_bytes == pytest.approx(31.5)
        assert result.peak_bytes == pytest.approx(100.0)  # intervals abut at t=3
        assert result.std_bytes > 0

    def test_channel_report(self):
        pm = PostmortemAnalyzer(build_trace())
        report = pm.channel_report()
        assert report["ch"]["items"] == 4
        assert report["ch"]["wasted_items"] == 2
        # peak at t in [3.5, 5): items 1+2 (100 each) + 3 + 4 (10 each)
        assert report["ch"]["bytes_peak"] == 220.0
