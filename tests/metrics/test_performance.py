"""Tests for latency / throughput / jitter metrics."""

import numpy as np
import pytest

from repro.metrics import (
    TraceRecorder,
    jitter,
    latency_samples,
    latency_stats,
    output_times,
    thread_utilization,
    throughput_fps,
)


def make_rec():
    rec = TraceRecorder()

    def alloc(item_id, t, parents=()):
        rec.on_alloc(
            item_id=item_id, channel="c", node="n", ts=item_id, size=1,
            producer="p", parents=parents, t=t,
        )

    # frame 1 at t=0, derived 2 at t=1 (parent 1), delivered at t=2
    alloc(1, 0.0)
    alloc(2, 1.0, parents=(1,))
    rec.on_get(2, 1, "gui", 1.9)
    rec.on_iteration("gui", 1.8, 2.0, 0.1, 0, 0, (2,), (), is_sink=True)
    # frame 3 at t=2, derived 4 at t=2.5, delivered at t=3.5
    alloc(3, 2.0)
    alloc(4, 2.5, parents=(3,))
    rec.on_get(4, 1, "gui", 3.2)
    rec.on_iteration("gui", 3.0, 3.5, 0.1, 0, 0, (4,), (), is_sink=True)
    # a third delivery for jitter
    alloc(5, 4.0)
    alloc(6, 4.2, parents=(5,))
    rec.on_get(6, 1, "gui", 4.4)
    rec.on_iteration("gui", 4.4, 4.6, 0.1, 0, 0, (6,), (), is_sink=True)
    rec.finalize(10.0)
    return rec


class TestLatency:
    def test_samples_anchor_on_source_creation(self):
        samples = latency_samples(make_rec())
        assert samples == [pytest.approx(2.0), pytest.approx(1.5), pytest.approx(0.6)]

    def test_stats(self):
        mean, std = latency_stats(make_rec())
        arr = np.array([2.0, 1.5, 0.6])
        assert mean == pytest.approx(arr.mean())
        assert std == pytest.approx(arr.std())

    def test_no_deliveries_is_nan(self):
        rec = TraceRecorder()
        rec.finalize(1.0)
        mean, std = latency_stats(rec)
        assert np.isnan(mean) and np.isnan(std)

    def test_multi_hop_lineage_uses_oldest_source(self):
        rec = TraceRecorder()

        def alloc(item_id, t, parents=()):
            rec.on_alloc(
                item_id=item_id, channel="c", node="n", ts=item_id, size=1,
                producer="p", parents=parents, t=t,
            )

        alloc(1, 0.0)          # old frame (whose data took the long path)
        alloc(2, 5.0)          # new frame
        alloc(3, 6.0, parents=(1, 2))  # derived from both
        rec.on_iteration("gui", 6.5, 7.0, 0.1, 0, 0, (3,), (), is_sink=True)
        rec.finalize(10.0)
        # anchor is the OLDEST source ancestor: the full pipeline trip
        assert latency_samples(rec) == [pytest.approx(7.0)]


class TestThroughput:
    def test_fps(self):
        assert throughput_fps(make_rec()) == pytest.approx(0.3)  # 3 / 10 s

    def test_empty(self):
        rec = TraceRecorder()
        rec.finalize(10.0)
        assert throughput_fps(rec) == 0.0


class TestJitter:
    def test_output_times_sorted(self):
        assert output_times(make_rec()) == [2.0, 3.5, 4.6]

    def test_jitter_is_std_of_diffs(self):
        # diffs: 1.5, 1.1 -> std = 0.2
        assert jitter(make_rec()) == pytest.approx(np.std([1.5, 1.1]))

    def test_too_few_outputs_nan(self):
        rec = TraceRecorder()
        rec.on_iteration("gui", 0, 1, 0.1, 0, 0, (), (), is_sink=True)
        rec.finalize(2.0)
        assert np.isnan(jitter(rec))

    def test_perfectly_regular_output_zero_jitter(self):
        rec = TraceRecorder()
        for k in range(10):
            rec.on_iteration("gui", k * 1.0, k * 1.0 + 0.5, 0.1, 0, 0, (), (), is_sink=True)
        rec.finalize(20.0)
        assert jitter(rec) == pytest.approx(0.0)


class TestUtilization:
    def test_decomposition(self):
        rec = TraceRecorder()
        rec.on_iteration("t", 0.0, 1.0, 0.5, 0.3, 0.2, (), ())
        rec.on_iteration("t", 1.0, 2.0, 0.5, 0.3, 0.2, (), ())
        rec.finalize(2.0)
        u = thread_utilization(rec, "t")
        assert u["compute"] == pytest.approx(0.5)
        assert u["blocked"] == pytest.approx(0.3)
        assert u["slept"] == pytest.approx(0.2)
        assert u["iterations"] == 2

    def test_unknown_thread(self):
        rec = TraceRecorder()
        rec.finalize(1.0)
        assert thread_utilization(rec, "ghost")["iterations"] == 0


class TestLatencyByThread:
    def test_groups_by_sink_thread(self):
        from repro.metrics.performance import latency_samples_by_thread

        rec = TraceRecorder()

        def alloc(item_id, t, parents=()):
            rec.on_alloc(item_id=item_id, channel="c", node="n", ts=item_id,
                         size=1, producer="p", parents=parents, t=t)

        # tenant a: frame at t=0 delivered at t=2
        alloc(1, 0.0)
        rec.on_iteration("a/gui", 1.8, 2.0, 0.1, 0, 0, (1,), (),
                         is_sink=True)
        # tenant b: frame at t=1 delivered at t=1.5
        alloc(2, 1.0)
        rec.on_iteration("b/gui", 1.2, 1.5, 0.1, 0, 0, (2,), (),
                         is_sink=True)
        rec.finalize(5.0)
        grouped = latency_samples_by_thread(rec)
        assert set(grouped) == {"a/gui", "b/gui"}
        assert grouped["a/gui"] == [pytest.approx(2.0)]
        assert grouped["b/gui"] == [pytest.approx(0.5)]

    def test_warmup_filters_early_deliveries(self):
        from repro.metrics.performance import latency_samples_by_thread

        rec = TraceRecorder()
        rec.on_alloc(item_id=1, channel="c", node="n", ts=1, size=1,
                     producer="p", parents=(), t=0.0)
        rec.on_iteration("gui", 0.5, 1.0, 0.1, 0, 0, (1,), (), is_sink=True)
        rec.finalize(5.0)
        assert latency_samples_by_thread(rec, warmup=2.0) == {}

    def test_agrees_with_flat_samples(self):
        from repro.metrics.performance import latency_samples_by_thread

        rec = make_rec()
        grouped = latency_samples_by_thread(rec)
        flat = sorted(latency_samples(rec))
        assert sorted(s for v in grouped.values() for s in v) == flat
