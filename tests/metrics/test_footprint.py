"""Tests for footprint timelines and the paper's time-weighted formulas."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics import TraceRecorder, Timeline, build_timeline, byte_seconds
from repro.metrics.footprint import timeline_from_intervals


def _reference_build_timeline(items, t0, t1, predicate=None, end_override=None):
    """The pre-vectorization scalar sweep — ground truth for bit-identity.

    Copied verbatim from the original implementation; the vectorized
    ``build_timeline`` must reproduce its output bit for bit (same stable
    tie-break order, same left-to-right float accumulation).
    """
    if t1 < t0:
        raise ValueError(f"horizon t1={t1} before t0={t0}")
    deltas = []
    for item in items:
        if predicate is not None and not predicate(item):
            continue
        start = item.t_alloc
        end = None
        if end_override is not None:
            end = end_override(item)
        if end is None:
            end = item.t_free if item.t_free is not None else t1
        start = max(start, t0)
        end = min(end, t1)
        if end <= start:
            continue
        deltas.append((start, item.size))
        deltas.append((end, -item.size))
    if not deltas:
        return Timeline(np.array([t0, t1]), np.array([0.0]))
    deltas.sort(key=lambda pair: pair[0])
    times = [t0]
    values = []
    level = 0.0
    for t, delta in deltas:
        if t > times[-1]:
            values.append(level)
            times.append(t)
        level += delta
    if times[-1] < t1:
        values.append(level)
        times.append(t1)
    elif len(values) < len(times) - 1:
        values.append(level)
    return Timeline(np.array(times, dtype=float), np.array(values, dtype=float))


def rec_with_items(spec, horizon=10.0):
    """spec: list of (t_alloc, t_free_or_None, size)."""
    rec = TraceRecorder()
    for idx, (t0, t1, size) in enumerate(spec, start=1):
        rec.on_alloc(
            item_id=idx, channel="ch", node="n0", ts=idx, size=size,
            producer="p", parents=(), t=t0,
        )
        if t1 is not None:
            rec.on_free(idx, t=t1)
    rec.finalize(horizon)
    return rec


class TestTimelineClass:
    def test_validation(self):
        with pytest.raises(ValueError):
            Timeline(np.array([0.0, 1.0]), np.array([1.0, 2.0]))
        with pytest.raises(ValueError):
            Timeline(np.array([0.0]), np.array([]))
        with pytest.raises(ValueError):
            Timeline(np.array([1.0, 0.0]), np.array([5.0]))

    def test_mean_single_interval(self):
        tl = Timeline(np.array([0.0, 10.0]), np.array([100.0]))
        assert tl.mean() == 100.0
        assert tl.std() == 0.0
        assert tl.peak() == 100.0

    def test_mean_weighted_by_interval_length(self):
        # 100 bytes for 9 s, 1000 bytes for 1 s -> mean 190
        tl = Timeline(np.array([0.0, 9.0, 10.0]), np.array([100.0, 1000.0]))
        assert tl.mean() == pytest.approx(190.0)

    def test_std_matches_hand_computation(self):
        tl = Timeline(np.array([0.0, 5.0, 10.0]), np.array([0.0, 100.0]))
        assert tl.mean() == pytest.approx(50.0)
        assert tl.std() == pytest.approx(50.0)

    def test_at(self):
        tl = Timeline(np.array([0.0, 5.0, 10.0]), np.array([1.0, 2.0]))
        assert tl.at(0.0) == 1.0
        assert tl.at(4.99) == 1.0
        assert tl.at(5.0) == 2.0
        assert tl.at(10.0) == 2.0
        with pytest.raises(ValueError):
            tl.at(11.0)

    def test_sample(self):
        tl = Timeline(np.array([0.0, 5.0, 10.0]), np.array([1.0, 3.0]))
        ts, vals = tl.sample(5)
        assert list(ts) == [0.0, 2.5, 5.0, 7.5, 10.0]
        assert list(vals) == [1.0, 1.0, 3.0, 3.0, 3.0]
        with pytest.raises(ValueError):
            tl.sample(1)

    def test_integral(self):
        tl = Timeline(np.array([0.0, 2.0, 10.0]), np.array([5.0, 1.0]))
        assert tl.integral() == pytest.approx(18.0)


class TestBuildTimeline:
    def test_single_item(self):
        rec = rec_with_items([(2.0, 6.0, 100)])
        tl = build_timeline(rec.items.values(), 0.0, 10.0)
        assert tl.at(1.0) == 0.0
        assert tl.at(3.0) == 100.0
        assert tl.at(7.0) == 0.0
        assert tl.mean() == pytest.approx(40.0)  # 100 * 4/10

    def test_overlapping_items_stack(self):
        rec = rec_with_items([(0.0, 4.0, 100), (2.0, 6.0, 50)])
        tl = build_timeline(rec.items.values(), 0.0, 10.0)
        assert tl.at(1.0) == 100.0
        assert tl.at(3.0) == 150.0
        assert tl.at(5.0) == 50.0
        assert tl.peak() == 150.0

    def test_unfreed_item_extends_to_horizon(self):
        rec = rec_with_items([(5.0, None, 200)])
        tl = build_timeline(rec.items.values(), 0.0, 10.0)
        assert tl.at(9.9) == 200.0
        assert tl.mean() == pytest.approx(100.0)

    def test_predicate_filters(self):
        rec = rec_with_items([(0.0, 10.0, 100), (0.0, 10.0, 999)])
        tl = build_timeline(
            rec.items.values(), 0.0, 10.0, predicate=lambda i: i.size == 100
        )
        assert tl.mean() == pytest.approx(100.0)

    def test_end_override(self):
        rec = rec_with_items([(0.0, 10.0, 100)])
        tl = build_timeline(
            rec.items.values(), 0.0, 10.0, end_override=lambda i: 5.0
        )
        assert tl.mean() == pytest.approx(50.0)

    def test_empty_is_zero(self):
        tl = build_timeline([], 0.0, 10.0)
        assert tl.mean() == 0.0
        assert tl.duration == 10.0

    def test_bad_horizon(self):
        with pytest.raises(ValueError):
            build_timeline([], 5.0, 1.0)

    def test_instantaneous_item_ignored(self):
        rec = rec_with_items([(3.0, 3.0, 100)])
        tl = build_timeline(rec.items.values(), 0.0, 10.0)
        assert tl.mean() == 0.0

    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.floats(0.0, 9.0),
                st.floats(0.1, 10.0),
                st.integers(1, 1000),
            ),
            min_size=1,
            max_size=15,
        )
    )
    def test_mean_equals_byte_seconds_over_duration(self, raw):
        spec = []
        for t0, dur, size in raw:
            t1 = min(10.0, t0 + dur)
            spec.append((t0, t1 if t1 > t0 else None, size))
        rec = rec_with_items(spec)
        tl = build_timeline(rec.items.values(), 0.0, 10.0)
        bs = byte_seconds(rec.items.values(), 10.0)
        assert tl.integral() == pytest.approx(bs, rel=1e-9)
        assert tl.mean() == pytest.approx(bs / 10.0, rel=1e-9)

    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(
            st.tuples(st.floats(0.0, 9.0), st.floats(0.1, 5.0), st.integers(1, 100)),
            min_size=1,
            max_size=10,
        )
    )
    def test_timeline_never_negative(self, raw):
        spec = [(t0, min(10.0, t0 + d), s) for t0, d, s in raw]
        rec = rec_with_items(spec)
        tl = build_timeline(rec.items.values(), 0.0, 10.0)
        assert np.all(tl.values >= 0)


class TestVectorizedMatchesReference:
    """The numpy sweep must be bit-identical to the scalar original."""

    @settings(max_examples=60, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.floats(0.0, 10.0),
                st.one_of(st.none(), st.floats(0.0, 12.0)),
                st.integers(1, 1000),
            ),
            min_size=0,
            max_size=25,
        )
    )
    def test_build_timeline_matches_reference(self, raw):
        spec = [
            (t0, t1 if (t1 is not None and t1 > t0) else None, size)
            for t0, t1, size in raw
        ]
        rec = rec_with_items(spec)
        got = build_timeline(rec.items.values(), 0.0, 10.0)
        want = _reference_build_timeline(rec.items.values(), 0.0, 10.0)
        assert np.array_equal(got.times, want.times)
        assert np.array_equal(got.values, want.values)

    def test_matches_reference_with_predicate_and_override(self):
        rec = rec_with_items(
            [(0.0, 4.0, 100), (1.0, None, 30), (2.0, 2.0, 7), (3.0, 9.0, 64)]
        )
        predicate = lambda item: item.size != 30  # noqa: E731
        override = lambda item: 6.0 if item.size == 64 else None  # noqa: E731
        got = build_timeline(
            rec.items.values(), 0.0, 10.0,
            predicate=predicate, end_override=override,
        )
        want = _reference_build_timeline(
            rec.items.values(), 0.0, 10.0,
            predicate=predicate, end_override=override,
        )
        assert np.array_equal(got.times, want.times)
        assert np.array_equal(got.values, want.values)

    def test_simultaneous_deltas_keep_schedule_order(self):
        # Three items touching t=3.0 from both sides: the stable sort's
        # tie-break (emission order) decides the accumulation order.
        rec = rec_with_items([(0.0, 3.0, 10), (3.0, 7.0, 20), (3.0, 3.5, 5)])
        got = build_timeline(rec.items.values(), 0.0, 10.0)
        want = _reference_build_timeline(rec.items.values(), 0.0, 10.0)
        assert np.array_equal(got.times, want.times)
        assert np.array_equal(got.values, want.values)
        assert got.at(3.0) == 25.0

    def test_timeline_from_intervals_direct(self):
        starts = np.array([2.0, 4.0])
        ends = np.array([6.0, 12.0])
        sizes = np.array([100.0, 10.0])
        tl = timeline_from_intervals(starts, ends, sizes, 0.0, 10.0)
        assert tl.at(3.0) == 100.0
        assert tl.at(5.0) == 110.0
        assert tl.at(9.0) == 10.0  # clamped at the horizon
        # Inputs must not be mutated by the internal clamping.
        assert ends[1] == 12.0

    def test_timeline_from_intervals_bad_horizon(self):
        with pytest.raises(ValueError):
            timeline_from_intervals(
                np.array([1.0]), np.array([2.0]), np.array([1.0]), 5.0, 1.0
            )


class TestByteSeconds:
    def test_simple(self):
        rec = rec_with_items([(0.0, 4.0, 100), (0.0, None, 10)])
        assert byte_seconds(rec.items.values(), 10.0) == pytest.approx(500.0)

    def test_predicate(self):
        rec = rec_with_items([(0.0, 4.0, 100), (0.0, 10.0, 10)])
        assert byte_seconds(
            rec.items.values(), 10.0, predicate=lambda i: i.size == 10
        ) == pytest.approx(100.0)
