"""Property-based round-trip testing of trace persistence."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics import (
    PostmortemAnalyzer,
    TraceRecorder,
    trace_from_dict,
    trace_to_dict,
)


@st.composite
def traces(draw):
    """Generate small but structurally valid traces with lineage."""
    rec = TraceRecorder()
    n_items = draw(st.integers(1, 12))
    horizon = 100.0
    ids = []
    for k in range(1, n_items + 1):
        t_alloc = draw(st.floats(0.0, 50.0))
        parents = tuple(
            draw(st.lists(st.sampled_from(ids), max_size=2, unique=True))
        ) if ids else ()
        rec.on_alloc(
            item_id=k,
            channel=draw(st.sampled_from(["a", "b"])),
            node="n0",
            ts=k,
            size=draw(st.integers(0, 10_000)),
            producer=draw(st.sampled_from(["p", "q"])),
            parents=parents,
            t=t_alloc,
        )
        ids.append(k)
        if draw(st.booleans()):
            rec.on_get(k, draw(st.integers(1, 3)), "c", t_alloc + 1.0)
        if draw(st.booleans()):
            rec.on_skip(k, draw(st.integers(1, 3)), "c", t_alloc + 0.5)
        if draw(st.booleans()):
            rec.on_free(k, t_alloc + draw(st.floats(0.0, 40.0)))
    n_iters = draw(st.integers(0, 8))
    for i in range(n_iters):
        inputs = tuple(draw(st.lists(st.sampled_from(ids), max_size=3)))
        outputs = tuple(draw(st.lists(st.sampled_from(ids), max_size=2)))
        t0 = draw(st.floats(0.0, 90.0))
        rec.on_iteration(
            draw(st.sampled_from(["t1", "t2"])),
            t0,
            t0 + draw(st.floats(0.01, 5.0)),
            draw(st.floats(0.0, 1.0)),
            draw(st.floats(0.0, 1.0)),
            draw(st.floats(0.0, 1.0)),
            inputs,
            outputs,
            is_sink=draw(st.booleans()),
        )
    if draw(st.booleans()):
        rec.on_stp("t1", 1.0, 0.1, draw(st.none() | st.floats(0, 1)), None, 0.0)
    rec.finalize(horizon)
    return rec


@settings(max_examples=50, deadline=None)
@given(traces())
def test_round_trip_preserves_all_analysis(original):
    restored = trace_from_dict(trace_to_dict(original))

    pm_a, pm_b = PostmortemAnalyzer(original), PostmortemAnalyzer(restored)
    assert pm_a.successful_ids == pm_b.successful_ids
    assert pm_a.wasted_memory_fraction == pm_b.wasted_memory_fraction
    assert pm_a.wasted_computation_fraction == pm_b.wasted_computation_fraction
    assert pm_a.footprint().mean() == pm_b.footprint().mean()
    assert pm_a.ideal_footprint().mean() == pm_b.ideal_footprint().mean()

    assert len(restored.items) == len(original.items)
    assert len(restored.iterations) == len(original.iterations)
    for item_id, item in original.items.items():
        other = restored.items[item_id]
        assert (item.ts, item.size, item.parents, item.t_alloc, item.t_free) \
            == (other.ts, other.size, other.parents, other.t_alloc, other.t_free)
        assert len(item.gets) == len(other.gets)
        assert len(item.skips) == len(other.skips)


@settings(max_examples=30, deadline=None)
@given(traces())
def test_serialization_idempotent(original):
    once = trace_to_dict(original)
    twice = trace_to_dict(trace_from_dict(once))
    assert once == twice
