"""Tests for the ASCII Gantt activity renderer."""

import pytest

from repro.metrics import TraceRecorder, activity_buckets, gantt


def make_rec():
    """Thread alternating: 0-5 s pure compute, 5-10 s pure blocking,
    10-15 s pure throttle sleep, 15-20 s idle."""
    rec = TraceRecorder()
    rec.on_iteration("t", 0.0, 5.0, compute=5.0, blocked=0.0, slept=0.0,
                     inputs=(), outputs=())
    rec.on_iteration("t", 5.0, 10.0, compute=0.0, blocked=5.0, slept=0.0,
                     inputs=(), outputs=())
    rec.on_iteration("t", 10.0, 15.0, compute=0.0, blocked=0.0, slept=5.0,
                     inputs=(), outputs=())
    rec.finalize(20.0)
    return rec


class TestBuckets:
    def test_dominant_activity_per_phase(self):
        rec = make_rec()
        cells = activity_buckets(rec, "t", n_buckets=4, t0=0.0, t1=20.0)
        assert cells == ["#", ".", "z", " "]

    def test_fine_buckets(self):
        rec = make_rec()
        cells = activity_buckets(rec, "t", n_buckets=20, t0=0.0, t1=20.0)
        assert cells[:5] == ["#"] * 5
        assert cells[5:10] == ["."] * 5
        assert cells[10:15] == ["z"] * 5
        assert cells[15:] == [" "] * 5

    def test_window_restriction(self):
        rec = make_rec()
        cells = activity_buckets(rec, "t", n_buckets=2, t0=5.0, t1=15.0)
        assert cells == [".", "z"]

    def test_unknown_thread_all_idle(self):
        rec = make_rec()
        assert activity_buckets(rec, "ghost", 4, 0.0, 20.0) == [" "] * 4


class TestGantt:
    def test_renders_all_threads(self):
        rec = TraceRecorder()
        rec.on_iteration("a", 0.0, 1.0, 1.0, 0, 0, (), ())
        rec.on_iteration("b", 0.0, 1.0, 0.0, 1.0, 0, (), ())
        rec.finalize(1.0)
        out = gantt(rec, width=10)
        lines = out.splitlines()
        assert len(lines) == 3  # legend + 2 threads
        assert lines[1].startswith("a ")
        assert "#" in lines[1]
        assert "." in lines[2]

    def test_unfinalized_rejected(self):
        with pytest.raises(ValueError):
            gantt(TraceRecorder())

    def test_empty_run(self):
        rec = TraceRecorder()
        rec.finalize(1.0)
        assert "no iterations" in gantt(rec)

    def test_on_real_tracker_run(self):
        from repro.apps import build_tracker
        from repro.aru import aru_max
        from repro.bench import cluster_for
        from repro.runtime import Runtime, RuntimeConfig

        rec = Runtime(
            build_tracker(),
            RuntimeConfig(cluster=cluster_for("config1"), aru=aru_max(), seed=0),
        ).run(until=20.0)
        out = gantt(rec, width=60)
        # under ARU-max the digitizer line must show throttle sleep
        digi_line = next(l for l in out.splitlines() if l.startswith("digitizer"))
        assert "z" in digi_line
        # detectors stay compute-saturated
        td_line = next(l for l in out.splitlines()
                       if l.startswith("target_detect2"))
        assert td_line.count("#") > 30
