"""Tests for per-thread waste attribution."""

import pytest

from repro.metrics import PostmortemAnalyzer, TraceRecorder


def build_trace():
    rec = TraceRecorder()

    def alloc(item_id, t, parents=()):
        rec.on_alloc(item_id=item_id, channel="c", node="n", ts=item_id,
                     size=1, producer="p", parents=parents, t=t)

    alloc(1, 0.0)                 # used
    alloc(2, 1.0)                 # dropped
    alloc(3, 2.0, parents=(1,))   # delivered
    rec.on_get(1, 1, "mid", 1.5)
    rec.on_get(3, 2, "sink", 3.0)
    rec.on_iteration("src", 0.0, 0.5, 0.4, 0, 0, (), (1,))
    rec.on_iteration("src", 1.0, 1.5, 0.6, 0, 0, (), (2,))
    rec.on_iteration("mid", 1.5, 2.5, 1.0, 0, 0, (1,), (3,))
    rec.on_iteration("sink", 3.0, 3.5, 0.2, 0, 0, (3,), (), is_sink=True)
    rec.finalize(5.0)
    return rec


def test_attribution_per_thread():
    report = PostmortemAnalyzer(build_trace()).thread_waste_report()
    assert report["src"]["compute"] == pytest.approx(1.0)
    assert report["src"]["wasted"] == pytest.approx(0.6)  # item 2 dropped
    assert report["src"]["wasted_fraction"] == pytest.approx(0.6)
    assert report["src"]["wasted_iterations"] == 1
    assert report["mid"]["wasted"] == 0.0
    assert report["sink"]["wasted"] == 0.0


def test_report_sums_match_aggregate():
    pm = PostmortemAnalyzer(build_trace())
    report = pm.thread_waste_report()
    assert sum(e["compute"] for e in report.values()) \
        == pytest.approx(pm.total_compute)
    assert sum(e["wasted"] for e in report.values()) \
        == pytest.approx(pm.wasted_compute)


def test_on_tracker_run_digitizer_dominates_waste():
    from repro.apps import build_tracker
    from repro.aru import aru_disabled
    from repro.bench import cluster_for
    from repro.runtime import Runtime, RuntimeConfig

    rec = Runtime(
        build_tracker(),
        RuntimeConfig(cluster=cluster_for("config1"), aru=aru_disabled(), seed=0),
    ).run(until=30.0)
    report = PostmortemAnalyzer(rec).thread_waste_report()
    # the unthrottled camera wastes most of its work; detectors waste none
    assert report["digitizer"]["wasted_fraction"] > 0.5
    assert report["target_detect1"]["wasted_fraction"] < 0.2
    assert report["gui"]["wasted"] == 0.0
