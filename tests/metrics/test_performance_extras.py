"""Tests for warmup trimming and latency percentiles."""

import numpy as np
import pytest

from repro.metrics import (
    TraceRecorder,
    jitter,
    latency_percentiles,
    latency_samples,
    latency_stats,
    throughput_fps,
)


def make_rec():
    """Ten deliveries, one per second; latency grows 1..10 s."""
    rec = TraceRecorder()
    for k in range(1, 11):
        rec.on_alloc(item_id=k, channel="c", node="n", ts=k, size=1,
                     producer="p", parents=(), t=float(k))
        rec.on_iteration("gui", k + 0.5, float(k) + float(k), 0.1, 0, 0,
                         (k,), (), is_sink=True)
    rec.finalize(20.0)
    return rec


class TestWarmup:
    def test_latency_warmup_drops_early_samples(self):
        rec = make_rec()
        all_samples = latency_samples(rec)
        late = latency_samples(rec, warmup=10.0)
        assert len(all_samples) == 10
        assert len(late) < 10
        assert min(late) >= 5.0  # early (small-latency) deliveries dropped

    def test_throughput_warmup_window(self):
        rec = make_rec()
        # all 10 deliveries in 20 s
        assert throughput_fps(rec) == pytest.approx(0.5)
        # deliveries with t_end >= 10: k=5..10 -> 6 over 10 s
        assert throughput_fps(rec, warmup=10.0) == pytest.approx(0.6)

    def test_throughput_warmup_beyond_end(self):
        assert throughput_fps(make_rec(), warmup=30.0) == 0.0

    def test_jitter_warmup(self):
        rec = make_rec()
        # output times are k*2 for k=1..10 -> perfectly regular
        assert jitter(rec) == pytest.approx(0.0)
        assert jitter(rec, warmup=10.0) == pytest.approx(0.0)

    def test_stats_warmup(self):
        rec = make_rec()
        mean_all, _ = latency_stats(rec)
        mean_late, _ = latency_stats(rec, warmup=10.0)
        assert mean_late > mean_all


class TestPercentiles:
    def test_values(self):
        rec = make_rec()
        pct = latency_percentiles(rec, percentiles=(50.0, 100.0))
        samples = np.array(latency_samples(rec))
        assert pct[50.0] == pytest.approx(np.percentile(samples, 50))
        assert pct[100.0] == pytest.approx(samples.max())

    def test_empty_is_nan(self):
        rec = TraceRecorder()
        rec.finalize(1.0)
        pct = latency_percentiles(rec)
        assert all(np.isnan(v) for v in pct.values())

    def test_monotone(self):
        pct = latency_percentiles(make_rec(), percentiles=(10.0, 50.0, 90.0))
        assert pct[10.0] <= pct[50.0] <= pct[90.0]
