"""Round-trip tests for trace persistence."""

import json

import pytest

from repro.aru import aru_min
from repro.cluster import ClusterSpec, NodeSpec
from repro.errors import TraceError
from repro.metrics import (
    PostmortemAnalyzer,
    TraceRecorder,
    jitter,
    latency_stats,
    load_trace,
    save_trace,
    throughput_fps,
    trace_from_dict,
    trace_to_dict,
)
from repro.runtime import (
    Compute,
    Get,
    PeriodicitySync,
    Put,
    Runtime,
    RuntimeConfig,
    Sleep,
    TaskGraph,
)


def run_pipeline():
    def src(ctx):
        ts = 0
        while True:
            yield Sleep(0.02)
            yield Put("c", ts=ts, size=1000)
            ts += 1
            yield PeriodicitySync()

    def dst(ctx):
        while True:
            yield Get("c")
            yield Compute(0.05)
            yield PeriodicitySync()

    g = TaskGraph()
    g.add_thread("src", src)
    g.add_thread("dst", dst, sink=True)
    g.add_channel("c")
    g.connect("src", "c").connect("c", "dst")
    cluster = ClusterSpec(nodes=(NodeSpec(name="node0", sched_noise_cv=0.1),))
    return Runtime(g, RuntimeConfig(cluster=cluster, aru=aru_min(), seed=4)).run(
        until=20.0
    )


class TestRoundTrip:
    def test_dict_round_trip_preserves_analysis(self):
        original = run_pipeline()
        restored = trace_from_dict(trace_to_dict(original))
        pm_a = PostmortemAnalyzer(original)
        pm_b = PostmortemAnalyzer(restored)
        assert pm_a.wasted_memory_fraction == pm_b.wasted_memory_fraction
        assert pm_a.wasted_computation_fraction == pm_b.wasted_computation_fraction
        assert pm_a.footprint().mean() == pm_b.footprint().mean()
        assert pm_a.ideal_footprint().mean() == pm_b.ideal_footprint().mean()
        assert throughput_fps(original) == throughput_fps(restored)
        assert latency_stats(original) == latency_stats(restored)
        assert jitter(original) == jitter(restored)

    def test_file_round_trip(self, tmp_path):
        original = run_pipeline()
        path = tmp_path / "trace.json"
        save_trace(original, path)
        restored = load_trace(path)
        assert len(restored.items) == len(original.items)
        assert len(restored.iterations) == len(original.iterations)
        assert len(restored.stp_samples) == len(original.stp_samples)
        assert restored.t_end == original.t_end

    def test_json_is_valid_and_versioned(self, tmp_path):
        original = run_pipeline()
        path = tmp_path / "trace.json"
        save_trace(original, path)
        data = json.loads(path.read_text())
        assert data["schema"] == 1
        assert data["items"] and data["iterations"]


class TestValidation:
    def test_unfinalized_rejected(self):
        with pytest.raises(TraceError):
            trace_to_dict(TraceRecorder())

    def test_wrong_schema_rejected(self):
        with pytest.raises(TraceError, match="schema"):
            trace_from_dict({"schema": 99})

    def test_duplicate_item_rejected(self):
        original = run_pipeline()
        data = trace_to_dict(original)
        data["items"].append(data["items"][0])
        with pytest.raises(TraceError, match="duplicate"):
            trace_from_dict(data)
