"""Integration tests for the real-threads executor.

Wall-clock timing on shared CI boxes is noisy; these tests assert
structure and coarse behaviour only, with generous margins.
"""

import pytest

from repro.aru import aru_disabled, aru_min
from repro.errors import ConfigError
from repro.metrics import PostmortemAnalyzer
from repro.rt_threads.executor import ThreadedRuntime
from repro.runtime import (
    Compute,
    Get,
    PeriodicitySync,
    Put,
    Sleep,
    TaskGraph,
    TryGet,
)


def small_pipeline(prod_period=0.005, cons_compute=0.02):
    def producer(ctx):
        ts = 0
        while True:
            yield Sleep(prod_period)
            yield Put("c", ts=ts, size=1000)
            ts += 1
            yield PeriodicitySync()

    def consumer(ctx):
        while True:
            yield Get("c")
            yield Compute(cons_compute)
            yield PeriodicitySync()

    g = TaskGraph("threads-smoke")
    g.add_thread("prod", producer)
    g.add_thread("cons", consumer, sink=True)
    g.add_channel("c")
    g.connect("prod", "c").connect("c", "cons")
    return g


class TestBasics:
    def test_pipeline_flows(self):
        ex = ThreadedRuntime(small_pipeline(), aru=aru_disabled())
        rec = ex.run(duration=0.8)
        assert len(rec.iterations_of("prod")) > 20
        assert len(rec.iterations_of("cons")) > 5
        assert rec.sink_iterations()

    def test_lineage_recorded(self):
        ex = ThreadedRuntime(small_pipeline(), aru=aru_disabled())
        rec = ex.run(duration=0.5)
        pm = PostmortemAnalyzer(rec)
        assert pm.delivered_ids

    def test_run_twice_rejected(self):
        ex = ThreadedRuntime(small_pipeline())
        ex.run(duration=0.2)
        with pytest.raises(Exception):
            ex.run(duration=0.2)

    def test_bad_duration(self):
        ex = ThreadedRuntime(small_pipeline())
        with pytest.raises(ConfigError):
            ex.run(duration=0.0)

    def test_queues_rejected(self):
        g = TaskGraph()

        def src(ctx):
            yield Put("q", ts=0, size=1)

        g.add_thread("src", src)
        g.add_queue("q").connect("src", "q")
        with pytest.raises(ConfigError):
            ThreadedRuntime(g)

    def test_bad_compute_mode(self):
        with pytest.raises(ConfigError):
            ThreadedRuntime(small_pipeline(), compute_mode="quantum")

    def test_task_error_propagates(self):
        def bad(ctx):
            yield Compute(0.01)
            raise RuntimeError("task exploded")

        g = TaskGraph()
        g.add_thread("bad", bad)
        g.add_channel("c").connect("bad", "c")
        ex = ThreadedRuntime(g)
        with pytest.raises(RuntimeError, match="exploded"):
            ex.run(duration=0.3)


class TestSemantics:
    def test_dgc_bounds_channel_occupancy(self):
        """Skipped items must be collected, keeping the channel small."""
        ex = ThreadedRuntime(small_pipeline(prod_period=0.001, cons_compute=0.05))
        ex.run(duration=0.8)
        channel = ex.channels["c"]
        assert channel.total_skips > 0
        assert channel.total_frees > 0
        # DGC collects on every consumer get, so residency is bounded by
        # one inter-get window of production, not by total puts.
        assert channel.total_frees > 0.7 * channel.total_puts
        assert len(channel) < 0.3 * channel.total_puts

    def test_aru_throttles_source(self):
        ex = ThreadedRuntime(
            small_pipeline(prod_period=0.001, cons_compute=0.05), aru=aru_min()
        )
        rec = ex.run(duration=1.5)
        late = [it for it in rec.iterations_of("prod") if it.t_start > 0.7]
        assert late
        slept = sum(it.slept for it in late)
        assert slept > 0
        mean_period = sum(it.duration for it in late) / len(late)
        assert mean_period > 0.02  # throttled well below the 1 kHz free rate

    def test_aru_reduces_waste(self):
        waste = {}
        for aru in (aru_disabled(), aru_min()):
            ex = ThreadedRuntime(
                small_pipeline(prod_period=0.001, cons_compute=0.05), aru=aru
            )
            rec = ex.run(duration=1.5)
            waste[aru.name] = PostmortemAnalyzer(rec).wasted_memory_fraction
        assert waste["aru-min"] < waste["no-aru"]

    def test_tryget(self):
        seen = []

        def poller(ctx):
            view = yield TryGet("c")
            seen.append(view)
            yield Sleep(0.2)
            view = yield TryGet("c")
            seen.append(view.ts if view else None)

        def src(ctx):
            yield Sleep(0.05)
            yield Put("c", ts=7, size=1)

        g = TaskGraph()
        g.add_thread("src", src)
        g.add_thread("poller", poller, sink=True)
        g.add_channel("c").connect("src", "c").connect("c", "poller")
        ThreadedRuntime(g).run(duration=0.5)
        assert seen[0] is None
        assert seen[1] == 7

    def test_timed_get(self):
        results = []

        def src(ctx):
            yield Sleep(0.3)
            yield Put("c", ts=0, size=1)

        def cons(ctx):
            view = yield Get("c", timeout=0.05)
            results.append(view)
            view = yield Get("c", timeout=2.0)
            results.append(view.ts if view else None)

        g = TaskGraph()
        g.add_thread("src", src)
        g.add_thread("cons", cons, sink=True)
        g.add_channel("c").connect("src", "c").connect("c", "cons")
        ThreadedRuntime(g).run(duration=0.8)
        assert results[0] is None   # first get timed out
        assert results[1] == 0      # second get caught the item

    def test_stp_excludes_blocking(self):
        ex = ThreadedRuntime(small_pipeline(prod_period=0.08, cons_compute=0.005))
        rec = ex.run(duration=1.0)
        stps = [s.current_stp for s in rec.stp_samples if s.thread == "cons"][1:]
        assert stps
        # consumer blocks ~75 ms/iter but its STP must stay near 5 ms
        assert sum(stps) / len(stps) < 0.05
