"""Direct unit tests for ThreadChannel (no executor involved)."""

import threading
import time

import pytest

from repro.aru import BufferAruState
from repro.errors import ItemDropped, SimulationError
from repro.metrics import TraceRecorder
from repro.rt_threads import ThreadChannel
from repro.runtime import Item
from repro.vt import EARLIEST, LATEST, ManualClock


def make_channel(aru=None):
    rec = TraceRecorder()
    clock = ManualClock()
    ch = ThreadChannel("ch", rec, clock, aru_state=aru)
    return ch, rec, clock


def put(ch, conn, ts, size=10):
    return ch.put(conn, Item(ts=ts, size=size, producer=conn.thread))


class TestPutGet:
    def test_put_and_get_latest(self):
        ch, _, _ = make_channel()
        prod = ch.register_producer("p")
        cons = ch.register_consumer("c")
        for ts in range(4):
            put(ch, prod, ts)
        view = ch.get(cons, LATEST)
        assert view.ts == 3
        assert cons.skips == 3

    def test_get_earliest(self):
        ch, _, _ = make_channel()
        prod = ch.register_producer("p")
        cons = ch.register_consumer("c")
        for ts in range(3):
            put(ch, prod, ts)
        assert ch.get(cons, EARLIEST).ts == 0
        assert ch.get(cons, EARLIEST).ts == 1

    def test_exact_get(self):
        ch, _, _ = make_channel()
        prod = ch.register_producer("p")
        cons = ch.register_consumer("c")
        for ts in range(3):
            put(ch, prod, ts)
        assert ch.get(cons, 1).ts == 1
        with pytest.raises(ItemDropped):
            ch.get(cons, 0)

    def test_duplicate_ts_rejected(self):
        ch, _, _ = make_channel()
        prod = ch.register_producer("p")
        put(ch, prod, 5)
        with pytest.raises(SimulationError):
            put(ch, prod, 5)

    def test_try_get(self):
        ch, _, _ = make_channel()
        prod = ch.register_producer("p")
        cons = ch.register_consumer("c")
        assert ch.try_get(cons) is None
        put(ch, prod, 0)
        assert ch.try_get(cons).ts == 0
        assert ch.try_get(cons) is None  # cursor advanced

    def test_timed_get_expires(self):
        ch, _, _ = make_channel()
        ch.register_producer("p")
        cons = ch.register_consumer("c")
        # ManualClock never advances, so rely on wall-based cond timeout:
        # use a real WallClock channel for this case instead.
        from repro.vt import WallClock

        ch2 = ThreadChannel("ch2", TraceRecorder(), WallClock())
        cons2 = ch2.register_consumer("c")
        t0 = time.monotonic()
        assert ch2.get(cons2, LATEST, max_wait=0.1) is None
        assert time.monotonic() - t0 < 1.0

    def test_stop_event_aborts_wait(self):
        from repro.vt import WallClock

        ch = ThreadChannel("ch", TraceRecorder(), WallClock())
        cons = ch.register_consumer("c")
        stop = threading.Event()

        result = {}

        def getter():
            result["view"] = ch.get(cons, LATEST, stop=stop, timeout=0.01)

        t = threading.Thread(target=getter)
        t.start()
        time.sleep(0.05)
        stop.set()
        t.join(timeout=2.0)
        assert not t.is_alive()
        assert result["view"] is None


class TestDgcBehaviour:
    def test_skipped_items_collected(self):
        ch, rec, _ = make_channel()
        prod = ch.register_producer("p")
        cons = ch.register_consumer("c")
        for ts in range(5):
            put(ch, prod, ts)
        view = ch.get(cons, LATEST)
        # skipped 0-3 freed; gotten ts=4 pinned until release
        assert len(ch) == 1
        ch.release(view._item)
        assert len(ch) == 0
        assert ch.total_frees == 5

    def test_two_consumers_wait_for_slowest(self):
        ch, _, _ = make_channel()
        prod = ch.register_producer("p")
        c1 = ch.register_consumer("c1")
        c2 = ch.register_consumer("c2")
        for ts in range(3):
            put(ch, prod, ts)
        v = ch.get(c1, LATEST)
        ch.release(v._item)
        assert len(ch) == 3  # c2 hasn't moved
        v2 = ch.get(c2, LATEST)
        ch.release(v2._item)
        assert len(ch) == 0

    def test_dead_on_arrival(self):
        ch, rec, _ = make_channel()
        prod = ch.register_producer("p")
        cons = ch.register_consumer("c")
        put(ch, prod, 5)
        v = ch.get(cons, LATEST)
        ch.release(v._item)
        late = Item(ts=2, size=10)
        ch.put(prod, late)
        assert len(rec.items[late.item_id].skips) == 1

    def test_bytes_held(self):
        ch, _, _ = make_channel()
        prod = ch.register_producer("p")
        ch.register_consumer("c")
        put(ch, prod, 0, size=100)
        put(ch, prod, 1, size=50)
        assert ch.bytes_held == 150


class TestAru:
    def test_piggyback(self):
        aru = BufferAruState("ch", op="min")
        ch, _, _ = make_channel(aru=aru)
        prod = ch.register_producer("p")
        cons = ch.register_consumer("c")
        assert put(ch, prod, 0) is None
        ch.get(cons, LATEST, consumer_summary=0.3)
        assert put(ch, prod, 1) == 0.3
