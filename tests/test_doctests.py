"""Run the executable examples embedded in module docstrings."""

import doctest

import pytest

import repro.runtime.api


@pytest.mark.parametrize("module", [repro.runtime.api])
def test_module_doctests(module):
    results = doctest.testmod(module, verbose=False)
    assert results.attempted > 0, f"no doctests found in {module.__name__}"
    assert results.failed == 0
