"""Tests for the run_experiment facade: resolution, delegation, results."""

import pytest

from repro.aru.config import aru_disabled, aru_min
from repro.bench.identity import metrics_fingerprint
from repro.cluster.spec import config1_spec, config2_spec
from repro.errors import ConfigError
from repro.experiment import ExperimentSpec, RunResult, run_experiment
from repro.obs import NULL_HUB

HORIZON = 6.0


class TestSpecResolution:
    def test_default_app_is_tracker(self):
        graph = ExperimentSpec().resolve_graph()
        assert "digitizer" in graph.threads()

    def test_graph_passthrough(self):
        from repro.apps.tracker import build_tracker

        graph = build_tracker()
        assert ExperimentSpec(app=graph).resolve_graph() is graph

    def test_stampede_app_uses_its_graph(self):
        from repro.runtime.api import StampedeApp

        def src(api):
            yield  # pragma: no cover - never driven here

        app = StampedeApp("mini")
        app.create_thread("src", src).alloc_channel("C1")
        app.attach_output("src", "C1")
        assert ExperimentSpec(app=app).resolve_graph() is app.graph

    def test_app_config_with_graph_rejected(self):
        from repro.apps.tracker import TrackerConfig, build_tracker

        spec = ExperimentSpec(app=build_tracker(), app_config=TrackerConfig())
        with pytest.raises(ConfigError, match="app_config"):
            spec.resolve_graph()

    def test_unknown_app_rejected(self):
        with pytest.raises(ConfigError, match="unknown app"):
            ExperimentSpec(app="juggler").resolve_graph()

    def test_default_cluster_is_config1(self):
        cluster, placement = ExperimentSpec().resolve_cluster_and_placement()
        assert cluster == config1_spec()
        assert placement == {}

    def test_config2_tracker_gets_paper_placement(self):
        from repro.apps.tracker import tracker_placement

        cluster, placement = ExperimentSpec(
            config="config2").resolve_cluster_and_placement()
        assert cluster == config2_spec()
        assert placement == tracker_placement()

    def test_explicit_placement_wins(self):
        _, placement = ExperimentSpec(
            config="config2",
            placement={"digitizer": "node3"},
        ).resolve_cluster_and_placement()
        assert placement == {"digitizer": "node3"}

    def test_cluster_spec_passthrough(self):
        spec = config2_spec()
        cluster, _ = ExperimentSpec(
            config=spec).resolve_cluster_and_placement()
        assert cluster is spec

    def test_unknown_config_rejected(self):
        with pytest.raises(ConfigError, match="unknown config"):
            ExperimentSpec(config="config9").resolve_cluster_and_placement()

    def test_policy_none_is_disabled(self):
        assert ExperimentSpec().resolve_policy() == aru_disabled()

    def test_policy_by_name(self):
        assert ExperimentSpec(policy="aru-min").resolve_policy() == aru_min()

    def test_policy_passthrough(self):
        cfg = aru_min()
        assert ExperimentSpec(policy=cfg).resolve_policy() is cfg

    def test_bad_retry_rejected(self):
        with pytest.raises(ConfigError, match="retry"):
            ExperimentSpec(retry="three times").runtime_config()

    def test_with_returns_new_spec(self):
        spec = ExperimentSpec()
        other = spec.with_(seed=7)
        assert other.seed == 7 and spec.seed == 0


class TestRunExperiment:
    def test_returns_run_result(self):
        result = run_experiment(ExperimentSpec(horizon=HORIZON))
        assert isinstance(result, RunResult)
        assert result.trace.duration == pytest.approx(HORIZON)
        assert result.fault_log is None
        assert result.telemetry is NULL_HUB
        assert not result.telemetry_enabled
        assert "engine" in result.stats
        assert result.runtime is not None

    def test_kwargs_shorthand(self):
        result = run_experiment(horizon=HORIZON, policy="aru-min")
        assert result.spec.policy == "aru-min"

    def test_spec_plus_overrides(self):
        result = run_experiment(ExperimentSpec(horizon=60.0),
                                horizon=HORIZON)
        assert result.spec.horizon == HORIZON

    def test_dict_spec_via_specfile_grammar(self):
        result = run_experiment({
            "app": "tracker",
            "config": "config1",
            "aru": "aru-min",
            "horizon": HORIZON,
            "telemetry": True,
        })
        assert result.telemetry_enabled
        assert result.trace.duration == pytest.approx(HORIZON)

    def test_dict_spec_unknown_key_rejected(self):
        with pytest.raises(ConfigError, match="unknown key"):
            run_experiment({"app": "tracker", "horizont": 5.0})

    def test_garbage_spec_rejected(self):
        with pytest.raises(ConfigError, match="ExperimentSpec"):
            run_experiment(42)

    def test_faults_install_injector(self):
        from repro.faults import FaultSpec

        result = run_experiment(ExperimentSpec(
            horizon=HORIZON,
            faults=(FaultSpec(kind="thread_stall", target="histogram",
                              at=2.0, duration=1.0),),
        ))
        assert result.fault_log is not None
        assert len(result.fault_log.records) == 1

    def test_dict_spec_faults_from_dicts(self):
        result = run_experiment({
            "app": "tracker",
            "horizon": HORIZON,
            "faults": [{"kind": "thread_stall", "target": "histogram",
                        "at": 2.0, "duration": 1.0}],
        })
        assert result.fault_log is not None


class TestDelegationEquivalence:
    """The three legacy entry styles must agree bit for bit."""

    def test_sweep_cell_matches_direct_facade(self):
        from repro.bench.experiments import metrics_from_trace
        from repro.bench.runner import CellSpec, run_cell

        cell = run_cell(CellSpec(policy=aru_min(), horizon=HORIZON))
        direct = run_experiment(ExperimentSpec(
            policy=aru_min(), horizon=HORIZON))
        direct_metrics = metrics_from_trace(
            "config1", aru_min().name, 0, HORIZON, direct.trace)
        assert cell.metrics.throughput == direct_metrics.throughput
        assert cell.metrics.mem_mean == direct_metrics.mem_mean
        assert cell.metrics.latency_mean == direct_metrics.latency_mean

    def test_specfile_run_matches_facade(self):
        from repro.bench.specfile import run_experiment as run_spec_dict

        d = {"app": "tracker", "aru": "aru-min", "horizon": HORIZON}
        trace_a = run_spec_dict(dict(d))
        trace_b = run_experiment(dict(d)).trace
        assert len(trace_a.items) == len(trace_b.items)

        # item ids are process-global, so compare the id-free shape
        def shape(trace):
            return [(it.thread, it.t_start, it.t_end, it.compute, it.blocked)
                    for it in trace.sink_iterations()]

        assert shape(trace_a) == shape(trace_b)

    def test_facade_determinism_across_calls(self):
        from repro.bench.runner import CellSpec, run_cell

        a = run_cell(CellSpec(horizon=HORIZON, seed=3))
        b = run_cell(CellSpec(horizon=HORIZON, seed=3))
        assert metrics_fingerprint(a) == metrics_fingerprint(b)
