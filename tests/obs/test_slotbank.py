"""The fixed-slot hot path: SlotBank, handles, and registry sync.

ISSUE 7 moved every per-event telemetry update off the dict-lookup
instrument API onto preresolved flat-array slots: a site resolves its
instruments once at wiring time into indices, the hot-path update is
one array add, and label resolution / Metric materialisation is
deferred to the first read. These tests pin the bank's slot contract
(reuse, kind-clash detection, growth never invalidating handles), the
handle semantics, and the fidelity of the deferred materialisation —
what ``snapshot()`` exports must be indistinguishable from having
updated the instruments directly.
"""

import math

import pytest

from repro.errors import TelemetryError
from repro.obs.hub import (
    NULL_HUB,
    NullTelemetryHub,
    TelemetryConfig,
    TelemetryHub,
)
from repro.obs.metrics import (
    NOOP_HANDLE,
    CounterHandle,
    GaugeHandle,
    MetricsRegistry,
    NoopHandle,
    PairHandle,
    SlotBank,
)


class TestSlotContract:
    def test_same_identity_reuses_the_slot(self):
        bank = SlotBank()
        a = bank.counter_slot("x_total", {"k": "v"})
        b = bank.counter_slot("x_total", {"k": "v"})
        assert a == b
        assert len(bank.values) == 1

    def test_distinct_labels_get_distinct_slots(self):
        bank = SlotBank()
        a = bank.counter_slot("x_total", {"k": "1"})
        b = bank.counter_slot("x_total", {"k": "2"})
        assert a != b

    def test_kind_clash_is_a_loud_error(self):
        bank = SlotBank()
        bank.counter_slot("x_total")
        with pytest.raises(TelemetryError):
            bank.gauge_slot("x_total")

    def test_gauge_slot_starts_as_nan_sentinel(self):
        bank = SlotBank()
        slot = bank.gauge_slot("g")
        assert math.isnan(bank.values[slot])

    def test_growth_never_invalidates_existing_handles(self):
        # Handles hold the values *list object*, not a snapshot of it,
        # so creating hundreds of later slots must not stale them.
        bank = SlotBank()
        early = CounterHandle(bank.values, bank.counter_slot("early_total"))
        for i in range(300):
            bank.counter_slot(f"later_{i}_total")
        early.inc()
        early.inc()
        assert bank.values[bank.counter_slot("early_total")] == 2.0

    def test_histogram_block_layout(self):
        bank = SlotBank()
        slot = bank.histogram_slot("h_seconds", buckets=(0.1, 1.0))
        # Contiguous block: k finite buckets, +inf, sum, count.
        assert len(bank.values) - slot == 2 + 3


class TestHandles:
    def test_counter_handle_is_one_array_add(self):
        bank = SlotBank()
        slot = bank.counter_slot("c_total")
        h = CounterHandle(bank.values, slot)
        h.inc()
        h.inc(2.5)
        assert bank.values[slot] == 3.5

    def test_pair_handle_writes_both_slots(self):
        bank = SlotBank()
        a = bank.counter_slot("puts_total")
        bank.counter_slot("spacer_total")  # slots need not be contiguous
        b = bank.hidden_slot("put_bytes")
        h = PairHandle(bank.values, a, b)
        h.add(1.0, 100.0)
        h.add(1.0, 40.0)
        assert bank.values[a] == 2.0
        assert bank.values[b] == 140.0

    def test_gauge_handle_overwrites(self):
        bank = SlotBank()
        slot = bank.gauge_slot("g")
        h = GaugeHandle(bank.values, slot)
        h.set(5.0)
        h.set(2.0)
        assert bank.values[slot] == 2.0

    def test_histogram_handle_boundary_is_value_le_bound(self):
        # Legacy Histogram.observe places value in the first bucket with
        # value <= bound; the bisect-based handle must match exactly.
        bank = SlotBank()
        h = bank.histogram_handle("h_seconds", buckets=(0.1, 1.0))
        for v in (0.1, 0.05, 1.0, 3.0):
            h.observe(v)
        block = bank.values[-5:]
        # 0.1 and 0.05 land in <=0.1; 1.0 lands in <=1.0; 3.0 overflows.
        assert block[:3] == [2.0, 1.0, 1.0]
        assert block[3] == pytest.approx(4.15)  # sum
        assert block[4] == 4.0                  # count

    def test_noop_handle_swallows_everything(self):
        for call in (NOOP_HANDLE.inc, lambda: NOOP_HANDLE.add(1, 2),
                     lambda: NOOP_HANDLE.set(3),
                     lambda: NOOP_HANDLE.observe(0.5),
                     lambda: NOOP_HANDLE.update(1, 2, 3)):
            assert call() is None
        assert isinstance(NOOP_HANDLE, NoopHandle)


class TestDeferredMaterialisation:
    def test_counter_snapshot_label_fidelity(self):
        reg = MetricsRegistry()
        slot = reg.bank.counter_slot(
            "repro_x_total", {"buffer": "cam", "kind": "channel"})
        reg.bank.values[slot] += 3.0
        (cell,) = reg.snapshot()
        assert cell["name"] == "repro_x_total"
        assert cell["labels"] == {"buffer": "cam", "kind": "channel"}
        assert cell["value"] == 3.0

    def test_unwritten_gauge_is_not_exported(self):
        reg = MetricsRegistry()
        slot = reg.bank.gauge_slot("repro_g")
        assert list(reg.collect()) == []
        reg.bank.values[slot] = 7.0
        (metric,) = reg.collect()
        assert metric.value == 7.0

    def test_hidden_slots_never_export(self):
        reg = MetricsRegistry()
        slot = reg.bank.hidden_slot("scratch")
        reg.bank.values[slot] += 99.0
        assert list(reg.collect()) == []

    def test_empty_histogram_is_not_exported(self):
        reg = MetricsRegistry()
        h = reg.bank.histogram_handle("repro_h_seconds", buckets=(0.1,))
        assert list(reg.collect()) == []
        h.observe(0.05)
        (metric,) = reg.collect()
        assert metric.count == 1
        assert metric.bucket_counts == [1]

    def test_derived_gauge_is_plus_minus(self):
        reg = MetricsRegistry()
        bank = reg.bank
        puts = bank.counter_slot("puts_total")
        frees = bank.counter_slot("frees_total")
        bank.derive_gauge("depth", plus=[puts], minus=[frees])
        bank.values[puts] += 5.0
        bank.values[frees] += 2.0
        assert reg.value("depth") == 3.0

    def test_sync_is_idempotent_and_stamps_on_change_only(self):
        clock = [0.0]
        reg = MetricsRegistry(time_fn=lambda: clock[0])
        slot = reg.bank.counter_slot("c_total")
        reg.bank.values[slot] += 1.0
        clock[0] = 1.0
        stamp = reg.get("c_total").last_updated
        assert stamp == 1.0
        clock[0] = 2.0
        # Re-reading with no new updates must not touch the stamp.
        assert reg.get("c_total").last_updated == 1.0
        reg.bank.values[slot] += 1.0
        assert reg.get("c_total").last_updated == 2.0


class TestHubWiring:
    def test_handles_are_cached_per_site_identity(self):
        hub = TelemetryHub(TelemetryConfig(spans=False))
        assert hub.put_handle("cam", "channel") is hub.put_handle(
            "cam", "channel")
        assert hub.put_handle("cam", "channel") is not hub.put_handle(
            "det", "channel")

    def test_metrics_off_wires_noop_and_creates_no_instruments(self):
        hub = TelemetryHub(TelemetryConfig(metrics=False, spans=True))
        assert hub.put_handle("cam", "channel") is NOOP_HANDLE
        assert hub.sync_handle("t0") is NOOP_HANDLE
        assert len(hub.metrics.bank.values) == 0

    def test_null_hub_hands_out_noop_handles(self):
        assert isinstance(NULL_HUB, NullTelemetryHub)
        assert NULL_HUB.put_handle("cam", "channel") is NOOP_HANDLE
        assert NULL_HUB.transfer_handle("a->b") is NOOP_HANDLE

    def test_depth_is_puts_minus_frees_at_export(self):
        hub = TelemetryHub(TelemetryConfig(spans=False))
        put = hub.put_handle("cam", "channel")
        free = hub.free_handle("cam", "channel", "dgc")
        for _ in range(5):
            put.add(1.0, 100.0)
        free.add(1.0, 100.0)
        free.add(1.0, 100.0)
        labels = {"buffer": "cam", "kind": "channel"}
        assert hub.metrics.value("repro_buffer_depth", labels) == 3.0
        assert hub.metrics.value("repro_buffer_bytes_held", labels) == 300.0

    def test_transfer_handle_updates_all_three_series(self):
        hub = TelemetryHub(TelemetryConfig(spans=False))
        h = hub.transfer_handle("a->b")
        h.update(1000, 0.004)
        h.update(500, 0.002)
        labels = {"link": "a->b"}
        reg = hub.metrics
        assert reg.value("repro_link_transfer_bytes_total", labels) == 1500.0
        assert reg.value("repro_link_transfers_total", labels) == 2.0
        hist = reg.get("repro_link_transfer_seconds", labels)
        assert hist.count == 2
        assert hist.total == pytest.approx(0.006)
