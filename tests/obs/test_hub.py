"""Tests for the telemetry hub: null object, hooks, config, resolve_hub."""

import pickle

import pytest

from repro.errors import ConfigError
from repro.obs import (
    NULL_HUB,
    NullTelemetryHub,
    TelemetryConfig,
    TelemetryHub,
    resolve_hub,
)


class FakeItem:
    """Just the attributes the hub hooks read."""

    def __init__(self, item_id, ts=0, size=100, producer="p", parents=()):
        self.item_id = item_id
        self.ts = ts
        self.size = size
        self.producer = producer
        self.parents = tuple(parents)


class TestNullHub:
    def test_disabled_and_falsy(self):
        assert NULL_HUB.enabled is False
        assert not NULL_HUB

    def test_is_a_shared_singleton(self):
        assert resolve_hub(None) is NULL_HUB
        assert resolve_hub(False) is NULL_HUB

    def test_hooks_are_noops(self):
        NULL_HUB.on_put("C1", "channel", FakeItem(1), 0.0)
        NULL_HUB.on_sync("t", 0, 1, 0.5, 0.1, 0.0, None, None, None)
        NULL_HUB.on_fault("injected", "thread_crash", "x", 1.0)
        NULL_HUB.on_finalize({}, 1.0)
        assert NULL_HUB.bind(time_fn=lambda: 0.0) is NULL_HUB

    def test_snapshot_shape(self):
        snap = NULL_HUB.snapshot()
        assert snap["enabled"] is False
        assert snap["metrics"] == []

    def test_no_instance_dict(self):
        # __slots__ = () — a stray attribute write on the shared
        # singleton must fail loudly, not leak global state.
        with pytest.raises(AttributeError):
            NullTelemetryHub().stray = 1


class TestConfig:
    def test_defaults(self):
        cfg = TelemetryConfig()
        assert cfg.enabled and cfg.metrics and cfg.spans
        assert cfg.span_sample == 1

    def test_bad_sample_rejected(self):
        with pytest.raises(ConfigError, match="span_sample"):
            TelemetryConfig(span_sample=0)

    def test_bad_max_spans_rejected(self):
        with pytest.raises(ConfigError, match="max_spans"):
            TelemetryConfig(max_spans=0)


class TestResolveHub:
    def test_true_builds_fresh_hub(self):
        a, b = resolve_hub(True), resolve_hub(True)
        assert a.enabled and b.enabled and a is not b

    def test_config_builds_hub(self):
        hub = resolve_hub(TelemetryConfig(span_sample=3))
        assert hub.tracer.sample == 3

    def test_disabled_config_is_null(self):
        assert resolve_hub(TelemetryConfig(enabled=False)) is NULL_HUB

    def test_existing_hub_passes_through(self):
        hub = TelemetryHub()
        assert resolve_hub(hub) is hub

    def test_garbage_rejected(self):
        with pytest.raises(ConfigError, match="telemetry"):
            resolve_hub("yes please")


class TestHooks:
    def test_put_get_free_roundtrip(self):
        hub = TelemetryHub()
        item = FakeItem(1, ts=5, size=200)
        hub.on_put("C1", "channel", item, t=1.0)
        hub.on_get("C1", "channel", item, consumer="gui", t=2.0)
        hub.on_free("C1", "channel", item, t=3.0, collector="dgc")
        m = hub.metrics
        assert m.value("repro_buffer_puts_total",
                       {"buffer": "C1", "kind": "channel"}) == 1
        assert m.value("repro_buffer_gets_total",
                       {"buffer": "C1", "kind": "channel",
                        "consumer": "gui"}) == 1
        assert m.value("repro_buffer_depth",
                       {"buffer": "C1", "kind": "channel"}) == 0
        assert m.value("repro_gc_reclaimed_bytes_total",
                       {"buffer": "C1", "gc": "dgc"}) == 200
        # item span was opened at put and closed at free
        span = hub.tracer.get(hub.tracer.item_span[1])
        assert span.t_start == 1.0 and span.t_end == 3.0

    def test_put_parents_link_spans(self):
        hub = TelemetryHub()
        parent = FakeItem(1)
        hub.on_put("C1", "channel", parent, t=0.0)
        child = FakeItem(2, parents=(1,))
        hub.on_put("C2", "channel", child, t=1.0)
        chain = hub.tracer.ancestry(2)
        assert [s.track for s in chain] == ["buffer/C2", "buffer/C1"]

    def test_sampling_skips_item_spans_but_not_counters(self):
        hub = TelemetryHub(TelemetryConfig(span_sample=2))
        hub.on_put("C1", "channel", FakeItem(3), t=0.0)  # 3 % 2 != 0
        assert 3 not in hub.tracer.item_span
        assert hub.metrics.value(
            "repro_buffer_puts_total",
            {"buffer": "C1", "kind": "channel"}) == 1

    def test_on_sync_records_control_signals(self):
        hub = TelemetryHub()
        hub.on_sync("digitizer", t_start=0.0, t_end=0.2, compute=0.1,
                    blocked=0.05, slept=0.04, stp=0.1, summary=0.2,
                    target=0.2)
        m = hub.metrics
        labels = {"thread": "digitizer"}
        assert m.value("repro_iterations_total", labels) == 1
        assert m.value("repro_throttle_sleep_seconds_total", labels) == 0.04
        assert m.value("repro_stp_summary_seconds", labels) == 0.2
        (span,) = hub.tracer.spans
        assert span.cat == "iteration"
        assert span.args["throttle_sleep"] == 0.04

    def test_on_transfer_span_covers_the_wire_time(self):
        hub = TelemetryHub()
        hub.on_transfer("node0->node1", nbytes=1000, duration=0.5, t=2.0)
        (span,) = hub.tracer.spans
        assert span.t_start == 1.5 and span.t_end == 2.0
        assert hub.metrics.value("repro_link_transfer_bytes_total",
                                 {"link": "node0->node1"}) == 1000

    def test_on_fault_records_counter_and_instant(self):
        hub = TelemetryHub()
        hub.on_fault("injected", "thread_crash", "digitizer", t=5.0)
        assert hub.metrics.value(
            "repro_fault_events_total",
            {"phase": "injected", "kind": "thread_crash"}) == 1
        (inst,) = hub.tracer.instants
        assert inst.name == "injected:thread_crash"
        assert inst.track == "faults"

    def test_metrics_only_mode(self):
        hub = TelemetryHub(TelemetryConfig(spans=False))
        hub.on_put("C1", "channel", FakeItem(2), t=0.0)
        hub.on_fault("injected", "x", "y", t=1.0)
        assert hub.tracer.recorded == 0
        assert len(hub.metrics) > 0

    def test_spans_only_mode(self):
        hub = TelemetryHub(TelemetryConfig(metrics=False))
        hub.on_put("C1", "channel", FakeItem(2), t=0.0)
        assert len(hub.metrics) == 0
        assert hub.tracer.recorded > 0

    def test_finalize_flushes_and_stamps(self):
        hub = TelemetryHub()
        hub.on_put("C1", "channel", FakeItem(2), t=0.0)
        hub.on_finalize({"engine": {"events_processed": 10, "now": 9.0}}, 9.0)
        assert hub.t_end == 9.0
        assert all(s.t_end is not None for s in hub.tracer.spans)
        assert hub.metrics.value("repro_engine_events_processed") == 10

    def test_bind_attaches_clock_and_meta(self):
        hub = TelemetryHub()
        assert hub.bind(time_fn=lambda: 7.0, run={"seed": 3}) is hub
        hub.metrics.counter("x").inc()
        assert hub.metrics.get("x").last_updated == 7.0
        assert hub.run_meta == {"seed": 3}

    def test_snapshot_is_plain_data(self):
        hub = TelemetryHub()
        hub.on_put("C1", "channel", FakeItem(2), t=0.0)
        snap = hub.snapshot()
        assert snap["enabled"] is True
        assert isinstance(snap["metrics"], list)
        pickle.dumps(snap)  # sweep workers ship snapshots across processes


class TestTenantPath:
    def test_tenant_handle_counts_deliveries(self):
        hub = TelemetryHub()
        handle = hub.tenant_handle("t0")
        handle.inc()
        handle.inc()
        assert hub.metrics.value("repro_tenant_deliveries_total",
                                 {"tenant": "t0"}) == 2.0

    def test_tenant_handle_is_cached(self):
        hub = TelemetryHub()
        assert hub.tenant_handle("t0") is hub.tenant_handle("t0")
        assert hub.tenant_handle("t0") is not hub.tenant_handle("t1")

    def test_on_tenant_counts_lifecycle_phases(self):
        hub = TelemetryHub()
        hub.on_tenant("admitted", "t0", 0.0)
        hub.on_tenant("admitted", "t1", 0.0)
        hub.on_tenant("evicted", "t0", 3.0, detail="node0 died")
        assert hub.metrics.value("repro_tenant_events_total",
                                 {"phase": "admitted"}) == 2.0
        assert hub.metrics.value("repro_tenant_events_total",
                                 {"phase": "evicted"}) == 1.0

    def test_null_hub_tenant_hooks_are_noops(self):
        null = NullTelemetryHub()
        null.on_tenant("admitted", "t0", 0.0)
        handle = null.tenant_handle("t0")
        handle.inc()  # NOOP_HANDLE swallows it
