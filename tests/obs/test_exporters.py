"""Tests for the exporters: Prometheus text, Chrome trace, JSONL."""

import json

import pytest

from repro.errors import TelemetryError
from repro.obs import (
    NULL_HUB,
    TelemetryHub,
    chrome_trace,
    chrome_trace_events,
    iter_jsonl,
    prometheus_text,
    read_jsonl,
    summary_from_records,
    summary_table,
    write_chrome_trace,
    write_jsonl,
)


def populated_hub() -> TelemetryHub:
    hub = TelemetryHub().bind(run={"seed": 0})
    m = hub.metrics
    m.counter("repro_buffer_puts_total", {"buffer": "C1", "kind": "channel"},
              help="items put").inc(3)
    m.gauge("repro_buffer_depth", {"buffer": "C1", "kind": "channel"}).set(2)
    m.histogram("repro_iteration_seconds", {"thread": "gui"},
                buckets=(0.1, 1.0)).observe(0.05)
    tr = hub.tracer
    s = tr.begin("iteration", "iteration", "thread/gui", 0.0)
    tr.end(s, 0.5)
    child = tr.begin("ts=1", "item", "buffer/C1", 0.2, parent_id=s.span_id)
    tr.end(child, 0.4)
    tr.instant("injected:thread_crash", "fault", "faults", 0.3)
    tr.flow("s", 7, "thread/gui", 0.2)
    tr.flow("f", 7, "thread/sink", 0.35)
    hub.t_end = 0.5
    return hub


class TestPrometheus:
    def test_disabled_hub_refused(self):
        with pytest.raises(TelemetryError, match="disabled"):
            prometheus_text(NULL_HUB)

    def test_counter_and_gauge_lines(self):
        text = prometheus_text(populated_hub())
        assert "# TYPE repro_buffer_puts_total counter" in text
        assert "# HELP repro_buffer_puts_total items put" in text
        assert ('repro_buffer_puts_total{buffer="C1",kind="channel"} 3'
                in text)
        assert 'repro_buffer_depth{buffer="C1",kind="channel"} 2' in text

    def test_histogram_exposition(self):
        text = prometheus_text(populated_hub())
        assert 'repro_iteration_seconds_bucket{thread="gui",le="0.1"} 1' in text
        assert ('repro_iteration_seconds_bucket{thread="gui",le="+Inf"} 1'
                in text)
        assert "repro_iteration_seconds_sum" in text
        assert 'repro_iteration_seconds_count{thread="gui"} 1' in text

    def test_type_line_once_per_name(self):
        hub = TelemetryHub()
        hub.metrics.counter("x", {"a": "1"}).inc()
        hub.metrics.counter("x", {"a": "2"}).inc()
        text = prometheus_text(hub)
        assert text.count("# TYPE x counter") == 1

    def test_ends_with_newline(self):
        assert prometheus_text(populated_hub()).endswith("\n")


class TestChromeTrace:
    def test_disabled_hub_refused(self):
        with pytest.raises(TelemetryError, match="disabled"):
            chrome_trace_events(NULL_HUB)

    def test_track_metadata_events(self):
        events = chrome_trace_events(populated_hub())
        meta = [e for e in events if e["ph"] == "M"]
        names = {e["args"]["name"] for e in meta}
        assert {"thread/gui", "buffer/C1", "faults", "thread/sink"} <= names
        # one unique tid per track
        assert len({e["tid"] for e in meta}) == len(meta)

    def test_slices_in_microseconds(self):
        events = chrome_trace_events(populated_hub())
        (it,) = [e for e in events
                 if e["ph"] == "X" and e["name"] == "iteration"]
        assert it["ts"] == 0.0
        assert it["dur"] == 0.5e6

    def test_zero_length_slice_gets_min_duration(self):
        hub = TelemetryHub()
        s = hub.tracer.begin("blip", "item", "t", 1.0)
        hub.tracer.end(s, 1.0)
        (ev,) = [e for e in chrome_trace_events(hub) if e["ph"] == "X"]
        assert ev["dur"] == 1.0  # 1 µs floor so Perfetto renders it

    def test_parent_span_in_args(self):
        events = chrome_trace_events(populated_hub())
        (child,) = [e for e in events
                    if e["ph"] == "X" and e["name"] == "ts=1"]
        assert "parent_span" in child["args"]

    def test_instants_and_flows(self):
        events = chrome_trace_events(populated_hub())
        (inst,) = [e for e in events if e["ph"] == "i"]
        assert inst["name"] == "injected:thread_crash"
        assert inst["s"] == "g"
        start = [e for e in events if e["ph"] == "s"]
        finish = [e for e in events if e["ph"] == "f"]
        assert len(start) == 1 and len(finish) == 1
        assert start[0]["id"] == finish[0]["id"] == 7
        assert finish[0]["bp"] == "e"

    def test_document_metadata(self):
        doc = chrome_trace(populated_hub())
        assert doc["otherData"]["source"] == "repro.obs"
        assert doc["otherData"]["seed"] == "0"
        assert doc["otherData"]["dropped_events"] == 0

    def test_write_roundtrip(self, tmp_path):
        path = tmp_path / "run.trace.json"
        n = write_chrome_trace(populated_hub(), str(path))
        doc = json.loads(path.read_text())
        assert len(doc["traceEvents"]) == n > 0


class TestJsonl:
    def test_disabled_hub_refused(self):
        with pytest.raises(TelemetryError, match="disabled"):
            list(iter_jsonl(NULL_HUB))

    def test_stream_leads_with_meta(self):
        records = list(iter_jsonl(populated_hub()))
        assert records[0]["rec"] == "meta"
        assert records[0]["seed"] == 0
        kinds = {r["rec"] for r in records}
        assert kinds == {"meta", "metric", "span", "instant", "flow"}

    def test_write_read_roundtrip(self, tmp_path):
        hub = populated_hub()
        path = tmp_path / "run.jsonl"
        n = write_jsonl(hub, str(path))
        records = read_jsonl(str(path))
        assert len(records) == n
        assert records == list(iter_jsonl(hub))

    def test_read_accepts_open_file(self, tmp_path):
        path = tmp_path / "run.jsonl"
        write_jsonl(populated_hub(), str(path))
        with open(path) as fh:
            assert read_jsonl(fh)[0]["rec"] == "meta"


class TestSummary:
    def test_summary_table_mentions_threads_and_buffers(self):
        hub = TelemetryHub()
        hub.on_sync("gui", 0.0, 0.3, 0.1, 0.0, 0.0, 0.02, 0.02, None)
        text = summary_table(hub)
        assert "gui" in text
        assert "threads" in text

    def test_summary_from_records_matches_live_summary(self, tmp_path):
        hub = TelemetryHub()
        hub.on_sync("gui", 0.0, 0.3, 0.1, 0.0, 0.0, 0.02, 0.02, None)
        path = tmp_path / "run.jsonl"
        write_jsonl(hub, str(path))
        assert summary_from_records(read_jsonl(str(path))) == \
            summary_table(hub)
