"""Tests for the span tracer: slices, instants, flows, bounds, ancestry."""

import pytest

from repro.obs import SpanTracer


class TestSpanLifecycle:
    def test_begin_end(self):
        tr = SpanTracer()
        s = tr.begin("iter", "thread", "thread/digitizer", t=1.0)
        assert s.open
        tr.end(s, 2.5)
        assert not s.open
        assert s.duration == 1.5

    def test_span_ids_are_unique_and_ordered(self):
        tr = SpanTracer()
        a = tr.begin("a", "c", "t", 0.0)
        b = tr.begin("b", "c", "t", 0.0)
        assert b.span_id == a.span_id + 1

    def test_end_id_closes_by_id(self):
        tr = SpanTracer()
        s = tr.begin("a", "c", "t", 0.0)
        tr.end_id(s.span_id, 3.0)
        assert s.t_end == 3.0

    def test_end_is_idempotent(self):
        tr = SpanTracer()
        s = tr.begin("a", "c", "t", 0.0)
        tr.end(s, 1.0)
        tr.end(s, 9.0)  # second end must not move it
        assert s.t_end == 1.0

    def test_end_none_is_noop(self):
        SpanTracer().end(None, 1.0)  # cap-swallowed spans come back None

    def test_close_open_spans_flushes(self):
        tr = SpanTracer()
        tr.begin("a", "c", "t", 0.0)
        s = tr.begin("b", "c", "t", 0.0)
        tr.end(s, 1.0)
        assert tr.close_open_spans(5.0) == 1
        assert all(sp.t_end is not None for sp in tr.spans)


class TestBounds:
    def test_cap_drops_and_counts(self):
        tr = SpanTracer(max_spans=2)
        tr.begin("a", "c", "t", 0.0)
        tr.begin("b", "c", "t", 0.0)
        assert tr.begin("c", "c", "t", 0.0) is None
        tr.instant("x", "c", "t", 0.0)
        tr.flow("s", 1, "t", 0.0)
        assert tr.recorded == 2
        assert tr.dropped == 3

    def test_bad_sample_rejected(self):
        with pytest.raises(ValueError, match="sample"):
            SpanTracer(sample=0)

    def test_bad_max_spans_rejected(self):
        with pytest.raises(ValueError, match="max_spans"):
            SpanTracer(max_spans=0)


class TestSampling:
    def test_sample_1_keeps_everything(self):
        tr = SpanTracer(sample=1)
        assert all(tr.sampled(i) for i in range(10))

    def test_sample_n_is_pure_in_item_id(self):
        tr = SpanTracer(sample=4)
        kept = [i for i in range(16) if tr.sampled(i)]
        assert kept == [0, 4, 8, 12]
        # producer and consumer make the same call — purity is the
        # contract that keeps flow starts and finishes paired.
        assert [tr.sampled(i) for i in range(16)] == \
               [tr.sampled(i) for i in range(16)]


class TestAncestry:
    def test_chain_walks_parents_newest_first(self):
        tr = SpanTracer()
        root = tr.begin("ts=0", "item", "buffer/C1", 0.0)
        mid = tr.begin("ts=0", "item", "buffer/C2", 1.0,
                       parent_id=root.span_id)
        leaf = tr.begin("ts=0", "item", "buffer/C3", 2.0,
                        parent_id=mid.span_id)
        tr.item_span[42] = leaf.span_id
        chain = tr.ancestry(42)
        assert [s.track for s in chain] == \
               ["buffer/C3", "buffer/C2", "buffer/C1"]

    def test_unknown_item_empty_chain(self):
        assert SpanTracer().ancestry(999) == []

    def test_cycle_guard_terminates(self):
        tr = SpanTracer()
        a = tr.begin("a", "item", "t", 0.0)
        a.parent_id = a.span_id  # pathological self-parent
        tr.item_span[1] = a.span_id
        assert len(tr.ancestry(1)) == 1


class TestStats:
    def test_stats_shape(self):
        tr = SpanTracer(sample=2)
        tr.begin("a", "c", "t", 0.0)
        tr.instant("i", "c", "t", 0.0)
        tr.flow("s", 7, "t", 0.0)
        assert tr.stats() == {"spans": 1, "instants": 1, "flows": 1,
                              "dropped": 0, "sample": 2}
