"""Tests for the metrics registry: Counter/Gauge/Histogram + labels."""

import pytest

from repro.errors import TelemetryError
from repro.obs import MetricsRegistry
from repro.obs.metrics import DEFAULT_BUCKETS, canonical_labels


class TestCanonicalLabels:
    def test_sorted_tuple(self):
        assert canonical_labels({"b": "2", "a": "1"}) == (("a", "1"), ("b", "2"))

    def test_values_stringified(self):
        assert canonical_labels({"n": 3}) == (("n", "3"),)

    def test_empty(self):
        assert canonical_labels(None) == ()
        assert canonical_labels({}) == ()


class TestCounter:
    def test_starts_at_zero(self):
        c = MetricsRegistry().counter("hits")
        assert c.value == 0.0

    def test_inc_accumulates(self):
        c = MetricsRegistry().counter("hits")
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_negative_inc_rejected(self):
        c = MetricsRegistry().counter("hits")
        with pytest.raises(TelemetryError, match="decrease"):
            c.inc(-1)

    def test_labels_partition_series(self):
        reg = MetricsRegistry()
        reg.counter("puts", {"buffer": "C1"}).inc()
        reg.counter("puts", {"buffer": "C2"}).inc(5)
        assert reg.value("puts", {"buffer": "C1"}) == 1.0
        assert reg.value("puts", {"buffer": "C2"}) == 5.0

    def test_same_labels_same_instance(self):
        reg = MetricsRegistry()
        a = reg.counter("puts", {"buffer": "C1"})
        b = reg.counter("puts", {"buffer": "C1"})
        assert a is b


class TestGauge:
    def test_set_inc_dec(self):
        g = MetricsRegistry().gauge("depth")
        g.set(10)
        g.inc(2)
        g.dec(5)
        assert g.value == 7.0

    def test_gauge_can_go_negative(self):
        g = MetricsRegistry().gauge("depth")
        g.dec(3)
        assert g.value == -3.0


class TestHistogram:
    def test_observe_updates_sum_and_count(self):
        h = MetricsRegistry().histogram("lat")
        h.observe(0.5)
        h.observe(1.5)
        assert h.count == 2
        assert h.total == 2.0
        assert h.mean == 1.0

    def test_cumulative_buckets_end_with_inf(self):
        h = MetricsRegistry().histogram("lat", buckets=(1.0, 2.0))
        h.observe(0.5)
        h.observe(1.5)
        h.observe(99.0)
        assert h.cumulative() == [(1.0, 1), (2.0, 2), (float("inf"), 3)]

    def test_default_buckets_are_sorted(self):
        assert list(DEFAULT_BUCKETS) == sorted(DEFAULT_BUCKETS)

    def test_unsorted_buckets_rejected(self):
        with pytest.raises(TelemetryError, match="sorted"):
            MetricsRegistry().histogram("lat", buckets=(2.0, 1.0))

    def test_empty_histogram_mean_zero(self):
        assert MetricsRegistry().histogram("lat").mean == 0.0


class TestRegistry:
    def test_type_clash_rejected(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(TelemetryError, match="already registered"):
            reg.gauge("x")

    def test_collect_is_sorted(self):
        reg = MetricsRegistry()
        reg.counter("b")
        reg.counter("a", {"k": "2"})
        reg.counter("a", {"k": "1"})
        names = [(m.name, m.labels) for m in reg.collect()]
        assert names == [("a", (("k", "1"),)), ("a", (("k", "2"),)), ("b", ())]

    def test_get_missing_returns_none(self):
        assert MetricsRegistry().get("nope") is None

    def test_value_default_for_missing(self):
        assert MetricsRegistry().value("nope", default=7.0) == 7.0

    def test_len_counts_series_not_names(self):
        reg = MetricsRegistry()
        reg.counter("x", {"a": "1"})
        reg.counter("x", {"a": "2"})
        assert len(reg) == 2

    def test_samples_stamped_with_time_fn(self):
        now = [0.0]
        reg = MetricsRegistry(time_fn=lambda: now[0])
        c = reg.counter("hits")
        now[0] = 4.0
        c.inc()
        assert c.last_updated == 4.0

    def test_snapshot_roundtrips_to_plain_data(self):
        reg = MetricsRegistry()
        reg.counter("hits", {"k": "v"}).inc(2)
        reg.histogram("lat").observe(0.1)
        snap = reg.snapshot()
        assert isinstance(snap, list)
        byname = {s["name"]: s for s in snap}
        assert byname["hits"]["value"] == 2.0
        assert byname["hits"]["labels"] == {"k": "v"}
        assert byname["lat"]["count"] == 1
        assert byname["lat"]["buckets"][-1][0] == float("inf")
