"""End-to-end telemetry: instrumented runs, determinism, causal paths.

The two load-bearing properties of ISSUE 5 live here:

* **observation does not perturb** — a telemetry-on run produces a
  bit-identical ``metrics_fingerprint`` to a telemetry-off run;
* **item causality is traceable** — a GUI output item's span ancestry
  walks back through the pipeline to a digitizer put, and a chaos run's
  Chrome trace carries the injected-fault instants.
"""

import pytest

from repro.bench.identity import metrics_fingerprint
from repro.bench.runner import CellSpec, run_cell
from repro.experiment import ExperimentSpec, run_experiment
from repro.obs import TelemetryConfig, TelemetryHub, chrome_trace_events

HORIZON = 8.0


@pytest.fixture(scope="module")
def traced_run():
    """One short instrumented tracker run shared by the read-only tests."""
    hub = TelemetryHub()
    result = run_experiment(ExperimentSpec(
        policy="aru-min", horizon=HORIZON, telemetry=hub,
    ))
    return result, hub


class TestDeterminism:
    def test_fingerprint_identical_on_vs_off(self):
        off = run_cell(CellSpec(horizon=HORIZON, telemetry=False))
        on = run_cell(CellSpec(horizon=HORIZON, telemetry=True))
        assert off.ok and on.ok
        assert metrics_fingerprint(off) == metrics_fingerprint(on)
        assert off.telemetry is None
        assert on.telemetry["enabled"] is True

    def test_telemetry_stays_out_of_extras(self):
        on = run_cell(CellSpec(horizon=HORIZON, telemetry=True))
        assert "telemetry" not in on.extras


class TestInstrumentation:
    def test_buffer_counters_cover_every_channel(self, traced_run):
        result, hub = traced_run
        graph = result.runtime.graph
        instrumented = {
            dict(m.labels).get("buffer")
            for m in hub.metrics.collect()
            if m.name == "repro_buffer_puts_total"
        }
        assert set(graph.channels()) <= instrumented

    def test_iteration_counters_cover_every_thread(self, traced_run):
        result, hub = traced_run
        graph = result.runtime.graph
        instrumented = {
            dict(m.labels).get("thread")
            for m in hub.metrics.collect()
            if m.name == "repro_iterations_total"
        }
        assert set(graph.threads()) <= instrumented

    def test_source_throttle_sleep_recorded(self, traced_run):
        _, hub = traced_run
        # aru-min throttles the digitizer at periodicity_sync; the sleep
        # must surface in the control-path metrics.
        assert hub.metrics.value("repro_throttle_sleep_seconds_total",
                                 {"thread": "digitizer"}) > 0
        assert hub.metrics.value("repro_stp_summary_seconds",
                                 {"thread": "digitizer"}) > 0

    def test_gc_reclamations_recorded(self, traced_run):
        _, hub = traced_run
        reclaimed = sum(
            m.value for m in hub.metrics.collect()
            if m.name == "repro_gc_reclaimed_items_total"
        )
        assert reclaimed > 0

    def test_finalize_stamped_engine_stats(self, traced_run):
        _, hub = traced_run
        assert hub.t_end == pytest.approx(HORIZON)
        assert hub.metrics.value("repro_engine_events_processed") > 0


class TestCausalPath:
    def test_gui_item_ancestry_reaches_digitizer(self, traced_run):
        _, hub = traced_run
        tracer = hub.tracer
        # find an item that the GUI consumed (flow finish on thread/gui)
        gui_items = [f.flow_id for f in tracer.flows
                     if f.phase == "f" and f.track == "thread/gui"]
        assert gui_items
        producers = set()
        for item_id in gui_items:
            chain = tracer.ancestry(item_id)
            producers.update(s.args.get("producer") for s in chain)
        assert "digitizer" in producers  # full Digitizer→...→GUI path

    def test_flow_starts_and_finishes_pair_up(self, traced_run):
        _, hub = traced_run
        starts = {f.flow_id for f in hub.tracer.flows if f.phase == "s"}
        finishes = {f.flow_id for f in hub.tracer.flows if f.phase == "f"}
        assert finishes <= starts  # every arrow head has a tail


class TestFaultTelemetry:
    def test_chaos_run_exports_fault_instants(self):
        from repro.faults import FaultInjector, FaultSchedule, FaultSpec

        hub = TelemetryHub()
        spec = ExperimentSpec(
            policy="aru-min", horizon=HORIZON, telemetry=hub,
            faults=(FaultSpec(kind="thread_stall", target="histogram",
                              at=2.0, duration=2.0),),
        )
        result = run_experiment(spec)
        assert result.fault_log is not None
        phases = {(i.name.split(":")[0]) for i in hub.tracer.instants}
        assert "injected" in phases
        assert hub.metrics.value("repro_fault_events_total",
                                 {"phase": "injected",
                                  "kind": "thread_stall"}) == 1
        # and the instants survive into the Chrome trace
        events = chrome_trace_events(hub)
        assert any(e["ph"] == "i" and e["name"].startswith("injected:")
                   for e in events)


class TestSamplingAndBounds:
    def test_sampled_run_keeps_fraction_of_item_spans(self):
        full_hub = TelemetryHub()
        run_experiment(ExperimentSpec(horizon=HORIZON, telemetry=full_hub))
        sampled_hub = TelemetryHub(TelemetryConfig(span_sample=4))
        run_experiment(ExperimentSpec(horizon=HORIZON, telemetry=sampled_hub))
        full_items = len(full_hub.tracer.item_span)
        sampled_items = len(sampled_hub.tracer.item_span)
        assert 0 < sampled_items < full_items

    def test_span_cap_counts_drops(self):
        hub = TelemetryHub(TelemetryConfig(max_spans=50))
        run_experiment(ExperimentSpec(horizon=HORIZON, telemetry=hub))
        assert hub.tracer.recorded <= 50
        assert hub.tracer.dropped > 0

    def test_metrics_only_run_records_no_spans(self):
        hub = TelemetryHub(TelemetryConfig(spans=False))
        run_experiment(ExperimentSpec(horizon=HORIZON, telemetry=hub))
        assert hub.tracer.recorded == 0
        assert len(hub.metrics) > 0
