"""Focused tests on the driver's STP/time accounting with network costs.

The STP contract (fig. 2 + our §5b notes): production-path time — compute,
local puts, *remote transfers* — is included; waiting for data and
throttle sleep are excluded. These tests pin the boundary cases.
"""

import pytest

from repro.aru import aru_disabled, aru_min
from repro.cluster import ClusterSpec, LinkSpec, NodeSpec
from repro.runtime import (
    Compute,
    Get,
    PeriodicitySync,
    Put,
    Runtime,
    RuntimeConfig,
    Sleep,
    TaskGraph,
)


def two_node_cluster(latency=0.0, bw=1_000_000):
    return ClusterSpec(
        nodes=(
            NodeSpec(name="node0", sched_noise_cv=0.0),
            NodeSpec(name="node1", sched_noise_cv=0.0),
        ),
        link=LinkSpec(latency_s=latency, bandwidth_bps=bw),
        name="two",
    )


def test_remote_put_transfer_counts_in_stp():
    """A producer shipping 1 MB over a 1 MB/s link has STP ~1 s."""

    def src(ctx):
        ts = 0
        while True:
            yield Put("c", ts=ts, size=1_000_000)
            ts += 1
            yield PeriodicitySync()

    g = TaskGraph()
    g.add_thread("src", src, node="node0")
    g.add_channel("c", node="node1")
    g.connect("src", "c")
    rec = Runtime(
        g, RuntimeConfig(cluster=two_node_cluster(), aru=aru_min())
    ).run(until=5.0)
    stps = [s.current_stp for s in rec.stp_samples if s.thread == "src"][1:]
    assert stps and all(s == pytest.approx(1.0, rel=0.05) for s in stps)


def test_remote_get_transfer_counts_in_stp_but_wait_does_not():
    """Consumer: waits 2 s for data (excluded), then 1 s transfer (included)."""

    def src(ctx):
        ts = 0
        while True:
            yield Sleep(2.0)
            yield Put("c", ts=ts, size=1_000_000)
            ts += 1
            yield PeriodicitySync()

    def dst(ctx):
        while True:
            yield Get("c")
            yield PeriodicitySync()

    g = TaskGraph()
    g.add_thread("src", src, node="node0")
    g.add_thread("dst", dst, node="node1", sink=True)
    g.add_channel("c")  # co-located with src on node0
    g.connect("src", "c").connect("c", "dst")
    rec = Runtime(
        g, RuntimeConfig(cluster=two_node_cluster(), aru=aru_min())
    ).run(until=20.0)
    stps = [s.current_stp for s in rec.stp_samples if s.thread == "dst"][1:]
    assert stps
    # STP = 1 s transfer, not 3 s (wait + transfer)
    for stp in stps:
        assert stp == pytest.approx(1.0, rel=0.1)
    blocked = [it.blocked for it in rec.iterations_of("dst")][1:]
    for b in blocked:
        assert b == pytest.approx(1.0, rel=0.2)  # waits ~1 s of each 2 s cycle


def test_iteration_decomposition_sums_to_duration():
    """compute + blocked + slept + overheads == wall duration per iteration
    (here, with zero noise and local channels, exactly)."""

    def src(ctx):
        ts = 0
        while True:
            yield Compute(0.02)
            yield Sleep(0.03)
            yield Put("c", ts=ts, size=10)
            ts += 1
            yield PeriodicitySync()

    def dst(ctx):
        while True:
            yield Get("c")
            yield Compute(0.01)
            yield PeriodicitySync()

    g = TaskGraph()
    g.add_thread("src", src)
    g.add_thread("dst", dst, sink=True)
    g.add_channel("c")
    g.connect("src", "c").connect("c", "dst")
    cluster = ClusterSpec(nodes=(NodeSpec(name="node0", sched_noise_cv=0.0),))
    rec = Runtime(g, RuntimeConfig(cluster=cluster, aru=aru_min())).run(until=10.0)
    for it in rec.iterations:
        accounted = it.compute + it.blocked + it.slept
        if it.thread == "src":
            accounted += 0.03  # the app-paced Sleep
        assert accounted == pytest.approx(it.duration, abs=1e-9)


def test_compute_actual_vs_requested_with_contention():
    """Two simultaneous computes on a contended node return inflated
    actual durations, and those are what the iteration records carry."""
    cluster = ClusterSpec(
        nodes=(NodeSpec(name="node0", ncpus=4, smp_contention_alpha=0.5,
                        sched_noise_cv=0.0),),
    )

    def worker(ctx):
        while True:
            yield Compute(0.1)
            yield Put(ctx.params["chan"], ts=ctx.params.setdefault("ts", 0),
                      size=1)
            ctx.params["ts"] += 1
            yield PeriodicitySync()

    g = TaskGraph()
    g.add_thread("a", worker, params={"chan": "ca"})
    g.add_thread("b", worker, params={"chan": "cb"})
    g.add_channel("ca").add_channel("cb")
    g.connect("a", "ca").connect("b", "cb")
    rec = Runtime(g, RuntimeConfig(cluster=cluster, aru=aru_disabled())).run(
        until=5.0
    )
    computes = [it.compute for it in rec.iterations]
    assert computes
    # with one concurrent other: 0.1 * (1 + 0.5) = 0.15
    assert max(computes) == pytest.approx(0.15, rel=0.05)
