"""Tests for the CheckDead (computation elimination) syscall."""

import pytest

from repro.aru import aru_disabled
from repro.cluster import ClusterSpec, NodeSpec
from repro.runtime import (
    CheckDead,
    Get,
    PeriodicitySync,
    Put,
    Runtime,
    RuntimeConfig,
    Sleep,
    TaskGraph,
)


def quiet():
    return ClusterSpec(nodes=(NodeSpec(name="node0", sched_noise_cv=0.0),))


def test_checkdead_false_when_no_consumer_activity():
    results = []

    def src(ctx):
        yield Put("c", ts=0, size=1)
        dead = yield CheckDead("c", 1)
        results.append(dead)

    g = TaskGraph()
    g.add_thread("src", src)
    g.add_channel("c")
    g.add_thread("cons", lambda ctx: iter(()), sink=True)

    def cons(ctx):
        yield Sleep(100.0)

    g.attrs("cons")["fn"] = cons
    g.connect("src", "c").connect("c", "cons")
    Runtime(g, RuntimeConfig(cluster=quiet(), aru=aru_disabled())).run(until=1.0)
    assert results == [False]


def test_checkdead_true_after_cursor_passes():
    """Once the consumer's cursor reaches ts=5, producing ts<=5 is dead."""
    results = []

    def src(ctx):
        for ts in range(6):
            yield Put("c", ts=ts, size=1)
        yield Sleep(1.0)  # let the consumer get ts=5
        results.append((yield CheckDead("c", 3)))   # below cursor -> dead
        results.append((yield CheckDead("c", 5)))   # at cursor -> dead
        results.append((yield CheckDead("c", 6)))   # above cursor -> alive

    def cons(ctx):
        while True:
            yield Get("c")
            yield PeriodicitySync()

    g = TaskGraph()
    g.add_thread("src", src)
    g.add_thread("cons", cons, sink=True)
    g.add_channel("c")
    g.connect("src", "c").connect("c", "cons")
    Runtime(g, RuntimeConfig(cluster=quiet(), aru=aru_disabled())).run(until=5.0)
    assert results == [True, True, False]


def test_checkdead_needs_all_consumers():
    results = []

    def src(ctx):
        yield Put("c", ts=0, size=1)
        yield Sleep(1.0)
        results.append((yield CheckDead("c", 0)))

    def fast(ctx):
        while True:
            yield Get("c")
            yield PeriodicitySync()

    def idle(ctx):
        yield Sleep(100.0)

    g = TaskGraph()
    g.add_thread("src", src)
    g.add_thread("fast", fast)
    g.add_thread("idle", idle, sink=True)
    g.add_channel("c")
    g.connect("src", "c").connect("c", "fast").connect("c", "idle")
    Runtime(g, RuntimeConfig(cluster=quiet(), aru=aru_disabled())).run(until=5.0)
    # `idle` never consumed anything, so ts=0 is not dead for everyone
    assert results == [False]


def test_checkdead_unknown_channel_raises():
    from repro.errors import SimulationError

    def src(ctx):
        yield CheckDead("ghost", 0)

    g = TaskGraph()
    g.add_thread("src", src)
    g.add_channel("c").connect("src", "c")
    rt = Runtime(g, RuntimeConfig(cluster=quiet()))
    with pytest.raises(SimulationError):
        rt.run(until=1.0)


def test_tracker_ce_mode_runs():
    """The computation-elimination tracker variant executes end to end."""
    from repro.apps import TrackerConfig, build_tracker
    from repro.cluster import config1_spec

    g = build_tracker(TrackerConfig(computation_elimination=True))
    rec = Runtime(
        g, RuntimeConfig(cluster=config1_spec(), aru=aru_disabled(), seed=0)
    ).run(until=10.0)
    assert rec.sink_iterations()
