"""Integration tests for the thread driver: syscalls, STP, lineage, ARU."""

import pytest

from repro.aru import aru_disabled, aru_min
from repro.cluster import ClusterSpec, LinkSpec, NodeSpec
from repro.errors import SimulationError
from repro.runtime import (
    Compute,
    Get,
    Now,
    PeriodicitySync,
    Put,
    Runtime,
    RuntimeConfig,
    Sleep,
    TaskGraph,
    TryGet,
)


def quiet_cluster(n_nodes=1, latency=0.0, bandwidth=10**12):
    """Noise-free cluster so timing assertions are exact."""
    return ClusterSpec(
        nodes=tuple(NodeSpec(name=f"node{i}", sched_noise_cv=0.0) for i in range(n_nodes)),
        link=LinkSpec(latency_s=latency, bandwidth_bps=bandwidth),
        name="quiet",
    )


def simple_pipeline(prod_period=0.05, cons_compute=0.2, n_items=None):
    def producer(ctx):
        ts = 0
        while n_items is None or ts < n_items:
            yield Compute(prod_period)
            yield Put("c", ts=ts, size=1000)
            ts += 1
            yield PeriodicitySync()

    def consumer(ctx):
        while True:
            yield Get("c")
            yield Compute(cons_compute)
            yield PeriodicitySync()

    g = TaskGraph("simple")
    g.add_thread("prod", producer)
    g.add_thread("cons", consumer, sink=True)
    g.add_channel("c")
    g.connect("prod", "c").connect("c", "cons")
    return g


class TestBasicExecution:
    def test_iteration_counts(self):
        g = simple_pipeline(prod_period=0.1, cons_compute=0.1)
        rt = Runtime(g, RuntimeConfig(cluster=quiet_cluster(), aru=aru_disabled()))
        rec = rt.run(until=10.0)
        assert 95 <= len(rec.iterations_of("prod")) <= 100
        assert 90 <= len(rec.iterations_of("cons")) <= 100

    def test_sink_flag_propagates(self):
        g = simple_pipeline()
        rt = Runtime(g, RuntimeConfig(cluster=quiet_cluster(), aru=aru_disabled()))
        rec = rt.run(until=2.0)
        assert all(it.is_sink for it in rec.iterations_of("cons"))
        assert not any(it.is_sink for it in rec.iterations_of("prod"))

    def test_lineage_parents_recorded(self):
        g = simple_pipeline()

        def relay(ctx):
            while True:
                view = yield Get("c2")
                yield Put("c3", ts=view.ts, size=10)
                yield PeriodicitySync()

        g2 = TaskGraph("lineage")

        def producer(ctx):
            ts = 0
            while True:
                yield Compute(0.05)
                yield Put("c2", ts=ts, size=100)
                ts += 1
                yield PeriodicitySync()

        def sink(ctx):
            while True:
                yield Get("c3")
                yield PeriodicitySync()

        g2.add_thread("p", producer)
        g2.add_thread("r", relay)
        g2.add_thread("s", sink, sink=True)
        g2.add_channel("c2").add_channel("c3")
        g2.connect("p", "c2").connect("c2", "r").connect("r", "c3").connect("c3", "s")
        rt = Runtime(g2, RuntimeConfig(cluster=quiet_cluster(), aru=aru_disabled()))
        rec = rt.run(until=3.0)
        relayed = [item for item in rec.items.values() if item.channel == "c3"]
        assert relayed
        for item in relayed:
            assert len(item.parents) == 1
            parent = rec.items[item.parents[0]]
            assert parent.channel == "c2"
            assert parent.ts == item.ts

    def test_source_items_have_no_parents(self):
        g = simple_pipeline()
        rt = Runtime(g, RuntimeConfig(cluster=quiet_cluster(), aru=aru_disabled()))
        rec = rt.run(until=2.0)
        assert all(not item.parents for item in rec.items.values())

    def test_task_body_terminates_cleanly(self):
        g = simple_pipeline(n_items=5)
        rt = Runtime(g, RuntimeConfig(cluster=quiet_cluster(), aru=aru_disabled()))
        rec = rt.run(until=10.0)
        assert len(rec.iterations_of("prod")) == 5

    def test_non_generator_body_raises(self):
        def bad(ctx):
            return 42

        g = TaskGraph()
        g.add_thread("bad", bad)
        g.add_channel("c").connect("bad", "c")
        rt = Runtime(g, RuntimeConfig(cluster=quiet_cluster()))
        with pytest.raises(SimulationError, match="generator"):
            rt.run(until=1.0)

    def test_yielding_garbage_raises(self):
        def bad(ctx):
            yield "not-a-syscall"

        g = TaskGraph()
        g.add_thread("bad", bad)
        g.add_channel("c").connect("bad", "c")
        rt = Runtime(g, RuntimeConfig(cluster=quiet_cluster()))
        with pytest.raises(SimulationError, match="syscall"):
            rt.run(until=1.0)

    def test_get_unknown_channel_raises(self):
        def body(ctx):
            yield Get("nonexistent")

        g = TaskGraph()
        g.add_thread("t", body)
        g.add_channel("c").connect("t", "c")
        rt = Runtime(g, RuntimeConfig(cluster=quiet_cluster()))
        with pytest.raises(SimulationError, match="no input connection"):
            rt.run(until=1.0)


class TestSyscalls:
    def test_now_returns_sim_time(self):
        times = []

        def body(ctx):
            t0 = yield Now()
            yield Sleep(1.5)
            t1 = yield Now()
            times.extend([t0, t1])
            yield Put("c", ts=0, size=1)

        g = TaskGraph()
        g.add_thread("t", body)
        g.add_channel("c").connect("t", "c")
        Runtime(g, RuntimeConfig(cluster=quiet_cluster())).run(until=5.0)
        assert times == [0.0, 1.5]

    def test_tryget_none_when_empty(self):
        results = []

        def cons(ctx):
            r = yield TryGet("c")
            results.append(r)
            yield Sleep(1.0)
            r2 = yield TryGet("c")
            results.append(r2.ts if r2 else None)

        def prod(ctx):
            yield Sleep(0.5)
            yield Put("c", ts=3, size=1)

        g = TaskGraph()
        g.add_thread("prod", prod)
        g.add_thread("cons", cons)
        g.add_channel("c").connect("prod", "c").connect("c", "cons")
        Runtime(g, RuntimeConfig(cluster=quiet_cluster())).run(until=5.0)
        assert results == [None, 3]

    def test_sleep_counts_toward_stp(self):
        def paced(ctx):
            ts = 0
            while True:
                yield Sleep(0.1)
                yield Put("c", ts=ts, size=1)
                ts += 1
                yield PeriodicitySync()

        g = TaskGraph()
        g.add_thread("paced", paced)
        g.add_channel("c").connect("paced", "c")
        rt = Runtime(g, RuntimeConfig(cluster=quiet_cluster(), aru=aru_min()))
        rec = rt.run(until=3.0)
        stps = [s.current_stp for s in rec.stp_samples if s.thread == "paced"]
        assert stps and all(s == pytest.approx(0.1) for s in stps)

    def test_blocking_excluded_from_stp(self):
        g = simple_pipeline(prod_period=0.5, cons_compute=0.05)
        rt = Runtime(g, RuntimeConfig(cluster=quiet_cluster(), aru=aru_min()))
        rec = rt.run(until=10.0)
        # consumer blocks ~0.45s per iteration; its STP must be ~0.05
        stps = [s.current_stp for s in rec.stp_samples if s.thread == "cons"][1:]
        assert stps
        for stp in stps:
            assert stp == pytest.approx(0.05, abs=0.01)

    def test_compute_returns_actual_duration(self):
        actuals = []

        def body(ctx):
            actual = yield Compute(0.2)
            actuals.append(actual)
            yield Put("c", ts=0, size=1)

        g = TaskGraph()
        g.add_thread("t", body)
        g.add_channel("c").connect("t", "c")
        Runtime(g, RuntimeConfig(cluster=quiet_cluster())).run(until=1.0)
        assert actuals == [pytest.approx(0.2)]


class TestAruThrottling:
    def test_source_throttles_to_consumer_rate(self):
        g = simple_pipeline(prod_period=0.01, cons_compute=0.2)
        rt = Runtime(g, RuntimeConfig(cluster=quiet_cluster(), aru=aru_min(), seed=0))
        rec = rt.run(until=30.0)
        prod_iters = rec.iterations_of("prod")
        # after warmup the producer period should approach 0.2 s
        late = [it for it in prod_iters if it.t_start > 5.0]
        periods = [it.duration for it in late]
        assert periods
        mean_period = sum(periods) / len(periods)
        assert mean_period == pytest.approx(0.2, rel=0.15)

    def test_no_throttle_without_aru(self):
        g = simple_pipeline(prod_period=0.01, cons_compute=0.2)
        rt = Runtime(g, RuntimeConfig(cluster=quiet_cluster(), aru=aru_disabled()))
        rec = rt.run(until=10.0)
        assert all(it.slept == 0.0 for it in rec.iterations_of("prod"))

    def test_waste_reduced_by_aru(self):
        from repro.metrics import PostmortemAnalyzer

        g = simple_pipeline(prod_period=0.01, cons_compute=0.2)
        waste = {}
        for aru in (aru_disabled(), aru_min()):
            rt = Runtime(g, RuntimeConfig(cluster=quiet_cluster(), aru=aru, seed=3))
            rec = rt.run(until=30.0)
            waste[aru.name] = PostmortemAnalyzer(rec).wasted_memory_fraction
        assert waste["no-aru"] > 0.5
        assert waste["aru-min"] < 0.1

    def test_mid_pipeline_thread_not_directly_throttled(self):
        def producer(ctx):
            ts = 0
            while True:
                yield Sleep(0.05)
                yield Put("a", ts=ts, size=10)
                ts += 1
                yield PeriodicitySync()

        def relay(ctx):
            while True:
                view = yield Get("a")
                yield Compute(0.01)
                yield Put("b", ts=view.ts, size=10)
                yield PeriodicitySync()

        def sink(ctx):
            while True:
                yield Get("b")
                yield Compute(0.3)
                yield PeriodicitySync()

        g = TaskGraph()
        g.add_thread("p", producer)
        g.add_thread("r", relay)
        g.add_thread("s", sink, sink=True)
        g.add_channel("a").add_channel("b")
        g.connect("p", "a").connect("a", "r").connect("r", "b").connect("b", "s")
        rt = Runtime(g, RuntimeConfig(cluster=quiet_cluster(), aru=aru_min()))
        rec = rt.run(until=20.0)
        # relay never sleeps (not a source), but its *rate* follows the sink
        assert all(it.slept == 0.0 for it in rec.iterations_of("r"))
        late_relay = [it for it in rec.iterations_of("r") if it.t_start > 5.0]
        mean_period = sum(it.duration for it in late_relay) / len(late_relay)
        assert mean_period == pytest.approx(0.3, rel=0.2)

    def test_throttle_all_threads_extension(self):
        g = simple_pipeline(prod_period=0.01, cons_compute=0.2)
        cfg = aru_min().with_(throttle_sources_only=False)
        rt = Runtime(g, RuntimeConfig(cluster=quiet_cluster(), aru=cfg))
        rec = rt.run(until=10.0)
        # consumer is the slowest node; it should never need to sleep,
        # but the config path must execute without error and the producer
        # still throttles.
        assert any(it.slept > 0 for it in rec.iterations_of("prod"))


class TestRemotePlacement:
    def test_remote_put_costs_network_time(self):
        done = []

        def src(ctx):
            yield Put("c", ts=0, size=1_000_000)
            done.append((yield Now()))

        g = TaskGraph()
        g.add_thread("src", src, node="node0")
        g.add_channel("c", node="node1")
        g.connect("src", "c")
        cluster = quiet_cluster(n_nodes=2, latency=0.001, bandwidth=1_000_000)
        Runtime(g, RuntimeConfig(cluster=cluster)).run(until=10.0)
        assert done == [pytest.approx(1.001)]

    def test_local_put_is_instant(self):
        done = []

        def src(ctx):
            yield Put("c", ts=0, size=1_000_000)
            done.append((yield Now()))

        g = TaskGraph()
        g.add_thread("src", src, node="node0")
        g.add_channel("c", node="node0")
        g.connect("src", "c")
        cluster = quiet_cluster(n_nodes=2, latency=0.001, bandwidth=1_000_000)
        Runtime(g, RuntimeConfig(cluster=cluster)).run(until=10.0)
        assert done == [0.0]

    def test_remote_get_ships_bytes_to_consumer(self):
        times = []

        def src(ctx):
            yield Put("c", ts=0, size=2_000_000)

        def dst(ctx):
            yield Get("c")
            times.append((yield Now()))

        g = TaskGraph()
        g.add_thread("src", src, node="node0")
        g.add_thread("dst", dst, node="node1", sink=True)
        g.add_channel("c")  # co-located with producer -> node0
        g.connect("src", "c").connect("c", "dst")
        cluster = quiet_cluster(n_nodes=2, latency=0.0, bandwidth=1_000_000)
        Runtime(g, RuntimeConfig(cluster=cluster)).run(until=10.0)
        assert times == [pytest.approx(2.0)]

    def test_kill_mid_transfer_releases_the_reference(self):
        # commit_get takes a reference before the bytes ship; a kill
        # landing during the transfer must still release it, or the item
        # stays pinned in the channel forever and poisons any later
        # producer restart that reuses the timestamp (tenant revocation,
        # crash recovery).
        def src(ctx):
            yield Put("c", ts=0, size=2_000_000)

        def dst(ctx):
            yield Get("c")
            yield Sleep(100.0)

        g = TaskGraph()
        g.add_thread("src", src, node="node0")
        g.add_thread("dst", dst, node="node1", sink=True)
        g.add_channel("c")  # co-located with producer -> node0
        g.connect("src", "c").connect("c", "dst")
        cluster = quiet_cluster(n_nodes=2, latency=0.0, bandwidth=1_000_000)
        rt = Runtime(g, RuntimeConfig(cluster=cluster))
        rt.advance(1.0)  # the 2 MB transfer takes 2 s: dst is mid-shipment
        buffer = rt.buffers["c"]
        item = buffer.items_snapshot()[0]
        assert item.refcount == 1
        rt.kill_thread("dst", "mid-transfer crash")
        rt.advance(0.1)  # deliver the kill
        assert item.refcount == 0
        buffer.drain(rt.engine.now)
        assert item.freed
        assert len(buffer) == 0

    def test_channel_default_colocation_with_producer(self):
        def src(ctx):
            yield Put("c", ts=0, size=1)

        g = TaskGraph()
        g.add_thread("src", src, node="node1")
        g.add_channel("c")
        g.connect("src", "c")
        cluster = quiet_cluster(n_nodes=2)
        rt = Runtime(g, RuntimeConfig(cluster=cluster))
        assert rt.buffers["c"].node.name == "node1"
