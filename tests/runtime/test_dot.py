"""Tests for Graphviz DOT export."""

from repro.apps import build_tracker
from repro.runtime import TaskGraph, graph_to_dot


def dummy(ctx):
    yield


def test_tracker_dot_structure():
    dot = graph_to_dot(build_tracker())
    assert dot.startswith('digraph "people-tracker"')
    assert dot.rstrip().endswith("}")
    # all nodes present
    for name in ("digitizer", "gui", "C1", "C9"):
        assert f'"{name}"' in dot
    # edges rendered
    assert '"digitizer" -> "C1";' in dot
    assert '"C6" -> "gui";' in dot
    # shapes: threads boxes, channels ellipses
    assert "shape=box" in dot
    assert "shape=ellipse" in dot
    # source double-bordered, sink filled
    assert "peripheries=2" in dot
    assert "filled" in dot


def test_queue_renders_hexagon():
    g = TaskGraph("q")
    g.add_thread("t", dummy)
    g.add_queue("jobs")
    g.connect("t", "jobs")
    assert "shape=hexagon" in graph_to_dot(g)


def test_operator_and_capacity_annotations():
    g = TaskGraph("ann")
    g.add_thread("t", dummy, compress_op="max")
    g.add_channel("c", compress_op="pooled", capacity=5)
    g.connect("t", "c")
    dot = graph_to_dot(g)
    assert "op=max" in dot
    assert "op=pooled" in dot
    assert "cap=5" in dot


def test_name_escaping():
    g = TaskGraph('we"ird')
    g.add_thread("t", dummy)
    g.add_channel("c")
    g.connect("t", "c")
    dot = graph_to_dot(g)
    assert 'we\\"ird' in dot


def test_rankdir_option():
    g = TaskGraph("r")
    g.add_thread("t", dummy)
    g.add_channel("c")
    g.connect("t", "c")
    assert "rankdir=TB;" in graph_to_dot(g, rankdir="TB")
