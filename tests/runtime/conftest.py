"""Shared fixtures for runtime-level tests."""

import pytest

from repro.cluster import Node, NodeSpec
from repro.gc import make_gc
from repro.metrics import TraceRecorder
from repro.runtime import Channel, SQueue
from repro.sim import Engine, RngRegistry


class Harness:
    """A bare engine + node + recorder, for driving channels by hand."""

    def __init__(self, gc="dgc", seed=0):
        self.engine = Engine()
        self.node = Node(self.engine, NodeSpec(name="n0"), RngRegistry(seed=seed))
        self.recorder = TraceRecorder()
        self.gc = make_gc(gc)
        self.gc.bind(self)  # minimal runtime stand-in
        self._gvt = None

    # stand-in for Runtime.global_virtual_time (TGC tests set _gvt directly)
    def global_virtual_time(self):
        return self._gvt

    def channel(self, name="ch", aru=None, capacity=None):
        return Channel(
            self.engine,
            name,
            self.node,
            recorder=self.recorder,
            gc=self.gc,
            aru_state=aru,
            capacity=capacity,
        )

    def squeue(self, name="q", aru=None, capacity=None):
        return SQueue(
            self.engine,
            name,
            self.node,
            recorder=self.recorder,
            aru_state=aru,
            capacity=capacity,
        )

    def now(self):
        return self.engine.now


@pytest.fixture
def harness():
    return Harness()


@pytest.fixture
def harness_null_gc():
    return Harness(gc="null")
