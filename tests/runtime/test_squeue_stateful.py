"""Stateful property-based testing of SQueue invariants."""

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    precondition,
    rule,
)

from repro.cluster import Node, NodeSpec
from repro.metrics import TraceRecorder
from repro.runtime import Item, SQueue
from repro.sim import Engine, RngRegistry


class SQueueMachine(RuleBasedStateMachine):
    @initialize(n_consumers=st.integers(1, 3))
    def setup(self, n_consumers):
        self.engine = Engine()
        self.node = Node(self.engine, NodeSpec(name="n0"), RngRegistry(0))
        self.recorder = TraceRecorder()
        self.queue = SQueue(self.engine, "q", self.node, recorder=self.recorder)
        self.producer = self.queue.register_producer("p")
        self.consumers = [
            self.queue.register_consumer(f"c{i}") for i in range(n_consumers)
        ]
        self.next_ts = 0
        self.clock = 0.0
        self.put_order = []   # item ids in put order
        self.got_order = []   # item ids in pop order
        self.held = []

    def _tick(self):
        self.clock += 1.0
        return self.clock

    @rule(size=st.integers(0, 500))
    def put(self, size):
        item = Item(ts=self.next_ts, size=size, producer="p")
        self.next_ts += 1
        self.queue.commit_put(self.producer, item, t=self._tick())
        self.put_order.append(item.item_id)

    @precondition(lambda self: len(self.queue) > 0)
    @rule(which=st.integers(0, 2))
    def get(self, which):
        conn = self.consumers[which % len(self.consumers)]
        view = self.queue.commit_get(conn, None, t=self._tick())
        self.got_order.append(view.item_id)
        self.held.append(view)

    @precondition(lambda self: self.held)
    @rule()
    def release(self):
        view = self.held.pop(0)
        self.queue.release(view._item, t=self._tick())

    # -- invariants ---------------------------------------------------------
    @invariant()
    def fifo_order_preserved(self):
        """Pops happen in exactly put order, regardless of which consumer."""
        assert self.got_order == self.put_order[: len(self.got_order)]

    @invariant()
    def each_item_delivered_at_most_once(self):
        assert len(set(self.got_order)) == len(self.got_order)

    @invariant()
    def byte_accounting(self):
        in_queue = sum(i.size for i in self.queue._fifo)
        held = sum(v._item.size for v in self.held)
        assert self.node.mem_in_use == in_queue + held

    @invariant()
    def released_items_freed(self):
        for item_id in self.got_order:
            trace = self.recorder.items[item_id]
            held_ids = {v.item_id for v in self.held}
            if item_id not in held_ids:
                assert trace.t_free is not None

    @invariant()
    def no_skips_ever(self):
        assert self.queue.total_gets == len(self.got_order)
        for trace in self.recorder.items.values():
            assert not trace.skips


TestSQueueStateful = SQueueMachine.TestCase
TestSQueueStateful.settings = settings(
    max_examples=50, stateful_step_count=30, deadline=None
)
