"""Tests for held references (Get(hold=True) / Release) — the sliding-
window consumption pattern of the paper's §1."""

import pytest

from repro.aru import aru_disabled
from repro.cluster import ClusterSpec, NodeSpec
from repro.errors import SimulationError
from repro.runtime import (
    Get,
    PeriodicitySync,
    Put,
    Release,
    Runtime,
    RuntimeConfig,
    Sleep,
    TaskGraph,
)


def quiet():
    return ClusterSpec(nodes=(NodeSpec(name="node0", sched_noise_cv=0.0),))


def run(consumer, n_items=10, until=10.0, producer_period=0.1):
    def producer(ctx):
        for ts in range(n_items):
            yield Sleep(producer_period)
            yield Put("c", ts=ts, size=100)
            yield PeriodicitySync()

    g = TaskGraph()
    g.add_thread("prod", producer)
    g.add_thread("cons", consumer, sink=True)
    g.add_channel("c")
    g.connect("prod", "c").connect("c", "cons")
    rt = Runtime(g, RuntimeConfig(cluster=quiet(), aru=aru_disabled()))
    rec = rt.run(until=until)
    return rt, rec


def test_held_item_survives_sync():
    """A held item stays allocated across iterations; auto-got ones don't."""
    observations = []

    def cons(ctx):
        held = yield Get("c", hold=True)
        yield PeriodicitySync()
        auto = yield Get("c")
        yield PeriodicitySync()
        # held still pinned: its refcount keeps it alive even though the
        # cursor has passed it (DGC has doomed it)
        observations.append((held._item.freed, auto._item.freed))
        yield Release(held)
        observations.append(held._item.freed)

    _, _ = run(cons)
    (held_freed_before, auto_freed), held_freed_after = observations
    assert not held_freed_before
    assert auto_freed          # auto-release at sync let DGC reclaim it
    assert held_freed_after    # explicit Release frees the doomed item


def test_sliding_window_of_three():
    window_sizes = []

    def cons(ctx):
        window = []
        while True:
            view = yield Get("c", hold=True)
            window.append(view)
            if len(window) > 3:
                oldest = window.pop(0)
                yield Release(oldest)
            window_sizes.append(len(window))
            yield PeriodicitySync()

    rt, rec = run(cons)
    assert max(window_sizes) == 3
    # after the run, termination cleanup released the final window
    assert rt.channel("c").bytes_held == 0 or len(rt.channel("c")) <= 3


def test_double_release_raises():
    def cons(ctx):
        view = yield Get("c", hold=True)
        yield Release(view)
        yield Release(view)

    with pytest.raises(SimulationError, match="does not hold"):
        run(cons)


def test_release_of_auto_item_raises():
    def cons(ctx):
        view = yield Get("c")  # not held
        yield Release(view)

    with pytest.raises(SimulationError, match="does not hold"):
        run(cons)


def test_termination_releases_retained():
    def cons(ctx):
        yield Get("c", hold=True)
        yield Get("c", hold=True)
        # task ends without releasing

    rt, rec = run(cons, until=10.0)
    # cleanup must have dropped the references: channel storage converges
    for item in rt.channel("c").items_snapshot():
        assert item.refcount == 0


def test_window_memory_is_visible_in_footprint():
    """Pinned windows show up as channel memory — the §1 cost ARU trades."""
    from repro.metrics import PostmortemAnalyzer

    def windowed(ctx):
        window = []
        while True:
            view = yield Get("c", hold=True)
            window.append(view)
            if len(window) > 5:
                yield Release(window.pop(0))
            yield PeriodicitySync()

    def plain(ctx):
        while True:
            yield Get("c")
            yield PeriodicitySync()

    footprints = {}
    for label, consumer in (("windowed", windowed), ("plain", plain)):
        _, rec = run(consumer, n_items=50, until=20.0, producer_period=0.05)
        footprints[label] = PostmortemAnalyzer(rec).footprint().mean()
    assert footprints["windowed"] > 2.0 * footprints["plain"]
