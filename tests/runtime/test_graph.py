"""Tests for TaskGraph construction and validation."""

import pytest

from repro.errors import GraphError
from repro.runtime import CHANNEL, QUEUE, THREAD, TaskGraph


def dummy(ctx):
    yield


def linear_graph():
    g = TaskGraph("lin")
    g.add_thread("src", dummy)
    g.add_thread("mid", dummy)
    g.add_thread("dst", dummy, sink=True)
    g.add_channel("a")
    g.add_channel("b")
    g.connect("src", "a").connect("a", "mid").connect("mid", "b").connect("b", "dst")
    return g


class TestConstruction:
    def test_kinds(self):
        g = linear_graph()
        assert g.kind("src") == THREAD
        assert g.kind("a") == CHANNEL

    def test_queue_kind(self):
        g = TaskGraph()
        g.add_queue("q")
        assert g.kind("q") == QUEUE
        assert g.queues() == ["q"]

    def test_duplicate_name_rejected(self):
        g = TaskGraph()
        g.add_thread("x", dummy)
        with pytest.raises(GraphError):
            g.add_channel("x")

    def test_bad_name_rejected(self):
        with pytest.raises(GraphError):
            TaskGraph().add_thread("", dummy)

    def test_unknown_endpoint_rejected(self):
        g = TaskGraph()
        g.add_thread("t", dummy)
        with pytest.raises(GraphError):
            g.connect("t", "ghost")

    def test_thread_to_thread_rejected(self):
        g = TaskGraph()
        g.add_thread("a", dummy).add_thread("b", dummy)
        with pytest.raises(GraphError):
            g.connect("a", "b")

    def test_buffer_to_buffer_rejected(self):
        g = TaskGraph()
        g.add_channel("a")
        g.add_channel("b")
        # need a producer for validity, but the edge itself must fail first
        with pytest.raises(GraphError):
            g.connect("a", "b")

    def test_duplicate_edge_rejected(self):
        g = TaskGraph()
        g.add_thread("t", dummy).add_channel("c").connect("t", "c")
        with pytest.raises(GraphError):
            g.connect("t", "c")

    def test_capacity_validation(self):
        with pytest.raises(GraphError):
            TaskGraph().add_channel("c", capacity=0)

    def test_params_stored_and_copied(self):
        params = {"period": 0.03}
        g = TaskGraph()
        g.add_thread("t", dummy, params=params)
        params["period"] = 99
        assert g.attrs("t")["params"]["period"] == 0.03


class TestTopologyQueries:
    def test_producers_consumers(self):
        g = linear_graph()
        assert g.producers_of("a") == ["src"]
        assert g.consumers_of("a") == ["mid"]
        assert g.inputs_of("mid") == ["a"]
        assert g.outputs_of("mid") == ["b"]

    def test_sources_and_sinks(self):
        g = linear_graph()
        assert g.sources() == ["src"]
        assert g.sinks() == ["dst"]

    def test_implicit_sink_when_unmarked(self):
        g = TaskGraph()
        g.add_thread("src", dummy).add_thread("end", dummy)
        g.add_channel("c").connect("src", "c").connect("c", "end")
        assert g.sinks() == ["end"]

    def test_is_source_is_sink(self):
        g = linear_graph()
        assert g.is_source("src") and not g.is_source("mid")
        assert g.is_sink("dst") and not g.is_sink("mid")

    def test_multi_consumer_channel(self):
        g = TaskGraph()
        g.add_thread("p", dummy)
        g.add_thread("c1", dummy)
        g.add_thread("c2", dummy)
        g.add_channel("ch")
        g.connect("p", "ch").connect("ch", "c1").connect("ch", "c2")
        assert sorted(g.consumers_of("ch")) == ["c1", "c2"]


class TestValidation:
    def test_valid_graph_passes(self):
        linear_graph().validate()

    def test_no_threads(self):
        g = TaskGraph()
        g.add_channel("c")
        with pytest.raises(GraphError, match="no threads"):
            g.validate()

    def test_producerless_buffer(self):
        g = TaskGraph()
        g.add_thread("t", dummy)
        g.add_channel("c")
        g.connect("c", "t")
        with pytest.raises(GraphError, match="no producer"):
            g.validate()

    def test_thread_without_body(self):
        g = TaskGraph()
        g.add_thread("t", None)
        with pytest.raises(GraphError, match="no body"):
            g.validate()

    def test_cycle_rejected(self):
        g = TaskGraph()
        g.add_thread("a", dummy).add_thread("b", dummy)
        g.add_channel("x").add_channel("y")
        g.connect("a", "x").connect("x", "b").connect("b", "y").connect("y", "a")
        with pytest.raises(GraphError, match="cycle"):
            g.validate()

    def test_no_source_needs_cycle_so_cycle_fires(self):
        # A graph where every thread has inputs necessarily has a cycle,
        # so the cycle check subsumes the no-source check; verify the
        # no-source branch directly on an acyclic-but-sourceless shape is
        # impossible, hence we just verify sources() on valid graphs.
        assert linear_graph().sources() == ["src"]

    def test_consumerless_channel_allowed(self):
        g = TaskGraph()
        g.add_thread("t", dummy)
        g.add_channel("c")
        g.connect("t", "c")
        g.validate()  # legal: pure waste, metrics will expose it

    def test_unknown_node_attrs(self):
        g = TaskGraph()
        with pytest.raises(GraphError):
            g.attrs("nope")
        with pytest.raises(GraphError):
            g.kind("nope")
