"""Tests for Runtime wiring, placement, config, and global virtual time."""

import pytest

from repro.aru import aru_min
from repro.cluster import ClusterSpec, LinkSpec, NodeSpec, config2_spec
from repro.errors import ConfigError, SimulationError
from repro.runtime import (
    Compute,
    Get,
    PeriodicitySync,
    Put,
    Runtime,
    RuntimeConfig,
    Sleep,
    TaskGraph,
)


def quiet_cluster(n=1):
    return ClusterSpec(
        nodes=tuple(NodeSpec(name=f"node{i}", sched_noise_cv=0.0) for i in range(n)),
        link=LinkSpec(latency_s=0.0, bandwidth_bps=10**12),
        name="quiet",
    )


def tiny_graph():
    def src(ctx):
        ts = 0
        while True:
            yield Sleep(0.1)
            yield Put("c", ts=ts, size=10)
            ts += 1
            yield PeriodicitySync()

    def dst(ctx):
        while True:
            yield Get("c")
            yield Compute(0.05)
            yield PeriodicitySync()

    g = TaskGraph()
    g.add_thread("src", src)
    g.add_thread("dst", dst, sink=True)
    g.add_channel("c")
    g.connect("src", "c").connect("c", "dst")
    return g


class TestConfig:
    def test_defaults(self):
        cfg = RuntimeConfig()
        assert cfg.gc == "dgc"
        assert cfg.aru.enabled is False
        assert cfg.seed == 0

    def test_run_twice_rejected(self):
        rt = Runtime(tiny_graph(), RuntimeConfig(cluster=quiet_cluster()))
        rt.run(until=1.0)
        with pytest.raises(SimulationError):
            rt.run(until=1.0)

    def test_nonpositive_horizon_rejected(self):
        rt = Runtime(tiny_graph(), RuntimeConfig(cluster=quiet_cluster()))
        with pytest.raises(ConfigError):
            rt.run(until=0.0)

    def test_invalid_graph_rejected_at_construction(self):
        g = TaskGraph()
        g.add_thread("t", None)
        with pytest.raises(Exception):
            Runtime(g, RuntimeConfig(cluster=quiet_cluster()))

    def test_unknown_gc_rejected(self):
        with pytest.raises(ConfigError):
            Runtime(tiny_graph(), RuntimeConfig(cluster=quiet_cluster(), gc="magic"))


class TestPlacement:
    def test_placement_override_wins(self):
        g = tiny_graph()
        cfg = RuntimeConfig(
            cluster=quiet_cluster(n=2),
            placement={"src": "node1", "c": "node1", "dst": "node0"},
        )
        rt = Runtime(g, cfg)
        assert rt.drivers["src"].node.name == "node1"
        assert rt.buffers["c"].node.name == "node1"
        assert rt.drivers["dst"].node.name == "node0"

    def test_default_everything_on_first_node(self):
        rt = Runtime(tiny_graph(), RuntimeConfig(cluster=quiet_cluster(n=3)))
        assert rt.drivers["src"].node.name == "node0"
        assert rt.buffers["c"].node.name == "node0"

    def test_unknown_placement_node_rejected(self):
        with pytest.raises(ConfigError):
            Runtime(
                tiny_graph(),
                RuntimeConfig(cluster=quiet_cluster(), placement={"src": "mars"}),
            )

    def test_graph_attr_node_unknown_rejected(self):
        g = TaskGraph()

        def src(ctx):
            yield Put("c", ts=0, size=1)

        g.add_thread("src", src, node="nowhere")
        g.add_channel("c").connect("src", "c")
        with pytest.raises(ConfigError):
            Runtime(g, RuntimeConfig(cluster=quiet_cluster()))


class TestAccessors:
    def test_channel_accessor(self):
        rt = Runtime(tiny_graph(), RuntimeConfig(cluster=quiet_cluster()))
        assert rt.channel("c").name == "c"
        with pytest.raises(ConfigError):
            rt.queue("c")
        with pytest.raises(ConfigError):
            rt.channel("nope")


class TestGlobalVirtualTime:
    def test_gvt_advances_with_slowest_thread(self):
        rt = Runtime(tiny_graph(), RuntimeConfig(cluster=quiet_cluster(), gc="tgc"))
        assert rt.global_virtual_time() == 0
        rt.run(until=5.0)
        gvt = rt.global_virtual_time()
        assert gvt is not None and gvt > 10  # both threads progressed

    def test_gvt_is_min_over_threads(self):
        # a second, slow consumer holds GVT back
        def src(ctx):
            ts = 0
            while True:
                yield Sleep(0.05)
                yield Put("c", ts=ts, size=10)
                ts += 1
                yield PeriodicitySync()

        def fast(ctx):
            while True:
                yield Get("c")
                yield PeriodicitySync()

        def slow(ctx):
            while True:
                yield Get("c")
                yield Compute(1.0)
                yield PeriodicitySync()

        g = TaskGraph()
        g.add_thread("src", src)
        g.add_thread("fast", fast)
        g.add_thread("slow", slow, sink=True)
        g.add_channel("c")
        g.connect("src", "c").connect("c", "fast").connect("c", "slow")
        rt = Runtime(g, RuntimeConfig(cluster=quiet_cluster(), gc="tgc"))
        rt.run(until=10.0)
        slow_cursor = rt.drivers["slow"].virtual_time
        assert rt.global_virtual_time() == slow_cursor
        assert rt.drivers["fast"].virtual_time > slow_cursor


class TestDeterminism:
    def test_same_seed_identical_trace(self):
        def run(seed):
            rt = Runtime(
                tiny_graph(),
                RuntimeConfig(cluster=config2_spec(n_nodes=2), aru=aru_min(), seed=seed),
            )
            rec = rt.run(until=5.0)
            return [
                (it.thread, round(it.t_start, 9), round(it.t_end, 9))
                for it in rec.iterations
            ]

        assert run(7) == run(7)

    def test_different_seed_differs(self):
        def run(seed):
            g = tiny_graph()
            cluster = ClusterSpec(
                nodes=(NodeSpec(name="node0", sched_noise_cv=0.3),), name="noisy"
            )
            rt = Runtime(g, RuntimeConfig(cluster=cluster, seed=seed))
            rec = rt.run(until=5.0)
            return [round(it.t_end, 9) for it in rec.iterations]

        assert run(1) != run(2)
