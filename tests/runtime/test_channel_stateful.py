"""Stateful property-based testing of Channel invariants.

A hypothesis state machine drives a channel through random interleavings
of puts, gets (all request kinds), releases, and GC passes, and checks
the structural invariants after every step:

* stored timestamps are unique and sorted;
* ``bytes_held`` equals the sum of stored item sizes, and matches the
  node's memory accounting;
* consumer cursors are monotone non-decreasing;
* no GC ever frees an item whose timestamp any consumer's cursor has not
  passed (the GC safety contract);
* freed items are really gone; doomed items are freed at release;
* recorder alloc/free pairing is consistent.
"""

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    precondition,
    rule,
)

from repro.cluster import Node, NodeSpec
from repro.gc import make_gc
from repro.metrics import TraceRecorder
from repro.runtime import Channel, Item
from repro.sim import Engine, RngRegistry
from repro.vt import EARLIEST, LATEST


class ChannelMachine(RuleBasedStateMachine):
    @initialize(gc=st.sampled_from(["null", "ref", "dgc"]),
                n_consumers=st.integers(1, 3))
    def setup(self, gc, n_consumers):
        self.engine = Engine()
        self.node = Node(self.engine, NodeSpec(name="n0"), RngRegistry(0))
        self.recorder = TraceRecorder()
        self.channel = Channel(
            self.engine, "ch", self.node,
            recorder=self.recorder, gc=make_gc(gc),
        )
        self.producer = self.channel.register_producer("p")
        self.consumers = [
            self.channel.register_consumer(f"c{i}") for i in range(n_consumers)
        ]
        self.next_ts = 0
        self.clock = 0.0
        self.held = []  # (conn, view)
        self.prev_cursors = {c.conn_id: c.last_got for c in self.consumers}

    def _tick(self) -> float:
        self.clock += 1.0
        return self.clock

    # -- actions ----------------------------------------------------------
    @rule(gap=st.integers(0, 3), size=st.integers(0, 1000))
    def put(self, gap, size):
        ts = self.next_ts + gap
        self.next_ts = ts + 1
        item = Item(ts=ts, size=size, producer="p")
        self.channel.commit_put(self.producer, item, t=self._tick())

    @rule(which=st.integers(0, 2), kind=st.sampled_from(["latest", "earliest"]))
    def get(self, which, kind):
        conn = self.consumers[which % len(self.consumers)]
        request = LATEST if kind == "latest" else EARLIEST
        if self.channel.try_match(conn, request):
            view = self.channel.commit_get(conn, request, t=self._tick())
            assert view.ts > self.prev_cursors[conn.conn_id]
            self.held.append((conn, view))

    @precondition(lambda self: self.held)
    @rule()
    def release_oldest(self):
        conn, view = self.held.pop(0)
        self.channel.release(view._item, t=self._tick())

    @rule()
    def collect(self):
        self.channel.maybe_collect(self._tick())

    # -- invariants ---------------------------------------------------------
    @invariant()
    def timestamps_sorted_unique(self):
        order = self.channel._order
        assert order == sorted(order)
        assert len(order) == len(set(order))
        assert set(order) == set(self.channel._items)

    @invariant()
    def byte_accounting_consistent(self):
        stored = sum(i.size for i in self.channel._items.values())
        assert self.channel.bytes_held == stored
        assert self.node.mem_in_use == stored

    @invariant()
    def cursors_monotone(self):
        for conn in self.consumers:
            assert conn.last_got >= self.prev_cursors[conn.conn_id]
            self.prev_cursors[conn.conn_id] = conn.last_got

    @invariant()
    def gc_safety(self):
        """Every freed item's ts is at or below every cursor."""
        min_cursor = min(c.last_got for c in self.consumers)
        for trace in self.recorder.items.values():
            if trace.t_free is not None:
                assert trace.ts <= min_cursor

    @invariant()
    def stored_items_not_freed(self):
        for item in self.channel._items.values():
            assert not item.freed

    @invariant()
    def recorder_free_implies_absent(self):
        present_ids = {i.item_id for i in self.channel._items.values()}
        for trace in self.recorder.items.values():
            if trace.t_free is not None:
                assert trace.item_id not in present_ids


TestChannelStateful = ChannelMachine.TestCase
TestChannelStateful.settings = settings(
    max_examples=60, stateful_step_count=40, deadline=None
)
