"""Tests for incremental runtime execution (advance / finalize)."""

import pytest

from repro.aru import aru_min
from repro.cluster import ClusterSpec, NodeSpec
from repro.errors import ConfigError, SimulationError
from repro.runtime import (
    Compute,
    Get,
    PeriodicitySync,
    Put,
    Runtime,
    RuntimeConfig,
    Sleep,
    TaskGraph,
)


def build():
    def src(ctx):
        ts = 0
        while True:
            yield Sleep(0.01)
            yield Put("c", ts=ts, size=100)
            ts += 1
            yield PeriodicitySync()

    def dst(ctx):
        while True:
            yield Get("c")
            yield Compute(0.05)
            yield PeriodicitySync()

    g = TaskGraph()
    g.add_thread("src", src)
    g.add_thread("dst", dst, sink=True)
    g.add_channel("c")
    g.connect("src", "c").connect("c", "dst")
    cluster = ClusterSpec(nodes=(NodeSpec(name="node0", sched_noise_cv=0.0),))
    return Runtime(g, RuntimeConfig(cluster=cluster, aru=aru_min()))


def test_advance_in_phases_equivalent_to_single_run():
    rt_a = build()
    rt_a.advance(3.0).advance(2.0).advance(5.0)
    rec_a = rt_a.finalize()

    rt_b = build()
    rec_b = rt_b.run(until=10.0)

    assert rec_a.t_end == rec_b.t_end == 10.0
    assert len(rec_a.iterations) == len(rec_b.iterations)
    assert [i.t_end for i in rec_a.iterations] == [i.t_end for i in rec_b.iterations]


def test_state_inspectable_between_phases():
    rt = build()
    rt.advance(2.0)
    mid_occupancy = len(rt.channel("c"))
    assert rt.engine.now == 2.0
    assert mid_occupancy >= 0  # channel accessible mid-run
    assert rt.drivers["src"].iterations > 0
    rt.advance(1.0)
    rt.finalize()


def test_advance_after_finalize_rejected():
    rt = build()
    rt.run(until=1.0)
    with pytest.raises(SimulationError):
        rt.advance(1.0)
    with pytest.raises(SimulationError):
        rt.finalize()


def test_nonpositive_dt_rejected():
    rt = build()
    with pytest.raises(ConfigError):
        rt.advance(0.0)
    with pytest.raises(ConfigError):
        rt.advance(-1.0)


def test_finalize_without_advance_gives_empty_trace():
    rt = build()
    rec = rt.finalize()
    assert rec.t_end == 0.0
    assert not rec.iterations
