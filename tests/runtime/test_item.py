"""Tests for items, views, and reference counting."""

import pytest

from repro.errors import SimulationError
from repro.runtime import Item, ItemView


def test_item_ids_unique_and_increasing():
    a, b = Item(ts=0, size=10), Item(ts=1, size=10)
    assert b.item_id > a.item_id


def test_item_fields():
    item = Item(ts=3, size=100, payload="x", producer="p", parents=(1, 2), created_at=1.5)
    assert item.ts == 3
    assert item.size == 100
    assert item.payload == "x"
    assert item.producer == "p"
    assert item.parents == (1, 2)
    assert item.created_at == 1.5
    assert item.refcount == 0
    assert not item.doomed and not item.freed


def test_item_validation():
    with pytest.raises(SimulationError):
        Item(ts=-1, size=1)
    with pytest.raises(SimulationError):
        Item(ts=0, size=-1)


def test_acquire_release_cycle():
    item = Item(ts=0, size=1)
    item.acquire()
    item.acquire()
    assert item.refcount == 2
    item.release()
    item.release()
    assert item.refcount == 0


def test_release_without_acquire_raises():
    with pytest.raises(SimulationError):
        Item(ts=0, size=1).release()


def test_acquire_freed_item_raises():
    item = Item(ts=0, size=1)
    item.freed = True
    with pytest.raises(SimulationError):
        item.acquire()


def test_view_exposes_metadata():
    item = Item(ts=7, size=64, payload={"k": 1})
    view = ItemView(item, "chan")
    assert view.ts == 7
    assert view.size == 64
    assert view.payload == {"k": 1}
    assert view.channel == "chan"
    assert view.item_id == item.item_id


def test_parents_copied_to_tuple():
    item = Item(ts=0, size=1, parents=[4, 5])
    assert item.parents == (4, 5)
    assert isinstance(item.parents, tuple)
