"""Tests for the timed-get variant (Get with a timeout)."""

import pytest

from repro.aru import aru_disabled
from repro.cluster import ClusterSpec, NodeSpec
from repro.errors import SimulationError
from repro.runtime import (
    Get,
    Now,
    PeriodicitySync,
    Put,
    Runtime,
    RuntimeConfig,
    Sleep,
    TaskGraph,
)


def quiet():
    return ClusterSpec(nodes=(NodeSpec(name="node0", sched_noise_cv=0.0),))


def run_consumer(consumer_fn, producer_fn=None, until=10.0):
    g = TaskGraph()
    if producer_fn is None:
        def producer_fn(ctx):
            yield Sleep(100.0)
    g.add_thread("prod", producer_fn)
    g.add_thread("cons", consumer_fn, sink=True)
    g.add_channel("c")
    g.connect("prod", "c").connect("c", "cons")
    rt = Runtime(g, RuntimeConfig(cluster=quiet(), aru=aru_disabled()))
    rec = rt.run(until=until)
    return rt, rec


def test_timeout_expires_returns_none():
    results = []

    def cons(ctx):
        view = yield Get("c", timeout=0.5)
        results.append((view, (yield Now())))

    run_consumer(cons)
    assert results == [(None, 0.5)]


def test_item_before_deadline_delivered():
    results = []

    def prod(ctx):
        yield Sleep(0.2)
        yield Put("c", ts=4, size=1)

    def cons(ctx):
        view = yield Get("c", timeout=1.0)
        results.append((view.ts, (yield Now())))

    run_consumer(cons, prod)
    assert results == [(4, pytest.approx(0.2))]


def test_item_already_available_ignores_timeout():
    results = []

    def prod(ctx):
        yield Put("c", ts=1, size=1)
        yield Sleep(100.0)

    def cons(ctx):
        yield Sleep(0.1)
        view = yield Get("c", timeout=0.001)
        results.append(view.ts)

    run_consumer(cons, prod)
    assert results == [1]


def test_zero_timeout_acts_like_tryget():
    results = []

    def cons(ctx):
        view = yield Get("c", timeout=0.0)
        results.append(view)

    run_consumer(cons)
    assert results == [None]


def test_negative_timeout_rejected():
    def cons(ctx):
        yield Get("c", timeout=-1.0)

    with pytest.raises(SimulationError, match="negative get timeout"):
        run_consumer(cons)


def test_timed_out_wait_counts_as_blocked_not_stp():
    stps = []

    def cons(ctx):
        while True:
            yield Get("c", timeout=0.4)
            stp = yield PeriodicitySync()
            stps.append(stp)

    run_consumer(cons, until=3.0)
    # every iteration: 0.4 s blocked, ~0 compute -> STP ~ 0
    assert stps and all(s < 0.01 for s in stps)


def test_gui_stays_responsive_while_detector_stalls():
    """The motivating pattern: a sink that redraws even with no input."""
    redraws = []

    def prod(ctx):
        yield Sleep(1.0)
        yield Put("c", ts=0, size=1)
        yield Sleep(100.0)

    def gui(ctx):
        while True:
            view = yield Get("c", timeout=0.25)
            redraws.append(view.ts if view else None)
            if len(redraws) >= 8:
                return
            yield PeriodicitySync()

    run_consumer(gui, prod, until=5.0)
    assert None in redraws          # redrew on timeouts
    assert 0 in redraws             # and picked the item up when it came
