"""Tests for the Stampede-flavoured API facade."""

import pytest

from repro.aru import aru_min
from repro.cluster import ClusterSpec, NodeSpec
from repro.errors import GraphError
from repro.metrics import PostmortemAnalyzer
from repro.runtime import Compute, Get, Put, Sleep, TryGet
from repro.runtime.api import (
    StampedeApp,
    compute,
    get,
    now,
    periodicity_sync,
    put,
    sleep,
    try_get,
)
from repro.vt import EARLIEST, LATEST


class TestSyscallConstructors:
    def test_get_defaults_to_latest(self):
        sc = get("c")
        assert isinstance(sc, Get)
        assert sc.request is LATEST

    def test_get_custom_request(self):
        assert get("c", EARLIEST).request is EARLIEST
        assert get("c", 5).request == 5

    def test_put(self):
        sc = put("c", ts=3, size=100, payload="x")
        assert isinstance(sc, Put)
        assert (sc.channel, sc.ts, sc.size, sc.payload) == ("c", 3, 100, "x")

    def test_others(self):
        assert isinstance(try_get("c"), TryGet)
        assert isinstance(compute(0.1), Compute)
        assert compute(0.1).seconds == 0.1
        assert isinstance(sleep(0.2), Sleep)
        assert periodicity_sync() is not None
        assert now() is not None


def build_app():
    app = StampedeApp("api-demo")

    def src(ctx):
        ts = 0
        while True:
            yield sleep(0.01)
            yield put("c", ts=ts, size=500)
            ts += 1
            yield periodicity_sync()

    def dst(ctx):
        while True:
            yield get("c")
            yield compute(0.05)
            yield periodicity_sync()

    app.spd_thread_create("src", src)
    app.spd_chan_alloc("c", compress_op="max")
    app.spd_thread_create("dst", dst, sink=True)
    app.spd_attach_output("src", "c")
    app.spd_attach_input("c", "dst")
    return app


class TestStampedeApp:
    def test_builder_chains(self):
        app = build_app()
        assert app.graph.threads() == ["src", "dst"]
        assert app.graph.channels() == ["c"]
        assert app.graph.attrs("c")["compress_op"] == "max"

    def test_run_simulated(self):
        app = build_app()
        cluster = ClusterSpec(nodes=(NodeSpec(name="node0", sched_noise_cv=0.0),))
        trace = app.run_simulated(until=5.0, cluster=cluster, aru=aru_min())
        assert trace.sink_iterations()
        pm = PostmortemAnalyzer(trace)
        assert pm.wasted_memory_fraction < 0.2  # ARU active

    def test_run_simulated_default_cluster(self):
        trace = build_app().run_simulated(until=2.0)
        assert trace.sink_iterations()

    def test_run_threads(self):
        with pytest.warns(DeprecationWarning, match="backend='threads'"):
            trace = build_app().run_threads(duration=0.4, aru=aru_min())
        assert trace.iterations_of("src")

    def test_queue_alloc(self):
        app = StampedeApp()

        def src(ctx):
            yield put("q", ts=0, size=1)

        app.spd_thread_create("src", src)
        app.spd_queue_alloc("q")
        app.spd_attach_output("src", "q")
        assert app.graph.queues() == ["q"]

    def test_invalid_attach_raises(self):
        app = StampedeApp()

        def src(ctx):
            yield periodicity_sync()

        app.spd_thread_create("a", src).spd_thread_create("b", src)
        with pytest.raises(GraphError):
            app.spd_attach_output("a", "b")
