"""Tests for Channel: put/get semantics, skipping, blocking, ARU, capacity."""

import pytest

from repro.aru import BufferAruState
from repro.errors import ItemDropped, SimulationError
from repro.runtime import Item
from repro.vt import EARLIEST, LATEST


def put(ch, conn, ts, size=100, t=None, payload=None):
    item = Item(ts=ts, size=size, payload=payload, producer=conn.thread)
    return ch.commit_put(conn, item, t=t if t is not None else ch.engine.now)


class TestPut:
    def test_put_stores_item(self, harness):
        ch = harness.channel()
        prod = ch.register_producer("p")
        put(ch, prod, ts=0)
        assert len(ch) == 1
        assert ch.has_item(0)
        assert ch.bytes_held == 100

    def test_put_accounts_node_memory(self, harness):
        ch = harness.channel()
        prod = ch.register_producer("p")
        put(ch, prod, ts=0, size=500)
        assert harness.node.mem_in_use == 500

    def test_duplicate_timestamp_rejected(self, harness):
        ch = harness.channel()
        prod = ch.register_producer("p")
        put(ch, prod, ts=5)
        with pytest.raises(SimulationError, match="duplicate"):
            put(ch, prod, ts=5)

    def test_out_of_order_puts_kept_sorted(self, harness_null_gc):
        ch = harness_null_gc.channel()
        prod = ch.register_producer("p")
        for ts in (5, 2, 9, 3):
            put(ch, prod, ts=ts)
        assert ch.oldest_ts() == 2
        assert ch.newest_ts() == 9

    def test_put_counters(self, harness):
        ch = harness.channel()
        prod = ch.register_producer("p")
        put(ch, prod, ts=0)
        put(ch, prod, ts=1)
        assert ch.total_puts == 2
        assert prod.puts == 2


class TestGetLatest:
    def test_get_latest_returns_newest(self, harness_null_gc):
        ch = harness_null_gc.channel()
        prod = ch.register_producer("p")
        cons = ch.register_consumer("c")
        for ts in range(5):
            put(ch, prod, ts=ts)
        view = ch.commit_get(cons, LATEST, t=0.0)
        assert view.ts == 4

    def test_cursor_advances(self, harness_null_gc):
        ch = harness_null_gc.channel()
        prod = ch.register_producer("p")
        cons = ch.register_consumer("c")
        put(ch, prod, ts=0)
        ch.commit_get(cons, LATEST, t=0.0)
        assert cons.last_got == 0
        assert not ch.try_match(cons, LATEST)  # nothing newer yet
        put(ch, prod, ts=1)
        assert ch.try_match(cons, LATEST)

    def test_skipped_items_marked(self, harness_null_gc):
        h = harness_null_gc
        ch = h.channel()
        prod = ch.register_producer("p")
        cons = ch.register_consumer("c")
        ids = {}
        for ts in range(4):
            item = Item(ts=ts, size=10)
            ids[ts] = item.item_id
            ch.commit_put(prod, item, t=0.0)
        view = ch.commit_get(cons, LATEST, t=1.0)
        assert view.ts == 3
        assert cons.skips == 3
        for ts in range(3):
            assert len(h.recorder.items[ids[ts]].skips) == 1
        assert not h.recorder.items[ids[3]].skips

    def test_dead_on_arrival_marked_skipped(self, harness_null_gc):
        h = harness_null_gc
        ch = h.channel()
        prod = ch.register_producer("p")
        cons = ch.register_consumer("c")
        put(ch, prod, ts=5)
        ch.commit_get(cons, LATEST, t=0.0)  # cursor -> 5
        late = Item(ts=2, size=10)
        ch.commit_put(prod, late, t=1.0)  # arrives after cursor passed
        assert len(h.recorder.items[late.item_id].skips) == 1

    def test_two_consumers_independent_cursors(self, harness_null_gc):
        ch = harness_null_gc.channel()
        prod = ch.register_producer("p")
        c1 = ch.register_consumer("c1")
        c2 = ch.register_consumer("c2")
        put(ch, prod, ts=0)
        put(ch, prod, ts=1)
        v1 = ch.commit_get(c1, LATEST, t=0.0)
        assert v1.ts == 1
        assert c2.last_got == -1
        v2 = ch.commit_get(c2, LATEST, t=0.0)
        assert v2.ts == 1

    def test_get_acquires_reference(self, harness_null_gc):
        ch = harness_null_gc.channel()
        prod = ch.register_producer("p")
        cons = ch.register_consumer("c")
        item = Item(ts=0, size=10)
        ch.commit_put(prod, item, t=0.0)
        ch.commit_get(cons, LATEST, t=0.0)
        assert item.refcount == 1


class TestGetVariants:
    def test_get_earliest(self, harness_null_gc):
        ch = harness_null_gc.channel()
        prod = ch.register_producer("p")
        cons = ch.register_consumer("c")
        for ts in range(3):
            put(ch, prod, ts=ts)
        assert ch.commit_get(cons, EARLIEST, t=0.0).ts == 0
        assert ch.commit_get(cons, EARLIEST, t=0.0).ts == 1

    def test_get_exact_ts(self, harness_null_gc):
        ch = harness_null_gc.channel()
        prod = ch.register_producer("p")
        cons = ch.register_consumer("c")
        for ts in range(4):
            put(ch, prod, ts=ts)
        assert ch.commit_get(cons, 2, t=0.0).ts == 2

    def test_exact_below_cursor_raises(self, harness_null_gc):
        ch = harness_null_gc.channel()
        prod = ch.register_producer("p")
        cons = ch.register_consumer("c")
        for ts in range(4):
            put(ch, prod, ts=ts)
        ch.commit_get(cons, LATEST, t=0.0)
        with pytest.raises(ItemDropped):
            ch.try_match(cons, 1)

    def test_commit_without_match_raises(self, harness):
        ch = harness.channel()
        ch.register_producer("p")
        cons = ch.register_consumer("c")
        with pytest.raises(SimulationError, match="no matching item"):
            ch.commit_get(cons, LATEST, t=0.0)

    def test_unregistered_consumer_rejected(self, harness):
        ch = harness.channel()
        other = harness.channel("other")
        foreign = other.register_consumer("x")
        with pytest.raises(SimulationError, match="unregistered"):
            ch.request_get(foreign, LATEST)


class TestBlockingGet:
    def test_get_blocks_until_put(self, harness):
        h = harness
        ch = h.channel()
        prod = ch.register_producer("p")
        cons = ch.register_consumer("c")
        got = []

        def getter(eng):
            ev = ch.request_get(cons, LATEST)
            assert not ev.triggered
            yield ev
            view = ch.commit_get(cons, LATEST, t=eng.now)
            got.append((eng.now, view.ts))

        def putter(eng):
            yield eng.timeout(2.0)
            put(ch, prod, ts=7, t=eng.now)

        h.engine.process(getter(h.engine))
        h.engine.process(putter(h.engine))
        h.engine.run()
        assert got == [(2.0, 7)]

    def test_request_get_immediate_when_available(self, harness_null_gc):
        h = harness_null_gc
        ch = h.channel()
        prod = ch.register_producer("p")
        cons = ch.register_consumer("c")
        put(ch, prod, ts=0)
        ev = ch.request_get(cons, LATEST)
        assert ev.triggered

    def test_multiple_blocked_consumers_all_wake(self, harness_null_gc):
        h = harness_null_gc
        ch = h.channel()
        prod = ch.register_producer("p")
        conns = [ch.register_consumer(f"c{i}") for i in range(3)]
        woken = []

        def getter(eng, conn):
            yield ch.request_get(conn, LATEST)
            view = ch.commit_get(conn, LATEST, t=eng.now)
            woken.append((conn.thread, view.ts))

        for conn in conns:
            h.engine.process(getter(h.engine, conn))

        def putter(eng):
            yield eng.timeout(1.0)
            put(ch, prod, ts=3, t=eng.now)

        h.engine.process(putter(h.engine))
        h.engine.run()
        assert sorted(woken) == [("c0", 3), ("c1", 3), ("c2", 3)]


class TestAruPiggyback:
    def test_put_returns_channel_summary(self, harness):
        aru = BufferAruState("ch", op="min")
        ch = harness.channel(aru=aru)
        prod = ch.register_producer("p")
        cons = ch.register_consumer("c")
        assert put(ch, prod, ts=0) is None  # no consumer feedback yet
        ch.commit_get(cons, LATEST, t=0.0, consumer_summary=0.25)
        assert put(ch, prod, ts=1) == 0.25

    def test_channel_compresses_multiple_consumers(self, harness_null_gc):
        aru = BufferAruState("ch", op="min")
        ch = harness_null_gc.channel(aru=aru)
        prod = ch.register_producer("p")
        c1 = ch.register_consumer("c1")
        c2 = ch.register_consumer("c2")
        put(ch, prod, ts=0)
        ch.commit_get(c1, LATEST, t=0.0, consumer_summary=0.5)
        ch.commit_get(c2, LATEST, t=0.0, consumer_summary=0.2)
        assert put(ch, prod, ts=1) == 0.2

    def test_max_operator_channel(self, harness_null_gc):
        aru = BufferAruState("ch", op="max")
        ch = harness_null_gc.channel(aru=aru)
        prod = ch.register_producer("p")
        c1 = ch.register_consumer("c1")
        c2 = ch.register_consumer("c2")
        put(ch, prod, ts=0)
        ch.commit_get(c1, LATEST, t=0.0, consumer_summary=0.5)
        ch.commit_get(c2, LATEST, t=0.0, consumer_summary=0.2)
        assert put(ch, prod, ts=1) == 0.5

    def test_no_aru_state_returns_none(self, harness):
        ch = harness.channel(aru=None)
        prod = ch.register_producer("p")
        cons = ch.register_consumer("c")
        put(ch, prod, ts=0)
        ch.commit_get(cons, LATEST, t=0.0, consumer_summary=0.25)
        assert put(ch, prod, ts=1) is None


class TestCapacity:
    def test_has_room_unbounded(self, harness):
        assert harness.channel().has_room()

    def test_capacity_bound(self, harness_null_gc):
        ch = harness_null_gc.channel(capacity=2)
        prod = ch.register_producer("p")
        put(ch, prod, ts=0)
        put(ch, prod, ts=1)
        assert not ch.has_room()
        with pytest.raises(SimulationError, match="full"):
            put(ch, prod, ts=2)

    def test_room_reopens_after_free(self, harness):
        h = harness  # dgc
        ch = h.channel(capacity=2)
        prod = ch.register_producer("p")
        cons = ch.register_consumer("c")
        put(ch, prod, ts=0)
        put(ch, prod, ts=1)
        assert not ch.has_room()
        # consuming latest makes ts=0 dead (skipped) and ts<=1 collectible
        view = ch.commit_get(cons, LATEST, t=0.0)
        assert view.ts == 1
        # ts=0 freed immediately (unreferenced); ts=1 held by consumer
        assert ch.has_room()

    def test_wait_for_room_event(self, harness_null_gc):
        h = harness_null_gc
        ch = h.channel(capacity=1)
        prod = ch.register_producer("p")
        ev = ch.wait_for_room()
        assert ev.triggered  # room available now
        put(ch, prod, ts=0)
        ev2 = ch.wait_for_room()
        assert not ev2.triggered


class TestDrain:
    def test_drain_frees_unreferenced_items(self, harness_null_gc):
        h = harness_null_gc
        ch = h.channel()
        prod = ch.register_producer("p")
        for ts in range(4):
            put(ch, prod, ts=ts, size=100)
        assert h.node.mem_in_use == 400
        freed = ch.drain(t=1.0)
        assert freed == 4
        assert len(ch) == 0
        assert ch.bytes_held == 0
        assert h.node.mem_in_use == 0

    def test_drain_dooms_held_items(self, harness_null_gc):
        h = harness_null_gc
        ch = h.channel()
        prod = ch.register_producer("p")
        cons = ch.register_consumer("c")
        put(ch, prod, ts=0, size=100)
        view = ch.commit_get(cons, LATEST, t=0.0)
        freed = ch.drain(t=1.0)
        assert freed == 0  # the consumer still references it
        assert h.node.mem_in_use == 100
        ch.release(view._item, t=2.0)  # last reference drops -> freed
        assert h.node.mem_in_use == 0

    def test_drain_is_idempotent(self, harness_null_gc):
        ch = harness_null_gc.channel()
        prod = ch.register_producer("p")
        put(ch, prod, ts=0)
        assert ch.drain(t=1.0) == 1
        assert ch.drain(t=2.0) == 0
