"""Tests for replicated stages: partition/merge buffers, graph API, scaling.

Covers the elastic-parallelism building blocks bottom-up:

* partitioners — deterministic slot assignment;
* :class:`PartitionQueue` — per-slot FIFOs, inflight tracking, pending
  reassignment and orphan parking on consumer retirement;
* :class:`MergeChannel` — ts-ordered visibility gated on the
  outstanding frontier, abandon unblocking;
* :class:`TaskGraph` replicated-stage declarations and replica
  add/remove bookkeeping;
* :class:`Runtime` scale_out / scale_in / retire / reap, including
  node admission and the min-replica floor.
"""

import pytest

from repro.apps import elastic_pipeline
from repro.cluster import ClusterSpec, NodeSpec
from repro.errors import GraphError, SimulationError
from repro.runtime import (
    HashPartitioner,
    Item,
    MergeChannel,
    PartitionQueue,
    RoundRobinPartitioner,
    Runtime,
    RuntimeConfig,
    TaskGraph,
    make_partitioner,
)
from repro.vt import EARLIEST, LATEST


def put(buf, conn, ts, size=50):
    return buf.commit_put(
        conn, Item(ts=ts, size=size, producer=conn.thread), t=buf.engine.now
    )


def make_stage(h, partition="round-robin", capacity=None):
    """A hand-driven partition/merge pair bound together."""
    q = PartitionQueue(
        h.engine, "part", h.node,
        recorder=h.recorder, capacity=capacity, partition=partition,
    )
    m = MergeChannel(
        h.engine, "merge", h.node, recorder=h.recorder, gc=h.gc,
    )
    q.bind_merge(m)
    return q, m


class TestPartitioners:
    def test_round_robin_cycles_regardless_of_ts(self):
        p = RoundRobinPartitioner()
        assert [p.slot(ts, 3) for ts in (7, 7, 7, 0, 100, 2)] == [0, 1, 2, 0, 1, 2]

    def test_round_robin_advances_per_assignment(self):
        # Reassignments keep rotating: the mapping is a pure function of
        # the assignment history, not of the timestamps involved.
        p = RoundRobinPartitioner()
        assert p.slot(5, 2) == 0
        assert p.slot(5, 2) == 1

    def test_hash_is_sticky_and_in_range(self):
        p = HashPartitioner()
        for n in (1, 2, 3, 5):
            for ts in range(50):
                s = p.slot(ts, n)
                assert 0 <= s < n
                assert p.slot(ts, n) == s  # same key, same slot

    def test_unknown_kind_rejected(self):
        with pytest.raises(SimulationError, match="unknown partition kind"):
            make_partitioner("random")


class TestPartitionQueue:
    def test_round_robin_routes_alternating_slots(self, harness):
        q, _ = make_stage(harness)
        prod = q.register_producer("p")
        c1 = q.register_consumer("w1")
        c2 = q.register_consumer("w2")
        for ts in range(4):
            put(q, prod, ts=ts)
        assert q.pending_of(c1) == 2
        assert q.pending_of(c2) == 2
        assert q.commit_get(c1, None, t=0.0).ts == 0
        assert q.commit_get(c2, None, t=0.0).ts == 1
        assert len(q) == 2

    def test_slots_are_private(self, harness):
        # Items assigned before a second worker joined belong to the
        # first slot; the newcomer cannot steal them.
        q, _ = make_stage(harness)
        prod = q.register_producer("p")
        c1 = q.register_consumer("w1")
        put(q, prod, ts=0)
        c2 = q.register_consumer("w2")
        assert q.try_match(c1) is True
        assert q.try_match(c2) is False
        with pytest.raises(SimulationError, match="empty slot"):
            q.commit_get(c2, None, t=0.0)

    def test_admission_registers_outstanding_on_merge(self, harness):
        q, m = make_stage(harness)
        prod = q.register_producer("p")
        q.register_consumer("w1")
        for ts in (3, 5):
            put(q, prod, ts=ts)
        assert m.outstanding == 2
        assert m.frontier == 3

    def test_inflight_cleared_when_result_merges(self, harness):
        q, m = make_stage(harness)
        prod = q.register_producer("p")
        c1 = q.register_consumer("w1")
        put(q, prod, ts=0)
        q.commit_get(c1, None, t=0.0)
        assert q.inflight == {0: c1.conn_id}
        out = m.register_producer("w1")
        put(m, out, ts=0)
        assert q.inflight == {}
        assert m.outstanding == 0

    def test_retiring_slot_reassigns_pending_and_abandons_inflight(self, harness):
        q, m = make_stage(harness)
        prod = q.register_producer("p")
        c1 = q.register_consumer("w1")
        c2 = q.register_consumer("w2")
        for ts in range(4):
            put(q, prod, ts=ts)
        q.commit_get(c1, None, t=0.0)  # ts 0 in flight on w1
        q.unregister_consumer(c1)
        # ts 0 abandoned on the merge; queued ts 2 reassigned to w2.
        assert q.inflight == {}
        assert m.outstanding == 3
        assert m.frontier == 1
        assert len(q) == 3
        assert q.pending_of(c2) == 3
        # Ghost-consumer guard: every pending slot belongs to a live conn.
        assert set(q._pending) == {c.conn_id for c in q.in_conns}

    def test_last_slot_retirement_parks_orphans(self, harness):
        q, _ = make_stage(harness)
        prod = q.register_producer("p")
        c1 = q.register_consumer("w1")
        for ts in range(2):
            put(q, prod, ts=ts)
        q.unregister_consumer(c1)
        assert len(q) == 2  # parked, not dropped
        c2 = q.register_consumer("w2")
        assert q.pending_of(c2) == 2
        assert [q.commit_get(c2, None, t=0.0).ts for _ in range(2)] == [0, 1]

    def test_puts_with_no_consumer_park_until_one_joins(self, harness):
        q, _ = make_stage(harness)
        prod = q.register_producer("p")
        put(q, prod, ts=7)
        assert len(q) == 1
        c = q.register_consumer("w1")
        assert q.commit_get(c, None, t=0.0).ts == 7

    def test_capacity_counts_all_slots(self, harness):
        q, _ = make_stage(harness, capacity=2)
        prod = q.register_producer("p")
        q.register_consumer("w1")
        q.register_consumer("w2")
        put(q, prod, ts=0)
        put(q, prod, ts=1)
        assert q.has_room() is False
        with pytest.raises(SimulationError, match="full"):
            put(q, prod, ts=2)

    def test_bytes_held_sums_slots_and_orphans(self, harness):
        q, _ = make_stage(harness)
        prod = q.register_producer("p")
        c1 = q.register_consumer("w1")
        put(q, prod, ts=0, size=100)
        put(q, prod, ts=1, size=200)
        assert q.bytes_held == 300
        q.unregister_consumer(c1)
        assert q.bytes_held == 300  # orphaned, still accounted


class TestMergeChannel:
    def test_result_hidden_until_earlier_ts_merges(self, harness):
        q, m = make_stage(harness)
        prod = q.register_producer("p")
        q.register_consumer("w1")
        q.register_consumer("w2")
        put(q, prod, ts=0)
        put(q, prod, ts=1)
        out = m.register_producer("w")
        sink = m.register_consumer("sink")
        put(m, out, ts=1)  # the ts=1 worker finished first
        assert m.try_match(sink, EARLIEST) is False
        put(m, out, ts=0)
        got = [m.commit_get(sink, EARLIEST, t=0.0).ts for _ in range(2)]
        assert got == [0, 1]

    def test_abandon_unblocks_frontier(self, harness):
        q, m = make_stage(harness)
        prod = q.register_producer("p")
        q.register_consumer("w1")
        put(q, prod, ts=0)
        put(q, prod, ts=1)
        out = m.register_producer("w")
        sink = m.register_consumer("sink")
        put(m, out, ts=1)
        assert m.try_match(sink, EARLIEST) is False
        m.abandon(0)  # ts 0's worker died: its result never comes
        assert m.frontier is None
        assert m.commit_get(sink, EARLIEST, t=0.0).ts == 1

    def test_latest_respects_frontier(self, harness):
        q, m = make_stage(harness)
        prod = q.register_producer("p")
        q.register_consumer("w1")
        for ts in range(3):
            put(q, prod, ts=ts)
        out = m.register_producer("w")
        sink = m.register_consumer("sink")
        put(m, out, ts=0)
        put(m, out, ts=2)  # ts 1 still outstanding
        assert m.commit_get(sink, LATEST, t=0.0).ts == 0
        put(m, out, ts=1)
        assert m.commit_get(sink, LATEST, t=0.0).ts == 2

    def test_specific_request_above_frontier_is_invisible(self, harness):
        q, m = make_stage(harness)
        prod = q.register_producer("p")
        q.register_consumer("w1")
        put(q, prod, ts=0)
        put(q, prod, ts=1)
        out = m.register_producer("w")
        sink = m.register_consumer("sink")
        put(m, out, ts=1)
        assert m.try_match(sink, 1) is False
        m.abandon(0)
        assert m.commit_get(sink, 1, t=0.0).ts == 1

    def test_unexpected_ts_passes_straight_through(self, harness):
        # Puts the partition never admitted (e.g. a replayed result)
        # are ordinary channel items: visible below the frontier.
        _, m = make_stage(harness)
        out = m.register_producer("w")
        sink = m.register_consumer("sink")
        m.expect(5)
        put(m, out, ts=2)
        assert m.commit_get(sink, EARLIEST, t=0.0).ts == 2


def worker_body(ctx):  # pragma: no cover - never driven here
    yield


class TestGraphApi:
    def build(self, replicas=2, **kw):
        g = TaskGraph("t")
        g.add_replicated_stage(
            "workers", worker_body, input="part", output="merge",
            replicas=replicas, **kw,
        )
        return g

    def test_declaration_builds_topology(self):
        g = self.build(replicas=2)
        assert g.replicated_stages() == ["workers"]
        assert g.replicas_of("workers") == ["workers[0]", "workers[1]"]
        assert g.attrs("part")["partition_of"] == "workers"
        assert g.attrs("merge")["merge_of"] == "workers"
        spec = g.stage_spec("workers")
        assert spec["input"] == "part"
        assert spec["output"] == "merge"

    def test_duplicate_stage_rejected(self):
        g = self.build()
        with pytest.raises(GraphError, match="duplicate replicated stage"):
            g.add_replicated_stage(
                "workers", worker_body, input="p2", output="m2")

    def test_replica_bounds_validated(self):
        with pytest.raises(GraphError, match="replicas must be >= 1"):
            self.build(replicas=0)
        with pytest.raises(GraphError, match="min_replicas <= replicas"):
            self.build(replicas=1, min_replicas=2)
        with pytest.raises(GraphError, match="min_replicas <= replicas"):
            self.build(replicas=9, max_replicas=4)

    def test_unknown_partition_rejected(self):
        with pytest.raises(GraphError, match="unknown partition"):
            self.build(partition="range")

    def test_add_replica_never_reuses_indices(self):
        g = self.build(replicas=2, max_replicas=8)
        assert g.add_replica("workers") == "workers[2]"
        g.remove_replica("workers", "workers[1]")
        assert g.add_replica("workers") == "workers[3]"
        assert g.replicas_of("workers") == [
            "workers[0]", "workers[2]", "workers[3]"]

    def test_remove_replica_guards(self):
        g = self.build(replicas=1)
        g.add_thread("bystander", worker_body, sink=True)
        with pytest.raises(GraphError, match="not a replica"):
            g.remove_replica("workers", "bystander")
        with pytest.raises(GraphError, match="last replica"):
            g.remove_replica("workers", "workers[0]")

    def test_unknown_stage_raises(self):
        g = self.build()
        with pytest.raises(GraphError, match="unknown replicated stage"):
            g.stage_spec("nope")


def elastic_runtime(replicas=2, max_replicas=4, min_replicas=1, ncpus=8):
    graph = elastic_pipeline(
        replicas=replicas,
        min_replicas=min_replicas,
        max_replicas=max_replicas,
        worker_cost=0.01,
        steady_period=0.05,
        swing=None,
        item_size=100,
    )
    cluster = ClusterSpec(
        nodes=(NodeSpec(name="node0", sched_noise_cv=0.0, ncpus=ncpus),),
    )
    return Runtime(graph, RuntimeConfig(cluster=cluster))


class TestRuntimeScaling:
    def test_scale_out_spawns_fresh_replica(self):
        rt = elastic_runtime(replicas=2)
        name = rt.scale_out("workers")
        assert name == "workers[2]"
        assert rt.replica_count("workers") == 3
        assert name in rt.drivers
        assert len(rt.buffers["part"].in_conns) == 3

    def test_scale_out_stops_at_max_replicas(self):
        rt = elastic_runtime(replicas=2, max_replicas=3)
        assert rt.scale_out("workers") == "workers[2]"
        assert rt.scale_out("workers") is None
        assert rt.replica_count("workers") == 3

    def test_scale_out_refused_when_node_is_full(self):
        # source + sink + 2 workers already commit every CPU.
        rt = elastic_runtime(replicas=2, ncpus=4)
        assert rt.scale_out("workers") is None
        assert rt.replica_count("workers") == 2

    def test_scale_in_retires_highest_index_down_to_floor(self):
        rt = elastic_runtime(replicas=2, min_replicas=1)
        assert rt.scale_in("workers") == "workers[1]"
        assert rt.scale_in("workers") is None
        assert rt.replica_count("workers") == 1
        assert "workers[1]" not in rt.drivers
        assert rt.graph.replicas_of("workers") == ["workers[0]"]

    def test_retire_keeps_partition_consumers_consistent(self):
        rt = elastic_runtime(replicas=2)
        rt.advance(0.3)
        rt.retire_replica("workers", "workers[1]")
        buf = rt.buffers["part"]
        assert len(buf.in_conns) == 1
        assert set(buf._pending) == {c.conn_id for c in buf.in_conns}
        assert all(c in {x.conn_id for x in buf.in_conns}
                   for c in buf.inflight.values())

    def test_reap_retires_crashed_replica_above_floor(self):
        rt = elastic_runtime(replicas=3, min_replicas=1)
        rt.advance(0.2)
        rt._processes["workers[2]"].kill("crash")
        rt.advance(0.1)  # deliver the kill
        assert rt.replica_count("workers") == 2
        assert rt.reap_dead_replicas("workers") == 1
        assert "workers[2]" not in rt.drivers
        assert rt.graph.replicas_of("workers") == ["workers[0]", "workers[1]"]

    def test_reap_restarts_crashed_replica_at_floor(self):
        rt = elastic_runtime(replicas=1, min_replicas=1)
        rt.advance(0.2)
        rt._processes["workers[0]"].kill("crash")
        rt.advance(0.1)
        assert rt.replica_count("workers") == 0
        assert rt.reap_dead_replicas("workers") == 1
        assert rt.replica_count("workers") == 1
        assert rt.thread_alive("workers[0]")

    def test_scaled_pipeline_still_delivers_in_order(self):
        rt = elastic_runtime(replicas=1, max_replicas=4)
        rt.advance(1.0)
        rt.scale_out("workers")
        rt.scale_out("workers")
        rt.advance(2.0)
        rt.scale_in("workers")
        rt.advance(1.0)
        rec = rt.finalize()
        sink_gets = [
            e for e in rec.items.values()
            if any(g.consumer == "sink" for g in e.gets)
        ]
        assert sink_gets, "sink consumed nothing"
        merge = rt.buffers["merge"]
        assert merge.outstanding == 0 or merge.frontier is not None
