"""Tests for SQueue: FIFO destructive reads, self-managed storage."""

import pytest

from repro.aru import BufferAruState
from repro.errors import SimulationError
from repro.runtime import Item


def put(q, conn, ts, size=50):
    return q.commit_put(conn, Item(ts=ts, size=size, producer=conn.thread), t=q.engine.now)


class TestFifo:
    def test_items_pop_in_arrival_order(self, harness):
        q = harness.squeue()
        prod = q.register_producer("p")
        cons = q.register_consumer("c")
        for ts in (3, 1, 2):  # arrival order, not timestamp order
            put(q, prod, ts=ts)
        got = [q.commit_get(cons, None, t=0.0).ts for _ in range(3)]
        assert got == [3, 1, 2]

    def test_get_removes_item(self, harness):
        q = harness.squeue()
        prod = q.register_producer("p")
        cons = q.register_consumer("c")
        put(q, prod, ts=0)
        assert len(q) == 1
        q.commit_get(cons, None, t=0.0)
        assert len(q) == 0

    def test_empty_get_raises(self, harness):
        q = harness.squeue()
        cons = q.register_consumer("c")
        with pytest.raises(SimulationError, match="empty"):
            q.commit_get(cons, None, t=0.0)

    def test_release_frees_memory(self, harness):
        h = harness
        q = h.squeue()
        prod = q.register_producer("p")
        cons = q.register_consumer("c")
        put(q, prod, ts=0, size=500)
        assert h.node.mem_in_use == 500
        view = q.commit_get(cons, None, t=0.0)
        assert h.node.mem_in_use == 500  # still held by consumer
        q.release(view._item, t=1.0)
        assert h.node.mem_in_use == 0
        assert h.recorder.items[view.item_id].t_free == 1.0

    def test_two_consumers_each_item_delivered_once(self, harness):
        q = harness.squeue()
        prod = q.register_producer("p")
        c1 = q.register_consumer("c1")
        c2 = q.register_consumer("c2")
        for ts in range(4):
            put(q, prod, ts=ts)
        got = [q.commit_get(c, None, t=0.0).ts for c in (c1, c2, c1, c2)]
        assert got == [0, 1, 2, 3]


class TestBlocking:
    def test_get_blocks_until_put(self, harness):
        h = harness
        q = h.squeue()
        prod = q.register_producer("p")
        cons = q.register_consumer("c")
        got = []

        def getter(eng):
            yield q.request_get(cons)
            got.append((eng.now, q.commit_get(cons, None, t=eng.now).ts))

        def putter(eng):
            yield eng.timeout(1.5)
            put(q, prod, ts=9)

        h.engine.process(getter(h.engine))
        h.engine.process(putter(h.engine))
        h.engine.run()
        assert got == [(1.5, 9)]

    def test_unregistered_consumer_rejected(self, harness):
        q = harness.squeue()
        other = harness.squeue("other")
        foreign = other.register_consumer("x")
        with pytest.raises(SimulationError, match="unregistered"):
            q.request_get(foreign)


class TestCapacityAndAru:
    def test_capacity(self, harness):
        q = harness.squeue(capacity=1)
        prod = q.register_producer("p")
        put(q, prod, ts=0)
        assert not q.has_room()
        with pytest.raises(SimulationError, match="full"):
            put(q, prod, ts=1)

    def test_room_reopens_on_get(self, harness):
        q = harness.squeue(capacity=1)
        prod = q.register_producer("p")
        cons = q.register_consumer("c")
        put(q, prod, ts=0)
        q.commit_get(cons, None, t=0.0)
        assert q.has_room()

    def test_aru_piggyback(self, harness):
        aru = BufferAruState("q", op="min")
        q = harness.squeue(aru=aru)
        prod = q.register_producer("p")
        cons = q.register_consumer("c")
        assert put(q, prod, ts=0) is None
        q.commit_get(cons, None, t=0.0, consumer_summary=0.4)
        assert put(q, prod, ts=1) == 0.4

    def test_maybe_collect_noop(self, harness):
        q = harness.squeue()
        assert q.maybe_collect(0.0) == 0


class TestDrain:
    def test_drain_frees_everything_queued(self, harness):
        h = harness
        q = h.squeue()
        prod = q.register_producer("p")
        for ts in range(3):
            put(q, prod, ts=ts, size=100)
        assert h.node.mem_in_use == 300
        assert q.drain(t=1.0) == 3
        assert len(q) == 0
        assert h.node.mem_in_use == 0

    def test_drain_empty_queue_is_noop(self, harness):
        q = harness.squeue()
        assert q.drain(t=0.0) == 0
