"""Guards on the public API surface and documentation hygiene."""

import importlib
import pkgutil

import pytest

import repro

PUBLIC_SUBPACKAGES = (
    "repro.sim",
    "repro.vt",
    "repro.cluster",
    "repro.runtime",
    "repro.gc",
    "repro.aru",
    "repro.control",
    "repro.faults",
    "repro.metrics",
    "repro.apps",
    "repro.rt_threads",
    "repro.bench",
)


def test_version():
    assert repro.__version__ == "1.0.0"


def test_lazy_exports_resolve():
    for name in repro.__all__:
        if name != "__version__":
            assert getattr(repro, name) is not None


def test_unknown_attribute_raises():
    with pytest.raises(AttributeError):
        repro.definitely_not_a_thing


def test_dir_lists_all():
    assert set(repro.__all__) <= set(dir(repro))


@pytest.mark.parametrize("package", PUBLIC_SUBPACKAGES)
def test_subpackage_has_docstring_and_all(package):
    mod = importlib.import_module(package)
    assert mod.__doc__ and len(mod.__doc__.strip()) > 20
    assert getattr(mod, "__all__", None), f"{package} must declare __all__"


@pytest.mark.parametrize("package", PUBLIC_SUBPACKAGES)
def test_all_entries_exist(package):
    mod = importlib.import_module(package)
    for name in mod.__all__:
        assert hasattr(mod, name), f"{package}.{name} missing"


def test_every_module_has_docstring():
    undocumented = []
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        mod = importlib.import_module(info.name)
        if not (mod.__doc__ and mod.__doc__.strip()):
            undocumented.append(info.name)
    assert not undocumented, f"modules without docstrings: {undocumented}"


def test_key_classes_documented():
    from repro.aru import AruConfig, StpMeter
    from repro.metrics import PostmortemAnalyzer, TraceRecorder
    from repro.runtime import Channel, Runtime, TaskGraph

    for cls in (AruConfig, StpMeter, TraceRecorder, PostmortemAnalyzer,
                Channel, Runtime, TaskGraph):
        assert cls.__doc__ and len(cls.__doc__.strip()) > 20
