"""Guards on the public API surface and documentation hygiene."""

import importlib
import pkgutil

import pytest

import repro

PUBLIC_SUBPACKAGES = (
    "repro.sim",
    "repro.vt",
    "repro.cluster",
    "repro.runtime",
    "repro.gc",
    "repro.aru",
    "repro.control",
    "repro.faults",
    "repro.metrics",
    "repro.apps",
    "repro.rt_threads",
    "repro.bench",
    "repro.obs",
    "repro.tenancy",
    "repro.dist",
)

#: The lazily re-exported top-level names. A frozen snapshot: adding a
#: name here is a deliberate API decision; removing one is a breaking
#: change and must fail this test first.
TOP_LEVEL_API = {
    "Engine", "RngRegistry", "Timestamp",
    "ClusterSpec", "NodeSpec",
    "Runtime", "RuntimeConfig", "TaskGraph",
    "Get", "Put", "Compute", "PeriodicitySync",
    "AruConfig", "MIN_OPERATOR", "MAX_OPERATOR",
    "RatePolicy", "SummaryStpPolicy", "PidPolicy", "NullPolicy",
    "ThreadController", "register_policy", "resolve_policy",
    "list_policies",
    "ScaleConfig", "ScalePolicy", "ErlangScalePolicy", "NullScalePolicy",
    "register_scale_policy", "resolve_scale_policy", "list_scale_policies",
    "FaultSpec", "FaultSchedule", "FaultInjector",
    "TraceRecorder", "PostmortemAnalyzer",
    "build_tracker", "TrackerConfig",
    "run_experiment", "ExperimentSpec", "RunResult",
    "register_backend", "available_backends", "resolve_backend",
    "TenancySpec", "TenantSpec", "TenancyResult", "ResourceDemand",
    "Scheduler", "run_tenants", "register_placement",
    "ArbiterConfig", "register_arbiter", "available_arbiters",
    "TelemetryHub", "TelemetryConfig", "NULL_HUB",
    "__version__",
}


def test_version():
    assert repro.__version__ == "1.0.0"


def test_lazy_exports_resolve():
    for name in repro.__all__:
        if name != "__version__":
            assert getattr(repro, name) is not None


def test_unknown_attribute_raises():
    with pytest.raises(AttributeError):
        repro.definitely_not_a_thing


def test_dir_lists_all():
    assert set(repro.__all__) <= set(dir(repro))


def test_top_level_api_snapshot():
    assert set(repro.__all__) == TOP_LEVEL_API


def test_facade_and_obs_reexports_are_the_real_objects():
    from repro.experiment import ExperimentSpec, RunResult, run_experiment
    from repro.obs import NULL_HUB, TelemetryConfig, TelemetryHub

    assert repro.run_experiment is run_experiment
    assert repro.ExperimentSpec is ExperimentSpec
    assert repro.RunResult is RunResult
    assert repro.TelemetryHub is TelemetryHub
    assert repro.TelemetryConfig is TelemetryConfig
    assert repro.NULL_HUB is NULL_HUB


@pytest.mark.parametrize("package", PUBLIC_SUBPACKAGES)
def test_subpackage_has_docstring_and_all(package):
    mod = importlib.import_module(package)
    assert mod.__doc__ and len(mod.__doc__.strip()) > 20
    assert getattr(mod, "__all__", None), f"{package} must declare __all__"


@pytest.mark.parametrize("package", PUBLIC_SUBPACKAGES)
def test_all_entries_exist(package):
    mod = importlib.import_module(package)
    for name in mod.__all__:
        assert hasattr(mod, name), f"{package}.{name} missing"


def test_every_module_has_docstring():
    undocumented = []
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        mod = importlib.import_module(info.name)
        if not (mod.__doc__ and mod.__doc__.strip()):
            undocumented.append(info.name)
    assert not undocumented, f"modules without docstrings: {undocumented}"


def test_key_classes_documented():
    from repro.aru import AruConfig, StpMeter
    from repro.metrics import PostmortemAnalyzer, TraceRecorder
    from repro.runtime import Channel, Runtime, TaskGraph

    for cls in (AruConfig, StpMeter, TraceRecorder, PostmortemAnalyzer,
                Channel, Runtime, TaskGraph):
        assert cls.__doc__ and len(cls.__doc__.strip()) > 20
