#!/usr/bin/env python
"""The paper's figures 3 and 4, live: min vs max compression operators.

Five consumers report the exact summary-STP values of the paper's worked
example — 337, 139, 273, 544 and 420 ms. Under the conservative ``min``
operator the producer settles at the *fastest* consumer's period
(139 ms, fig. 3); under the aggressive ``max`` operator it settles at the
*slowest* (544 ms, fig. 4), eliminating all waste for a fully
data-dependent pipeline.

Run:  python examples/fan_out_pipeline.py
"""

from repro.apps import StageCost, fan_out
from repro.aru import aru_max, aru_min
from repro.cluster import ClusterSpec, NodeSpec
from repro.metrics import PostmortemAnalyzer
from repro.runtime import Runtime, RuntimeConfig

#: Consumer service times from the paper's fig. 3 (seconds).
FIG3_PERIODS = (0.337, 0.139, 0.273, 0.544, 0.420)


def main() -> None:
    cluster = ClusterSpec(
        nodes=(NodeSpec(name="node0", sched_noise_cv=0.02),), name="demo"
    )
    print("Consumers B..F advertise summary-STPs of "
          + ", ".join(f"{p * 1e3:.0f}ms" for p in FIG3_PERIODS) + "\n")
    for aru, expected in ((aru_min(), min(FIG3_PERIODS)),
                          (aru_max(), max(FIG3_PERIODS))):
        graph = fan_out([StageCost(p, cv=0.05) for p in FIG3_PERIODS],
                        source_period=0.02)
        runtime = Runtime(graph, RuntimeConfig(cluster=cluster, aru=aru, seed=0))
        trace = runtime.run(until=90.0)
        late = [it for it in trace.iterations_of("A") if it.t_start > 30.0]
        period = sum(it.duration for it in late) / len(late)
        pm = PostmortemAnalyzer(trace)
        print(
            f"{aru.name}: producer A settled at {period * 1e3:6.1f} ms "
            f"(expected ~{expected * 1e3:.0f} ms); "
            f"wasted memory {pm.wasted_memory_fraction:.1%}"
        )
    print("\nmin sustains the fastest consumer (safe for independent sinks);")
    print("max matches the slowest (valid only under full data dependency).")


if __name__ == "__main__":
    main()
