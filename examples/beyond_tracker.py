#!/usr/bin/env python
"""The paper's other motivating workloads: gesture and stereo pipelines.

§1 motivates timestamped channels with two examples beyond the tracker:
a *gesture recognizer* analyzing a sliding window over a video stream,
and a *stereo module* requiring images with corresponding timestamps from
multiple cameras. Both ship in ``repro.apps``; this demo runs each with
and without ARU.

Run:  python examples/beyond_tracker.py
"""

from repro.apps import GestureConfig, StereoConfig, build_gesture, build_stereo
from repro.aru import aru_disabled, aru_min
from repro.cluster import ClusterSpec, NodeSpec
from repro.metrics import PostmortemAnalyzer, throughput_fps
from repro.runtime import Runtime, RuntimeConfig


def cluster():
    return ClusterSpec(
        nodes=(NodeSpec(name="node0", ncpus=8, sched_noise_cv=0.05),)
    )


def show(label, graph, camera_threads, horizon=60.0):
    print(f"--- {label} ---")
    for aru in (aru_disabled(), aru_min()):
        runtime = Runtime(
            graph(), RuntimeConfig(cluster=cluster(), aru=aru, seed=0)
        )
        trace = runtime.run(until=horizon)
        pm = PostmortemAnalyzer(trace)
        produced = sum(
            len(trace.iterations_of(cam)) for cam in camera_threads
        )
        print(
            f"  {aru.name:8s} frames produced {produced:5d} | "
            f"delivered {len(trace.sink_iterations()):4d} "
            f"({throughput_fps(trace):5.2f} fps) | "
            f"footprint {pm.footprint().mean() / 1e6:6.2f} MB | "
            f"wasted {pm.wasted_memory_fraction:5.1%}"
        )
    print()


def main() -> None:
    show(
        "gesture recognition (sliding window of 8 feature vectors)",
        lambda: build_gesture(GestureConfig()),
        ["camera"],
    )
    show(
        "stereo vision (corresponding timestamps from two cameras)",
        lambda: build_stereo(StereoConfig()),
        ["cam_left", "cam_right"],
    )
    print("In both cases ARU throttles the camera(s) to the bottleneck's")
    print("pace — including keeping two *independent* stereo cameras")
    print("mutually rate-matched — while the sliding window / pairing")
    print("semantics keep working on pinned references.")


if __name__ == "__main__":
    main()
