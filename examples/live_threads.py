#!/usr/bin/env python
"""ARU on real OS threads, with genuine numpy vision kernels.

Runs a miniature tracker — camera, motion mask, detector, display — as
actual ``threading`` threads for a few wall-clock seconds. The camera
synthesizes real frames; the mask stage runs a real background
subtraction; the detector scores real histogram intersections. ARU
feedback throttles the camera to the detector's measured pace.

Run:  python examples/live_threads.py [--seconds 4] [--no-aru]
"""

import argparse

import repro
from repro.apps import vision
from repro.aru import aru_disabled, aru_min
from repro.metrics import PostmortemAnalyzer, throughput_fps
from repro.runtime import Get, PeriodicitySync, Put, Sleep, TaskGraph

SHAPE = (240, 256, 3)  # big enough that detection is the bottleneck
FRAME_BYTES = SHAPE[0] * SHAPE[1] * SHAPE[2]


def camera(ctx):
    ts = 0
    while True:
        yield Sleep(0.004)  # 250 fps camera, far faster than detection
        frame = vision.make_frame(ctx.rng, ts, SHAPE)
        yield Put("frames", ts=ts, size=FRAME_BYTES, payload=frame)
        ts += 1
        yield PeriodicitySync()


def masker(ctx):
    while True:
        view = yield Get("frames")
        mask = vision.background_subtract(view.payload)
        yield Put("masks", ts=view.ts, size=mask.nbytes, payload=(view.payload, mask))
        yield PeriodicitySync()


def detector(ctx):
    model = None
    while True:
        view = yield Get("masks")
        frame, mask = view.payload
        if model is None:
            model = vision.color_histogram(frame)
        loc = vision.detect_target(frame, mask, model, patch=8)
        yield Put("locations", ts=view.ts, size=64, payload=loc)
        yield PeriodicitySync()


def display(ctx):
    while True:
        view = yield Get("locations")
        y, x, score = view.payload
        ctx.params.setdefault("seen", []).append((view.ts, y, x, round(score, 3)))
        yield PeriodicitySync()


def build() -> TaskGraph:
    g = TaskGraph("live-mini-tracker")
    g.add_thread("camera", camera)
    g.add_thread("masker", masker)
    g.add_thread("detector", detector)
    g.add_thread("display", display, sink=True, params={})
    for chan in ("frames", "masks", "locations"):
        g.add_channel(chan)
    g.connect("camera", "frames").connect("frames", "masker")
    g.connect("masker", "masks").connect("masks", "detector")
    g.connect("detector", "locations").connect("locations", "display")
    return g


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seconds", type=float, default=4.0)
    parser.add_argument("--no-aru", action="store_true")
    args = parser.parse_args()

    aru = aru_disabled() if args.no_aru else aru_min()
    graph = build()
    spec = repro.ExperimentSpec(
        app=graph,
        policy=aru,
        horizon=args.seconds,
        backend="threads",
        backend_options={"compute_mode": "noop"},
    )
    print(f"Running {args.seconds:.0f}s of real threads with {aru.name} ...")
    trace = repro.run_experiment(spec).trace

    pm = PostmortemAnalyzer(trace)
    produced = len(trace.iterations_of("camera"))
    shown = trace.sink_iterations()
    print(f"camera produced {produced} frames; display showed {len(shown)} "
          f"({throughput_fps(trace):.1f} fps)")
    print(f"wasted memory {pm.wasted_memory_fraction:.1%}, "
          f"wasted computation {pm.wasted_computation_fraction:.1%}")
    seen = graph.attrs("display")["params"].get("seen", [])[-3:]
    for ts, y, x, score in seen:
        print(f"  frame {ts}: target at ({y:3d},{x:3d}) score={score}")


if __name__ == "__main__":
    main()
