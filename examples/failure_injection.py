#!/usr/bin/env python
"""Failure injection: crash the pipeline's middle, watch ARU recover.

Runs the tracker under ``aru-min`` with summary-slot staleness eviction
through three phases, driven by a declarative
:class:`~repro.faults.FaultSchedule`:

* **healthy** — every consumer advertises its period, so the digitizer
  throttles down to the slowest stage's pace;
* **crashed** — all four middle stages die at once. Without staleness
  eviction the digitizer would stay throttled to a ghost's advertised
  period forever; with a TTL the stale summary slots evict and the
  digitizer un-throttles back toward its intrinsic frame rate;
* **restarted** — the stages come back cold, re-propagate their
  summaries, and the digitizer re-throttles to its pre-fault period.

Run:  python examples/failure_injection.py
"""

from repro.apps import build_tracker
from repro.aru import aru_min
from repro.bench import cluster_for
from repro.faults import (
    FaultInjector,
    FaultSchedule,
    FaultSpec,
    mean_period,
    resilience_report,
)
from repro.metrics import gantt
from repro.runtime import Runtime, RuntimeConfig

MID_STAGES = ("change_detection", "histogram", "target_detect1",
              "target_detect2")
T_CRASH = 20.0
T_RESTART = 35.0
HORIZON = 55.0
TTL = 2.0


def main() -> dict:
    runtime = Runtime(
        build_tracker(),
        RuntimeConfig(
            cluster=cluster_for("config1"),
            aru=aru_min().with_(staleness_ttl=TTL),
            seed=0,
        ),
    )
    schedule = FaultSchedule(
        [FaultSpec(kind="thread_crash", at=T_CRASH, target=name)
         for name in MID_STAGES]
        + [FaultSpec(kind="thread_restart", at=T_RESTART, target=name)
           for name in MID_STAGES]
    )
    injector = FaultInjector(runtime, schedule).install()
    trace = runtime.run(until=HORIZON)

    # Digitizer period in each phase. Ghost-slot eviction is two-stage
    # (channel slot, then the thread's own slot), so the un-throttled
    # window starts ~2*TTL after the crash.
    pre = mean_period(trace, "digitizer", T_CRASH - 8.0, T_CRASH)
    ghost = mean_period(trace, "digitizer", T_CRASH + 2 * TTL + 3.0, T_RESTART)
    final = mean_period(trace, "digitizer", HORIZON - 8.0, HORIZON)

    print(gantt(trace, width=72, fault_log=injector.log))
    print()
    print(resilience_report(injector.log, trace, sources=("digitizer",)))
    print()
    print(f"digitizer mean period (staleness TTL {TTL:.0f}s):")
    print(f"  healthy   [{T_CRASH - 8:.0f}s..{T_CRASH:.0f}s] : "
          f"{pre * 1e3:6.1f} ms  (throttled to the slowest consumer)")
    print(f"  crashed   [{T_CRASH + 2 * TTL + 3:.0f}s..{T_RESTART:.0f}s] : "
          f"{ghost * 1e3:6.1f} ms  (stale slots evicted -> un-throttled)")
    print(f"  restarted [{HORIZON - 8:.0f}s..{HORIZON:.0f}s] : "
          f"{final * 1e3:6.1f} ms  (summaries re-propagated -> re-throttled)")
    print()
    print("The crash leaves the digitizer with no live consumers. Its")
    print("summary slots go stale, the TTL evicts them, and min-compression")
    print("stops throttling to a ghost — the period falls back toward the")
    print("intrinsic frame rate. The restarts re-advertise periods and the")
    print("feedback loop pulls the digitizer back to its pre-fault pace.")
    return {"pre": pre, "ghost": ghost, "final": final,
            "log": injector.log}


if __name__ == "__main__":
    main()
