#!/usr/bin/env python
"""Failure injection: what happens when a pipeline stage dies.

Runs the tracker in three phases — healthy, then with target_detect2
killed mid-run — and renders a per-thread activity Gantt so the fallout
is visible: the GUI (which joins both detectors) stops delivering, the
remaining stages block or keep producing into channels whose dead
consumer no longer advances its cursors, and memory starts pooling in
exactly those channels.

Run:  python examples/failure_injection.py
"""

from repro.apps import build_tracker
from repro.aru import aru_min
from repro.bench import cluster_for
from repro.metrics import gantt
from repro.runtime import Runtime, RuntimeConfig

PHASE = 30.0


def main() -> None:
    runtime = Runtime(
        build_tracker(),
        RuntimeConfig(cluster=cluster_for("config1"), aru=aru_min(), seed=0),
    )
    runtime.advance(PHASE)
    healthy_outputs = len(runtime.recorder.sink_iterations())
    healthy_mem = runtime.stats()["nodes"]["node0"]["mem_in_use"]

    print(f"t={PHASE:.0f}s: killing target_detect2 ...\n")
    runtime.kill_thread("target_detect2", reason="injected fault")
    runtime.advance(PHASE)
    trace = runtime.finalize()

    outputs_after = len(trace.sink_iterations()) - healthy_outputs
    mem_after = runtime.stats()["nodes"]["node0"]["mem_in_use"]

    print(gantt(trace, width=72))
    print()
    print(f"GUI frames delivered:  first {PHASE:.0f}s: {healthy_outputs}   "
          f"second {PHASE:.0f}s: {outputs_after}")
    print(f"resident channel memory: {healthy_mem / 1e6:.1f} MB -> "
          f"{mem_after / 1e6:.1f} MB")
    print()
    print("After the kill, the GUI blocks forever on C9 — its iteration")
    print("never completes, so its line goes quiet. Detector 1 keeps")
    print("working but its output is never consumed, and C5/C8's dead")
    print("consumer stops advancing cursors, so their items can no longer")
    print("be collected — memory pools exactly there.")


if __name__ == "__main__":
    main()
