#!/usr/bin/env python
"""Extending the control plane: custom presets and custom policies.

Two extension points, demonstrated end to end (docs/control-plane.md is
the prose version):

1. a custom *preset* — a named ``AruConfig`` registered with
   ``register_policy``, usable everywhere a policy name is accepted
   (CLI ``--policy``, sweep spec files, ``CellSpec(policy="...")``);
2. a custom *decision algorithm* — a ``RatePolicy`` subclass, wired
   through a ``ThreadController`` at the library layer.

Run:  python examples/custom_policy.py
"""

from repro.aru import AruConfig
from repro.aru.filters import NoFilter
from repro.aru.stp import StpMeter
from repro.bench import CellSpec, SweepRunner
from repro.control import (
    RatePolicy,
    SleepThrottle,
    StpSensor,
    ThreadController,
    register_policy,
)

HORIZON = 60.0


# --- 1. a custom preset: gentle PI gains + headroom, as a named policy ---

register_policy(
    "aru-pid-soft",
    lambda: AruConfig(policy="pid", pid_kp=0.3, pid_ki=0.1,
                      headroom=1.05, name="aru-pid-soft"),
    help="gentle PI gains + 5% headroom for noisy nodes",
)


def compare_presets() -> None:
    cells = [
        CellSpec(config="config1", policy=name, seed=0, horizon=HORIZON)
        for name in ("no-aru", "aru-min", "aru-pid", "aru-pid-soft")
    ]
    print(f"tracker on config 1, horizon {HORIZON:.0f}s:\n")
    print(f"{'policy':<14} {'throughput':>11} {'mem (MU_mu)':>12} "
          f"{'wasted mem':>11}")
    for result in SweepRunner(workers=1).run_metrics(cells):
        m = result.metrics
        print(f"{m.policy:<14} {m.throughput:>8.2f}fps "
              f"{m.mem_mean / 1e6:>10.1f}MB {m.wasted_memory:>10.1%}")


# --- 2. a custom decision algorithm: deadband over summary-STP ---

class DeadbandPolicy(RatePolicy):
    """Summary-STP, but only move the target on >10% changes."""

    kind = "deadband"

    def __init__(self, band: float = 0.10) -> None:
        self.band = band
        self._slots = {}
        self._target = None

    def on_feedback(self, conn_id, value):
        self._slots[conn_id] = value

    def observe(self, signals):
        if not self._slots:
            return None
        measured = min(self._slots.values())
        if self._target is None or \
                abs(measured - self._target) > self.band * self._target:
            self._target = measured
        return self._target

    def advertise(self, signals):
        if not self._slots:
            return signals.current_stp
        summary = min(self._slots.values())
        if signals.current_stp is not None:
            summary = max(summary, signals.current_stp)
        return summary

    def reset(self):
        self._slots.clear()
        self._target = None

    def snapshot(self):
        return dict(self._slots)


def drive_deadband() -> None:
    """Feed a noisy measurement sequence through a full control stack."""

    class Clock:
        t = 0.0

        def now(self):
            return self.t

    clock = Clock()
    controller = ThreadController(
        sensor=StpSensor(StpMeter(clock, stp_filter=NoFilter()), clock.now),
        policy=DeadbandPolicy(band=0.10),
        actuator=SleepThrottle(headroom=1.0),
        throttled=True,
    )
    # downstream summary wobbles ±8% around 100ms, then genuinely doubles
    feedback = [0.100, 0.104, 0.097, 0.092, 0.108, 0.200, 0.205, 0.196]
    print("\ndeadband policy against a noisy measurement "
          "(target moves only on real change):")
    print(f"  {'measured':>9} {'target':>8}")
    for value in feedback:
        controller.on_feedback("conn0", value)
        target, _sleep = controller.plan_throttle()
        print(f"  {value * 1e3:>7.0f}ms {target * 1e3:>6.0f}ms")


def main() -> None:
    compare_presets()
    drive_deadband()


if __name__ == "__main__":
    main()
