#!/usr/bin/env python
"""Quickstart: a three-stage pipeline with and without ARU.

Builds ``camera -> filter -> display``, where the camera runs at 50 fps
but the display can only keep up with ~8 fps. Without ARU the camera
floods the pipeline with frames that are skipped and garbage-collected;
with ARU the display's sustainable thread period propagates backwards and
the camera slows itself to match.

Run:  python examples/quickstart.py
"""

from repro.aru import aru_disabled, aru_min
from repro.metrics import PostmortemAnalyzer, latency_stats, throughput_fps
from repro.runtime import (
    Compute,
    Get,
    PeriodicitySync,
    Put,
    Runtime,
    RuntimeConfig,
    Sleep,
    TaskGraph,
)

FRAME_BYTES = 100_000


def camera(ctx):
    """A 50 fps source."""
    ts = 0
    while True:
        yield Sleep(0.02)                       # frame interval
        yield Put("raw", ts=ts, size=FRAME_BYTES)
        ts += 1
        yield PeriodicitySync()                 # the paper's periodicity_sync()


def smoother(ctx):
    """A light mid-pipeline stage."""
    while True:
        frame = yield Get("raw")                # get-LATEST, skipping stale frames
        yield Compute(0.01)
        yield Put("smooth", ts=frame.ts, size=FRAME_BYTES)
        yield PeriodicitySync()


def display(ctx):
    """The slow sink (~8 fps)."""
    while True:
        yield Get("smooth")
        yield Compute(0.12)
        yield PeriodicitySync()


def build_graph() -> TaskGraph:
    g = TaskGraph("quickstart")
    g.add_thread("camera", camera)
    g.add_thread("smoother", smoother)
    g.add_thread("display", display, sink=True)
    g.add_channel("raw")
    g.add_channel("smooth")
    g.connect("camera", "raw").connect("raw", "smoother")
    g.connect("smoother", "smooth").connect("smooth", "display")
    return g


def main() -> None:
    print(f"{'policy':8s} {'produced':>8s} {'shown':>6s} {'footprint':>10s} "
          f"{'wasted mem':>10s} {'fps':>5s} {'latency':>8s}")
    for aru in (aru_disabled(), aru_min()):
        runtime = Runtime(build_graph(), RuntimeConfig(aru=aru, seed=0))
        trace = runtime.run(until=60.0)
        pm = PostmortemAnalyzer(trace)
        produced = len(trace.iterations_of("camera"))
        shown = len(trace.sink_iterations())
        lat_ms = latency_stats(trace)[0] * 1e3
        print(
            f"{aru.name:8s} {produced:8d} {shown:6d} "
            f"{pm.footprint().mean() / 1e6:8.2f}MB "
            f"{pm.wasted_memory_fraction:9.1%} "
            f"{throughput_fps(trace):5.2f} {lat_ms:6.0f}ms"
        )
    print("\nARU makes the camera produce only what the display can show —")
    print("same delivered frame rate, a fraction of the memory and waste.")


if __name__ == "__main__":
    main()
