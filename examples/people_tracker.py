#!/usr/bin/env python
"""The paper's full evaluation: the color-based people tracker.

Reruns §5 end to end — both cluster configurations, all three policies —
and prints the figure-6/7/10 tables plus the shape-check report against
the published numbers.

Run:  python examples/people_tracker.py [--horizon SECONDS] [--seeds N]
"""

import argparse

from repro.bench import (
    fig6_memory_table,
    fig7_waste_table,
    fig10_performance_table,
    format_shape_report,
    run_grid,
    shape_checks,
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--horizon", type=float, default=120.0,
                        help="simulated seconds per run (default 120)")
    parser.add_argument("--seeds", type=int, default=2,
                        help="number of seeds to average over (default 2)")
    args = parser.parse_args()

    print(f"Simulating 2 configs x 3 policies x {args.seeds} seeds "
          f"x {args.horizon:.0f}s ...\n")
    grid = run_grid(seeds=tuple(range(args.seeds)), horizon=args.horizon)

    for config in ("config1", "config2"):
        print(fig6_memory_table(grid, config)[0], end="\n\n")
        print(fig7_waste_table(grid, config)[0], end="\n\n")
        print(fig10_performance_table(grid, config)[0], end="\n\n")

    print(format_shape_report(shape_checks(grid)))


if __name__ == "__main__":
    main()
