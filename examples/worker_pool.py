#!/usr/bin/env python
"""User-defined compression operators: throttling a work-sharing pool.

The paper's framework lets the application supply its own
dependency-encoded operator when min/max don't describe the consumers.
A FIFO queue feeding a pool of K workers is the classic case: channel
reasoning (min = fastest reader) treats K workers like one and ARU
over-throttles the source to a single worker's period, starving the pool.
A one-line user operator — ``min(periods) / K`` — tells ARU the pool's
aggregate rate.

Run:  python examples/worker_pool.py
"""

from repro.apps import StageCost, work_queue_pool
from repro.aru import aru_disabled, aru_min
from repro.cluster import ClusterSpec, NodeSpec
from repro.metrics import PostmortemAnalyzer
from repro.runtime import Runtime, RuntimeConfig

N_WORKERS = 4
WORKER_PERIOD = 0.1


def run(label, aru, queue_op=None):
    graph = work_queue_pool(
        n_workers=N_WORKERS,
        worker_cost=StageCost(WORKER_PERIOD, cv=0.05),
        source_period=0.01,
        queue_op=queue_op,
    )
    cluster = ClusterSpec(
        nodes=(NodeSpec(name="node0", ncpus=8, sched_noise_cv=0.02),)
    )
    runtime = Runtime(graph, RuntimeConfig(cluster=cluster, aru=aru, seed=0))
    trace = runtime.run(until=40.0)
    done = sum(
        len(trace.iterations_of(f"worker{i}")) for i in range(N_WORKERS)
    )
    pm = PostmortemAnalyzer(trace)
    late = [it for it in trace.iterations_of("source") if it.t_start > 10.0]
    period = sum(it.duration for it in late) / len(late)
    print(f"{label:28s} source period {period * 1e3:6.1f} ms | "
          f"jobs done {done:4d} | queue depth left "
          f"{len(runtime.queue('jobs')):4d} | "
          f"wasted mem {pm.wasted_memory_fraction:5.1%}")


def main() -> None:
    print(f"{N_WORKERS} workers x {WORKER_PERIOD * 1e3:.0f} ms each "
          f"=> aggregate service period {WORKER_PERIOD / N_WORKERS * 1e3:.0f} ms\n")
    run("no ARU (queue grows)", aru_disabled())
    run("ARU-min (over-throttled)", aru_min())
    run("ARU + pooled operator", aru_min(), queue_op="pooled")
    print("\n'pooled' divides the fastest worker's period by the pool size,")
    print("so the source matches the pool's aggregate rate instead of one")
    print("worker's — full utilization with a bounded queue.")


if __name__ == "__main__":
    main()
