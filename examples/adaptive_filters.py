#!/usr/bin/env python
"""The paper's future work, implemented: STP noise filters.

§3.3.2 observes that OS-scheduling variance makes summary-STP values
noisy, causing "non-smooth production rate for producer threads", and
leaves smoothing filters to future work. This example runs the tracker on
a very noisy node with and without an EWMA filter on the feedback path,
prints the resulting performance, and draws the digitizer's throttle
target over time so the smoothing is visible.

Run:  python examples/adaptive_filters.py
"""

import numpy as np

from repro.apps import build_tracker
from repro.aru import aru_max
from repro.cluster import config1_spec
from repro.metrics import jitter, throughput_fps
from repro.runtime import Runtime, RuntimeConfig

NOISE = 0.35
HORIZON = 120.0


def sparkline(values, width=72) -> str:
    blocks = " .:-=+*#%@"
    arr = np.asarray(values, dtype=float)
    if len(arr) > width:
        idx = np.linspace(0, len(arr) - 1, width).astype(int)
        arr = arr[idx]
    lo, hi = arr.min(), arr.max()
    span = (hi - lo) or 1.0
    return "".join(blocks[int((v - lo) / span * (len(blocks) - 1))] for v in arr)


def run(aru_cfg):
    cluster = config1_spec(sched_noise_cv=NOISE)
    runtime = Runtime(
        build_tracker(), RuntimeConfig(cluster=cluster, aru=aru_cfg, seed=0)
    )
    trace = runtime.run(until=HORIZON)
    targets = [
        s.throttle_target
        for s in trace.stp_samples
        if s.thread == "digitizer" and s.throttle_target is not None
    ]
    return trace, targets


def main() -> None:
    print(f"Tracker on one node with heavy scheduling noise "
          f"(cv={NOISE}), ARU-max.\n")
    for label, cfg in (
        ("unfiltered (published ARU)", aru_max()),
        ("EWMA(0.2) on summary-STP", aru_max(summary_filter="ewma:0.2")),
    ):
        trace, targets = run(cfg)
        print(f"{label}:")
        print(f"  digitizer throttle target over time "
              f"[{min(targets) * 1e3:.0f}..{max(targets) * 1e3:.0f} ms]:")
        print(f"  {sparkline(targets)}")
        print(f"  throughput {throughput_fps(trace):.2f} fps, "
              f"output jitter {jitter(trace) * 1e3:.0f} ms, "
              f"target std {np.std(targets) * 1e3:.0f} ms\n")
    print("The filter steadies the control signal: higher throughput, "
          "smoother output.")


if __name__ == "__main__":
    main()
