#!/usr/bin/env python
"""Elastic parallelism: scaling a worker pool under a load swing.

The scale plane's extension points, demonstrated end to end (the
ScalePolicy section of docs/control-plane.md is the prose version):

1. the shipped Erlang-C controller riding a 10x arrival swing —
   watch the pool grow and shrink, and compare latency against the
   fixed-N run of the same workload;
2. a custom *decision algorithm* — a ``ScalePolicy`` subclass driven
   through the same ``StageSignals`` the built-in controller sees;
3. a custom *preset* — a named ``ScaleConfig`` registered with
   ``register_scale_policy``, usable everywhere a scale-policy name is
   accepted (CLI ``--scale-policy``, ``CellSpec(scale_policy="...")``).

Run:  python examples/elastic_tracker.py
"""

import math

from repro.apps import elastic_pipeline
from repro.bench import CellSpec, SweepRunner
from repro.control import ScaleConfig, ScalePolicy, register_scale_policy
from repro.control.scale import StageSignals
from repro.experiment import ExperimentSpec, run_experiment
from repro.metrics.performance import latency_percentiles

HORIZON = 90.0
SWING = (30.0, 60.0, 10.0)  # 10x arrivals during t=[30,60)


def build(**kw):
    return elastic_pipeline(
        replicas=1, max_replicas=6, worker_cost=0.03,
        steady_period=0.12, swing=SWING, **kw,
    )


# --- 1. the shipped Erlang-C controller vs a fixed pool ---

def compare_fixed_and_elastic() -> None:
    print(f"swing source: 8.3 fps -> 83 fps during t=[{SWING[0]:.0f},"
          f"{SWING[1]:.0f})s; one 30 ms worker (config1)\n")
    for label, scale in (("fixed N=1", None), ("elastic erlang", "erlang")):
        result = run_experiment(ExperimentSpec(
            app=build(), config="config1", policy="no-aru",
            scale_policy=scale, horizon=HORIZON,
        ))
        pct = latency_percentiles(result.trace, percentiles=(50, 95))
        frames = len(result.trace.sink_iterations())
        print(f"{label:<16} delivered {frames:>5} frames   "
              f"p50 {pct[50] * 1e3:>8.1f} ms   p95 {pct[95] * 1e3:>8.1f} ms")
        for stage, ctl in (result.runtime.scalers or {}).items():
            for t, current, desired, applied in ctl.decisions:
                if applied:
                    print(f"    t={t:>6.1f}s  {stage}: {current} -> "
                          f"{current + applied} replicas")
    print()


# --- 2. a custom decision algorithm: queue-depth threshold scaling ---

class DepthStepPolicy(ScalePolicy):
    """Add a replica per ``step`` queued items, ignore service times.

    A deliberately naive contrast to Erlang-C: it reacts to the
    *symptom* (backlog) rather than the *cause* (offered erlangs), so
    it lags the swing by however long the backlog takes to build.
    """

    kind = "depth-step"

    def __init__(self, step: int = 20) -> None:
        self.step = step

    def decide(self, signals: StageSignals):
        desired = 1 + math.floor(signals.queue_depth / self.step)
        return max(signals.min_replicas,
                   min(signals.max_replicas, desired))


def drive_custom_policy() -> None:
    policy = DepthStepPolicy(step=20)
    print("DepthStepPolicy offline, against synthetic signals:")
    for depth in (0, 15, 45, 130):
        signals = StageSignals(now=0.0, arrival_rate=50.0,
                               service_time=0.03, queue_depth=depth,
                               replicas=1, min_replicas=1, max_replicas=6)
        print(f"  depth {depth:>4} -> desired N = {policy.decide(signals)}")
    print()


# --- 3. a custom preset: tighter utilisation target, as a named policy ---

register_scale_policy(
    "erlang-cautious",
    lambda: ScaleConfig(target_utilization=0.5, hysteresis=3,
                        name="erlang-cautious"),
    help="size to 50% utilisation, release replicas reluctantly",
)


def sweep_with_preset() -> None:
    cells = [
        CellSpec(
            config="config1", policy="no-aru", label=name or "fixed",
            workload="elastic",
            workload_args=(("replicas", 1), ("max_replicas", 6),
                           ("worker_cost", 0.03), ("steady_period", 0.12),
                           ("swing", SWING)),
            scale_policy=name, horizon=HORIZON,
        )
        for name in (None, "erlang", "erlang-cautious")
    ]
    print("the same swing as sweep cells (scale policies by name):\n")
    print(f"{'cell':<16} {'frames':>7} {'mean latency':>13}")
    for result in SweepRunner(workers=1).run_metrics(cells):
        m = result.metrics
        print(f"{result.spec.label:<16} {m.frames_delivered:>7} "
              f"{m.latency_mean * 1e3:>10.1f} ms")


if __name__ == "__main__":
    compare_fixed_and_elastic()
    drive_custom_policy()
    sweep_with_preset()
