#!/usr/bin/env python
"""Kernel performance regression gate.

Measures the micro-kernel rates (event dispatch, process trampoline,
postmortem analysis) and compares them against the committed baseline in
``benchmarks/BENCH_kernel.json``. Exits non-zero when a *gated* rate has
regressed by more than the threshold (default 30 %) — loose enough to
ride out machine-to-machine variance, tight enough to catch a real fast
-path regression (the pre-fast-path kernel was ~2x slower, i.e. a 50 %
drop).

Usage::

    PYTHONPATH=src python benchmarks/check_regression.py            # gate
    PYTHONPATH=src python benchmarks/check_regression.py --update   # re-baseline
    PYTHONPATH=src python benchmarks/check_regression.py --threshold 0.5

Only the dispatch rate gates by default; the trampoline rate and the
postmortem time are recorded for context (they are noisier). The pure
:func:`compare` function carries the policy and is unit-tested in
``tests/bench/test_check_regression.py``; a ``perf``-marked pytest
wrapper runs the full gate when ``REPRO_PERF=1``.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import Dict, List

BASELINE_PATH = Path(__file__).resolve().parent / "BENCH_kernel.json"

#: Rates (higher is better) whose regression fails the gate.
#: ``telemetry_off_ops_per_sec`` gates the ISSUE-5 zero-overhead
#: contract: the disabled-telemetry hot path must stay one attribute
#: check, so its rate cannot quietly erode as instrumentation grows.
GATED_RATES = ("dispatch_events_per_sec", "telemetry_off_ops_per_sec")

#: Maximum allowed fractional drop of a gated rate vs baseline.
DEFAULT_THRESHOLD = 0.30

_N_EVENTS = 50_000


def _best_of(fn, repeat: int = 5) -> float:
    """Best wall time over ``repeat`` runs (discards scheduler noise)."""
    best = float("inf")
    for _ in range(repeat):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _measure_dispatch() -> float:
    from repro.sim import Engine

    def spin():
        eng = Engine()

        def ticker(eng, n):
            for _ in range(n):
                yield eng.timeout(0.001)

        eng.process(ticker(eng, _N_EVENTS))
        eng.run()

    return _N_EVENTS / _best_of(spin)


def _measure_trampoline() -> float:
    from repro.sim import Engine

    def spin():
        eng = Engine()
        fired = eng.event()
        fired.succeed("x")
        eng.run()

        def chaser(eng, n):
            for _ in range(n):
                yield fired

        eng.process(chaser(eng, _N_EVENTS))
        eng.run()

    return _N_EVENTS / _best_of(spin)


def _measure_postmortem_ms() -> float:
    from repro.apps import build_tracker
    from repro.aru import aru_disabled
    from repro.bench import cluster_for, placement_for
    from repro.metrics import (
        PostmortemAnalyzer,
        jitter,
        latency_stats,
        throughput_fps,
    )
    from repro.runtime import Runtime, RuntimeConfig

    runtime = Runtime(
        build_tracker(),
        RuntimeConfig(
            cluster=cluster_for("config1"), gc="dgc", aru=aru_disabled(),
            seed=0, placement=placement_for("config1"),
        ),
    )
    recorder = runtime.run(until=60.0)

    def analyze():
        pm = PostmortemAnalyzer(recorder)
        pm.footprint().mean()
        pm.ideal_footprint().mean()
        pm.channel_report()
        pm.thread_waste_report()
        pm.wasted_memory_fraction
        pm.wasted_computation_fraction
        latency_stats(recorder)
        throughput_fps(recorder)
        jitter(recorder)

    return _best_of(analyze, repeat=3) * 1e3


class _BenchItem:
    """The attribute surface the hub hooks touch, without runtime setup."""

    __slots__ = ("item_id", "ts", "size", "producer", "parents")

    def __init__(self, item_id: int) -> None:
        self.item_id = item_id
        self.ts = item_id
        self.size = 100
        self.producer = "p"
        self.parents = ()


def _measure_telemetry(enabled: bool) -> float:
    """Rate of the instrumented put/get hot-path pattern.

    Replicates exactly what Channel.commit_put/commit_get pay per item:
    one ``obs.enabled`` check and, when live, the ``on_put``/``on_get``
    hook bodies. The *off* rate is the zero-overhead contract; the *on*
    rate is recorded so the cost of live telemetry stays visible.
    """
    from repro.obs import NULL_HUB, TelemetryConfig, TelemetryHub

    n = _N_EVENTS

    def spin():
        if enabled:
            # Unbounded span cap would make the loop allocation-bound on
            # the span list; size it to the workload.
            obs = TelemetryHub(TelemetryConfig(max_spans=4 * n))
        else:
            obs = NULL_HUB
        items = [_BenchItem(i) for i in range(200)]
        t = 0.0
        for i in range(n):
            item = items[i % 200]
            if obs.enabled:
                obs.on_put("C1", "channel", item, t)
            if obs.enabled:
                obs.on_get("C1", "channel", item, "c", t)

    return _N_EVENTS / _best_of(spin)


def measure() -> Dict[str, float]:
    """One full measurement pass; keys match the baseline file."""
    return {
        "dispatch_events_per_sec": _measure_dispatch(),
        "trampoline_events_per_sec": _measure_trampoline(),
        "postmortem_ms": _measure_postmortem_ms(),
        "telemetry_off_ops_per_sec": _measure_telemetry(enabled=False),
        "telemetry_on_ops_per_sec": _measure_telemetry(enabled=True),
    }


def compare(
    current: Dict[str, float],
    baseline: Dict[str, float],
    threshold: float = DEFAULT_THRESHOLD,
) -> List[str]:
    """Return one failure message per gated rate regressed beyond ``threshold``.

    Pure function of its inputs (no measurement, no I/O) so the gate
    policy is unit-testable. Gated rates missing from either side fail
    loudly rather than passing silently.
    """
    failures: List[str] = []
    for key in GATED_RATES:
        base = baseline.get(key)
        cur = current.get(key)
        if base is None or cur is None:
            failures.append(f"{key}: missing from "
                            f"{'baseline' if base is None else 'measurement'}")
            continue
        if base <= 0:
            failures.append(f"{key}: non-positive baseline {base!r}")
            continue
        drop = 1.0 - cur / base
        if drop > threshold:
            failures.append(
                f"{key}: {cur:,.0f}/s is {drop:.0%} below baseline "
                f"{base:,.0f}/s (allowed {threshold:.0%})"
            )
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", type=Path, default=BASELINE_PATH,
                        help=f"baseline JSON (default {BASELINE_PATH.name})")
    parser.add_argument("--threshold", type=float, default=DEFAULT_THRESHOLD,
                        help="max fractional drop allowed (default 0.30)")
    parser.add_argument("--update", action="store_true",
                        help="write the current measurement as the baseline")
    args = parser.parse_args(argv)

    rates = measure()
    for key, value in rates.items():
        unit = "ms" if key.endswith("_ms") else "/s"
        print(f"  {key:28s} {value:>14,.1f} {unit}")

    if args.update:
        args.baseline.write_text(json.dumps({"rates": rates}, indent=2) + "\n")
        print(f"baseline updated: {args.baseline}")
        return 0

    if not args.baseline.exists():
        print(f"no baseline at {args.baseline}; run with --update first",
              file=sys.stderr)
        return 2
    baseline = json.loads(args.baseline.read_text())["rates"]
    failures = compare(rates, baseline, args.threshold)
    if failures:
        for failure in failures:
            print(f"REGRESSION  {failure}", file=sys.stderr)
        return 1
    print("kernel performance within threshold of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
