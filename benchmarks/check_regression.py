#!/usr/bin/env python
"""Kernel performance regression gate.

Measures the micro-kernel rates (event dispatch, process trampoline,
postmortem analysis, telemetry site cost) and compares them against the
committed baseline in ``benchmarks/BENCH_kernel.json``. Exits non-zero
when a *gated* rate has regressed by more than the threshold (default
30 %) — loose enough to ride out machine-to-machine variance, tight
enough to catch a real fast-path regression — or when an *absolute* gate
is violated (``telemetry_on_over_off_ratio`` must stay ≤ 3, the
ISSUE-7 "telemetry you can leave on" contract).

Usage::

    PYTHONPATH=src python benchmarks/check_regression.py            # gate
    PYTHONPATH=src python benchmarks/check_regression.py --update   # re-baseline
    PYTHONPATH=src python benchmarks/check_regression.py --threshold 0.5

``dispatch_events_per_sec`` is pure calendar dispatch: pre-scheduled
cohort timeouts drained by ``Engine.run()`` with no process resumption,
the rate the batched cohort loop is accountable for. The chain and
trampoline rates cover the allocation-bound paths (create+yield+fire per
event), which CPython frame/object costs dominate. The telemetry pair
drives the *real* ``Channel`` put/get/free site — mandatory work
included — so the on/off ratio states what a user actually pays for
leaving metrics on. The pure :func:`compare` function carries the policy
and is unit-tested in ``tests/bench/test_check_regression.py``; a
``perf``-marked pytest wrapper runs the full gate when ``REPRO_PERF=1``.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import Dict, List

BASELINE_PATH = Path(__file__).resolve().parent / "BENCH_kernel.json"

#: Rates (higher is better) whose regression fails the gate.
#: ``telemetry_off_ops_per_sec`` gates the ISSUE-5 zero-overhead
#: contract: the disabled-telemetry hot path must stay one attribute
#: check, so its rate cannot quietly erode as instrumentation grows.
GATED_RATES = ("dispatch_events_per_sec", "telemetry_off_ops_per_sec")

#: Absolute caps (lower is better) checked on the current measurement,
#: independent of the baseline. The telemetry ratio is a *contract*,
#: not a trend: metrics-on must stay within 3x of metrics-off through
#: the real channel site (ISSUE 7).
GATED_MAX = {"telemetry_on_over_off_ratio": 3.0}

#: Maximum allowed fractional drop of a gated rate vs baseline.
DEFAULT_THRESHOLD = 0.30

_N_EVENTS = 50_000

#: Same-timestamp events per calendar tick in the dispatch benchmark.
#: 64 mirrors a mid-size pipeline's per-tick fan-out; the cohort-size
#: sweep in ``bench_micro_engine.py`` covers the full range.
_DISPATCH_COHORT = 64


def _best_of(fn, repeat: int = 5) -> float:
    """Best wall time over ``repeat`` runs (discards scheduler noise)."""
    best = float("inf")
    for _ in range(repeat):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _measure_dispatch() -> float:
    """Pure cohort dispatch: pre-scheduled timeouts drained by run().

    Scheduling happens outside the timed region — this isolates the
    calendar pop + dispatch loop the batched-cohort rewrite targets
    (the ≥5M events/s acceptance figure), from the allocation-bound
    create+fire path measured by ``chain_events_per_sec``.
    """
    from repro.sim import Engine
    from repro.sim.events import Timeout

    n = _N_EVENTS
    best = float("inf")
    for _ in range(5):
        eng = Engine()
        tick = 0.0
        for i in range(n):
            if i % _DISPATCH_COHORT == 0:
                tick += 0.001
            Timeout(eng, tick)
        t0 = time.perf_counter()
        eng.run()
        best = min(best, time.perf_counter() - t0)
    return n / best


def _measure_chain() -> float:
    """The allocation-bound ticker: create + yield + fire per event."""
    from repro.sim import Engine

    def spin():
        eng = Engine()

        def ticker(eng, n):
            for _ in range(n):
                yield eng.timeout(0.001)

        eng.process(ticker(eng, _N_EVENTS))
        eng.run()

    return _N_EVENTS / _best_of(spin)


def _measure_trampoline() -> float:
    from repro.sim import Engine

    def spin():
        eng = Engine()
        fired = eng.event()
        fired.succeed("x")
        eng.run()

        def chaser(eng, n):
            for _ in range(n):
                yield fired

        eng.process(chaser(eng, _N_EVENTS))
        eng.run()

    return _N_EVENTS / _best_of(spin)


def _measure_postmortem_ms() -> float:
    from repro.apps import build_tracker
    from repro.aru import aru_disabled
    from repro.bench import cluster_for, placement_for
    from repro.metrics import (
        PostmortemAnalyzer,
        jitter,
        latency_stats,
        throughput_fps,
    )
    from repro.runtime import Runtime, RuntimeConfig

    runtime = Runtime(
        build_tracker(),
        RuntimeConfig(
            cluster=cluster_for("config1"), gc="dgc", aru=aru_disabled(),
            seed=0, placement=placement_for("config1"),
        ),
    )
    recorder = runtime.run(until=60.0)

    def analyze():
        pm = PostmortemAnalyzer(recorder)
        pm.footprint().mean()
        pm.ideal_footprint().mean()
        pm.channel_report()
        pm.thread_waste_report()
        pm.wasted_memory_fraction
        pm.wasted_computation_fraction
        latency_stats(recorder)
        throughput_fps(recorder)
        jitter(recorder)

    return _best_of(analyze, repeat=3) * 1e3


def _measure_telemetry(enabled: bool) -> float:
    """Ops/sec through the *real* channel site, telemetry on or off.

    One op is a full item lifecycle against a live :class:`Channel`:
    ``commit_put`` → ``commit_get`` → ``release`` (with the dead-
    timestamp GC freeing behind the cursor), exactly the per-item work
    the runtime pays. With ``enabled`` the channel carries a metrics-
    only hub (``spans=False`` — the "leave it on" configuration); the
    on/off rate pair is the honest statement of what always-on metrics
    cost at an instrumented site, which is what the ≤3x ratio gate
    enforces. Bare-branch numbers would flatter the off side: the
    disabled check is ~50ns while any real site does microseconds of
    mandatory work.
    """
    from repro.cluster import Node, NodeSpec
    from repro.gc import make_gc
    from repro.metrics import TraceRecorder
    from repro.obs import NULL_HUB, TelemetryConfig, TelemetryHub
    from repro.runtime import Channel
    from repro.runtime.item import Item
    from repro.sim import Engine, RngRegistry
    from repro.vt.timestamp import LATEST

    n = _N_EVENTS

    def spin():
        obs = (TelemetryHub(TelemetryConfig(spans=False)) if enabled
               else NULL_HUB)
        engine = Engine()
        node = Node(engine, NodeSpec(name="n0"), RngRegistry(seed=0))
        gc = make_gc("dgc")
        channel = Channel(engine, "bench", node, recorder=TraceRecorder(),
                          gc=gc, obs=obs)
        out = channel.register_producer("p")
        conn = channel.register_consumer("c")
        for i in range(n):
            item = Item(ts=i, size=100, producer="p")
            channel.commit_put(out, item, 0.0)
            view = channel.commit_get(conn, LATEST, 0.0)
            channel.release(view._item, 0.0)

    return _N_EVENTS / _best_of(spin, repeat=3)


def measure() -> Dict[str, float]:
    """One full measurement pass; keys match the baseline file."""
    rates = {
        "dispatch_events_per_sec": _measure_dispatch(),
        "chain_events_per_sec": _measure_chain(),
        "trampoline_events_per_sec": _measure_trampoline(),
        "postmortem_ms": _measure_postmortem_ms(),
        "telemetry_off_ops_per_sec": _measure_telemetry(enabled=False),
        "telemetry_on_ops_per_sec": _measure_telemetry(enabled=True),
    }
    rates["telemetry_on_over_off_ratio"] = (
        rates["telemetry_off_ops_per_sec"] / rates["telemetry_on_ops_per_sec"]
    )
    return rates


def compare(
    current: Dict[str, float],
    baseline: Dict[str, float],
    threshold: float = DEFAULT_THRESHOLD,
) -> List[str]:
    """Return one failure message per gated rate regressed beyond ``threshold``.

    Pure function of its inputs (no measurement, no I/O) so the gate
    policy is unit-testable. Gated rates missing from either side fail
    loudly rather than passing silently. Absolute caps (``GATED_MAX``)
    are checked against the current measurement only — they encode
    contracts, not trends, so a "bad baseline" cannot grandfather a
    violation in.
    """
    failures: List[str] = []
    for key in GATED_RATES:
        base = baseline.get(key)
        cur = current.get(key)
        if base is None or cur is None:
            failures.append(f"{key}: missing from "
                            f"{'baseline' if base is None else 'measurement'}")
            continue
        if base <= 0:
            failures.append(f"{key}: non-positive baseline {base!r}")
            continue
        drop = 1.0 - cur / base
        if drop > threshold:
            failures.append(
                f"{key}: {cur:,.0f}/s is {drop:.0%} below baseline "
                f"{base:,.0f}/s (allowed {threshold:.0%})"
            )
    failures.extend(check_caps(current))
    return failures


def check_caps(current: Dict[str, float]) -> List[str]:
    """The baseline-free half of the gate: absolute caps only.

    Split out of :func:`compare` so CI can gate the telemetry ratio
    (stable: both sides run on the same machine) without gating the
    absolute rates (noisy on shared runners) — the ``--ratio-only``
    mode.
    """
    failures: List[str] = []
    for key, cap in GATED_MAX.items():
        cur = current.get(key)
        if cur is None:
            failures.append(f"{key}: missing from measurement")
        elif cur > cap:
            failures.append(
                f"{key}: {cur:.2f} exceeds the absolute cap {cap:.2f}"
            )
    return failures


def measure_telemetry_pair() -> Dict[str, float]:
    """Just the telemetry on/off rates and their ratio (for --ratio-only)."""
    off = _measure_telemetry(enabled=False)
    on = _measure_telemetry(enabled=True)
    return {
        "telemetry_off_ops_per_sec": off,
        "telemetry_on_ops_per_sec": on,
        "telemetry_on_over_off_ratio": off / on,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", type=Path, default=BASELINE_PATH,
                        help=f"baseline JSON (default {BASELINE_PATH.name})")
    parser.add_argument("--threshold", type=float, default=DEFAULT_THRESHOLD,
                        help="max fractional drop allowed (default 0.30)")
    parser.add_argument("--update", action="store_true",
                        help="write the current measurement as the baseline")
    parser.add_argument("--ratio-only", action="store_true",
                        help="measure only the telemetry on/off pair and "
                             "gate the absolute ratio cap (no baseline "
                             "needed; machine-independent, CI-friendly)")
    args = parser.parse_args(argv)

    rates = measure_telemetry_pair() if args.ratio_only else measure()
    for key, value in rates.items():
        unit = ("ms" if key.endswith("_ms")
                else "x" if key.endswith("_ratio") else "/s")
        print(f"  {key:28s} {value:>14,.2f} {unit}")

    if args.ratio_only:
        failures = check_caps(rates)
        if failures:
            for failure in failures:
                print(f"REGRESSION  {failure}", file=sys.stderr)
            return 1
        print("telemetry on/off ratio within the absolute cap")
        return 0

    if args.update:
        args.baseline.write_text(json.dumps({"rates": rates}, indent=2) + "\n")
        print(f"baseline updated: {args.baseline}")
        return 0

    if not args.baseline.exists():
        print(f"no baseline at {args.baseline}; run with --update first",
              file=sys.stderr)
        return 2
    baseline = json.loads(args.baseline.read_text())["rates"]
    failures = compare(rates, baseline, args.threshold)
    if failures:
        for failure in failures:
            print(f"REGRESSION  {failure}", file=sys.stderr)
        return 1
    print("kernel performance within threshold of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
