"""[fig 7] Wasted memory and wasted computation percentages.

Regenerates the paper's figure-7 table: the fraction of memory
byte-seconds and compute seconds spent on items that never reach the end
of the pipeline.

Paper (config 1): 66.0/25.2 (No ARU), 4.1/2.8 (min), 0.3/0.2 (max) %
Paper (config 2): 60.7/24.4 (No ARU), 7.2/4.0 (min), 4.8/2.1 (max) %

Shape target: >50 % waste without ARU; ARU-max directs "almost all
resources towards useful work" (< 5 %).
"""

from repro.bench import PAPER, fig7_waste_table, format_table


def _paper_table(config: str) -> str:
    rows = [
        [p, v["wasted_mem"], v["wasted_comp"]]
        for p, v in PAPER[config].items()
        if "wasted_mem" in v
    ]
    return format_table(
        ["policy", "% Mem wasted", "% Comp wasted"],
        rows,
        title=f"[fig 7] PAPER reference — {config}",
    )


def test_fig7_config1(tracker_grid, benchmark, emit):
    table, rows = benchmark.pedantic(
        lambda: fig7_waste_table(tracker_grid, "config1"), rounds=1, iterations=1
    )
    emit("fig07_config1", table + "\n\n" + _paper_table("config1"))
    waste = {r[0]: r[1] for r in rows}
    assert waste["No ARU"] > 50.0
    assert waste["ARU-max"] < 5.0
    assert waste["No ARU"] > waste["ARU-min"] > waste["ARU-max"]


def test_fig7_config2(tracker_grid, benchmark, emit):
    table, rows = benchmark.pedantic(
        lambda: fig7_waste_table(tracker_grid, "config2"), rounds=1, iterations=1
    )
    emit("fig07_config2", table + "\n\n" + _paper_table("config2"))
    waste = {r[0]: r[1] for r in rows}
    comp = {r[0]: r[2] for r in rows}
    assert waste["No ARU"] > 50.0 and waste["ARU-max"] < 5.0
    assert comp["No ARU"] > 5 * comp["ARU-max"]
