"""[ablation] Compression-operator sweep — the paper's §6 "balance".

The paper ends: "it is important to find the right balance between wasted
resource usage and application performance. Preliminary investigation
indicates this is a viable avenue to pursue for future work." This bench
runs that investigation: the tracker under operators spanning the
aggressiveness spectrum (min -> kth -> median -> mean -> max), reporting
the waste/performance frontier.

Expected frontier: memory waste decreases monotonically toward ``max``;
throughput is highest at the conservative end.
"""

from repro.aru import AruConfig
from repro.bench import CellSpec, format_table

OPERATORS = ("min", "kth:1", "median", "mean", "max")
SEEDS = (0, 1)
HORIZON = 90.0


def _sweep(runner):
    specs = [
        CellSpec(
            config="config1",
            policy=AruConfig(default_channel_op=op, thread_op=op,
                             name=f"aru-{op}"),
            label=op,
            seed=seed,
            horizon=HORIZON,
        )
        for op in OPERATORS
        for seed in SEEDS
    ]
    results = runner.run_metrics(specs)
    rows = []
    for op in OPERATORS:
        runs = [r.metrics for r in results if r.spec.label == op]
        n = len(runs)
        rows.append([
            op,
            sum(r.mem_mean for r in runs) / n / 1e6,
            100 * sum(r.wasted_memory for r in runs) / n,
            sum(r.throughput for r in runs) / n,
            1e3 * sum(r.latency_mean for r in runs) / n,
        ])
    return rows


def test_operator_frontier(benchmark, emit, sweep_runner):
    rows = benchmark.pedantic(lambda: _sweep(sweep_runner),
                              rounds=1, iterations=1)
    table = format_table(
        ["operator", "Mem mean (MB)", "% Mem wasted", "fps", "lat (ms)"],
        rows,
        title="[ablation] operator aggressiveness frontier — config1, tracker",
    )
    emit("abl_operators", table)
    by_op = {r[0]: r for r in rows}
    # waste shrinks with aggressiveness at the endpoints of the spectrum
    assert by_op["max"][2] < by_op["median"][2] < by_op["min"][2] * 1.05
    assert by_op["max"][2] < 5.0
    # conservative min keeps throughput at least as high as max
    assert by_op["min"][3] >= by_op["max"][3] * 0.98
    # every intermediate operator lands inside the min..max memory band
    lo, hi = by_op["max"][1], by_op["min"][1]
    for op in ("kth:1", "median", "mean"):
        assert lo * 0.9 <= by_op[op][1] <= hi * 1.1
