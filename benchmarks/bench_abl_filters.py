"""[ablation/extension] STP noise filters — the paper's stated future work.

§3.3.2: summary-STP noise from OS scheduling variance causes non-smooth
production; "such noise can be smoothed out by applying filters ...
currently not implemented in ARU and is left for future work."

This bench implements that future work and quantifies it: the tracker on
a *high-noise* single node (sched_noise_cv = 0.35) under ARU-max, with
the identity filter (the published mechanism) versus EWMA, sliding-median
and slew-rate filters on the received summary-STP values.

Measured effect (and the assertion below): unfiltered ARU-max over-reacts
to noise spikes — throttling too hard after every slow iteration — losing
throughput and smoothness; every filter recovers throughput and cuts
output jitter substantially, at a small waste cost.
"""

from repro.aru import aru_max
from repro.bench import CellSpec, format_table

FILTERS = {
    "none (paper)": None,
    "ewma:0.2": "ewma:0.2",
    "median:5": "median:5",
    "slew:0.2": "slew:0.2",
}
SEEDS = (0, 1)
HORIZON = 120.0
NOISE = 0.35


def _sweep(runner):
    specs = [
        CellSpec(
            config="config1",
            policy=aru_max(summary_filter=fspec) if fspec else aru_max(),
            label=label,
            seed=seed,
            horizon=HORIZON,
            sched_noise_cv=NOISE,
        )
        for label, fspec in FILTERS.items()
        for seed in SEEDS
    ]
    results = runner.run_metrics(specs)
    rows = []
    for label in FILTERS:
        runs = [r.metrics for r in results if r.spec.label == label]
        n = len(runs)
        rows.append([
            label,
            sum(r.throughput for r in runs) / n,
            1e3 * sum(r.jitter for r in runs) / n,
            100 * sum(r.wasted_memory for r in runs) / n,
        ])
    return rows


def test_filters_recover_throughput_and_smoothness(benchmark, emit,
                                                   sweep_runner):
    rows = benchmark.pedantic(lambda: _sweep(sweep_runner),
                              rounds=1, iterations=1)
    table = format_table(
        ["summary filter", "fps", "jitter (ms)", "% Mem wasted"],
        rows,
        title=(
            "[ablation] STP noise filters under ARU-max, "
            f"sched_noise_cv={NOISE} — config1, tracker"
        ),
    )
    emit("abl_filters", table)
    by = {r[0]: r for r in rows}
    base_fps, base_jit = by["none (paper)"][1], by["none (paper)"][2]
    for label in ("ewma:0.2", "median:5", "slew:0.2"):
        assert by[label][1] > base_fps, f"{label} should recover throughput"
        assert by[label][2] < base_jit, f"{label} should cut jitter"
