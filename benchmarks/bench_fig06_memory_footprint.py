"""[fig 6] Memory footprint of the tracker vs the Ideal Garbage Collector.

Regenerates the paper's figure-6 table for both cluster configurations:
mean memory footprint (MB), its time-weighted standard deviation, and the
percentage relative to the IGC lower bound, for No-ARU / ARU-min /
ARU-max / IGC.

Paper (config 1): 33.62 / 16.23 / 12.45 / 8.69 MB  (387/187/143/100 %)
Paper (config 2): 36.81 / 15.72 / 13.09 / 10.81 MB (341/145/121/100 %)

Absolute megabytes differ from the 2005 testbed; the reproduction target
is the ordering and the "ARU-max cuts the footprint by ~2/3, landing near
IGC" factor structure (see repro.bench.compare).
"""

from repro.bench import PAPER, fig6_memory_table, format_table


def _paper_table(config: str) -> str:
    rows = [
        [p, v["mem_std"], v["mem_mean"], v["pct_igc"]]
        for p, v in PAPER[config].items()
    ]
    return format_table(
        ["policy", "Mem STD (MB)", "Mem mean (MB)", "% wrt IGC"],
        rows,
        title=f"[fig 6] PAPER reference — {config}",
    )


def test_fig6_config1(tracker_grid, benchmark, emit):
    table, rows = benchmark.pedantic(
        lambda: fig6_memory_table(tracker_grid, "config1"), rounds=1, iterations=1
    )
    emit("fig06_config1", table + "\n\n" + _paper_table("config1"))
    mem = {r[0]: r[2] for r in rows}
    assert mem["No ARU"] > mem["ARU-min"] > mem["ARU-max"]
    assert mem["ARU-max"] < 0.5 * mem["No ARU"]  # paper: ~two-thirds cut


def test_fig6_config2(tracker_grid, benchmark, emit):
    table, rows = benchmark.pedantic(
        lambda: fig6_memory_table(tracker_grid, "config2"), rounds=1, iterations=1
    )
    emit("fig06_config2", table + "\n\n" + _paper_table("config2"))
    mem = {r[0]: r[2] for r in rows}
    assert mem["No ARU"] > mem["ARU-min"] > mem["ARU-max"] >= mem["IGC"]
