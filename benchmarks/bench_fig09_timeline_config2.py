"""[fig 9] Memory-footprint-over-time panels, config 2 (five nodes).

Same panels as figure 8 on the distributed configuration (one task per
node, channels co-located with producers, Gigabit interconnect). See
``bench_fig08_timeline_config1.py`` for the rendering and shape targets.
"""


from bench_fig08_timeline_config1 import _render


def test_fig9_timelines_config2(tracker_grid, benchmark, emit, results_dir):
    timelines, text = benchmark.pedantic(
        lambda: _render(tracker_grid, "config2", results_dir),
        rounds=1, iterations=1,
    )
    emit("fig09_config2", text)
    means = {label: tl.mean() for label, tl in timelines.items()}
    assert means["ARU-max"] < means["ARU-min"] < means["No ARU"]
    # ARU flattens fluctuations: std far below the unthrottled baseline
    assert timelines["ARU-max"].std() < 0.6 * timelines["No ARU"].std()
