"""[ablation] PI-controller policy vs. the paper's summary-STP policy.

The control-plane refactor makes the paper's rate decision one policy
among several. This bench runs the load-adaptivity scenario (background
CPU burst on the shared node, tracker on config 1) under both
``aru-min`` (the paper's mechanism: actuate the compressed summary-STP
raw) and ``aru-pid`` (velocity-form PI filter over the same
measurement) and checks the acceptance bar for the extension:

* **convergence** — the PI controller's steady-state period lands
  within 10% of the sustainable period the summary-STP policy measures,
  in every load phase (same fixed point, §3.3.2's measurement);
* **adaptivity survives the filter** — the PID target still rises under
  the burst and recovers after it;
* the delivered throughput and waste stay in family with ``aru-min``.
"""

from repro.bench import CellSpec, format_table
from repro.cluster import LoadSpec

HORIZON = 150.0
BURST = (50.0, 100.0)
LOAD_THREADS = 6

# 5s settle after each load edge before calling the level "steady".
PHASES = (
    ("before (0-50s)", 5.0, BURST[0]),
    ("burst (50-100s)", BURST[0] + 5.0, BURST[1]),
    ("after (100-150s)", BURST[1] + 5.0, HORIZON),
)


def _run(runner, policy):
    spec = CellSpec(
        config="config1",
        policy=policy,
        seed=0,
        horizon=HORIZON,
        loads=(LoadSpec(node="node0", start=BURST[0], stop=BURST[1],
                        threads=LOAD_THREADS, burst_s=0.05),),
        probe="control_phases",
        probe_args=(("thread", "digitizer"), ("phases", PHASES)),
    )
    result, = runner.run_metrics([spec])
    return result


def test_pid_converges_to_sustainable_period(benchmark, emit, sweep_runner):
    ref, pid = benchmark.pedantic(
        lambda: (_run(sweep_runner, "aru-min"), _run(sweep_runner, "aru-pid")),
        rounds=1, iterations=1)
    rows = []
    ratios = {}
    for label, _, _ in PHASES:
        sustainable = ref.extras[f"target:{label}"]
        settled = pid.extras[f"target:{label}"]
        ratios[label] = settled / sustainable
        rows.append([
            label,
            sustainable * 1e3,
            settled * 1e3,
            f"{ratios[label]:.3f}",
            ref.extras[f"target_std:{label}"] * 1e3,
            pid.extras[f"target_std:{label}"] * 1e3,
        ])
    table = format_table(
        ["phase", "aru-min target (ms)", "aru-pid target (ms)",
         "ratio", "min std (ms)", "pid std (ms)"],
        rows,
        title=(
            f"[ablation] PI controller vs. summary-STP under a "
            f"{LOAD_THREADS}-thread burst on node0, "
            f"t=[{BURST[0]:.0f},{BURST[1]:.0f}]s — tracker, config1 "
            f"(fps: aru-min {ref.metrics.throughput:.2f} / "
            f"aru-pid {pid.metrics.throughput:.2f}; wasted mem: "
            f"{100 * ref.metrics.wasted_memory:.1f}% / "
            f"{100 * pid.metrics.wasted_memory:.1f}%)"
        ),
    )
    emit("abl_pid", table)

    # acceptance bar: steady state within 10% of the sustainable period
    for label, ratio in ratios.items():
        assert abs(ratio - 1.0) <= 0.10, (label, ratio)
    # the filtered loop still adapts: up under load, back down after
    pid_target = {r[0]: r[1] for r in rows}
    assert pid_target["burst (50-100s)"] > 1.2 * pid_target["before (0-50s)"]
    assert pid_target["after (100-150s)"] < 1.15 * pid_target["before (0-50s)"]
    # and performance stays in family with the paper's policy
    assert pid.metrics.throughput > 0.9 * ref.metrics.throughput
    assert pid.metrics.wasted_memory < ref.metrics.wasted_memory + 0.10
