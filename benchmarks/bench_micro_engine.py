"""[micro] Engine and channel primitive throughput.

True repeated-measurement micro-benchmarks (multiple rounds) of the
substrate: DES event dispatch rate, the process resume trampoline,
channel put/get cycles, postmortem trace analysis, and the end-to-end
simulation rate of the tracker (simulated seconds per wall second).
These guard against performance regressions in the kernel that would
make the table benches impractically slow; ``check_regression.py``
compares the dispatch rate against the committed ``BENCH_kernel.json``
baseline.
"""

import pytest

from repro.aru import aru_disabled
from repro.bench import run_tracker_once
from repro.cluster import Node, NodeSpec
from repro.gc import make_gc
from repro.metrics import TraceRecorder
from repro.runtime import Channel, Item
from repro.sim import Engine, RngRegistry
from repro.sim.events import Timeout
from repro.vt import LATEST

N_EVENTS = 20_000
N_OPS = 5_000

#: Same-timestamp events per calendar tick in the cohort sweep: from
#: fully scalar (every event its own instant) to one giant cohort.
COHORT_SIZES = (1, 8, 64, 512)


def _spin_engine():
    eng = Engine()

    def ticker(eng, n):
        for _ in range(n):
            yield eng.timeout(0.001)

    eng.process(ticker(eng, N_EVENTS))
    eng.run()
    return eng.events_processed


def test_engine_event_rate(benchmark):
    events = benchmark(_spin_engine)
    assert events >= N_EVENTS


def _schedule_cohorts(cohort: int) -> Engine:
    """An engine with N_EVENTS pre-scheduled timeouts, ``cohort`` per tick."""
    eng = Engine()
    tick = 0.0
    for i in range(N_EVENTS):
        if i % cohort == 0:
            tick += 0.001
        Timeout(eng, tick)
    return eng


@pytest.mark.parametrize("cohort", COHORT_SIZES)
def test_dispatch_rate_by_cohort_size(benchmark, cohort):
    """Pure calendar drain across cohort sizes (the ISSUE-7 sweep).

    Scheduling happens in per-round setup, outside the timed region, so
    the measurement isolates the batched cohort dispatch loop. The
    sweep shows how the per-tick batch amortizes the clock write and
    heap pop: cohort=1 is the scalar worst case, larger cohorts
    approach the pure dispatch ceiling that ``check_regression.py``
    gates as ``dispatch_events_per_sec``.
    """
    def setup():
        return (_schedule_cohorts(cohort),), {}

    def drain(eng):
        eng.run()
        return eng.events_processed

    events = benchmark.pedantic(drain, setup=setup, rounds=5)
    assert events == N_EVENTS


def _spin_trampoline():
    """Resume rate for yields of already-fired events (the slim-entry path)."""
    eng = Engine()
    fired = eng.event()
    fired.succeed("x")
    eng.run()

    def chaser(eng, n):
        for _ in range(n):
            yield fired

    eng.process(chaser(eng, N_EVENTS))
    eng.run()
    return eng.events_processed


def test_process_trampoline_rate(benchmark):
    events = benchmark(_spin_trampoline)
    assert events >= N_EVENTS


def _tracker_recorder(horizon=60.0):
    from repro.apps import build_tracker
    from repro.bench import cluster_for, placement_for
    from repro.runtime import Runtime, RuntimeConfig

    runtime = Runtime(
        build_tracker(),
        RuntimeConfig(
            cluster=cluster_for("config1"),
            gc="dgc",
            aru=aru_disabled(),
            seed=0,
            placement=placement_for("config1"),
        ),
    )
    return runtime.run(until=horizon)


def _full_postmortem(recorder):
    from repro.metrics import (
        PostmortemAnalyzer,
        jitter,
        latency_stats,
        throughput_fps,
    )

    pm = PostmortemAnalyzer(recorder)
    pm.footprint().mean()
    pm.ideal_footprint().mean()
    report = pm.channel_report()
    pm.thread_waste_report()
    latency_stats(recorder)
    throughput_fps(recorder)
    jitter(recorder)
    return (pm.wasted_memory_fraction, pm.wasted_computation_fraction,
            len(report))


def test_postmortem_analysis_rate(benchmark):
    """Full §4 metric suite over one tracker trace. A fresh analyzer per
    round recomputes every cached aggregate; the recorder's trace indexes
    persist across rounds, exactly as they do across repeated analyses of
    one finalized run."""
    recorder = _tracker_recorder()
    wasted_mem, wasted_comp, channels = benchmark(_full_postmortem, recorder)
    assert 0.0 <= wasted_mem <= 1.0
    assert 0.0 <= wasted_comp <= 1.0
    assert channels > 0


def _put_get_cycle():
    eng = Engine()
    node = Node(eng, NodeSpec(name="n0"), RngRegistry(0))
    rec = TraceRecorder(record_stp=False)
    ch = Channel(eng, "ch", node, recorder=rec, gc=make_gc("dgc"))
    prod = ch.register_producer("p")
    cons = ch.register_consumer("c")
    for ts in range(N_OPS):
        ch.commit_put(prod, Item(ts=ts, size=64), t=float(ts))
        view = ch.commit_get(cons, LATEST, t=float(ts))
        ch.release(view._item, t=float(ts))
    return ch.total_puts


def test_channel_put_get_rate(benchmark):
    puts = benchmark(_put_get_cycle)
    assert puts == N_OPS


def test_tracker_simulation_rate(benchmark):
    """One 30-simulated-second tracker run; wall time is the metric."""
    run = benchmark.pedantic(
        lambda: run_tracker_once("config1", aru_disabled(), seed=0, horizon=30.0),
        rounds=3,
        iterations=1,
    )
    assert run.frames_delivered > 30
