"""[micro] Engine and channel primitive throughput.

True repeated-measurement micro-benchmarks (multiple rounds) of the
substrate: DES event dispatch rate, channel put/get cycles, and the
end-to-end simulation rate of the tracker (simulated seconds per wall
second). These guard against performance regressions in the kernel that
would make the table benches impractically slow.
"""

from repro.aru import aru_disabled
from repro.bench import run_tracker_once
from repro.cluster import Node, NodeSpec
from repro.gc import make_gc
from repro.metrics import TraceRecorder
from repro.runtime import Channel, Item
from repro.sim import Engine, RngRegistry
from repro.vt import LATEST

N_EVENTS = 20_000
N_OPS = 5_000


def _spin_engine():
    eng = Engine()

    def ticker(eng, n):
        for _ in range(n):
            yield eng.timeout(0.001)

    eng.process(ticker(eng, N_EVENTS))
    eng.run()
    return eng.events_processed


def test_engine_event_rate(benchmark):
    events = benchmark(_spin_engine)
    assert events >= N_EVENTS


def _put_get_cycle():
    eng = Engine()
    node = Node(eng, NodeSpec(name="n0"), RngRegistry(0))
    rec = TraceRecorder(record_stp=False)
    ch = Channel(eng, "ch", node, recorder=rec, gc=make_gc("dgc"))
    prod = ch.register_producer("p")
    cons = ch.register_consumer("c")
    for ts in range(N_OPS):
        ch.commit_put(prod, Item(ts=ts, size=64), t=float(ts))
        view = ch.commit_get(cons, LATEST, t=float(ts))
        ch.release(view._item, t=float(ts))
    return ch.total_puts


def test_channel_put_get_rate(benchmark):
    puts = benchmark(_put_get_cycle)
    assert puts == N_OPS


def test_tracker_simulation_rate(benchmark):
    """One 30-simulated-second tracker run; wall time is the metric."""
    run = benchmark.pedantic(
        lambda: run_tracker_once("config1", aru_disabled(), seed=0, horizon=30.0),
        rounds=3,
        iterations=1,
    )
    assert run.frames_delivered > 30
