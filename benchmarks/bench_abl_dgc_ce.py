"""[ablation] Upstream computation elimination (prior work [6]) vs ARU.

The paper's §3.2: earlier dead-timestamp work proposed *eliminating
upstream computations* from downstream virtual-time knowledge, but "such
techniques have shown limited success [6]. The cause ... upstream threads
tend to be quicker than downstream threads. As a result, it generally
becomes too late to eliminate upstream computations."

This bench implements that technique (the :class:`CheckDead` syscall —
skip computing an output whose timestamp every downstream cursor already
passed) and measures it against ARU on the tracker. Because get-latest
cursors always trail production, the check almost never fires:
computation elimination removes (essentially) none of the waste, while
ARU removes almost all of it — quantitative support for the paper's
design pivot from reclamation to rate control.
"""

from repro.apps import TrackerConfig, build_tracker
from repro.aru import aru_disabled, aru_max
from repro.bench import cluster_for, format_table
from repro.metrics import PostmortemAnalyzer
from repro.runtime import Runtime, RuntimeConfig

HORIZON = 90.0


def _run(label, aru, ce):
    graph = build_tracker(TrackerConfig(computation_elimination=ce))
    runtime = Runtime(
        graph,
        RuntimeConfig(cluster=cluster_for("config1"), aru=aru, seed=0),
    )
    trace = runtime.run(until=HORIZON)
    pm = PostmortemAnalyzer(trace)
    ce_skips = sum(
        graph.attrs(t)["params"].get("ce_skips", 0)
        for t in graph.threads()
    )
    upstream_iters = sum(
        len(trace.iterations_of(t))
        for t in ("change_detection", "histogram", "target_detect1",
                  "target_detect2")
    )
    return [
        label,
        100 * pm.wasted_computation_fraction,
        100 * pm.wasted_memory_fraction,
        ce_skips,
        100 * ce_skips / max(1, upstream_iters + ce_skips),
    ]


def _sweep():
    return [
        _run("DGC alone", aru_disabled(), ce=False),
        _run("DGC + comp-elim [6]", aru_disabled(), ce=True),
        _run("DGC + ARU-max", aru_max(), ce=False),
    ]


def test_computation_elimination_vs_aru(benchmark, emit):
    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    table = format_table(
        ["mechanism", "% Comp wasted", "% Mem wasted", "CE skips",
         "CE fire rate %"],
        rows,
        title="[ablation] computation elimination (prior work) vs ARU — config1",
    )
    emit("abl_dgc_ce", table)
    by = {r[0]: r for r in rows}
    # the paper's claim: CE barely helps (cursors trail production) ...
    assert by["DGC + comp-elim [6]"][4] < 5.0  # fires on < 5% of iterations
    assert by["DGC + comp-elim [6]"][1] > 0.8 * by["DGC alone"][1]
    # ... while ARU removes nearly all waste
    assert by["DGC + ARU-max"][1] < 0.1 * by["DGC alone"][1]
