"""[ablation] Upstream computation elimination (prior work [6]) vs ARU.

The paper's §3.2: earlier dead-timestamp work proposed *eliminating
upstream computations* from downstream virtual-time knowledge, but "such
techniques have shown limited success [6]. The cause ... upstream threads
tend to be quicker than downstream threads. As a result, it generally
becomes too late to eliminate upstream computations."

This bench implements that technique (the :class:`CheckDead` syscall —
skip computing an output whose timestamp every downstream cursor already
passed) and measures it against ARU on the tracker. Because get-latest
cursors always trail production, the check almost never fires:
computation elimination removes (essentially) none of the waste, while
ARU removes almost all of it — quantitative support for the paper's
design pivot from reclamation to rate control.

The elimination counters live in mutable task-graph state, so each cell
carries the ``ce_stats`` probe, which reads them inside the worker.
"""

from repro.apps import TrackerConfig
from repro.aru import aru_disabled, aru_max
from repro.bench import CellSpec, format_table

HORIZON = 90.0

VARIANTS = {
    "DGC alone": dict(aru=aru_disabled(), ce=False),
    "DGC + comp-elim [6]": dict(aru=aru_disabled(), ce=True),
    "DGC + ARU-max": dict(aru=aru_max(), ce=False),
}


def _sweep(runner):
    specs = [
        CellSpec(
            config="config1",
            policy=spec["aru"],
            label=label,
            seed=0,
            horizon=HORIZON,
            tracker=TrackerConfig(computation_elimination=spec["ce"]),
            probe="ce_stats",
        )
        for label, spec in VARIANTS.items()
    ]
    results = runner.run_metrics(specs)
    rows = []
    for result in results:
        m = result.metrics
        rows.append([
            result.spec.label,
            100 * m.wasted_computation,
            100 * m.wasted_memory,
            int(result.extras["ce_skips"]),
            result.extras["ce_fire_rate"],
        ])
    return rows


def test_computation_elimination_vs_aru(benchmark, emit, sweep_runner):
    rows = benchmark.pedantic(lambda: _sweep(sweep_runner),
                              rounds=1, iterations=1)
    table = format_table(
        ["mechanism", "% Comp wasted", "% Mem wasted", "CE skips",
         "CE fire rate %"],
        rows,
        title="[ablation] computation elimination (prior work) vs ARU — config1",
    )
    emit("abl_dgc_ce", table)
    by = {r[0]: r for r in rows}
    # the paper's claim: CE barely helps (cursors trail production) ...
    assert by["DGC + comp-elim [6]"][4] < 5.0  # fires on < 5% of iterations
    assert by["DGC + comp-elim [6]"][1] > 0.8 * by["DGC alone"][1]
    # ... while ARU removes nearly all waste
    assert by["DGC + ARU-max"][1] < 0.1 * by["DGC alone"][1]
