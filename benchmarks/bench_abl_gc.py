"""[ablation] Garbage-collector comparison under the tracker (no ARU).

The paper's §2/§4 situate ARU against the GC lineage: traditional
reachability GC cannot reclaim skipped items at all; transparent GC frees
behind the application-wide virtual-time low-water mark; dead-timestamp
GC (the paper's substrate) frees per-channel as soon as every consumer's
cursor passes. This bench reproduces that hierarchy on the tracker:

``null >= ref >> tgc >= dgc`` in memory footprint.

(`ref` leaks every skipped item exactly like `null` on single-consumer
channels — the motivating observation for timestamp-based GC.)
"""

from repro.aru import aru_disabled
from repro.bench import CellSpec, format_table

GCS = ("null", "ref", "tgc", "dgc")
HORIZON = 60.0  # null/ref grow linearly; keep the horizon moderate


def _sweep(runner):
    specs = [
        CellSpec(config="config1", policy=aru_disabled(), label=gc,
                 seed=0, horizon=HORIZON, gc=gc)
        for gc in GCS
    ]
    results = runner.run_metrics(specs)
    return [
        [
            result.spec.label,
            result.metrics.mem_mean / 1e6,
            result.metrics.mem_peak / 1e6,
            result.metrics.throughput,
        ]
        for result in results
    ]


def test_gc_hierarchy(benchmark, emit, sweep_runner):
    rows = benchmark.pedantic(lambda: _sweep(sweep_runner),
                              rounds=1, iterations=1)
    table = format_table(
        ["GC", "Mem mean (MB)", "Mem peak (MB)", "fps"],
        rows,
        title="[ablation] GC algorithms, tracker without ARU — config1",
    )
    emit("abl_gc", table)
    mem = {r[0]: r[1] for r in rows}
    assert mem["dgc"] <= mem["tgc"] * 1.05
    assert mem["tgc"] < mem["ref"]
    assert mem["ref"] <= mem["null"] * 1.001
    # DGC reclaims the overwhelming majority of what null retains
    assert mem["dgc"] < 0.25 * mem["null"]
