"""[ablation] Sensitivity of the feedback loop to OS-scheduling noise.

§3.3.2 observes that "variances in the OS scheduling of threads result in
variances in the execution time of task iterations", making summary-STP
values noisy and producer rates non-smooth. This bench sweeps the noise
coefficient on config 1 under ARU-min and reports how the control loop
degrades: output jitter grows with noise while the waste elimination
keeps working.
"""

from repro.apps import build_tracker
from repro.aru import aru_min
from repro.bench import format_table
from repro.cluster import config1_spec
from repro.metrics import PostmortemAnalyzer, jitter, throughput_fps
from repro.runtime import Runtime, RuntimeConfig

NOISE_LEVELS = (0.0, 0.08, 0.2, 0.4)
SEEDS = (0, 1)
HORIZON = 90.0


def _run(noise, seed):
    cluster = config1_spec(sched_noise_cv=noise)
    rec = Runtime(
        build_tracker(), RuntimeConfig(cluster=cluster, aru=aru_min(), seed=seed)
    ).run(until=HORIZON)
    pm = PostmortemAnalyzer(rec)
    return {
        "jitter": jitter(rec) * 1e3,
        "fps": throughput_fps(rec),
        "waste": 100 * pm.wasted_memory_fraction,
    }


def _sweep():
    rows = []
    for noise in NOISE_LEVELS:
        runs = [_run(noise, seed) for seed in SEEDS]
        rows.append([
            noise,
            sum(r["fps"] for r in runs) / len(runs),
            sum(r["jitter"] for r in runs) / len(runs),
            sum(r["waste"] for r in runs) / len(runs),
        ])
    return rows


def test_noise_sensitivity(benchmark, emit):
    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    table = format_table(
        ["sched_noise_cv", "fps", "jitter (ms)", "% Mem wasted"],
        rows,
        title="[ablation] OS-noise sensitivity of ARU-min — config1, tracker",
    )
    emit("abl_noise", table)
    jit = [r[2] for r in rows]
    # jitter grows with noise across the sweep's endpoints
    assert jit[0] < jit[-1]
    # waste elimination keeps working even under heavy noise (recall the
    # unthrottled baseline wastes ~60%)
    assert all(r[3] < 40.0 for r in rows)
