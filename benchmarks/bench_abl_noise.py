"""[ablation] Sensitivity of the feedback loop to OS-scheduling noise.

§3.3.2 observes that "variances in the OS scheduling of threads result in
variances in the execution time of task iterations", making summary-STP
values noisy and producer rates non-smooth. This bench sweeps the noise
coefficient on config 1 under ARU-min and reports how the control loop
degrades: output jitter grows with noise while the waste elimination
keeps working.
"""

from repro.aru import aru_min
from repro.bench import CellSpec, format_table

NOISE_LEVELS = (0.0, 0.08, 0.2, 0.4)
SEEDS = (0, 1)
HORIZON = 90.0


def _sweep(runner):
    specs = [
        CellSpec(
            config="config1",
            policy=aru_min(),
            label=f"cv={noise}",
            seed=seed,
            horizon=HORIZON,
            sched_noise_cv=noise,
        )
        for noise in NOISE_LEVELS
        for seed in SEEDS
    ]
    results = runner.run_metrics(specs)
    rows = []
    for noise in NOISE_LEVELS:
        runs = [r.metrics for r in results if r.spec.label == f"cv={noise}"]
        n = len(runs)
        rows.append([
            noise,
            sum(r.throughput for r in runs) / n,
            1e3 * sum(r.jitter for r in runs) / n,
            100 * sum(r.wasted_memory for r in runs) / n,
        ])
    return rows


def test_noise_sensitivity(benchmark, emit, sweep_runner):
    rows = benchmark.pedantic(lambda: _sweep(sweep_runner),
                              rounds=1, iterations=1)
    table = format_table(
        ["sched_noise_cv", "fps", "jitter (ms)", "% Mem wasted"],
        rows,
        title="[ablation] OS-noise sensitivity of ARU-min — config1, tracker",
    )
    emit("abl_noise", table)
    jit = [r[2] for r in rows]
    # jitter grows with noise across the sweep's endpoints
    assert jit[0] < jit[-1]
    # waste elimination keeps working even under heavy noise (recall the
    # unthrottled baseline wastes ~60%)
    assert all(r[3] < 40.0 for r in rows)
