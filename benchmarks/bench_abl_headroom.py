"""[ablation] Throttle headroom: a continuous aggressiveness dial.

The operator choice (min vs max) is a coarse aggressiveness switch; the
``headroom`` multiplier on the throttle target is the continuous version
of the same §6 trade-off. ``headroom < 1`` under-throttles (keeps a
production safety margin -> more waste, more throughput robustness);
``headroom > 1`` over-throttles (starves consumers like an extra-
aggressive max). This bench sweeps it under ARU-max on config 2 — the
configuration where the paper observed aggressiveness costing throughput.
"""

from repro.aru import aru_max
from repro.bench import CellSpec, format_table

HEADROOMS = (0.8, 0.9, 1.0, 1.1, 1.25)
SEEDS = (0, 1)
HORIZON = 90.0


def _sweep(runner):
    specs = [
        CellSpec(
            config="config2",
            policy=aru_max(headroom=headroom, name=f"aru-max-h{headroom}"),
            label=f"h{headroom}",
            seed=seed,
            horizon=HORIZON,
        )
        for headroom in HEADROOMS
        for seed in SEEDS
    ]
    results = runner.run_metrics(specs)
    rows = []
    for headroom in HEADROOMS:
        runs = [r.metrics for r in results
                if r.spec.label == f"h{headroom}"]
        n = len(runs)
        rows.append([
            headroom,
            sum(r.mem_mean for r in runs) / n / 1e6,
            100 * sum(r.wasted_memory for r in runs) / n,
            sum(r.throughput for r in runs) / n,
            1e3 * sum(r.latency_mean for r in runs) / n,
        ])
    return rows


def test_headroom_tradeoff(benchmark, emit, sweep_runner):
    rows = benchmark.pedantic(lambda: _sweep(sweep_runner),
                              rounds=1, iterations=1)
    table = format_table(
        ["headroom", "Mem mean (MB)", "% Mem wasted", "fps", "lat (ms)"],
        rows,
        title="[ablation] throttle headroom under ARU-max — config2, tracker",
    )
    emit("abl_headroom", table)
    by = {r[0]: r for r in rows}
    # under-throttling wastes more but keeps throughput at least as high
    assert by[0.8][2] > by[1.0][2]
    assert by[0.8][3] >= by[1.25][3]
    # over-throttling keeps cutting throughput
    assert by[1.25][3] < by[1.0][3] * 1.02
    # memory decreases (weakly) with aggressiveness across the sweep ends
    assert by[1.25][1] < by[0.8][1]
