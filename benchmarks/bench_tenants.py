#!/usr/bin/env python
"""Multi-tenant substrate scaling and placement-quality benchmark.

Two measurements, committed to ``benchmarks/BENCH_tenants.json``:

1. **Scaling sweep** — fleets of 1/10/100/1000 identical light tracker
   tenants on a 32-node cluster, all contending inside ONE engine run.
   Reports wall seconds, engine events/s, and the Jain fairness index
   over per-tenant goodput. The contract: the substrate scales to a
   thousand coexisting tenants and equal-priority tenants share
   near-evenly (Jain >= 0.9) under rstorm packing.

2. **Placement quality** — rstorm vs round-robin on a heterogeneous
   cluster (2 big + 6 small nodes). rstorm colocates neighboring
   threads and packs by min-distance over the CPU/mem/bandwidth budget;
   round-robin fragments every tenant across the fabric. The committed
   numbers show rstorm winning on mean p95 latency.

Usage::

    PYTHONPATH=src python benchmarks/bench_tenants.py             # print
    PYTHONPATH=src python benchmarks/bench_tenants.py --update    # re-baseline
    PYTHONPATH=src python benchmarks/bench_tenants.py --max-tenants 100

The absolute rates are machine-dependent and non-gating (the CI
perf-smoke job prints them to the step summary); the *shape* — Jain at
every fleet size, rstorm < round-robin p95 — is what the committed
baseline documents.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

BASELINE_PATH = Path(__file__).resolve().parent / "BENCH_tenants.json"

FLEET_SIZES = (1, 10, 100, 1000)

#: Jain floor for equal-priority fleets under rstorm (acceptance bar).
JAIN_FLOOR = 0.9


def _light_fleet(n):
    from repro.tenancy import TenantSpec, scaled_tracker_config
    from repro.tenancy.tenant import ResourceDemand

    cfg = scaled_tracker_config(0.02, frame_period=0.25, cv=0.0)
    demand = ResourceDemand(cpu=0.05, mem_bytes=2**20,
                            bandwidth_bps=1_000_000)
    return tuple(TenantSpec(f"t{i}", app_config=cfg, demand=demand)
                 for i in range(n))


def measure_scaling(max_tenants: int) -> list:
    from repro.cluster.spec import uniform_spec
    from repro.tenancy import TenancySpec, run_tenants

    rows = []
    for n in FLEET_SIZES:
        if n > max_tenants:
            print(f"  (skipping fleet of {n}: --max-tenants {max_tenants})")
            continue
        spec = TenancySpec(tenants=_light_fleet(n),
                           cluster=uniform_spec(32, ncpus=16,
                                                bandwidth_bps=10**9),
                           horizon=3.0)
        t0 = time.perf_counter()
        result = run_tenants(spec)
        wall = time.perf_counter() - t0
        events = result.stats["engine"]["events_processed"]
        rows.append({
            "tenants": n,
            "admitted": len(result.admitted),
            "wall_s": wall,
            "events": events,
            "events_per_sec": events / wall,
            "jain": result.fairness.jain,
        })
        print(f"  {n:5d} tenants: {wall:7.2f}s  "
              f"{events / wall:10.0f} events/s  "
              f"jain={result.fairness.jain:.3f}")
    return rows


def measure_placement_quality() -> dict:
    from repro.cluster.spec import heterogeneous_spec
    from repro.tenancy import TenancySpec, run_tenants, scaled_tracker_config
    from repro.tenancy.tenant import ResourceDemand

    cfg = scaled_tracker_config(0.1, frame_period=0.2, cv=0.0)
    cluster = heterogeneous_spec(n_big=2, n_small=6)
    demand = ResourceDemand(cpu=0.4, mem_bytes=8 * 2**20,
                            bandwidth_bps=4_000_000)
    from repro.tenancy import TenantSpec

    tenants = tuple(TenantSpec(f"t{i}", app_config=cfg, demand=demand)
                    for i in range(10))
    out = {}
    for placement in ("rstorm", "round-robin"):
        result = run_tenants(TenancySpec(
            tenants=tenants, cluster=cluster, placement=placement,
            admission="reject", horizon=8.0))
        p95s = [r.latency_p95 for r in result.records.values()
                if r.latency_p95 == r.latency_p95]
        out[placement] = {
            "admitted": len(result.admitted),
            "p95_latency_mean_s": float(np.mean(p95s)) if p95s else None,
            "jain": result.fairness.jain,
        }
        print(f"  {placement:12s}: admitted={out[placement]['admitted']:2d}  "
              f"mean p95={out[placement]['p95_latency_mean_s'] * 1e3:6.1f}ms  "
              f"jain={out[placement]['jain']:.3f}")
    return out


def check(payload: dict) -> list:
    """Shape checks on a measurement (machine-independent)."""
    problems = []
    for row in payload["scaling"]:
        if row["admitted"] != row["tenants"]:
            problems.append(
                f"fleet of {row['tenants']}: only {row['admitted']} admitted")
        if row["jain"] < JAIN_FLOOR:
            problems.append(
                f"fleet of {row['tenants']}: jain {row['jain']:.3f} "
                f"< {JAIN_FLOOR}")
    quality = payload["placement_quality"]
    rs, rr = quality["rstorm"], quality["round-robin"]
    rstorm_wins = (rs["admitted"] > rr["admitted"]
                   or (rs["p95_latency_mean_s"] or 1e9)
                   < (rr["p95_latency_mean_s"] or 1e9))
    if not rstorm_wins:
        problems.append(
            "rstorm must beat round-robin on p95 latency or admitted count")
    return problems


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--update", action="store_true",
                        help=f"rewrite {BASELINE_PATH.name}")
    parser.add_argument("--max-tenants", type=int, default=FLEET_SIZES[-1],
                        help="cap the scaling sweep (CI uses 100)")
    args = parser.parse_args(argv)

    print("scaling sweep (32 uniform nodes, one shared engine):")
    scaling = measure_scaling(args.max_tenants)
    print("placement quality (2 big + 6 small nodes, 10 tenants):")
    quality = measure_placement_quality()
    payload = {"scaling": scaling, "placement_quality": quality}

    problems = check(payload)
    for p in problems:
        print(f"FAIL: {p}")

    if args.update:
        BASELINE_PATH.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"wrote {BASELINE_PATH}")
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main())
