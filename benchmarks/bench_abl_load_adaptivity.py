"""[ablation] Feedback adaptivity under transient external load.

§1 motivates *dynamic* resource utilization with "dynamic phenomena such
as current load, for which [static] tools are inapplicable". This bench
injects a background CPU burst on the shared node during the middle third
of a tracker run (ARU-min, config 1) and watches the loop adapt:

* during the burst, detector STPs inflate, the propagated summary-STP
  rises, and the digitizer's throttle target follows it up;
* after the burst the target comes back down — the loop re-accelerates
  production rather than staying stuck at the degraded rate;
* waste stays low *throughout* — adaptation, not a static setting, is
  what keeps production matched to consumption.
"""

import numpy as np

from repro.apps import build_tracker
from repro.aru import aru_min
from repro.bench import cluster_for, format_table
from repro.cluster import LoadSpec
from repro.metrics import PostmortemAnalyzer, control_series, throughput_fps
from repro.runtime import Runtime, RuntimeConfig

HORIZON = 150.0
BURST = (50.0, 100.0)
LOAD_THREADS = 6


def _phase_stats(series, lo, hi):
    mask = (series.times >= lo) & (series.times < hi)
    mask &= ~np.isnan(series.throttle_target)
    if not mask.any():
        return float("nan")
    return float(np.mean(series.throttle_target[mask]))


def _run():
    load = LoadSpec(node="node0", start=BURST[0], stop=BURST[1],
                    threads=LOAD_THREADS, burst_s=0.05)
    runtime = Runtime(
        build_tracker(),
        RuntimeConfig(cluster=cluster_for("config1"), aru=aru_min(), seed=0,
                      loads=(load,)),
    )
    trace = runtime.run(until=HORIZON)
    series = control_series(trace, "digitizer")
    pm = PostmortemAnalyzer(trace)
    phases = {
        "before (0-50s)": (5.0, BURST[0]),
        "burst (50-100s)": (BURST[0] + 5.0, BURST[1]),
        "after (100-150s)": (BURST[1] + 5.0, HORIZON),
    }
    rows = []
    for label, (lo, hi) in phases.items():
        target = _phase_stats(series, lo, hi)
        outs = [it for it in trace.sink_iterations() if lo <= it.t_end < hi]
        fps = len(outs) / (hi - lo)
        rows.append([label, target * 1e3, fps])
    return rows, pm.wasted_memory_fraction


def test_loop_tracks_load_transient(benchmark, emit):
    rows, waste = benchmark.pedantic(_run, rounds=1, iterations=1)
    table = format_table(
        ["phase", "digitizer target (ms)", "delivered fps"],
        rows,
        title=(
            f"[ablation] ARU-min tracking a {LOAD_THREADS}-thread CPU burst "
            f"on node0 during t=[{BURST[0]:.0f},{BURST[1]:.0f}]s — tracker, "
            f"config1 (overall wasted mem {100 * waste:.1f}%)"
        ),
    )
    emit("abl_load_adaptivity", table)
    target = {r[0]: r[1] for r in rows}
    fps = {r[0]: r[2] for r in rows}
    # the throttle target rises under load and recovers afterwards
    assert target["burst (50-100s)"] > 1.2 * target["before (0-50s)"]
    assert target["after (100-150s)"] < 1.15 * target["before (0-50s)"]
    # throughput dips during the burst and recovers
    assert fps["burst (50-100s)"] < fps["before (0-50s)"]
    assert fps["after (100-150s)"] > 0.9 * fps["before (0-50s)"]
    # adaptation keeps waste low across the whole run
    assert waste < 0.30
