"""[ablation] Feedback adaptivity under transient external load.

§1 motivates *dynamic* resource utilization with "dynamic phenomena such
as current load, for which [static] tools are inapplicable". This bench
injects a background CPU burst on the shared node during the middle third
of a tracker run (ARU-min, config 1) and watches the loop adapt:

* during the burst, detector STPs inflate, the propagated summary-STP
  rises, and the digitizer's throttle target follows it up;
* after the burst the target comes back down — the loop re-accelerates
  production rather than staying stuck at the degraded rate;
* waste stays low *throughout* — adaptation, not a static setting, is
  what keeps production matched to consumption.

The control-signal series lives in the full trace, which stays in the
worker; the ``throttle_phases`` probe extracts the per-phase throttle
target and delivered fps in-cell.
"""

from repro.aru import aru_min
from repro.bench import CellSpec, format_table
from repro.cluster import LoadSpec

HORIZON = 150.0
BURST = (50.0, 100.0)
LOAD_THREADS = 6

PHASES = (
    ("before (0-50s)", 5.0, BURST[0]),
    ("burst (50-100s)", BURST[0] + 5.0, BURST[1]),
    ("after (100-150s)", BURST[1] + 5.0, HORIZON),
)


def _run(runner):
    spec = CellSpec(
        config="config1",
        policy=aru_min(),
        seed=0,
        horizon=HORIZON,
        loads=(LoadSpec(node="node0", start=BURST[0], stop=BURST[1],
                        threads=LOAD_THREADS, burst_s=0.05),),
        probe="throttle_phases",
        probe_args=(("thread", "digitizer"), ("phases", PHASES)),
    )
    result, = runner.run_metrics([spec])
    rows = [
        [label, result.extras[f"target:{label}"] * 1e3,
         result.extras[f"fps:{label}"]]
        for label, _, _ in PHASES
    ]
    return rows, result.metrics.wasted_memory


def test_loop_tracks_load_transient(benchmark, emit, sweep_runner):
    rows, waste = benchmark.pedantic(lambda: _run(sweep_runner),
                                     rounds=1, iterations=1)
    table = format_table(
        ["phase", "digitizer target (ms)", "delivered fps"],
        rows,
        title=(
            f"[ablation] ARU-min tracking a {LOAD_THREADS}-thread CPU burst "
            f"on node0 during t=[{BURST[0]:.0f},{BURST[1]:.0f}]s — tracker, "
            f"config1 (overall wasted mem {100 * waste:.1f}%)"
        ),
    )
    emit("abl_load_adaptivity", table)
    target = {r[0]: r[1] for r in rows}
    fps = {r[0]: r[2] for r in rows}
    # the throttle target rises under load and recovers afterwards
    assert target["burst (50-100s)"] > 1.2 * target["before (0-50s)"]
    assert target["after (100-150s)"] < 1.15 * target["before (0-50s)"]
    # throughput dips during the burst and recovers
    assert fps["burst (50-100s)"] < fps["before (0-50s)"]
    assert fps["after (100-150s)"] > 0.9 * fps["before (0-50s)"]
    # adaptation keeps waste low across the whole run
    assert waste < 0.30
