"""[ablation] Collection lag: how DGC's pass interval inflates footprints.

Our eager DGC frees an item the instant the last cursor passes it, which
is why our absolute footprints undercut the paper's (whose collector ran
as periodic runtime work). This bench sweeps the DGC pass interval on the
no-ARU tracker: the mean footprint climbs with lag and crosses the
paper's 33.6 MB at an interval of roughly half a second — and throughput
*falls* as it climbs, because resident channel memory feeds back into
compute speed (the cache-pressure channel the paper's config-1 analysis
relies on). Collection promptness is itself a resource-utilization
parameter.
"""

from repro.aru import aru_disabled
from repro.bench import cluster_for, format_table
from repro.gc import DeadTimestampGC
from repro.metrics import PostmortemAnalyzer, throughput_fps
from repro.runtime import Runtime, RuntimeConfig

INTERVALS = (0.0, 0.25, 0.5, 1.0)
HORIZON = 90.0


def _run(interval):
    from repro.apps import build_tracker

    runtime = Runtime(
        build_tracker(),
        RuntimeConfig(
            cluster=cluster_for("config1"),
            gc=DeadTimestampGC(interval=interval),
            aru=aru_disabled(),
            seed=0,
        ),
    )
    trace = runtime.run(until=HORIZON)
    pm = PostmortemAnalyzer(trace)
    return [
        f"{interval:.2f}s" if interval else "eager",
        pm.footprint().mean() / 1e6,
        pm.footprint().peak() / 1e6,
        throughput_fps(trace),
    ]


def _sweep():
    return [_run(interval) for interval in INTERVALS]


def test_gc_lag_inflates_footprint(benchmark, emit):
    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    table = format_table(
        ["DGC pass interval", "Mem mean (MB)", "Mem peak (MB)", "fps"],
        rows,
        title="[ablation] DGC collection lag — tracker without ARU, config1",
    )
    emit("abl_gc_lag", table)
    means = [r[1] for r in rows]
    fps = [r[3] for r in rows]
    # footprint grows monotonically (within tolerance) with lag ...
    assert means[-1] > means[0] * 1.3
    assert all(b >= a * 0.95 for a, b in zip(means, means[1:]))
    # ... and throughput degrades with it through memory pressure
    assert fps[-1] < fps[0]
    assert all(b <= a * 1.05 for a, b in zip(fps, fps[1:]))
