"""[ablation] Collection lag: how DGC's pass interval inflates footprints.

Our eager DGC frees an item the instant the last cursor passes it, which
is why our absolute footprints undercut the paper's (whose collector ran
as periodic runtime work). This bench sweeps the DGC pass interval on the
no-ARU tracker: the mean footprint climbs with lag and crosses the
paper's 33.6 MB at an interval of roughly half a second — and throughput
*falls* as it climbs, because resident channel memory feeds back into
compute speed (the cache-pressure channel the paper's config-1 analysis
relies on). Collection promptness is itself a resource-utilization
parameter.
"""

from repro.aru import aru_disabled
from repro.bench import CellSpec, format_table

INTERVALS = (0.0, 0.25, 0.5, 1.0)
HORIZON = 90.0


def _sweep(runner):
    specs = [
        CellSpec(
            config="config1",
            policy=aru_disabled(),
            label=f"{interval:.2f}s" if interval else "eager",
            seed=0,
            horizon=HORIZON,
            gc="dgc",
            gc_interval=interval,
        )
        for interval in INTERVALS
    ]
    results = runner.run_metrics(specs)
    return [
        [
            result.spec.label,
            result.metrics.mem_mean / 1e6,
            result.metrics.mem_peak / 1e6,
            result.metrics.throughput,
        ]
        for result in results
    ]


def test_gc_lag_inflates_footprint(benchmark, emit, sweep_runner):
    rows = benchmark.pedantic(lambda: _sweep(sweep_runner),
                              rounds=1, iterations=1)
    table = format_table(
        ["DGC pass interval", "Mem mean (MB)", "Mem peak (MB)", "fps"],
        rows,
        title="[ablation] DGC collection lag — tracker without ARU, config1",
    )
    emit("abl_gc_lag", table)
    means = [r[1] for r in rows]
    fps = [r[3] for r in rows]
    # footprint grows monotonically (within tolerance) with lag ...
    assert means[-1] > means[0] * 1.3
    assert all(b >= a * 0.95 for a, b in zip(means, means[1:]))
    # ... and throughput degrades with it through memory pressure
    assert fps[-1] < fps[0]
    assert all(b <= a * 1.05 for a, b in zip(fps, fps[1:]))
