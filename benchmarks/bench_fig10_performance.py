"""[fig 10] Latency, throughput and jitter of the tracker.

Regenerates the paper's figure-10 table for both configurations:
throughput (fps, mean and across-run STD), latency (ms, mean and
across-run STD), and jitter (ms).

Paper (config 1): fps 3.30/4.68/4.18, lat 661/594/350, jitter 77/34/46
Paper (config 2): fps 4.27/4.47/3.53, lat 648/605/480, jitter 96/89/162

Shape targets (§5.2): ARU *improves* latency (max most, by aggressive
throttling — items never wait in buffers); ARU-min sustains the highest
throughput; ARU-max trades throughput away (consumers intermittently
starve), which also worsens its jitter in config 2.
"""

from repro.bench import PAPER, fig10_performance_table, format_table


def _paper_table(config: str) -> str:
    rows = [
        [p, v["fps"], v["fps_std"], v["lat"], v["lat_std"], v["jitter"]]
        for p, v in PAPER[config].items()
        if "fps" in v
    ]
    return format_table(
        ["policy", "fps mean", "fps STD", "lat mean (ms)", "lat STD (ms)",
         "jitter (ms)"],
        rows,
        title=f"[fig 10] PAPER reference — {config}",
    )


def test_fig10_config1(tracker_grid, benchmark, emit):
    table, rows = benchmark.pedantic(
        lambda: fig10_performance_table(tracker_grid, "config1"),
        rounds=1, iterations=1,
    )
    emit("fig10_config1", table + "\n\n" + _paper_table("config1"))
    fps = {r[0]: r[1] for r in rows}
    lat = {r[0]: r[3] for r in rows}
    assert lat["ARU-max"] < lat["ARU-min"] < lat["No ARU"]
    assert fps["ARU-min"] >= fps["ARU-max"]
    assert fps["ARU-min"] >= 0.98 * fps["No ARU"]


def test_fig10_config2(tracker_grid, benchmark, emit):
    table, rows = benchmark.pedantic(
        lambda: fig10_performance_table(tracker_grid, "config2"),
        rounds=1, iterations=1,
    )
    emit("fig10_config2", table + "\n\n" + _paper_table("config2"))
    fps = {r[0]: r[1] for r in rows}
    lat = {r[0]: r[3] for r in rows}
    jit = {r[0]: r[5] for r in rows}
    assert lat["ARU-max"] < lat["No ARU"]
    assert fps["ARU-max"] < fps["No ARU"]            # the §5.2 artifact
    assert jit["ARU-max"] > max(jit["No ARU"], jit["ARU-min"])
