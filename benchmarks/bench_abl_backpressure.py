"""[ablation/extension] ARU feedback vs bounded-channel back-pressure.

Modern stream processors (Flink, Akka Streams, Reactive Streams) throttle
producers with *back-pressure*: bounded buffers whose full state blocks
the upstream put. ARU instead propagates rate information and throttles
at the source. This bench compares the two on the tracker:

* back-pressure bounds memory hard, but the producer still runs ahead by
  a buffer's worth — items are produced, then skipped: the *computation*
  waste persists;
* ARU prevents the wasted items from being produced at all, at comparable
  or better memory, without hand-picking a buffer size.
"""

from repro.apps import TrackerConfig
from repro.aru import aru_disabled, aru_min
from repro.bench import CellSpec, format_table

HORIZON = 90.0
SEEDS = (0, 1)

VARIANTS = {
    "unbounded, no ARU": dict(aru=aru_disabled(), capacity=None),
    "backpressure cap=3": dict(aru=aru_disabled(), capacity=3),
    "backpressure cap=8": dict(aru=aru_disabled(), capacity=8),
    "ARU-min, unbounded": dict(aru=aru_min(), capacity=None),
}


def _sweep(runner):
    specs = [
        CellSpec(
            config="config1",
            policy=spec["aru"],
            label=label,
            seed=seed,
            horizon=HORIZON,
            tracker=TrackerConfig(channel_capacity=spec["capacity"]),
        )
        for label, spec in VARIANTS.items()
        for seed in SEEDS
    ]
    results = runner.run_metrics(specs)
    rows = []
    for label in VARIANTS:
        runs = [r.metrics for r in results if r.spec.label == label]
        n = len(runs)
        rows.append([
            label,
            sum(r.mem_mean for r in runs) / n / 1e6,
            100 * sum(r.wasted_computation for r in runs) / n,
            sum(r.throughput for r in runs) / n,
            1e3 * sum(r.latency_mean for r in runs) / n,
        ])
    return rows


def test_aru_vs_backpressure(benchmark, emit, sweep_runner):
    rows = benchmark.pedantic(lambda: _sweep(sweep_runner),
                              rounds=1, iterations=1)
    table = format_table(
        ["flow control", "Mem mean (MB)", "% Comp wasted", "fps", "lat (ms)"],
        rows,
        title="[ablation] ARU vs bounded-buffer back-pressure — config1, tracker",
    )
    emit("abl_backpressure", table)
    by = {r[0]: r for r in rows}
    # back-pressure bounds memory relative to the unbounded baseline
    assert by["backpressure cap=3"][1] < by["unbounded, no ARU"][1]
    # but ARU eliminates computation waste far better than any fixed bound
    assert by["ARU-min, unbounded"][2] < by["backpressure cap=3"][2]
    assert by["ARU-min, unbounded"][2] < by["backpressure cap=8"][2]
    # without giving up throughput
    assert by["ARU-min, unbounded"][3] >= 0.95 * by["backpressure cap=3"][3]
