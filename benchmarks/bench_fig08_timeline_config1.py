"""[fig 8] Memory-footprint-over-time panels, config 1 (single node).

Regenerates the paper's figure 8: four side-by-side memory-usage-vs-time
traces sharing one scale — IGC, ARU-max, ARU-min, No-ARU (left to right
in the paper). Rendered here as ASCII panels plus CSV series under
``benchmarks/results/`` for external plotting.

Shape target: the four panels order IGC <= ARU-max < ARU-min << No-ARU at
(almost) every instant, and ARU dramatically flattens the fluctuations
("how ARU reduces fluctuations in the application memory pressure over
time").
"""

import numpy as np

from repro.bench import ascii_timeline, timeline_csv

PANELS = ("ARU-max", "ARU-min", "No ARU")


def _render(grid, config, results_dir):
    run0 = {p: grid[(config, p)].runs[0] for p in PANELS}
    # The IGC panel is the application's theoretical floor: the smallest
    # per-policy postmortem bound (see fig6_memory_table).
    igc = min(
        (r.igc_footprint for r in run0.values()), key=lambda tl: tl.mean()
    )
    timelines = {"IGC": igc}
    timelines.update({p: run0[p].footprint for p in PANELS})
    y_max = max(tl.peak() for tl in timelines.values())
    charts = []
    for label, tl in timelines.items():
        charts.append(ascii_timeline(tl, width=68, height=10,
                                     title=f"--- {label} ({config}) ---",
                                     y_max=y_max))
        slug = label.lower().replace(" ", "").replace("-", "")
        (results_dir / f"fig_{config}_{slug}.csv").write_text(timeline_csv(tl))
    return timelines, "\n\n".join(charts)


def test_fig8_timelines_config1(tracker_grid, benchmark, emit, results_dir):
    timelines, text = benchmark.pedantic(
        lambda: _render(tracker_grid, "config1", results_dir),
        rounds=1, iterations=1,
    )
    emit("fig08_config1", text)
    means = {label: tl.mean() for label, tl in timelines.items()}
    assert means["IGC"] <= means["ARU-max"] * 1.05
    assert means["ARU-max"] < means["ARU-min"] < means["No ARU"]
    # pointwise dominance most of the time: No-ARU above ARU-max
    _, no_vals = timelines["No ARU"].sample(200)
    _, mx_vals = timelines["ARU-max"].sample(200)
    assert np.mean(no_vals > mx_vals) > 0.8
