"""Bit-identity harness for the control-plane refactor.

Enumerates every simulation cell used by the paper-figure benches
(``bench_fig06``–``bench_fig10`` share the §5 grid) and the nine
ablation benches, runs them serially, and hashes each cell's full
:class:`~repro.bench.experiments.RunMetrics` (scalars bit-exact via
``float.hex``, footprint timelines via raw array bytes, probe extras
included). The default ARU stack must produce the *same hash for every
cell* before and after any refactor of the feedback-control plumbing.

Usage::

    PYTHONPATH=src python benchmarks/check_control_identity.py \
        --save baseline.json          # capture
    PYTHONPATH=src python benchmarks/check_control_identity.py \
        --check baseline.json         # verify (exit 1 on any drift)

The enumerated specs mirror the bench modules by construction; keep them
in sync when a bench gains cells.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict, Iterable, List, Tuple

from repro.apps import TrackerConfig
from repro.aru import AruConfig, aru_disabled, aru_max, aru_min
from repro.bench import CellSpec, SweepRunner, metrics_fingerprint
from repro.bench.experiments import DEFAULT_SEEDS
from repro.cluster import LoadSpec

# kept as a module-level alias: older baselines were captured with this name
_hash_metrics = metrics_fingerprint


def _grid_cells() -> Iterable[Tuple[str, CellSpec]]:
    """The §5 grid shared by bench_fig06–bench_fig10."""
    policies = {"No ARU": aru_disabled, "ARU-min": aru_min, "ARU-max": aru_max}
    for config in ("config1", "config2"):
        for label, factory in policies.items():
            for seed in DEFAULT_SEEDS:
                yield (f"grid/{config}/{label}/s{seed}",
                       CellSpec(config=config, policy=factory(), label=label,
                                seed=seed, horizon=120.0))


def _ablation_cells() -> Iterable[Tuple[str, CellSpec]]:
    # bench_abl_operators
    for op in ("min", "kth:1", "median", "mean", "max"):
        for seed in (0, 1):
            yield (f"operators/{op}/s{seed}",
                   CellSpec(config="config1",
                            policy=AruConfig(default_channel_op=op,
                                             thread_op=op, name=f"aru-{op}"),
                            label=op, seed=seed, horizon=90.0))
    # bench_abl_filters
    for label, fspec in (("none (paper)", None), ("ewma:0.2", "ewma:0.2"),
                         ("median:5", "median:5"), ("slew:0.2", "slew:0.2")):
        for seed in (0, 1):
            yield (f"filters/{label}/s{seed}",
                   CellSpec(config="config1",
                            policy=aru_max(summary_filter=fspec) if fspec
                            else aru_max(),
                            label=label, seed=seed, horizon=120.0,
                            sched_noise_cv=0.35))
    # bench_abl_noise
    for noise in (0.0, 0.08, 0.2, 0.4):
        for seed in (0, 1):
            yield (f"noise/cv{noise}/s{seed}",
                   CellSpec(config="config1", policy=aru_min(),
                            label=f"cv={noise}", seed=seed, horizon=90.0,
                            sched_noise_cv=noise))
    # bench_abl_gc
    for gc in ("null", "ref", "tgc", "dgc"):
        yield (f"gc/{gc}", CellSpec(config="config1", policy=aru_disabled(),
                                    label=gc, seed=0, horizon=60.0, gc=gc))
    # bench_abl_gc_lag
    for interval in (0.0, 0.25, 0.5, 1.0):
        yield (f"gc_lag/{interval}",
               CellSpec(config="config1", policy=aru_disabled(),
                        label=f"{interval:.2f}s" if interval else "eager",
                        seed=0, horizon=90.0, gc="dgc", gc_interval=interval))
    # bench_abl_dgc_ce
    for label, aru, ce in (("DGC alone", aru_disabled(), False),
                           ("DGC + comp-elim [6]", aru_disabled(), True),
                           ("DGC + ARU-max", aru_max(), False)):
        yield (f"dgc_ce/{label}",
               CellSpec(config="config1", policy=aru, label=label, seed=0,
                        horizon=90.0,
                        tracker=TrackerConfig(computation_elimination=ce),
                        probe="ce_stats"))
    # bench_abl_backpressure
    for label, aru, cap in (("unbounded, no ARU", aru_disabled(), None),
                            ("backpressure cap=3", aru_disabled(), 3),
                            ("backpressure cap=8", aru_disabled(), 8),
                            ("ARU-min, unbounded", aru_min(), None)):
        for seed in (0, 1):
            yield (f"backpressure/{label}/s{seed}",
                   CellSpec(config="config1", policy=aru, label=label,
                            seed=seed, horizon=90.0,
                            tracker=TrackerConfig(channel_capacity=cap)))
    # bench_abl_headroom
    for headroom in (0.8, 0.9, 1.0, 1.1, 1.25):
        for seed in (0, 1):
            yield (f"headroom/h{headroom}/s{seed}",
                   CellSpec(config="config2",
                            policy=aru_max(headroom=headroom,
                                           name=f"aru-max-h{headroom}"),
                            label=f"h{headroom}", seed=seed, horizon=90.0))
    # bench_abl_load_adaptivity
    phases = (("before (0-50s)", 5.0, 50.0),
              ("burst (50-100s)", 55.0, 100.0),
              ("after (100-150s)", 105.0, 150.0))
    yield ("load_adaptivity",
           CellSpec(config="config1", policy=aru_min(), seed=0, horizon=150.0,
                    loads=(LoadSpec(node="node0", start=50.0, stop=100.0,
                                    threads=6, burst_s=0.05),),
                    probe="throttle_phases",
                    probe_args=(("thread", "digitizer"), ("phases", phases))))


def all_cells() -> List[Tuple[str, CellSpec]]:
    return list(_grid_cells()) + list(_ablation_cells())


def compute_hashes(workers: int = 1) -> Dict[str, str]:
    cells = all_cells()
    runner = SweepRunner(workers=workers)
    results = runner.run_metrics([spec for _key, spec in cells])
    return {key: metrics_fingerprint(result)
            for (key, _spec), result in zip(cells, results)}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    mode = parser.add_mutually_exclusive_group(required=True)
    mode.add_argument("--save", metavar="PATH",
                      help="capture the current hashes to PATH")
    mode.add_argument("--check", metavar="PATH",
                      help="compare current hashes against PATH")
    parser.add_argument("--workers", type=int, default=1)
    args = parser.parse_args(argv)

    hashes = compute_hashes(workers=args.workers)
    if args.save:
        with open(args.save, "w") as fh:
            json.dump(hashes, fh, indent=1, sort_keys=True)
        print(f"saved {len(hashes)} cell hashes to {args.save}")
        return 0

    with open(args.check) as fh:
        baseline = json.load(fh)
    drifted = sorted(key for key in baseline
                     if hashes.get(key) != baseline[key])
    missing = sorted(set(baseline) - set(hashes))
    extra = sorted(set(hashes) - set(baseline))
    if drifted or missing:
        for key in drifted:
            print(f"DRIFT  {key}")
        for key in missing:
            print(f"MISSING {key}")
        print(f"{len(drifted)} drifted, {len(missing)} missing "
              f"of {len(baseline)} baseline cells")
        return 1
    print(f"bit-identical: {len(baseline)} cells match"
          + (f" ({len(extra)} new cells not in baseline)" if extra else ""))
    return 0


if __name__ == "__main__":
    sys.exit(main())
