#!/usr/bin/env python
"""DES-predicted vs proc-measured: the same spec on both substrates.

The distributed backend's contract (docs/distributed.md) is *shape*,
not digits: the DES predicts what the bundled tracker should sustain on
config 2 under ARU-min, and the proc backend — real worker processes,
channels over loopback TCP, wall-clock STP sensors — must land within a
documented tolerance of that prediction. This bench runs the identical
``ExperimentSpec`` through ``backend="sim"`` and ``backend="proc"`` and
commits the comparison to ``benchmarks/BENCH_dist.json``.

Reported per backend (post-warmup, so the feedback loop's cold start is
excluded on both sides):

* ``fps``      — delivered sink frames per second;
* ``p95_ms``   — 95th-percentile source→sink latency;
* ``frames``   — delivered frame count (sanity floor).

The tolerance is deliberately wide — the proc backend pays for the GIL
within each worker, OS scheduling, pickling, and TCP round-trips, and
CI containers are noisy — but it is a *real* gate: a broken feedback
plane (unthrottled producers, stalled cross-node channels) misses it by
an order of magnitude, which is the failure this bench exists to catch.

Usage::

    PYTHONPATH=src python benchmarks/bench_dist.py             # print + check
    PYTHONPATH=src python benchmarks/bench_dist.py --update    # re-baseline

The committed numbers are from one machine; fresh runs re-measure and
re-check the tolerance rather than diffing against the committed
digits.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

BASELINE_PATH = Path(__file__).resolve().parent / "BENCH_dist.json"

#: One spec, two substrates.
CONFIG = "config2"
POLICY = "aru-min"
SEED = 0
HORIZON = 6.0
#: Ignore deliveries before the first summary-STP round trips settle.
WARMUP = 1.0

#: measured/predicted bounds. Throughput: the proc tracker may not beat
#: the DES (ratio <= ~1.2 allows timer jitter) and must deliver at
#: least a third of the prediction (GIL + wire overhead, CI noise).
#: p95: wall-clock latency may stretch to 8x the simulated pipeline
#: latency before we call the feedback plane broken.
THROUGHPUT_RATIO = (1 / 3, 1.25)
P95_RATIO = (0.25, 8.0)


def _spec(backend: str):
    from repro.experiment import ExperimentSpec

    return ExperimentSpec(config=CONFIG, policy=POLICY, seed=SEED,
                          horizon=HORIZON, backend=backend)


def measure(backend: str) -> dict:
    from repro.experiment import run_experiment
    from repro.metrics.performance import latency_percentiles, throughput_fps

    t0 = time.perf_counter()
    result = run_experiment(_spec(backend))
    wall = time.perf_counter() - t0
    trace = result.trace
    pct = latency_percentiles(trace, percentiles=(95,), warmup=WARMUP)
    out = {
        "fps": round(throughput_fps(trace, warmup=WARMUP), 3),
        "p95_ms": round(pct[95] * 1e3, 2),
        "frames": len(trace.sink_iterations()),
        "wall_s": round(wall, 2),
    }
    if backend == "proc":
        info = result.runtime
        out["workers"] = len(info.workers)
        out["network_bytes"] = result.stats["network"]["total_bytes"]
    return out


def check(payload: dict) -> list:
    """Shape checks on a measurement (machine-independent)."""
    problems = []
    sim, proc = payload["sim"], payload["proc"]
    delta = payload["delta"]
    if sim["frames"] <= 0 or proc["frames"] <= 0:
        problems.append("a backend delivered no frames")
        return problems
    lo, hi = payload["tolerance"]["throughput_ratio"]
    if not (lo <= delta["throughput_ratio"] <= hi):
        problems.append(
            f"throughput ratio {delta['throughput_ratio']:.3f} outside "
            f"[{lo:.3f}, {hi:.3f}] (DES {sim['fps']} fps, "
            f"proc {proc['fps']} fps)")
    lo, hi = payload["tolerance"]["p95_ratio"]
    if not (lo <= delta["p95_ratio"] <= hi):
        problems.append(
            f"p95 ratio {delta['p95_ratio']:.3f} outside "
            f"[{lo:.3f}, {hi:.3f}] (DES {sim['p95_ms']} ms, "
            f"proc {proc['p95_ms']} ms)")
    if proc.get("workers", 0) < 2:
        problems.append("proc run used fewer than 2 worker processes")
    if proc.get("network_bytes", 0) <= 0:
        problems.append("proc run moved no bytes over the network")
    return problems


def run() -> dict:
    print(f"tracker {CONFIG} / {POLICY} / seed {SEED} / "
          f"horizon {HORIZON:.0f}s (warmup {WARMUP:.0f}s):")
    sim = measure("sim")
    print(f"  sim  (DES-predicted): {sim['fps']:6.2f} fps  "
          f"p95 {sim['p95_ms']:7.1f} ms  ({sim['frames']} frames, "
          f"{sim['wall_s']:.1f}s wall)")
    proc = measure("proc")
    print(f"  proc (measured)     : {proc['fps']:6.2f} fps  "
          f"p95 {proc['p95_ms']:7.1f} ms  ({proc['frames']} frames, "
          f"{proc['workers']} workers, {proc['network_bytes']} net bytes, "
          f"{proc['wall_s']:.1f}s wall)")
    delta = {
        "throughput_ratio": round(proc["fps"] / sim["fps"], 3),
        "p95_ratio": round(proc["p95_ms"] / sim["p95_ms"], 3),
    }
    print(f"  measured/predicted  : throughput x{delta['throughput_ratio']}"
          f"  p95 x{delta['p95_ratio']}")
    return {
        "spec": {"config": CONFIG, "policy": POLICY, "seed": SEED,
                 "horizon": HORIZON, "warmup": WARMUP},
        "tolerance": {"throughput_ratio": list(THROUGHPUT_RATIO),
                      "p95_ratio": list(P95_RATIO)},
        "sim": sim,
        "proc": proc,
        "delta": delta,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--update", action="store_true",
                        help=f"rewrite {BASELINE_PATH.name}")
    args = parser.parse_args(argv)

    payload = run()
    problems = check(payload)
    for p in problems:
        print(f"FAIL: {p}")
    if not problems:
        print("OK: proc within documented tolerance of the DES prediction")

    if args.update:
        BASELINE_PATH.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"wrote {BASELINE_PATH}")
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main())
