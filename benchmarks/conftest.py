"""Shared fixtures for the benchmark harness.

The full (config x policy x seed) grid is simulated once per pytest
session and shared by the fig-6/7/8/9/10 benches; each bench then times
its own analysis/rendering stage and emits its table both to the terminal
(visible in ``bench_output.txt``) and to ``benchmarks/results/``.
"""

import pathlib

import pytest

from repro.bench import DEFAULT_SEEDS, run_grid

#: Simulated seconds per run. 120 s covers several hundred output frames.
HORIZON = 120.0
SEEDS = DEFAULT_SEEDS

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def tracker_grid():
    """The paper's full §5 grid: 2 configs x 3 policies x 3 seeds."""
    return run_grid(seeds=SEEDS, horizon=HORIZON)


@pytest.fixture(scope="session")
def results_dir():
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def emit(capsys, results_dir):
    """Print through pytest's capture *and* persist to results/<name>.txt."""

    def _emit(name: str, text: str):
        with capsys.disabled():
            print(f"\n{text}\n")
        (results_dir / f"{name}.txt").write_text(text + "\n")

    return _emit
