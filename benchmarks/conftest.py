"""Shared fixtures for the benchmark harness.

Every bench routes its simulation cells through one session-scoped
:class:`~repro.bench.runner.SweepRunner`. Under pytest the runner is
pinned to ``workers=1`` (so bench timings and tier-1 results stay
deterministic and machine-independent) with its result cache in a
throwaway tmp directory (so runs never read stale state from, or write
state into, the working tree). The cache still pays off *within* a
session: cells shared between benches simulate once.

The full (config x policy x seed) grid is swept once per session and
shared by the fig-6/7/8/9/10 benches; each bench then times its own
analysis/rendering stage and emits its table both to the terminal
(visible in ``bench_output.txt``) and to ``benchmarks/results/``.
"""

import pathlib

import pytest

from repro.bench import DEFAULT_SEEDS, ResultCache, SweepRunner, run_grid

#: Simulated seconds per run. 120 s covers several hundred output frames.
HORIZON = 120.0
SEEDS = DEFAULT_SEEDS

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def sweep_runner(tmp_path_factory):
    """Serial, tmp-cached runner — the determinism-pinned pytest setup."""
    cache = ResultCache(tmp_path_factory.mktemp("bench_cache"))
    return SweepRunner(workers=1, cache=cache)


@pytest.fixture(scope="session")
def tracker_grid(sweep_runner):
    """The paper's full §5 grid: 2 configs x 3 policies x 3 seeds."""
    return run_grid(seeds=SEEDS, horizon=HORIZON, runner=sweep_runner)


@pytest.fixture(scope="session")
def results_dir():
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def emit(capsys, results_dir):
    """Print through pytest's capture *and* persist to results/<name>.txt."""

    def _emit(name: str, text: str):
        with capsys.disabled():
            print(f"\n{text}\n")
        (results_dir / f"{name}.txt").write_text(text + "\n")

    return _emit
