#!/usr/bin/env python
"""Cross-tenant arbitration benchmark: pack-only vs. arbitrated.

Two measurements over the same mixed fleet — six trackers alternating
heavy/light rates and CPU demands, weights 1/2/3 — on a deliberately
scarce 2-node cluster, committed to ``benchmarks/BENCH_arbiter.json``:

1. **Static scarcity** — everyone arrives at t=0. Pack-only admits
   the first tenant and starves the other five in the queue forever;
   the proportional arbiter revokes over-share hogs on the DES clock
   and time-shares the cluster by weight: nobody starves.

2. **Churn** — the same fleet arriving/departing over the run
   (``churn(rate=1.0, mean_lifetime=12)``). Tenants whose lifetime
   expires while queued are losses the arbiter can only shrink, not
   eliminate, so the contract here is *strict improvement*: higher
   all-tenant Jain, lower aggregate p95, fewer starved.

Reported per policy, over ALL declared tenants (a starved tenant
contributes zero goodput — run_tenants' own Jain only covers tenants
that ever ran):

* ``jain_all``           — Jain fairness over per-tenant goodput;
* ``p95_latency_mean_s`` — mean per-tenant p95 over tenants that
  delivered at all (starved tenants have no latency to report; their
  count rides in ``starved``);
* ``starved``            — tenants with zero placement-holding seconds.

Usage::

    PYTHONPATH=src python benchmarks/bench_arbiter.py             # print
    PYTHONPATH=src python benchmarks/bench_arbiter.py --update    # re-baseline

The committed shape is what matters, not the absolute rates: the
arbitrated runs must strictly improve BOTH the all-tenant Jain index
and the aggregate p95 over pack-only, starve nobody in the static
scenario, and starve strictly fewer under churn.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

BASELINE_PATH = Path(__file__).resolve().parent / "BENCH_arbiter.json"

SEED = 7
HORIZON = 16.0


def _fleet():
    from repro.tenancy import TenantSpec, scaled_tracker_config
    from repro.tenancy.tenant import ResourceDemand

    heavy = scaled_tracker_config(0.15, frame_period=0.2, cv=0.0)
    light = scaled_tracker_config(0.05, frame_period=0.2, cv=0.0)
    return tuple(
        TenantSpec(
            f"t{i}",
            app_config=heavy if i % 2 == 0 else light,
            weight=float(1 + i % 3),
            demand=ResourceDemand(cpu=1.0 if i % 2 == 0 else 0.75,
                                  bandwidth_bps=100),
        )
        for i in range(6)
    )


def _arbiter():
    from repro.tenancy.arbiter import ArbiterConfig

    return ArbiterConfig(policy="proportional", interval=1.0, patience=1.5,
                         min_residency=2.0, max_revocations=1)


def _measure_pair(tenants) -> dict:
    from repro.cluster.spec import uniform_spec
    from repro.tenancy import TenancySpec, run_tenants
    from repro.tenancy.fairness import jain_index

    out = {}
    for label, arbiter in (("pack-only", None), ("proportional", _arbiter())):
        spec = TenancySpec(tenants=tenants, cluster=uniform_spec(2, ncpus=4),
                           seed=SEED, horizon=HORIZON, arbiter=arbiter)
        t0 = time.perf_counter()
        result = run_tenants(spec)
        wall = time.perf_counter() - t0
        goodputs = [r.goodput for r in result.records.values()]
        p95s = [r.latency_p95 for r in result.records.values()
                if r.latency_p95 == r.latency_p95]
        starved = [n for n, r in result.records.items() if r.residence == 0]
        arb = result.arbitration or {}
        out[label] = {
            "jain_all": jain_index(goodputs),
            "p95_latency_mean_s": float(np.mean(p95s)) if p95s else None,
            "starved": starved,
            "deliveries": {n: r.deliveries
                           for n, r in result.records.items()},
            "revocations": arb.get("revocations", 0),
            "migrations": arb.get("migrations", 0),
            "wall_s": wall,
        }
        print(f"  {label:12s}: jain_all={out[label]['jain_all']:.3f}  "
              f"mean p95={out[label]['p95_latency_mean_s'] * 1e3:6.1f}ms  "
              f"starved={len(starved)}  "
              f"revocations={out[label]['revocations']}")
    return out


def measure_static() -> dict:
    return _measure_pair(_fleet())


def measure_churn() -> dict:
    from repro.tenancy import churn

    return _measure_pair(churn(_fleet(), rate=1.0, mean_lifetime=12.0,
                               seed=SEED))


def _check_pair(name: str, pair: dict, problems: list) -> None:
    packed, arb = pair["pack-only"], pair["proportional"]
    if not packed["starved"]:
        problems.append(f"{name}: pack-only must actually starve someone "
                        "(it is the arbiter's reason to exist)")
    if arb["revocations"] <= 0:
        problems.append(f"{name}: arbitrated run must revoke at least once")
    if not arb["jain_all"] > packed["jain_all"]:
        problems.append(
            f"{name}: jain must strictly improve: {packed['jain_all']:.3f} "
            f"-> {arb['jain_all']:.3f}")
    if not ((arb["p95_latency_mean_s"] or 1e9)
            < (packed["p95_latency_mean_s"] or 1e9)):
        problems.append(
            f"{name}: aggregate p95 must strictly improve: "
            f"{packed['p95_latency_mean_s']} -> {arb['p95_latency_mean_s']}")


def check(payload: dict) -> list:
    """Shape checks on a measurement (machine-independent)."""
    problems = []
    _check_pair("static", payload["static"], problems)
    _check_pair("churn", payload["churn"], problems)
    if payload["static"]["proportional"]["starved"]:
        problems.append(
            "static: arbitrated run starved "
            f"{payload['static']['proportional']['starved']}")
    churned = payload["churn"]
    if not (len(churned["proportional"]["starved"])
            < len(churned["pack-only"]["starved"])):
        problems.append("churn: arbitration must starve strictly fewer "
                        "tenants than pack-only")
    return problems


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--update", action="store_true",
                        help=f"rewrite {BASELINE_PATH.name}")
    args = parser.parse_args(argv)

    print("static scarcity (6 mixed tenants at t=0, 2x4-cpu nodes):")
    static = measure_static()
    print("churn (same fleet, Poisson arrivals, ~12s lifetimes):")
    churned = measure_churn()
    payload = {"static": static, "churn": churned}

    problems = check(payload)
    for p in problems:
        print(f"FAIL: {p}")

    if args.update:
        BASELINE_PATH.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"wrote {BASELINE_PATH}")
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main())
