"""[ablation] Elastic parallelism vs fixed-N ARU under a 10x load swing.

The paper's ARU loop only modulates thread *periods*: when offered load
exceeds a stage's capacity, all it can do is throttle the source down to
what the fixed pool sustains. This bench offers a 10x arrival swing for
40 s against a one-worker pool (~2.5 erlangs at peak, far past one CPU)
and compares three controllers:

* **fixed / no control** — the backlog grows for the entire window, so
  end-to-end latency climbs essentially unboundedly (tens of seconds);
* **fixed / ARU-min** — the feedback loop throttles the source to the
  worker's sustainable period: latency stays bounded, but delivered
  throughput collapses to ~1/cost, shedding most of the offered load;
* **elastic / Erlang-C** — the scale controller sizes the pool to the
  measured arrival rate and service STP, holding swing p95 latency
  within 2x of steady state *while* delivering the full offered rate,
  then retires the extra replicas after the swing.

The per-phase latency percentiles come from the ``latency_phases``
probe (in-worker; the full trace never leaves the cell).
"""

from repro.bench import CellSpec, format_table

HORIZON = 120.0
SWING = (40.0, 80.0, 10.0)  # 10x arrivals during t=[40,80)

WORKLOAD_ARGS = (
    ("replicas", 1),
    ("max_replicas", 6),
    ("worker_cost", 0.03),
    ("steady_period", 0.12),
    ("swing", SWING),
    ("item_size", 100_000),
)

#: Measurement windows: settle margins after each transition.
PHASES = (
    ("steady", 5.0, SWING[0]),
    ("swing", SWING[0] + 10.0, SWING[1]),
    ("recovery", SWING[1] + 10.0, HORIZON),
)

CELLS = (
    ("fixed no-control", "no-aru", None),
    ("fixed ARU-min", "aru-min", None),
    ("elastic Erlang-C", "no-aru", "erlang"),
)


def _run(runner):
    specs = [
        CellSpec(
            config="config1",
            policy=policy,
            label=label,
            workload="elastic",
            workload_args=WORKLOAD_ARGS,
            scale_policy=scale,
            horizon=HORIZON,
            probe="latency_phases",
            probe_args=(("phases", PHASES), ("stage", "workers")),
        )
        for label, policy, scale in CELLS
    ]
    return {r.spec.label: r for r in runner.run_metrics(specs)}


def test_elastic_holds_latency_where_fixed_aru_cannot(benchmark, emit,
                                                      sweep_runner):
    results = benchmark.pedantic(lambda: _run(sweep_runner),
                                 rounds=1, iterations=1)
    rows = []
    for label, _, _ in CELLS:
        x = results[label].extras
        rows.append([
            label,
            x["p95:steady"] * 1e3,
            x["p95:swing"] * 1e3,
            x["p95:recovery"] * 1e3,
            x["fps:steady"],
            x["fps:swing"],
            f"{x['replicas_spawned']:.0f}/{x['replicas_final']:.0f}",
        ])
    table = format_table(
        ["cell", "p95 steady (ms)", "p95 swing (ms)", "p95 recovery (ms)",
         "fps steady", "fps swing", "spawned/final"],
        rows,
        title=(
            "[ablation] 10x load swing t=[40,80)s, 1 worker -> Erlang-C "
            "pool (config1, worker cost 30 ms, offered 8.3 -> 83 fps)"
        ),
    )
    emit("abl_elastic", table)

    fixed = results["fixed no-control"].extras
    aru = results["fixed ARU-min"].extras
    elastic = results["elastic Erlang-C"].extras

    # Tentpole acceptance: the elastic policy holds swing p95 within 2x
    # of its own steady state...
    assert elastic["p95:swing"] <= 2.0 * elastic["p95:steady"]
    # ...where the fixed pool without control degrades without bound
    # (the backlog grows for the whole window)...
    assert fixed["p95:swing"] > 5.0 * fixed["p95:steady"]
    assert fixed["p95:swing"] > 10.0 * elastic["p95:swing"]
    # ...and ARU-min only bounds latency by shedding offered load.
    assert aru["p95:swing"] < fixed["p95:swing"] / 5.0
    assert aru["fps:swing"] < 0.6 * elastic["fps:swing"]
    # The elastic pool actually resized (and delivered the offered rate).
    assert elastic["replicas_spawned"] >= 3
    assert elastic["fps:swing"] > 2.0 * aru["fps:swing"]
    # After the swing it scales back in and recovers steady latency.
    assert elastic["replicas_final"] <= 2
    assert elastic["p95:recovery"] <= 2.0 * elastic["p95:steady"]
