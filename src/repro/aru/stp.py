"""Sustainable Thread Period (STP) measurement — paper §3.3.1, fig. 2.

The STP is *"the time it takes to execute one iteration of a thread
loop"*, measured at runtime from clock readings taken at each
``periodicity_sync()`` call, **excluding blocking time** (time spent
waiting for an upstream stage to produce data). We additionally exclude
ARU throttle sleep — sleeping to match downstream is not part of the
thread's intrinsic minimum period.

``current-STP`` therefore captures *"the minimum time required to produce
an item given present load conditions"*: compute segments inflated by OS
noise and SMP contention, plus put/transfer overheads, but not waiting.
"""

from __future__ import annotations

from typing import Optional

from repro.aru.filters import Filter, NoFilter
from repro.errors import SimulationError
from repro.vt.clock import Clock


class StpMeter:
    """Per-thread iteration-period meter.

    Usage: the thread driver calls :meth:`block_started`/:meth:`block_ended`
    around get-blocking, :meth:`sleep_started`/:meth:`sleep_ended` around
    throttle sleeps, and :meth:`sync` at each ``periodicity_sync()``.
    :meth:`sync` returns the (optionally filtered) current-STP for the
    completed iteration.
    """

    def __init__(self, clock: Clock, stp_filter: Optional[Filter] = None) -> None:
        self._clock = clock
        self._filter = stp_filter or NoFilter()
        self._iter_start = clock.now()
        self._excluded = 0.0
        self._pause_start: Optional[float] = None
        self._pause_kind: Optional[str] = None
        #: Most recent filtered current-STP (None until the first sync).
        self.current_stp: Optional[float] = None
        #: Most recent *raw* (unfiltered) iteration period.
        self.raw_stp: Optional[float] = None
        #: Number of completed iterations.
        self.iterations = 0
        #: Cumulative blocked / slept seconds (for metrics).
        self.total_blocked = 0.0
        self.total_slept = 0.0

    # -- pause bookkeeping -------------------------------------------------
    def _pause(self, kind: str) -> None:
        if self._pause_start is not None:
            raise SimulationError(
                f"nested {kind} inside {self._pause_kind}: meter supports "
                "one exclusion window at a time"
            )
        self._pause_start = self._clock.now()
        self._pause_kind = kind

    def _unpause(self, kind: str) -> float:
        if self._pause_start is None or self._pause_kind != kind:
            raise SimulationError(f"{kind}_ended without matching {kind}_started")
        elapsed = self._clock.now() - self._pause_start
        self._excluded += elapsed
        self._pause_start = None
        self._pause_kind = None
        return elapsed

    def block_started(self) -> None:
        """A blocking get began."""
        self._pause("block")

    def block_ended(self) -> None:
        """The blocking get returned."""
        self.total_blocked += self._unpause("block")

    def sleep_started(self) -> None:
        """An ARU throttle sleep began."""
        self._pause("sleep")

    def sleep_ended(self) -> None:
        """The throttle sleep finished."""
        self.total_slept += self._unpause("sleep")

    # -- iteration boundary --------------------------------------------------
    def sync(self) -> float:
        """Close the current iteration; returns the filtered current-STP.

        Mirrors fig. 2: clock reading at the end of each loop iteration,
        minus the excluded (blocked/slept) intervals of that iteration.
        """
        if self._pause_start is not None:
            raise SimulationError("sync() during an open exclusion window")
        now = self._clock.now()
        raw = (now - self._iter_start) - self._excluded
        if raw < 0:  # pragma: no cover - defensive; clocks are monotonic
            raise SimulationError(f"negative STP: {raw}")
        self.raw_stp = raw
        self.current_stp = self._filter(raw)
        self.iterations += 1
        self._iter_start = now
        self._excluded = 0.0
        return self.current_stp

    @property
    def iteration_elapsed(self) -> float:
        """Wall time since the current iteration began (including pauses).

        This is what source throttling compares against the target period:
        the thread needs to *top up* its iteration to the target, counting
        everything that already elapsed.
        """
        return self._clock.now() - self._iter_start
