"""Compression operators for the backwardSTP vector (paper §3.3.2).

A node receiving summary-STP values from several downstream connections
must *compress* them into a single value before combining with its own
current-STP:

* ``min`` — the **default, conservative** operator: sustain the *fastest*
  consumer. Safe with any data-dependency structure; never hurts the
  current node's throughput (fig. 3: min{337,139,273,544,420} = 139).
* ``max`` — the **aggressive** operator: slow production to the *slowest*
  consumer. Correct only when downstream consumers are fully
  data-dependent (fig. 4: a single eventual consumer G dictates pipeline
  throughput), in exchange for maximal waste elimination.
* ``kth`` / ``mean`` / ``median`` — user-defined middle grounds the paper's
  §6 suggests exploring ("find the right balance between wasted resource
  usage and application performance").

Operators are callables ``op(values: Sequence[float]) -> float`` over a
non-empty sequence; :func:`resolve` maps config strings to callables.
"""

from __future__ import annotations

from typing import Callable, Sequence, Union

from repro.errors import ConfigError

Operator = Callable[[Sequence[float]], float]


def _check_nonempty(values: Sequence[float]) -> None:
    if not values:
        raise ValueError("compression operator applied to an empty vector")


def min_op(values: Sequence[float]) -> float:
    """Conservative default: match the fastest consumer (paper fig. 3)."""
    _check_nonempty(values)
    return min(values)


def max_op(values: Sequence[float]) -> float:
    """Aggressive: match the slowest consumer (paper fig. 4)."""
    _check_nonempty(values)
    return max(values)


def mean_op(values: Sequence[float]) -> float:
    """Average of consumer summaries — an intermediate aggressiveness."""
    _check_nonempty(values)
    return sum(values) / len(values)


def median_op(values: Sequence[float]) -> float:
    """Median of consumer summaries — robust intermediate choice."""
    _check_nonempty(values)
    ordered = sorted(values)
    n = len(ordered)
    mid = n // 2
    if n % 2:
        return ordered[mid]
    return 0.5 * (ordered[mid - 1] + ordered[mid])


class KthOperator:
    """The ``k``-th smallest summary (0-based), as a picklable callable.

    A plain closure here would break experiment specs: sweep workers
    receive their cell specs by pickling, and closures don't pickle.
    """

    def __init__(self, k: int) -> None:
        if k < 0:
            raise ConfigError(f"kth operator needs k >= 0, got {k}")
        self.k = int(k)

    def __call__(self, values: Sequence[float]) -> float:
        _check_nonempty(values)
        ordered = sorted(values)
        return ordered[min(self.k, len(ordered) - 1)]

    def __eq__(self, other: object) -> bool:
        return isinstance(other, KthOperator) and other.k == self.k

    def __hash__(self) -> int:
        return hash((KthOperator, self.k))

    def __repr__(self) -> str:
        return f"KthOperator({self.k})"

    @property
    def __name__(self) -> str:
        return f"kth_{self.k}"


def kth_op(k: int) -> Operator:
    """Factory: the ``k``-th smallest summary (0-based).

    ``kth_op(0)`` is :func:`min_op`; ``kth_op(len-1)`` is :func:`max_op`;
    values of ``k`` beyond the vector length clamp to the maximum.
    """
    return KthOperator(k)


def pooled_min_op(values: Sequence[float]) -> float:
    """User-defined operator for work-*sharing* consumers.

    Channel semantics deliver every item to every consumer, so min/max
    reason about the slowest/fastest *reader*. A FIFO queue feeding a
    worker pool is different: ``k`` workers each with period ``p`` drain
    the queue at aggregate period ``p/k``. The paper's framework supports
    exactly this kind of user-supplied dependency-encoded operator; this
    one divides the fastest worker's period by the pool size.
    """
    _check_nonempty(values)
    return min(values) / len(values)


_NAMED: dict = {
    "min": min_op,
    "max": max_op,
    "mean": mean_op,
    "median": median_op,
    "pooled": pooled_min_op,
}

#: Aliases exported for config convenience.
MIN_OPERATOR = min_op
MAX_OPERATOR = max_op


def resolve(op: Union[str, Operator, None]) -> Operator:
    """Turn a config value (name string, callable, or None) into an operator.

    ``None`` resolves to the paper's default, :func:`min_op`.
    """
    if op is None:
        return min_op
    if callable(op):
        return op
    if isinstance(op, str):
        key = op.lower()
        if key in _NAMED:
            return _NAMED[key]
        if key.startswith("kth:"):
            return kth_op(int(key.split(":", 1)[1]))
        raise ConfigError(
            f"unknown operator {op!r}; expected one of {sorted(_NAMED)} or 'kth:<k>'"
        )
    raise ConfigError(f"operator must be a name or callable, got {type(op).__name__}")


def operator_name(op: Operator) -> str:
    """Human-readable name for reports."""
    return getattr(op, "__name__", repr(op)).replace("_op", "")
