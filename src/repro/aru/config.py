"""ARU configuration: the declarative description of one control stack.

An :class:`AruConfig` names a policy *kind* plus every knob the control
plane (:mod:`repro.control`) needs to assemble it — compression
operators, noise filters, headroom, staleness TTL, PID gains. It stays
a frozen, picklable value object so sweep cells and result-cache keys
can carry it verbatim.

Presets cover the paper's three evaluated policies (``no-aru`` /
``aru-min`` / ``aru-max``) plus the PI-controller extension
(``aru-pid``) and the wired-but-inert ``null`` baseline; register more
via :func:`repro.control.register_policy`.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional, Union

from repro.aru.filters import FilterFactory, resolve_factory
from repro.aru.operators import Operator, resolve
from repro.errors import ConfigError

#: Policy kinds the control-plane factory can assemble. Kept as a local
#: constant (not imported from repro.control) so this module stays
#: import-cycle free; repro.control.factory raises on any drift.
_POLICY_KINDS = ("summary-stp", "pid", "null")


@dataclass(frozen=True)
class AruConfig:
    """Everything that parameterizes the ARU mechanism.

    Attributes
    ----------
    enabled:
        Master switch. Disabled = the paper's "No ARU" baseline (summary
        values are neither piggybacked nor acted upon).
    policy:
        Which :class:`~repro.control.policy.RatePolicy` the control
        plane assembles: ``"summary-stp"`` (the paper's mechanism,
        default), ``"pid"`` (velocity-form PI over the same
        measurement), or ``"null"`` (wired but inert — behaviourally
        identical to ``enabled=False``).
    default_channel_op:
        Compression operator channels use over their consumers' summaries
        unless the channel declares its own (the optional argument the
        paper adds to ``spd_chan_alloc()``).
    thread_op:
        Compression operator threads use over their *output-connection*
        backward vector.
    throttle_sources_only:
        Paper behaviour (True): only source threads actuate; everyone else
        adapts by blocking. False throttles every thread (extension).
    stp_filter / summary_filter:
        Noise-filter factories (extension; identity reproduces the paper).
        ``stp_filter`` smooths each thread's own current-STP measurement;
        ``summary_filter`` smooths values received per connection.
    headroom:
        Throttle target multiplier (extension; 1.0 = paper).
    staleness_ttl:
        Fault-tolerance extension (``docs/fault-model.md``): evict a
        backwardSTP slot that has not been refreshed for this many
        seconds, so a dead consumer stops throttling its sources to a
        ghost period. Must exceed the pipeline's largest steady-state
        feedback interval. ``None`` (default) keeps slots forever — the
        paper's fault-free behaviour.
    pid_kp / pid_ki:
        Gains of the ``"pid"`` policy (velocity-form PI; unused by the
        other kinds).
    """

    enabled: bool = True
    policy: str = "summary-stp"
    default_channel_op: Union[str, Operator] = "min"
    thread_op: Union[str, Operator] = "min"
    throttle_sources_only: bool = True
    stp_filter: Union[str, FilterFactory, None] = None
    summary_filter: Union[str, FilterFactory, None] = None
    headroom: float = 1.0
    staleness_ttl: Optional[float] = None
    pid_kp: float = 0.5
    pid_ki: float = 0.25
    name: str = "aru"

    def __post_init__(self) -> None:
        if self.policy not in _POLICY_KINDS:
            raise ConfigError(
                f"unknown policy kind {self.policy!r}; "
                f"expected one of {_POLICY_KINDS}"
            )
        if self.headroom <= 0:
            raise ConfigError(f"headroom must be positive, got {self.headroom}")
        if self.pid_kp < 0 or self.pid_ki < 0:
            raise ConfigError(
                f"PID gains must be >= 0, got kp={self.pid_kp} ki={self.pid_ki}"
            )
        if self.policy == "pid" and self.pid_kp == 0 and self.pid_ki == 0:
            raise ConfigError("the pid policy needs a non-zero gain")
        if self.staleness_ttl is not None and self.staleness_ttl <= 0:
            raise ConfigError(
                f"staleness_ttl must be positive, got {self.staleness_ttl}"
            )
        # Fail fast on bad specs rather than mid-simulation.
        resolve(self.default_channel_op)
        resolve(self.thread_op)
        resolve_factory(self.stp_filter)
        resolve_factory(self.summary_filter)

    def with_(self, **changes) -> "AruConfig":
        """Functional update helper."""
        return replace(self, **changes)


def aru_disabled() -> AruConfig:
    """The paper's "No ARU" baseline."""
    return AruConfig(enabled=False, name="no-aru")


def aru_min(**overrides) -> AruConfig:
    """ARU with the conservative ``min`` operator everywhere (paper default)."""
    cfg = AruConfig(default_channel_op="min", thread_op="min", name="aru-min")
    return cfg.with_(**overrides) if overrides else cfg


def aru_max(**overrides) -> AruConfig:
    """ARU with the aggressive ``max`` operator everywhere.

    Valid for pipelines whose consumers are fully data-dependent (fig. 4 —
    true for the tracker, where the GUI consumes both detection outputs).
    """
    cfg = AruConfig(default_channel_op="max", thread_op="max", name="aru-max")
    return cfg.with_(**overrides) if overrides else cfg


def aru_pid(**overrides) -> AruConfig:
    """The PI-controller policy over the min-compressed summary-STP.

    Same propagation as ``aru-min``; only the actuated target differs —
    it approaches the measured sustainable period smoothly instead of
    jumping to every new measurement.
    """
    cfg = AruConfig(policy="pid", default_channel_op="min", thread_op="min",
                    name="aru-pid")
    return cfg.with_(**overrides) if overrides else cfg


def aru_null(**overrides) -> AruConfig:
    """The control plane wired through but making no decisions.

    Behaviourally identical to :func:`aru_disabled` (the differential
    test suite asserts bit-identical traces); exists to prove the
    plumbing itself is free of side effects.
    """
    cfg = AruConfig(policy="null", name="null")
    return cfg.with_(**overrides) if overrides else cfg
