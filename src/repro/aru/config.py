"""ARU configuration and the three policies evaluated in the paper."""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Optional, Union

from repro.aru.filters import FilterFactory, resolve_factory
from repro.aru.operators import Operator, resolve
from repro.errors import ConfigError


@dataclass(frozen=True)
class AruConfig:
    """Everything that parameterizes the ARU mechanism.

    Attributes
    ----------
    enabled:
        Master switch. Disabled = the paper's "No ARU" baseline (summary
        values are neither piggybacked nor acted upon).
    default_channel_op:
        Compression operator channels use over their consumers' summaries
        unless the channel declares its own (the optional argument the
        paper adds to ``spd_chan_alloc()``).
    thread_op:
        Compression operator threads use over their *output-connection*
        backward vector.
    throttle_sources_only:
        Paper behaviour (True): only source threads actuate; everyone else
        adapts by blocking. False throttles every thread (extension).
    stp_filter / summary_filter:
        Noise-filter factories (extension; identity reproduces the paper).
        ``stp_filter`` smooths each thread's own current-STP measurement;
        ``summary_filter`` smooths values received per connection.
    headroom:
        Throttle target multiplier (extension; 1.0 = paper).
    staleness_ttl:
        Fault-tolerance extension (``docs/fault-model.md``): evict a
        backwardSTP slot that has not been refreshed for this many
        seconds, so a dead consumer stops throttling its sources to a
        ghost period. Must exceed the pipeline's largest steady-state
        feedback interval. ``None`` (default) keeps slots forever — the
        paper's fault-free behaviour.
    """

    enabled: bool = True
    default_channel_op: Union[str, Operator] = "min"
    thread_op: Union[str, Operator] = "min"
    throttle_sources_only: bool = True
    stp_filter: Union[str, FilterFactory, None] = None
    summary_filter: Union[str, FilterFactory, None] = None
    headroom: float = 1.0
    staleness_ttl: Optional[float] = None
    name: str = "aru"

    def __post_init__(self) -> None:
        if self.headroom <= 0:
            raise ConfigError(f"headroom must be positive, got {self.headroom}")
        if self.staleness_ttl is not None and self.staleness_ttl <= 0:
            raise ConfigError(
                f"staleness_ttl must be positive, got {self.staleness_ttl}"
            )
        # Fail fast on bad specs rather than mid-simulation.
        resolve(self.default_channel_op)
        resolve(self.thread_op)
        resolve_factory(self.stp_filter)
        resolve_factory(self.summary_filter)

    def with_(self, **changes) -> "AruConfig":
        """Functional update helper."""
        return replace(self, **changes)


def aru_disabled() -> AruConfig:
    """The paper's "No ARU" baseline."""
    return AruConfig(enabled=False, name="no-aru")


def aru_min(**overrides) -> AruConfig:
    """ARU with the conservative ``min`` operator everywhere (paper default)."""
    cfg = AruConfig(default_channel_op="min", thread_op="min", name="aru-min")
    return cfg.with_(**overrides) if overrides else cfg


def aru_max(**overrides) -> AruConfig:
    """ARU with the aggressive ``max`` operator everywhere.

    Valid for pipelines whose consumers are fully data-dependent (fig. 4 —
    true for the tracker, where the GUI consumes both detection outputs).
    """
    cfg = AruConfig(default_channel_op="max", thread_op="max", name="aru-max")
    return cfg.with_(**overrides) if overrides else cfg
