"""Summary-STP computation and the backwardSTP vector — paper §3.3.2.

Every node of the task graph (thread, channel, or queue) keeps a
``backwardSTP`` vector with one slot per *output connection* (for threads)
or per *consumer connection* (for channels/queues). The algorithm, verbatim
from the paper:

1. receive a summary-STP value from output connection *i*;
2. ``backwardSTP[i] = value``;
3. ``compressed = op(backwardSTP)`` (``min`` default, ``max`` aggressive);
4. thread nodes: ``summary = max(compressed, current_STP)``;
   channel/queue nodes: ``summary = compressed``;
5. propagate ``summary`` upstream (piggy-backed on the next put/get).

Values are periods in **seconds**. A node that has not yet heard from any
consumer has no summary (``None``) — upstream nodes simply don't update
that slot yet, matching the cold-start of a real pipeline.

Staleness (fault tolerance, ``docs/fault-model.md``): each slot carries a
last-heard timestamp. With a ``ttl`` configured
(:attr:`~repro.aru.config.AruConfig.staleness_ttl`), a slot that has not
been refreshed within ``ttl`` seconds is evicted before compression — a
dead consumer therefore stops pinning ``min``-compression to its ghost
period, and sources un-throttle once the silence outlives the TTL.
Without a TTL (the default) slots live forever, reproducing the paper's
fault-free behaviour bit-for-bit.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Union

from repro.aru.filters import FilterFactory, NoFilter
from repro.aru.operators import Operator, operator_name, resolve


class BackwardStpVector:
    """The per-node ``backwardSTP`` vector with optional per-slot filtering
    and optional staleness-based slot eviction.

    Parameters
    ----------
    ttl:
        Staleness bound in seconds; ``None`` (default) disables eviction.
    time_fn:
        Clock read used to stamp updates and judge staleness. Required
        when ``ttl`` is set.
    """

    def __init__(self, op: Union[str, Operator, None] = None,
                 summary_filter_factory: Optional[FilterFactory] = None,
                 ttl: Optional[float] = None,
                 time_fn: Optional[Callable[[], float]] = None) -> None:
        if ttl is not None and ttl <= 0:
            raise ValueError(f"staleness ttl must be positive, got {ttl}")
        if ttl is not None and time_fn is None:
            raise ValueError("a ttl requires a time_fn to judge staleness")
        self.op = resolve(op)
        self._filter_factory = summary_filter_factory or NoFilter
        self._values: Dict[object, float] = {}
        self._filters: Dict[object, object] = {}
        self.ttl = ttl
        self._time_fn = time_fn
        self._last_heard: Dict[object, float] = {}
        #: Slots evicted for staleness so far (diagnostics).
        self.evictions = 0

    def update(self, conn_id: object, value: float) -> None:
        """Store a received summary-STP for connection ``conn_id``.

        The per-connection filter (extension; identity by default) smooths
        the sequence of values received on that slot.
        """
        if value < 0:
            raise ValueError(f"negative summary-STP: {value}")
        filt = self._filters.get(conn_id)
        if filt is None:
            filt = self._filter_factory()
            self._filters[conn_id] = filt
        self._values[conn_id] = float(filt(value))
        if self.ttl is not None:
            self._last_heard[conn_id] = self._time_fn()

    def evict(self, conn_id: object) -> bool:
        """Drop one slot (e.g. its consumer was unregistered).

        Returns whether the slot existed. The slot's filter state goes
        with it: a restarted consumer starts cold, re-propagating its
        summary from scratch.
        """
        existed = self._values.pop(conn_id, None) is not None
        self._filters.pop(conn_id, None)
        self._last_heard.pop(conn_id, None)
        return existed

    def clear(self) -> None:
        """Drop every slot and its filter state (cold restart)."""
        self._values.clear()
        self._filters.clear()
        self._last_heard.clear()

    def evict_stale(self) -> List[object]:
        """Evict every slot older than the TTL; returns the evicted ids."""
        if self.ttl is None or not self._values:
            return []
        now = self._time_fn()
        stale = [cid for cid, heard in self._last_heard.items()
                 if now - heard > self.ttl]
        for cid in stale:
            self.evict(cid)
            self.evictions += 1
        return stale

    def compressed(self) -> Optional[float]:
        """``op(backwardSTP)``, or ``None`` when no (live) value exists."""
        if self.ttl is not None:
            self.evict_stale()
        if not self._values:
            return None
        return float(self.op(list(self._values.values())))

    def snapshot(self) -> Dict[object, float]:
        """Copy of the current vector (reports/debugging)."""
        return dict(self._values)

    def __len__(self) -> int:
        return len(self._values)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<BackwardStpVector op={operator_name(self.op)} {self._values}>"


class ThreadAruState:
    """ARU state for a thread node.

    ``summary()`` implements step 4: the thread inserts its own execution
    period when it is the slowest — *"this allows a thread with a larger
    period than its consumers to insert its execution period into the
    summary-STP"*.
    """

    def __init__(self, name: str, op: Union[str, Operator, None] = None,
                 summary_filter_factory: Optional[FilterFactory] = None,
                 ttl: Optional[float] = None,
                 time_fn: Optional[Callable[[], float]] = None) -> None:
        self.name = name
        self.backward = BackwardStpVector(op, summary_filter_factory,
                                          ttl=ttl, time_fn=time_fn)

    def update_backward(self, conn_id: object, value: float) -> None:
        self.backward.update(conn_id, value)

    def compressed_backward(self) -> Optional[float]:
        return self.backward.compressed()

    def summary(self, current_stp: Optional[float]) -> Optional[float]:
        """``max(compressed_backward, current_STP)`` with None-handling.

        * no downstream info, no own STP yet -> ``None``;
        * only one side known -> that side.
        """
        compressed = self.backward.compressed()
        if compressed is None:
            return current_stp
        if current_stp is None:
            return compressed
        return max(compressed, current_stp)


class BufferAruState:
    """ARU state for a channel or queue node.

    Channels/queues generate no current-STP of their own (paper step 5):
    their summary is just the compressed backward vector over *consumer*
    connections.
    """

    def __init__(self, name: str, op: Union[str, Operator, None] = None,
                 summary_filter_factory: Optional[FilterFactory] = None,
                 ttl: Optional[float] = None,
                 time_fn: Optional[Callable[[], float]] = None) -> None:
        self.name = name
        self.backward = BackwardStpVector(op, summary_filter_factory,
                                          ttl=ttl, time_fn=time_fn)

    def update_backward(self, conn_id: object, value: float) -> None:
        self.backward.update(conn_id, value)

    def summary(self) -> Optional[float]:
        return self.backward.compressed()
