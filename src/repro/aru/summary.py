"""Summary-STP computation and the backwardSTP vector — paper §3.3.2.

Every node of the task graph (thread, channel, or queue) keeps a
``backwardSTP`` vector with one slot per *output connection* (for threads)
or per *consumer connection* (for channels/queues). The algorithm, verbatim
from the paper:

1. receive a summary-STP value from output connection *i*;
2. ``backwardSTP[i] = value``;
3. ``compressed = op(backwardSTP)`` (``min`` default, ``max`` aggressive);
4. thread nodes: ``summary = max(compressed, current_STP)``;
   channel/queue nodes: ``summary = compressed``;
5. propagate ``summary`` upstream (piggy-backed on the next put/get).

Values are periods in **seconds**. A node that has not yet heard from any
consumer has no summary (``None``) — upstream nodes simply don't update
that slot yet, matching the cold-start of a real pipeline.
"""

from __future__ import annotations

from typing import Dict, Optional, Union

from repro.aru.filters import FilterFactory, NoFilter
from repro.aru.operators import Operator, operator_name, resolve


class BackwardStpVector:
    """The per-node ``backwardSTP`` vector with optional per-slot filtering."""

    def __init__(self, op: Union[str, Operator, None] = None,
                 summary_filter_factory: Optional[FilterFactory] = None) -> None:
        self.op = resolve(op)
        self._filter_factory = summary_filter_factory or NoFilter
        self._values: Dict[object, float] = {}
        self._filters: Dict[object, object] = {}

    def update(self, conn_id: object, value: float) -> None:
        """Store a received summary-STP for connection ``conn_id``.

        The per-connection filter (extension; identity by default) smooths
        the sequence of values received on that slot.
        """
        if value < 0:
            raise ValueError(f"negative summary-STP: {value}")
        filt = self._filters.get(conn_id)
        if filt is None:
            filt = self._filter_factory()
            self._filters[conn_id] = filt
        self._values[conn_id] = float(filt(value))

    def compressed(self) -> Optional[float]:
        """``op(backwardSTP)``, or ``None`` when no value has arrived yet."""
        if not self._values:
            return None
        return float(self.op(list(self._values.values())))

    def snapshot(self) -> Dict[object, float]:
        """Copy of the current vector (reports/debugging)."""
        return dict(self._values)

    def __len__(self) -> int:
        return len(self._values)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<BackwardStpVector op={operator_name(self.op)} {self._values}>"


class ThreadAruState:
    """ARU state for a thread node.

    ``summary()`` implements step 4: the thread inserts its own execution
    period when it is the slowest — *"this allows a thread with a larger
    period than its consumers to insert its execution period into the
    summary-STP"*.
    """

    def __init__(self, name: str, op: Union[str, Operator, None] = None,
                 summary_filter_factory: Optional[FilterFactory] = None) -> None:
        self.name = name
        self.backward = BackwardStpVector(op, summary_filter_factory)

    def update_backward(self, conn_id: object, value: float) -> None:
        self.backward.update(conn_id, value)

    def compressed_backward(self) -> Optional[float]:
        return self.backward.compressed()

    def summary(self, current_stp: Optional[float]) -> Optional[float]:
        """``max(compressed_backward, current_STP)`` with None-handling.

        * no downstream info, no own STP yet -> ``None``;
        * only one side known -> that side.
        """
        compressed = self.backward.compressed()
        if compressed is None:
            return current_stp
        if current_stp is None:
            return compressed
        return max(compressed, current_stp)


class BufferAruState:
    """ARU state for a channel or queue node.

    Channels/queues generate no current-STP of their own (paper step 5):
    their summary is just the compressed backward vector over *consumer*
    connections.
    """

    def __init__(self, name: str, op: Union[str, Operator, None] = None,
                 summary_filter_factory: Optional[FilterFactory] = None) -> None:
        self.name = name
        self.backward = BackwardStpVector(op, summary_filter_factory)

    def update_backward(self, conn_id: object, value: float) -> None:
        self.backward.update(conn_id, value)

    def summary(self) -> Optional[float]:
        return self.backward.compressed()
