"""Adaptive Resource Utilization — the paper's core contribution.

Components:

* :mod:`repro.aru.stp` — sustainable-thread-period measurement (§3.3.1);
* :mod:`repro.aru.summary` — backwardSTP vectors and summary-STP (§3.3.2);
* :mod:`repro.aru.operators` — min/max/user compression operators;
* :mod:`repro.aru.filters` — STP noise filters (paper's future work);
* :mod:`repro.aru.config` — declarative policy configs (`no-aru`,
  `aru-min`, `aru-max`, `aru-pid`, `null`).

The live feedback loop itself — sensors, the piggyback bus, rate
policies, actuators — lives in :mod:`repro.control`; this package is
the paper-specific measurement/state layer those policies build on
(:func:`throttle_sleep` is re-exported for compatibility).
"""

from repro.aru.config import (
    AruConfig,
    aru_disabled,
    aru_max,
    aru_min,
    aru_null,
    aru_pid,
)
from repro.aru.controller import throttle_sleep
from repro.aru.filters import (
    EwmaFilter,
    MedianFilter,
    NoFilter,
    SlewRateFilter,
    resolve_factory,
)
from repro.aru.operators import (
    MAX_OPERATOR,
    MIN_OPERATOR,
    kth_op,
    max_op,
    mean_op,
    median_op,
    min_op,
    operator_name,
    pooled_min_op,
    resolve,
)
from repro.aru.stp import StpMeter
from repro.aru.summary import BackwardStpVector, BufferAruState, ThreadAruState

__all__ = [
    "AruConfig",
    "aru_disabled",
    "aru_min",
    "aru_max",
    "aru_pid",
    "aru_null",
    "throttle_sleep",
    "StpMeter",
    "BackwardStpVector",
    "ThreadAruState",
    "BufferAruState",
    "min_op",
    "max_op",
    "mean_op",
    "median_op",
    "kth_op",
    "pooled_min_op",
    "MIN_OPERATOR",
    "MAX_OPERATOR",
    "resolve",
    "operator_name",
    "NoFilter",
    "EwmaFilter",
    "MedianFilter",
    "SlewRateFilter",
    "resolve_factory",
]
