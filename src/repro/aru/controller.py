"""Source-thread throttling — compatibility shim.

The actuation math moved into the control plane
(:mod:`repro.control.actuator`) when the feedback loop was carved into
sensor/propagation/policy/actuator layers; this module re-exports
:func:`throttle_sleep` so existing imports keep working. New code
should import from :mod:`repro.control` and, when it needs more than
the bare function, use :class:`repro.control.SleepThrottle`.
"""

from __future__ import annotations

from repro.control.actuator import throttle_sleep

__all__ = ["throttle_sleep"]
