"""Source-thread throttling — the actuation half of the feedback loop.

Paper §3.3.2: *"Source threads ... use the propagated summary-STP
information to adjust their rate of data item production."* The actuation
is a sleep inserted at ``periodicity_sync()`` that tops the iteration up
to the target period; threads already slower than the target sleep
nothing. Mid-pipeline threads are throttled *indirectly* — they block on
get-latest once their producers slow down ("this cascading effect
indirectly adjusts the production rate of all upstream threads").
"""

from __future__ import annotations

from typing import Optional


def throttle_sleep(target_period: Optional[float], iteration_elapsed: float,
                   headroom: float = 1.0) -> float:
    """Seconds of sleep needed to stretch this iteration to the target.

    Parameters
    ----------
    target_period:
        The compressed downstream summary-STP (``None`` before any feedback
        has arrived — no throttling during cold start).
    iteration_elapsed:
        Wall time already spent in the current iteration, *including*
        blocking: the consumer-visible period is what must match.
    headroom:
        Multiplier on the target (extension knob; ``1.0`` reproduces the
        paper). Values < 1 under-throttle (keep a production safety
        margin), values > 1 over-throttle.
    """
    if iteration_elapsed < 0:
        raise ValueError(f"negative iteration_elapsed: {iteration_elapsed}")
    if headroom <= 0:
        raise ValueError(f"headroom must be positive, got {headroom}")
    if target_period is None:
        return 0.0
    if target_period < 0:
        raise ValueError(f"negative target period: {target_period}")
    return max(0.0, target_period * headroom - iteration_elapsed)
