"""Noise filters for STP signals (the paper's stated future work).

§3.3.2: *"Such noise can be smoothed out by applying filters also used by
other feedback systems [21, 3, 5]. Filters to smooth summary-STP noise
have currently not been implemented in ARU and is left for future work."*

We implement that extension: a filter sits between the raw measurement
(current-STP, or a received summary-STP) and the value used by the
feedback computation. Filters are tiny stateful objects with a
``__call__(sample) -> filtered`` interface; a fresh instance is created
per signal (per thread / per connection) from a factory.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Optional, Union

from repro.errors import ConfigError

#: A filter maps each raw sample to a smoothed value, statefully.
Filter = Callable[[float], float]
FilterFactory = Callable[[], Filter]


class NoFilter:
    """Identity filter — the paper's published behaviour."""

    def __call__(self, sample: float) -> float:
        return sample


class EwmaFilter:
    """Exponentially-weighted moving average: ``y += alpha * (x - y)``.

    ``alpha`` in (0, 1]; smaller is smoother. The first sample initializes
    the state so there is no startup bias toward zero.
    """

    def __init__(self, alpha: float = 0.3) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ConfigError(f"EWMA alpha must be in (0, 1], got {alpha}")
        self.alpha = float(alpha)
        self._state: Optional[float] = None

    def __call__(self, sample: float) -> float:
        if self._state is None:
            self._state = float(sample)
        else:
            self._state += self.alpha * (sample - self._state)
        return self._state


class MedianFilter:
    """Sliding-window median — robust to the intermittent large/small
    summary-STP spikes the paper observes under OS scheduling variance."""

    def __init__(self, window: int = 5) -> None:
        if window < 1:
            raise ConfigError(f"median window must be >= 1, got {window}")
        self.window = int(window)
        self._buf: Deque[float] = deque(maxlen=self.window)

    def __call__(self, sample: float) -> float:
        self._buf.append(float(sample))
        ordered = sorted(self._buf)
        n = len(ordered)
        mid = n // 2
        if n % 2:
            return ordered[mid]
        return 0.5 * (ordered[mid - 1] + ordered[mid])


class SlewRateFilter:
    """Limits how fast the signal may change per sample (a PLL-style
    loop-bandwidth cap): the output moves toward the input by at most
    ``max_step`` in relative terms per sample."""

    def __init__(self, max_step: float = 0.25) -> None:
        if max_step <= 0:
            raise ConfigError(f"max_step must be positive, got {max_step}")
        self.max_step = float(max_step)
        self._state: Optional[float] = None

    def __call__(self, sample: float) -> float:
        if self._state is None or self._state == 0.0:
            self._state = float(sample)
            return self._state
        ratio = sample / self._state
        lo, hi = 1.0 - self.max_step, 1.0 + self.max_step
        ratio = min(max(ratio, lo), hi)
        self._state *= ratio
        return self._state


_NAMED: dict = {
    "none": NoFilter,
    "ewma": EwmaFilter,
    "median": MedianFilter,
    "slew": SlewRateFilter,
}


class ParametrizedFilterFactory:
    """A filter factory carrying one constructor argument, picklable.

    Sweep workers receive experiment specs by pickling; a lambda closing
    over ``(cls, value)`` would make any config with a parametrized
    filter (``"ewma:0.2"``) unusable as a parallel cell spec.
    """

    def __init__(self, cls: type, value: Union[int, float]) -> None:
        self.cls = cls
        self.value = value

    def __call__(self) -> Filter:
        return self.cls(self.value)

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, ParametrizedFilterFactory)
                and other.cls is self.cls and other.value == self.value)

    def __hash__(self) -> int:
        return hash((self.cls, self.value))

    def __repr__(self) -> str:
        return f"ParametrizedFilterFactory({self.cls.__name__}, {self.value})"


def resolve_factory(spec: Union[str, FilterFactory, None]) -> FilterFactory:
    """Turn a config value into a filter factory.

    Accepts ``None``/``"none"`` (identity), a name (``"ewma"``,
    ``"median"``, ``"slew"``, optionally with a parameter like
    ``"ewma:0.2"`` / ``"median:7"``), or any zero-arg callable returning a
    filter.
    """
    if spec is None:
        return NoFilter
    if isinstance(spec, str):
        name, _, arg = spec.partition(":")
        cls = _NAMED.get(name.lower())
        if cls is None:
            raise ConfigError(f"unknown filter {spec!r}; expected {sorted(_NAMED)}")
        if arg:
            value: Union[int, float] = float(arg) if "." in arg else int(arg)
            return ParametrizedFilterFactory(cls, value)
        return cls
    if callable(spec):
        return spec
    raise ConfigError(f"filter must be a name or factory, got {type(spec).__name__}")
