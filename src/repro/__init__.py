"""pystampede-aru — Adaptive Resource Utilization via feedback control.

A from-scratch Python reproduction of Mandviwala, Harel, Ramachandran &
Knobe, *"Adaptive Resource Utilization via Feedback Control for Streaming
Applications"* (IPDPS Workshops, 2005): a Stampede-style streaming runtime
(timestamped channels/queues + task threads), the ARU feedback mechanism
(sustainable-thread-period measurement + backward summary-STP propagation
+ source throttling) factored into a pluggable control plane
(:mod:`repro.control`: sensors, propagation, policies, actuators), four
garbage collectors (REF/TGC/DGC/IGC), a
discrete-event cluster simulator standing in for the paper's 17-node SMP
testbed, and the color-based people-tracker evaluation.

Quickstart
----------
See ``examples/quickstart.py`` for an end-to-end pipeline.

The public API is re-exported lazily from the subpackages; import the
subpackage directly for anything not listed in ``__all__``.
"""

from __future__ import annotations

__version__ = "1.0.0"

# Re-exported lazily to keep `import repro` cheap.
_LAZY = {
    "Engine": "repro.sim",
    "RngRegistry": "repro.sim",
    "Timestamp": "repro.vt",
    "ClusterSpec": "repro.cluster",
    "NodeSpec": "repro.cluster",
    "Runtime": "repro.runtime",
    "RuntimeConfig": "repro.runtime",
    "TaskGraph": "repro.runtime",
    "Get": "repro.runtime",
    "Put": "repro.runtime",
    "Compute": "repro.runtime",
    "PeriodicitySync": "repro.runtime",
    "AruConfig": "repro.aru",
    "MIN_OPERATOR": "repro.aru",
    "MAX_OPERATOR": "repro.aru",
    "RatePolicy": "repro.control",
    "SummaryStpPolicy": "repro.control",
    "PidPolicy": "repro.control",
    "NullPolicy": "repro.control",
    "ThreadController": "repro.control",
    "register_policy": "repro.control",
    "resolve_policy": "repro.control",
    "list_policies": "repro.control",
    "ScaleConfig": "repro.control",
    "ScalePolicy": "repro.control",
    "ErlangScalePolicy": "repro.control",
    "NullScalePolicy": "repro.control",
    "register_scale_policy": "repro.control",
    "resolve_scale_policy": "repro.control",
    "list_scale_policies": "repro.control",
    "FaultSpec": "repro.faults",
    "FaultSchedule": "repro.faults",
    "FaultInjector": "repro.faults",
    "TraceRecorder": "repro.metrics",
    "PostmortemAnalyzer": "repro.metrics",
    "build_tracker": "repro.apps",
    "TrackerConfig": "repro.apps",
    "run_experiment": "repro.experiment",
    "ExperimentSpec": "repro.experiment",
    "RunResult": "repro.experiment",
    "register_backend": "repro.backends",
    "available_backends": "repro.backends",
    "resolve_backend": "repro.backends",
    "TenancySpec": "repro.tenancy",
    "TenantSpec": "repro.tenancy",
    "TenancyResult": "repro.tenancy",
    "ResourceDemand": "repro.tenancy",
    "Scheduler": "repro.tenancy",
    "run_tenants": "repro.tenancy",
    "register_placement": "repro.tenancy",
    "ArbiterConfig": "repro.tenancy",
    "register_arbiter": "repro.tenancy",
    "available_arbiters": "repro.tenancy",
    "TelemetryHub": "repro.obs",
    "TelemetryConfig": "repro.obs",
    "NULL_HUB": "repro.obs",
}

__all__ = sorted(_LAZY) + ["__version__"]


def __getattr__(name: str):
    target = _LAZY.get(name)
    if target is None:
        raise AttributeError(f"module 'repro' has no attribute {name!r}")
    import importlib

    module = importlib.import_module(target)
    value = getattr(module, name)
    globals()[name] = value
    return value


def __dir__():
    return __all__
