"""Command-line interface: run experiments, regenerate tables, analyze traces.

Usage (also available as ``python -m repro``):

.. code-block:: text

    repro-aru run-tracker --config 1 --policy aru-max --horizon 120 \\
        [--seed 0] [--gc dgc] [--save-trace run.json] [--telemetry DIR]
    repro-aru run-tracker --list-policies
    repro-aru sweep [--workers 4] [--no-cache] [--cache-dir .bench_cache] \\
        [--seeds 3] [--horizon 120] [--policy aru-pid] [--save-csv grid.csv] \\
        [--telemetry DIR]
    repro-aru paper-tables [--seeds 2] [--horizon 120] [--save-csv grid.csv]
    repro-aru profile [--config 1] [--policy aru-min] [--horizon 30] \\
        [--sort cumtime|tottime|ncalls] [--top 25]
    repro-aru chaos examples/chaos_tracker.yaml [--horizon 60] \\
        [--policy aru-min] [--width 72] [--save-trace run.json] \\
        [--telemetry DIR]
    repro-aru chaos --list-faults
    repro-aru obs telemetry/run.jsonl

``--policy`` accepts any name registered with
:func:`repro.control.register_policy`; ``--list-policies`` prints the
catalog. ``--telemetry DIR`` records :mod:`repro.obs` metrics + spans
during the run and exports them as a Chrome/Perfetto trace, a JSONL
dump, and Prometheus text (see docs/observability.md).
    repro-aru analyze run.json
    repro-aru compare a.json b.json
    repro-aru timeline run.json [--channel C3] [--width 72]
    repro-aru dot tracker > tracker.dot
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.aru.config import AruConfig
from repro.bench import (
    ascii_timeline,
    fig6_memory_table,
    fig7_waste_table,
    fig10_performance_table,
    format_shape_report,
    run_grid,
    run_tracker_once,
    shape_checks,
)
from repro.control.registry import (
    policies_help_text,
    resolve_policy,
    resolve_scale_policy,
    scale_policies_help_text,
)
from repro.errors import ConfigError
from repro.metrics import (
    PostmortemAnalyzer,
    jitter,
    latency_stats,
    load_trace,
    throughput_fps,
)


def _policy(name: str) -> AruConfig:
    """Resolve a policy name through the control-plane registry.

    Unknown names exit with the registry's did-you-mean message instead
    of a traceback.
    """
    try:
        return resolve_policy(name)
    except ConfigError as exc:
        raise SystemExit(f"error: {exc}") from None


def _maybe_list_policies(args) -> bool:
    if getattr(args, "list_policies", False):
        print(policies_help_text())
        return True
    if getattr(args, "list_scale_policies", False):
        print(scale_policies_help_text())
        return True
    if getattr(args, "list_backends", False):
        from repro.backends import backends_help_text

        print(backends_help_text())
        return True
    return False


def _check_backend(name: str) -> str:
    """Validate a backend name eagerly (did-you-mean instead of a
    traceback mid-run)."""
    from repro.backends import resolve_backend

    try:
        resolve_backend(name)
    except ConfigError as exc:
        raise SystemExit(f"error: {exc}") from None
    return name


def _add_backend_args(parser, default: str = "sim") -> None:
    parser.add_argument("--backend", default=default, metavar="NAME",
                        help=f"execution backend (default {default}; "
                             f"see --list-backends)")
    parser.add_argument("--list-backends", action="store_true",
                        help="print the backend catalog and exit")


def _scale_policy(name):
    """Resolve a scale-policy name through the scale registry."""
    try:
        return resolve_scale_policy(name)
    except ConfigError as exc:
        raise SystemExit(f"error: {exc}") from None


def _workers_arg(value: str) -> int:
    try:
        n = int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected an integer >= 1, got {value!r}") from None
    if n < 1:
        raise argparse.ArgumentTypeError("must be >= 1")
    return n


def _export_telemetry(hub, out_dir: str, label: str) -> None:
    """Write a hub's three export formats into ``out_dir`` and print the
    closing summary table plus where everything landed."""
    from pathlib import Path

    from repro.obs import (
        summary_table,
        write_chrome_trace,
        write_jsonl,
        prometheus_text,
    )

    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    trace_path = out / f"{label}.trace.json"
    jsonl_path = out / f"{label}.jsonl"
    prom_path = out / f"{label}.prom"
    n_events = write_chrome_trace(hub, str(trace_path))
    n_records = write_jsonl(hub, str(jsonl_path))
    prom_path.write_text(prometheus_text(hub))
    print()
    print(summary_table(hub))
    print()
    print(f"telemetry: {trace_path} ({n_events} events, load in Perfetto), "
          f"{jsonl_path} ({n_records} records), {prom_path}")


def _print_run_summary(run) -> None:
    print(f"config={run.config} policy={run.policy} seed={run.seed} "
          f"horizon={run.horizon:.0f}s")
    print(f"  memory footprint : {run.mem_mean / 1e6:8.2f} MB mean, "
          f"{run.mem_std / 1e6:.2f} MB std, {run.mem_peak / 1e6:.2f} MB peak")
    print(f"  IGC lower bound  : {run.igc_mean / 1e6:8.2f} MB "
          f"({100 * run.mem_mean / run.igc_mean:.0f} % of bound used)")
    print(f"  wasted memory    : {run.wasted_memory:8.1%}")
    print(f"  wasted compute   : {run.wasted_computation:8.1%}")
    print(f"  throughput       : {run.throughput:8.2f} fps "
          f"({run.frames_delivered} frames delivered, "
          f"{run.frames_produced} produced)")
    print(f"  latency          : {run.latency_mean * 1e3:8.0f} ms mean")
    print(f"  jitter           : {run.jitter * 1e3:8.1f} ms")


def cmd_run_tracker(args) -> int:
    if _maybe_list_policies(args):
        return 0
    config = f"config{args.config}"
    backend = _check_backend(args.backend)
    if args.telemetry or backend != "sim":
        from repro.bench.experiments import metrics_from_trace
        from repro.experiment import ExperimentSpec, run_experiment

        try:
            result = run_experiment(ExperimentSpec(
                config=config, policy=_policy(args.policy), gc=args.gc,
                seed=args.seed, horizon=args.horizon,
                telemetry=bool(args.telemetry), backend=backend,
            ))
        except ConfigError as exc:
            raise SystemExit(f"error: {exc}") from None
        run = metrics_from_trace(config, _policy(args.policy).name,
                                 args.seed, args.horizon, result.trace)
        _print_run_summary(run)
        if args.telemetry:
            _export_telemetry(result.telemetry, args.telemetry,
                              f"tracker-{config}-{args.policy}-s{args.seed}")
        if args.save_trace:
            from repro.metrics import save_trace

            save_trace(result.trace, args.save_trace)
            print(f"  trace saved      : {args.save_trace}")
        return 0
    run = run_tracker_once(
        config,
        _policy(args.policy),
        seed=args.seed,
        horizon=args.horizon,
        gc=args.gc,
    )
    _print_run_summary(run)
    if args.save_trace:
        # re-run capturing the recorder (run_tracker_once returns scalars);
        # cheap relative to clarity, and seeds make it identical.
        from repro.apps import build_tracker
        from repro.bench import cluster_for, placement_for
        from repro.metrics import save_trace
        from repro.runtime import Runtime, RuntimeConfig

        runtime = Runtime(
            build_tracker(),
            RuntimeConfig(
                cluster=cluster_for(config),
                gc=args.gc,
                aru=_policy(args.policy),
                seed=args.seed,
                placement=placement_for(config),
            ),
        )
        recorder = runtime.run(until=args.horizon)
        save_trace(recorder, args.save_trace)
        print(f"  trace saved      : {args.save_trace}")
    return 0


def _print_grid_tables(grid, save_csv=None) -> None:
    for config in ("config1", "config2"):
        print(fig6_memory_table(grid, config)[0], end="\n\n")
        print(fig7_waste_table(grid, config)[0], end="\n\n")
        print(fig10_performance_table(grid, config)[0], end="\n\n")
    print(format_shape_report(shape_checks(grid)))
    if save_csv:
        from pathlib import Path

        from repro.bench import grid_to_csv

        Path(save_csv).write_text(grid_to_csv(grid))
        print(f"\nper-run CSV saved to {save_csv}")


def cmd_paper_tables(args) -> int:
    seeds = tuple(range(args.seeds))
    print(f"Simulating 2 configs x 3 policies x {len(seeds)} seeds "
          f"x {args.horizon:.0f}s ...\n")
    grid = run_grid(seeds=seeds, horizon=args.horizon, workers=args.workers)
    _print_grid_tables(grid, save_csv=args.save_csv)
    return 0


def cmd_sweep(args) -> int:
    """The full §5 grid through the parallel, cached sweep runner."""
    import time

    from repro.bench import ResultCache, SweepRunner

    if _maybe_list_policies(args):
        return 0
    backend = _check_backend(args.backend)
    policies = None
    if args.policy is not None:
        cfg = _policy(args.policy)
        policies = {cfg.name: (lambda c=cfg: c)}
    cache = None if args.no_cache else ResultCache(args.cache_dir)
    progress = None
    if args.telemetry:
        import json as _json
        from pathlib import Path

        tel_dir = Path(args.telemetry)
        tel_dir.mkdir(parents=True, exist_ok=True)

        def progress(done, total, result):
            if result.ok and result.telemetry is not None:
                spec = result.spec
                name = (f"{spec.config}-{spec.policy_label}"
                        f"-s{spec.seed}.telemetry.json")
                (tel_dir / name).write_text(_json.dumps(result.telemetry))

    runner = SweepRunner(workers=args.workers, cache=cache, progress=progress)
    seeds = tuple(range(args.seeds))
    print(f"Sweeping 2 configs x {len(policies) if policies else 3} policies "
          f"x {len(seeds)} seeds "
          f"x {args.horizon:.0f}s on {runner.workers} worker(s), "
          f"cache={'off' if cache is None else args.cache_dir} ...\n")
    t0 = time.perf_counter()
    grid = run_grid(seeds=seeds, horizon=args.horizon, runner=runner,
                    policies=policies, telemetry=bool(args.telemetry),
                    backend=backend)
    wall = time.perf_counter() - t0
    if args.telemetry:
        print(f"per-cell telemetry snapshots in {args.telemetry}/\n")
    _print_grid_tables(grid, save_csv=args.save_csv)
    stats = runner.stats
    print(f"\nsweep: {stats.total} cells in {wall:.1f}s wall — "
          f"{stats.executed} executed, {stats.cache_hits} cache hits")
    return 0


def cmd_run_config(args) -> int:
    import json
    from pathlib import Path

    from repro.bench import run_experiment, summarize_trace
    from repro.metrics import save_trace

    if _maybe_list_policies(args):
        return 0
    if args.spec is None:
        raise SystemExit(
            "run-config: a spec file is required (or use --list-backends)")
    spec = json.loads(Path(args.spec).read_text())
    if args.backend is not None:
        # CLI flag wins over the spec file's own "backend" key.
        spec["backend"] = _check_backend(args.backend)
    try:
        recorder = run_experiment(spec)
    except ConfigError as exc:
        raise SystemExit(f"error: {exc}") from None
    backend_label = spec.get("backend", "sim")
    unit = "simulated" if backend_label == "sim" else "wall-clock"
    print(f"experiment {args.spec} completed "
          f"({recorder.duration:.1f}s {unit}, backend={backend_label})")
    for key, value in summarize_trace(recorder).items():
        print(f"  {key:22s} {value:.6g}")
    if args.save_trace:
        save_trace(recorder, args.save_trace)
        print(f"  trace saved to {args.save_trace}")
    return 0


def cmd_chaos(args) -> int:
    """Run an experiment under a scripted fault schedule, report resilience."""
    from repro.bench.specfile import experiment_from_dict
    from repro.faults import (
        FaultInjector,
        list_faults_text,
        load_chaos_file,
        resilience_report,
    )
    from repro.metrics import gantt, save_trace
    from repro.runtime import Runtime

    if _maybe_list_policies(args):
        return 0
    if args.list_faults:
        print(list_faults_text())
        return 0
    if not args.schedule:
        raise SystemExit(
            "chaos: a schedule file is required (or use --list-faults)")
    experiment, schedule, detector = load_chaos_file(args.schedule)
    graph, runtime_config, horizon = experiment_from_dict(experiment)
    from dataclasses import replace

    if args.policy is not None:
        runtime_config = replace(runtime_config, aru=_policy(args.policy))
    if args.horizon is not None:
        horizon = args.horizon
    hub = None
    if args.telemetry:
        from repro.obs import TelemetryHub

        hub = TelemetryHub()
        runtime_config = replace(runtime_config, telemetry=hub)
    runtime = Runtime(graph, runtime_config)
    kwargs = dict(detector)
    if "interval" in kwargs:
        kwargs["detect_interval"] = kwargs.pop("interval")
    injector = FaultInjector(runtime, schedule, **kwargs).install()
    recorder = runtime.run(until=horizon)
    print(f"chaos run: {args.schedule} — {len(schedule)} scheduled faults, "
          f"{recorder.duration:.1f}s simulated")
    print()
    print(gantt(recorder, width=args.width, fault_log=injector.log))
    print()
    print(resilience_report(injector.log, recorder, sources=graph.sources()))
    if hub is not None:
        from pathlib import Path

        label = f"chaos-{Path(args.schedule).stem}"
        print()
        _export_telemetry(hub, args.telemetry, label)
    if args.save_trace:
        save_trace(recorder, args.save_trace)
        print(f"\ntrace saved to {args.save_trace}")
    return 0


def cmd_elastic(args) -> int:
    """Run the elastic workload under a scale policy, report the swing."""
    from repro.apps.elastic import elastic_pipeline
    from repro.experiment import ExperimentSpec, run_experiment
    from repro.metrics.performance import latency_percentiles, throughput_fps

    if _maybe_list_policies(args):
        return 0
    backend = _check_backend(args.backend)
    swing = (args.swing_start, args.swing_end, args.swing_factor)
    graph = elastic_pipeline(
        replicas=args.replicas,
        max_replicas=args.max_replicas,
        worker_cost=args.worker_cost,
        steady_period=args.period,
        swing=swing if args.swing_factor != 1.0 else None,
    )
    try:
        result = run_experiment(ExperimentSpec(
            app=graph,
            config=f"config{args.config}",
            policy=_policy(args.policy),
            scale_policy=_scale_policy(args.scale_policy),
            seed=args.seed,
            horizon=args.horizon,
            telemetry=bool(args.telemetry),
            backend=backend,
        ))
    except ConfigError as exc:
        raise SystemExit(f"error: {exc}") from None
    recorder = result.trace
    runtime = result.runtime
    pct = latency_percentiles(recorder, percentiles=(50, 95))
    print(f"elastic run: scale-policy={args.scale_policy or 'none'} "
          f"policy={args.policy} seed={args.seed} "
          f"horizon={args.horizon:.0f}s swing=x{args.swing_factor:.0f} "
          f"during [{args.swing_start:.0f}, {args.swing_end:.0f})s")
    print(f"  throughput       : {throughput_fps(recorder):8.2f} fps")
    print(f"  latency p50      : {pct.get(50, float('nan')) * 1e3:8.0f} ms")
    print(f"  latency p95      : {pct.get(95, float('nan')) * 1e3:8.0f} ms")
    for stage, info in result.stats.get("scaling", {}).items():
        print(f"  stage {stage!r}: {info['replicas']} replicas at end, "
              f"{info['decisions']} control decisions")
    for stage, ctl in getattr(runtime, "scalers", {}).items():
        events = [(t, cur, des, ap) for (t, cur, des, ap) in ctl.decisions
                  if ap]
        for t, cur, des, applied in events:
            verb = "out" if applied > 0 else "in"
            print(f"    t={t:7.2f}s scale-{verb:3s} {cur} -> {cur + applied} "
                  f"(desired {des})")
    if args.telemetry:
        _export_telemetry(result.telemetry, args.telemetry,
                          f"elastic-{args.scale_policy or 'fixed'}"
                          f"-s{args.seed}")
    return 0


def cmd_tenants(args) -> int:
    """Run a multi-tenant fleet on one shared cluster."""
    import json
    from pathlib import Path

    from repro.tenancy import (
        TenancySpec,
        TenantSpec,
        arbiters_help_text,
        placements_help_text,
        run_tenants,
        scaled_tracker_config,
        tenancy_from_dict,
    )

    if args.list_placements:
        print(placements_help_text())
        return 0
    if args.list_arbiters:
        print(arbiters_help_text())
        return 0
    if _maybe_list_policies(args):
        return 0
    try:
        if args.spec is not None:
            raw = json.loads(Path(args.spec).read_text())
            spec = tenancy_from_dict(raw)
            if args.placement is not None:
                spec = spec.with_(placement=args.placement)
            if args.horizon is not None:
                spec = spec.with_(horizon=args.horizon)
            if args.arbiter is not None:
                spec = spec.with_(arbiter=args.arbiter)
        else:
            # Synthetic fleet: N equal scaled-down trackers.
            cfg = scaled_tracker_config(0.1, frame_period=0.2, cv=0.0)
            policy = _policy(args.policy) if args.policy else None
            spec = TenancySpec(
                tenants=tuple(
                    TenantSpec(f"tenant{i}", app_config=cfg, policy=policy)
                    for i in range(args.tenants)
                ),
                cluster=args.nodes,
                placement=args.placement or "rstorm",
                admission=args.admission,
                arbiter=args.arbiter,
                seed=args.seed,
                horizon=args.horizon if args.horizon is not None else 10.0,
            )
        result = run_tenants(spec)
    except ConfigError as exc:
        raise SystemExit(f"error: {exc}") from None
    n = len(result.records)
    admitted = len(result.admitted)
    arb = (result.arbitration["arbiter"] if result.arbitration else "none")
    # Keep stdout pure JSON under --json so the output pipes into jq.
    print(f"tenants: {n} declared, {admitted} admitted, "
          f"placement={result.runtime.scheduler.strategy.name} "
          f"admission={spec.admission} arbiter={arb} "
          f"horizon={spec.horizon:.0f}s",
          file=sys.stderr if args.json else sys.stdout)
    if args.json:
        payload = {
            "tenants": {
                name: {
                    "state": rec.state,
                    "deliveries": rec.deliveries,
                    "goodput": rec.goodput,
                    "latency_p95": rec.latency_p95,
                    "placement": rec.placement,
                }
                for name, rec in result.records.items()
            },
            "jain": result.fairness.jain,
            "weighted_jain": result.fairness.weighted_jain,
            "utilization": result.fairness.utilization,
        }
        if result.arbitration is not None:
            payload["arbitration"] = {
                k: v for k, v in result.arbitration.items()
                if k != "actions"
            }
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        print(result.format())
    return 0


def cmd_compare(args) -> int:
    from repro.bench import compare_traces
    from repro.metrics import rebase_trace

    # Traces from live backends carry wall-clock bases (epoch seconds),
    # so two runs land on disjoint time axes; normalize both to t=0
    # before diffing.
    a = rebase_trace(load_trace(args.trace_a))
    b = rebase_trace(load_trace(args.trace_b))
    print(compare_traces(a, b, label_a=args.trace_a, label_b=args.trace_b))
    return 0


def cmd_dot(args) -> int:
    from repro.runtime import graph_to_dot

    if args.app == "tracker":
        from repro.apps import build_tracker

        graph = build_tracker()
    elif args.app == "gesture":
        from repro.apps import build_gesture

        graph = build_gesture()
    elif args.app == "stereo":
        from repro.apps import build_stereo

        graph = build_stereo()
    else:  # pragma: no cover - argparse choices prevent it
        raise SystemExit(f"unknown app {args.app!r}")
    print(graph_to_dot(graph), end="")
    return 0


def cmd_analyze(args) -> int:
    recorder = load_trace(args.trace)
    pm = PostmortemAnalyzer(recorder)
    lat_mean, lat_std = latency_stats(recorder)
    print(f"trace: {args.trace} ({recorder.duration:.1f} s, "
          f"{len(recorder.items)} items, {len(recorder.iterations)} iterations)")
    print(f"  memory footprint : {pm.footprint().mean() / 1e6:8.2f} MB mean")
    print(f"  IGC lower bound  : {pm.ideal_footprint().mean() / 1e6:8.2f} MB")
    print(f"  wasted memory    : {pm.wasted_memory_fraction:8.1%}")
    print(f"  wasted compute   : {pm.wasted_computation_fraction:8.1%}")
    print(f"  throughput       : {throughput_fps(recorder):8.2f} fps")
    print(f"  latency          : {lat_mean * 1e3:8.0f} ms "
          f"(± {lat_std * 1e3:.0f} ms within-run)")
    print(f"  jitter           : {jitter(recorder) * 1e3:8.1f} ms")
    print("  per-channel:")
    for channel, stats in sorted(pm.channel_report().items()):
        print(f"    {channel:12s} items={stats['items']:6d} "
              f"wasted={stats['wasted_items']:6d} "
              f"mean={stats['bytes_mean'] / 1e6:7.2f} MB "
              f"peak={stats['bytes_peak'] / 1e6:7.2f} MB")
    print("  per-thread compute:")
    for thread, stats in sorted(pm.thread_waste_report().items()):
        print(f"    {thread:18s} {stats['compute']:8.1f} s total, "
              f"{stats['wasted']:7.1f} s wasted "
              f"({stats['wasted_fraction']:6.1%}) over "
              f"{stats['iterations']} iterations")
    return 0


def cmd_profile(args) -> int:
    """cProfile one tracker cell (simulation + postmortem), print hot spots."""
    import cProfile
    import pstats

    config = f"config{args.config}"
    policy = _policy(args.policy)
    profiler = cProfile.Profile()
    profiler.enable()
    run = run_tracker_once(
        config, policy, seed=args.seed, horizon=args.horizon, gc=args.gc
    )
    profiler.disable()
    print(f"profiled: {config} policy={args.policy} seed={args.seed} "
          f"horizon={args.horizon:.0f}s "
          f"({run.frames_delivered} frames delivered)\n")
    stats = pstats.Stats(profiler, stream=sys.stdout)
    stats.strip_dirs().sort_stats(args.sort).print_stats(args.limit)
    return 0


def cmd_gantt(args) -> int:
    from repro.metrics import gantt

    recorder = load_trace(args.trace)
    print(gantt(recorder, width=args.width))
    return 0


def cmd_timeline(args) -> int:
    recorder = load_trace(args.trace)
    pm = PostmortemAnalyzer(recorder)
    timeline = pm.footprint(args.channel)
    title = f"memory footprint — {args.channel or 'all channels'}"
    print(ascii_timeline(timeline, width=args.width, height=args.height,
                         title=title))
    return 0


def cmd_obs(args) -> int:
    """Summarize a telemetry JSONL export offline."""
    from repro.obs import read_jsonl, summary_from_records

    records = read_jsonl(args.file)
    print(f"telemetry: {args.file} ({len(records)} records)")
    print()
    print(summary_from_records(records))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-aru",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_run = sub.add_parser("run-tracker", help="one tracker simulation")
    p_run.add_argument("--config", type=int, choices=(1, 2), default=1)
    p_run.add_argument("--policy", default="aru-min", metavar="NAME",
                       help="registered policy name (default aru-min; "
                            "see --list-policies)")
    p_run.add_argument("--list-policies", action="store_true",
                       help="print the policy catalog and exit")
    p_run.add_argument("--seed", type=int, default=0)
    p_run.add_argument("--horizon", type=float, default=120.0)
    p_run.add_argument("--gc", default="dgc",
                       choices=("null", "ref", "tgc", "dgc"))
    p_run.add_argument("--save-trace", metavar="PATH", default=None)
    p_run.add_argument("--telemetry", metavar="DIR", default=None,
                       help="record repro.obs telemetry and export it "
                            "(Chrome trace + JSONL + Prometheus text) to DIR")
    _add_backend_args(p_run)
    p_run.set_defaults(func=cmd_run_tracker)

    p_tables = sub.add_parser("paper-tables",
                              help="regenerate figs. 6/7/10 + shape report")
    p_tables.add_argument("--seeds", type=int, default=2)
    p_tables.add_argument("--horizon", type=float, default=120.0)
    p_tables.add_argument("--save-csv", metavar="PATH", default=None)
    p_tables.add_argument("--workers", type=_workers_arg, default=1,
                          help="simulation worker processes (default 1)")
    p_tables.set_defaults(func=cmd_paper_tables)

    p_sweep = sub.add_parser(
        "sweep",
        help="parallel, cached regeneration of the full §5 grid")
    p_sweep.add_argument("--seeds", type=int, default=3,
                         help="number of seeds per cell (default 3)")
    p_sweep.add_argument("--horizon", type=float, default=120.0)
    p_sweep.add_argument("--workers", type=_workers_arg, default=None,
                         help="worker processes (default: CPU count - 1)")
    p_sweep.add_argument("--no-cache", action="store_true",
                         help="always re-execute; don't read or write the "
                              "result cache")
    p_sweep.add_argument("--cache-dir", metavar="PATH", default=".bench_cache",
                         help="result cache directory (default .bench_cache)")
    p_sweep.add_argument("--save-csv", metavar="PATH", default=None)
    p_sweep.add_argument("--policy", default=None, metavar="NAME",
                         help="sweep a single registered policy instead of "
                              "the paper's three")
    p_sweep.add_argument("--list-policies", action="store_true",
                         help="print the policy catalog and exit")
    p_sweep.add_argument("--telemetry", metavar="DIR", default=None,
                         help="record telemetry per cell and write "
                              "snapshot JSONs into DIR")
    _add_backend_args(p_sweep)
    p_sweep.set_defaults(func=cmd_sweep)

    p_rc = sub.add_parser("run-config",
                          help="run an experiment described by a JSON spec")
    p_rc.add_argument("spec", nargs="?", default=None)
    p_rc.add_argument("--save-trace", metavar="PATH", default=None)
    p_rc.add_argument("--backend", default=None, metavar="NAME",
                      help="override the spec file's backend "
                           "(see --list-backends)")
    p_rc.add_argument("--list-backends", action="store_true",
                      help="print the backend catalog and exit")
    p_rc.set_defaults(func=cmd_run_config)

    p_chaos = sub.add_parser(
        "chaos",
        help="run an experiment under a fault schedule, report resilience")
    p_chaos.add_argument("schedule", nargs="?", default=None,
                         help="YAML/JSON chaos file (experiment + faults)")
    p_chaos.add_argument("--list-faults", action="store_true",
                         help="print the fault-kind catalog and exit")
    p_chaos.add_argument("--horizon", type=float, default=None,
                         help="override the experiment's horizon")
    p_chaos.add_argument("--width", type=int, default=72,
                         help="gantt chart width (default 72)")
    p_chaos.add_argument("--policy", default=None, metavar="NAME",
                         help="override the experiment's ARU policy with a "
                              "registered one")
    p_chaos.add_argument("--list-policies", action="store_true",
                         help="print the policy catalog and exit")
    p_chaos.add_argument("--save-trace", metavar="PATH", default=None)
    p_chaos.add_argument("--telemetry", metavar="DIR", default=None,
                         help="record repro.obs telemetry (incl. fault "
                              "events) and export it to DIR")
    p_chaos.set_defaults(func=cmd_chaos)

    p_el = sub.add_parser(
        "elastic",
        help="run the elastic replicated-stage workload under a scale "
             "policy")
    p_el.add_argument("--config", type=int, choices=(1, 2), default=1)
    p_el.add_argument("--policy", default="no-aru", metavar="NAME",
                      help="ARU rate policy (default no-aru)")
    p_el.add_argument("--scale-policy", default="erlang", metavar="NAME",
                      help="registered scale policy (default erlang; "
                           "see --list-scale-policies)")
    p_el.add_argument("--list-scale-policies", action="store_true",
                      help="print the scale-policy catalog and exit")
    p_el.add_argument("--list-policies", action="store_true",
                      help="print the rate-policy catalog and exit")
    p_el.add_argument("--replicas", type=int, default=1,
                      help="initial worker replicas (default 1)")
    p_el.add_argument("--max-replicas", type=int, default=6,
                      help="scale-out ceiling (default 6)")
    p_el.add_argument("--worker-cost", type=float, default=0.03,
                      help="per-item worker compute seconds (default 0.03)")
    p_el.add_argument("--period", type=float, default=0.12,
                      help="steady source period seconds (default 0.12)")
    p_el.add_argument("--swing-start", type=float, default=40.0)
    p_el.add_argument("--swing-end", type=float, default=80.0)
    p_el.add_argument("--swing-factor", type=float, default=10.0,
                      help="rate multiplier during the swing (default 10; "
                           "1 disables the swing)")
    p_el.add_argument("--seed", type=int, default=0)
    p_el.add_argument("--horizon", type=float, default=120.0)
    p_el.add_argument("--telemetry", metavar="DIR", default=None,
                      help="record repro.obs telemetry (incl. scale "
                           "events) and export it to DIR")
    _add_backend_args(p_el)
    p_el.set_defaults(func=cmd_elastic)

    p_ten = sub.add_parser(
        "tenants",
        help="run a multi-tenant fleet on one shared cluster")
    p_ten.add_argument("spec", nargs="?", default=None,
                       help="JSON tenancy spec (see repro.tenancy.specfile); "
                            "omit for a synthetic tracker fleet")
    p_ten.add_argument("--tenants", type=int, default=4, metavar="N",
                       help="synthetic fleet size when no spec file is "
                            "given (default 4)")
    p_ten.add_argument("--nodes", type=int, default=4,
                       help="uniform cluster size for the synthetic fleet "
                            "(default 4)")
    p_ten.add_argument("--placement", default=None, metavar="NAME",
                       help="placement strategy (default rstorm; see "
                            "--list-placements)")
    p_ten.add_argument("--list-placements", action="store_true",
                       help="print the placement-strategy catalog and exit")
    p_ten.add_argument("--admission", default="queue", metavar="MODE",
                       help="over-capacity behaviour: queue or reject "
                            "(default queue)")
    p_ten.add_argument("--arbiter", default=None, metavar="NAME",
                       help="cross-tenant arbiter (default none; see "
                            "--list-arbiters)")
    p_ten.add_argument("--list-arbiters", action="store_true",
                       help="print the arbiter catalog and exit")
    p_ten.add_argument("--policy", default=None, metavar="NAME",
                       help="per-tenant ARU policy for the synthetic fleet "
                            "(default none)")
    p_ten.add_argument("--list-policies", action="store_true",
                       help="print the policy catalog and exit")
    p_ten.add_argument("--seed", type=int, default=0)
    p_ten.add_argument("--horizon", type=float, default=None,
                       help="override the spec's horizon (synthetic default "
                            "10s)")
    p_ten.add_argument("--json", action="store_true",
                       help="machine-readable per-tenant summary")
    p_ten.set_defaults(func=cmd_tenants)

    p_cmp = sub.add_parser("compare", help="compare two saved traces")
    p_cmp.add_argument("trace_a")
    p_cmp.add_argument("trace_b")
    p_cmp.set_defaults(func=cmd_compare)

    p_dot = sub.add_parser("dot", help="emit a Graphviz DOT task graph")
    p_dot.add_argument("app", choices=("tracker", "gesture", "stereo"))
    p_dot.set_defaults(func=cmd_dot)

    p_prof = sub.add_parser(
        "profile",
        help="cProfile one tracker cell (simulation + full postmortem)")
    p_prof.add_argument("--config", type=int, choices=(1, 2), default=1)
    p_prof.add_argument("--policy", default="aru-min", metavar="NAME",
                        help="registered policy name (default aru-min)")
    p_prof.add_argument("--seed", type=int, default=0)
    p_prof.add_argument("--horizon", type=float, default=30.0)
    p_prof.add_argument("--gc", default="dgc",
                        choices=("null", "ref", "tgc", "dgc"))
    p_prof.add_argument("--sort", default="cumulative",
                        choices=("cumulative", "cumtime", "tottime", "ncalls"),
                        help="pstats sort key; cumtime is an alias for "
                             "cumulative (default cumulative)")
    p_prof.add_argument("--top", "--limit", type=int, default=25,
                        dest="limit", metavar="N",
                        help="rows of the hot-function table (default 25)")
    p_prof.set_defaults(func=cmd_profile)

    p_an = sub.add_parser("analyze", help="postmortem of a saved trace")
    p_an.add_argument("trace")
    p_an.set_defaults(func=cmd_analyze)

    p_gantt = sub.add_parser("gantt",
                             help="ASCII per-thread activity chart of a trace")
    p_gantt.add_argument("trace")
    p_gantt.add_argument("--width", type=int, default=72)
    p_gantt.set_defaults(func=cmd_gantt)

    p_tl = sub.add_parser("timeline", help="ASCII footprint chart of a trace")
    p_tl.add_argument("trace")
    p_tl.add_argument("--channel", default=None)
    p_tl.add_argument("--width", type=int, default=72)
    p_tl.add_argument("--height", type=int, default=14)
    p_tl.set_defaults(func=cmd_timeline)

    p_obs = sub.add_parser(
        "obs", help="summarize a telemetry JSONL export (repro.obs)")
    p_obs.add_argument("file", help="JSONL file written by --telemetry")
    p_obs.set_defaults(func=cmd_obs)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except KeyboardInterrupt:
        print("\ninterrupted — pending sweep cells cancelled",
              file=sys.stderr)
        return 130


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
