"""Declarative fault schedules: what breaks, when, and how.

A :class:`FaultSpec` is one timed fault; a :class:`FaultSchedule` is a
validated, time-sorted sequence of them. Both are frozen, picklable pure
data — they travel through :class:`~repro.bench.runner.CellSpec` into
sweep workers and hash cleanly into the content-addressed result cache.

Schedules load from plain dicts (and therefore YAML/JSON chaos files,
mirroring :mod:`repro.bench.specfile`): each fault names its target with
a ``thread:``, ``node:``, or ``link:`` key matching its kind family, e.g.

.. code-block:: yaml

    faults:
      - {kind: thread_crash,   at: 12.0, thread: target_detect2}
      - {kind: thread_restart, at: 20.0, thread: target_detect2}
      - {kind: link_degrade,   at: 28.0, link: node0->node3, factor: 20}
      - {kind: message_drop,   at: 40.0, link: node2->node3,
         probability: 0.5, duration: 4.0}
"""

from __future__ import annotations

import json
from dataclasses import dataclass, fields, replace
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.errors import FaultError

#: Catalog of fault kinds: {kind: (target family, parameters, description)}.
FAULT_KINDS: Dict[str, Tuple[str, str, str]] = {
    "thread_crash": (
        "thread", "",
        "kill a task thread (ProcessKilled at its current yield point)"),
    "thread_stall": (
        "thread", "duration (s, required)",
        "freeze a thread without killing it — the livelock case"),
    "thread_restart": (
        "thread", "",
        "respawn a thread cold: fresh generator, new connections, "
        "reset ARU state"),
    "node_crash": (
        "node", "",
        "crash a node: every resident thread dies (storage survives)"),
    "node_restart": (
        "node", "",
        "bring a node back up, respawning its dead threads"),
    "link_degrade": (
        "link", "factor (>1, required); duration (s, optional)",
        "inflate a link's transfer times by factor"),
    "link_partition": (
        "link", "mode (fail|block, default fail); duration (s, optional)",
        "cut a link: transfers raise LinkDown (fail) or park (block)"),
    "link_restore": (
        "link", "",
        "clear every fault on a link (degrade, partition, drop)"),
    "message_drop": (
        "link", "probability ((0,1], required); duration (s, optional); "
        "seed (int, optional)",
        "lose each transfer on a link with probability (seeded RNG)"),
}

_THREAD_KINDS = frozenset(k for k, v in FAULT_KINDS.items() if v[0] == "thread")
_NODE_KINDS = frozenset(k for k, v in FAULT_KINDS.items() if v[0] == "node")
_LINK_KINDS = frozenset(k for k, v in FAULT_KINDS.items() if v[0] == "link")

#: Kinds whose injection *is* a recovery action, and which earlier fault
#: kinds (same target) they resolve.
RECOVERY_KINDS: Dict[str, Tuple[str, ...]] = {
    "thread_restart": ("thread_crash", "thread_stall"),
    "node_restart": ("node_crash",),
    "link_restore": ("link_degrade", "link_partition", "message_drop"),
}

#: Kinds accepting a bounded window: the fault auto-clears after duration.
_WINDOW_KINDS = frozenset(
    {"thread_stall", "link_degrade", "link_partition", "message_drop"}
)


@dataclass(frozen=True)
class FaultSpec:
    """One timed fault. Pure data; validated on construction."""

    kind: str
    at: float
    #: Thread name, node name, or ``"src->dst"`` link, per the kind family.
    target: str
    #: Fault window in seconds (window kinds only; None = until restored).
    duration: Optional[float] = None
    #: Transfer-time inflation (link_degrade only).
    factor: Optional[float] = None
    #: Per-transfer loss probability (message_drop only).
    probability: Optional[float] = None
    #: Partition behaviour: ``"fail"`` or ``"block"`` (link_partition only).
    mode: str = "fail"
    #: Extra RNG-stream salt (message_drop only).
    seed: int = 0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise FaultError(
                f"unknown fault kind {self.kind!r}; expected one of "
                f"{sorted(FAULT_KINDS)}"
            )
        if self.at < 0:
            raise FaultError(f"{self.kind}: injection time must be >= 0, "
                             f"got {self.at}")
        if not self.target or not isinstance(self.target, str):
            raise FaultError(f"{self.kind}: target must be a non-empty string")
        if self.kind in _LINK_KINDS:
            if "->" not in self.target:
                raise FaultError(
                    f"{self.kind}: link target must be 'src->dst', "
                    f"got {self.target!r}"
                )
        elif "->" in self.target:
            raise FaultError(
                f"{self.kind}: target {self.target!r} looks like a link; "
                f"this kind targets a {FAULT_KINDS[self.kind][0]}"
            )
        if self.duration is not None:
            if self.kind not in _WINDOW_KINDS:
                raise FaultError(f"{self.kind} takes no duration")
            if self.duration <= 0:
                raise FaultError(
                    f"{self.kind}: duration must be positive, got {self.duration}"
                )
        elif self.kind == "thread_stall":
            raise FaultError("thread_stall requires a duration")
        if self.kind == "link_degrade":
            if self.factor is None or self.factor <= 1.0:
                raise FaultError(
                    f"link_degrade requires factor > 1, got {self.factor}"
                )
        elif self.factor is not None:
            raise FaultError(f"{self.kind} takes no factor")
        if self.kind == "message_drop":
            if self.probability is None or not 0.0 < self.probability <= 1.0:
                raise FaultError(
                    f"message_drop requires probability in (0, 1], "
                    f"got {self.probability}"
                )
        elif self.probability is not None:
            raise FaultError(f"{self.kind} takes no probability")
        if self.mode not in ("fail", "block"):
            raise FaultError(f"partition mode must be fail/block, got {self.mode!r}")
        if self.mode != "fail" and self.kind != "link_partition":
            raise FaultError(f"{self.kind} takes no mode")

    # ------------------------------------------------------------------
    @property
    def link_endpoints(self) -> Tuple[str, str]:
        """``(src, dst)`` of a link target (link kinds only)."""
        src, _, dst = self.target.partition("->")
        return src.strip(), dst.strip()

    def with_(self, **changes) -> "FaultSpec":
        return replace(self, **changes)

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "FaultSpec":
        """Build from a chaos-file entry (``thread``/``node``/``link`` key)."""
        if not isinstance(d, dict):
            raise FaultError(f"fault spec must be a dict, got {d!r}")
        d = dict(d)
        kind = d.pop("kind", None)
        if kind is None:
            raise FaultError(f"fault spec missing 'kind': {d!r}")
        target_keys = [k for k in ("thread", "node", "link", "target") if k in d]
        if len(target_keys) != 1:
            raise FaultError(
                f"fault {kind!r} needs exactly one of thread/node/link, "
                f"got {target_keys or 'none'}"
            )
        key = target_keys[0]
        target = d.pop(key)
        family = FAULT_KINDS.get(kind, (None,))[0]
        if key != "target" and family is not None and key != family:
            raise FaultError(
                f"fault {kind!r} targets a {family}, but the spec used "
                f"{key!r}"
            )
        allowed = {f.name for f in fields(cls)} - {"kind", "target"}
        unknown = set(d) - allowed
        if unknown:
            raise FaultError(f"unknown key(s) in fault {kind!r}: {sorted(unknown)}")
        if "at" not in d:
            raise FaultError(f"fault {kind!r} missing 'at' (injection time)")
        return cls(kind=kind, target=str(target), **d)

    def to_dict(self) -> Dict[str, Any]:
        family = FAULT_KINDS[self.kind][0]
        out: Dict[str, Any] = {"kind": self.kind, "at": self.at,
                               family: self.target}
        for key in ("duration", "factor", "probability"):
            value = getattr(self, key)
            if value is not None:
                out[key] = value
        if self.kind == "link_partition":
            out["mode"] = self.mode
        if self.kind == "message_drop" and self.seed:
            out["seed"] = self.seed
        return out


class FaultSchedule:
    """A validated sequence of faults, stably sorted by injection time."""

    def __init__(self, faults: Sequence[FaultSpec] = ()) -> None:
        faults = tuple(faults)
        for f in faults:
            if not isinstance(f, FaultSpec):
                raise FaultError(f"schedule entries must be FaultSpec, got {f!r}")
        #: Sorted by ``at``; schedule order breaks ties (stable sort).
        self.faults: Tuple[FaultSpec, ...] = tuple(
            sorted(faults, key=lambda f: f.at)
        )

    @classmethod
    def from_dicts(cls, entries: Sequence[Dict[str, Any]]) -> "FaultSchedule":
        return cls(tuple(FaultSpec.from_dict(e) for e in entries))

    def to_dicts(self) -> List[Dict[str, Any]]:
        return [f.to_dict() for f in self.faults]

    @property
    def is_empty(self) -> bool:
        return not self.faults

    def __iter__(self) -> Iterator[FaultSpec]:
        return iter(self.faults)

    def __len__(self) -> int:
        return len(self.faults)

    def __bool__(self) -> bool:
        return bool(self.faults)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<FaultSchedule {len(self.faults)} faults>"


# -- chaos files ------------------------------------------------------------

_DETECTOR_KEYS = {"interval", "stall_timeout", "degrade_ratio"}


def chaos_from_dict(data: Dict[str, Any]):
    """Split a chaos-file dict into its three parts.

    Returns ``(experiment_spec, schedule, detector_kwargs)`` where
    ``experiment_spec`` feeds :func:`repro.bench.specfile.experiment_from_dict`
    (which validates it), ``schedule`` is the :class:`FaultSchedule`, and
    ``detector_kwargs`` configure the :class:`~repro.faults.injector.FaultInjector`.
    """
    if not isinstance(data, dict):
        raise FaultError("chaos spec must be a dict")
    data = dict(data)
    schedule = FaultSchedule.from_dicts(data.pop("faults", []))
    detector = dict(data.pop("detector", {}) or {})
    unknown = set(detector) - _DETECTOR_KEYS
    if unknown:
        raise FaultError(f"unknown key(s) in detector: {sorted(unknown)}")
    experiment = data.pop("experiment", None)
    if experiment is None:
        # flat layout: remaining top-level keys are the experiment
        experiment = data
    elif data:
        raise FaultError(
            f"unexpected top-level key(s) next to 'experiment': {sorted(data)}"
        )
    return experiment, schedule, detector


def load_chaos_file(path) -> Tuple[Dict[str, Any], FaultSchedule, Dict[str, Any]]:
    """Load a YAML or JSON chaos file (YAML needs the optional pyyaml)."""
    path = Path(path)
    text = path.read_text()
    if path.suffix.lower() in (".yaml", ".yml"):
        try:
            import yaml
        except ImportError:  # pragma: no cover - pyyaml present in dev env
            raise FaultError(
                f"{path}: reading YAML requires pyyaml; use a .json schedule"
            ) from None
        data = yaml.safe_load(text)
    else:
        data = json.loads(text)
    return chaos_from_dict(data)


def list_faults_text() -> str:
    """The ``repro chaos --list-faults`` catalog."""
    lines = ["fault kinds (targets: thread name, node name, or src->dst link):",
             ""]
    width = max(len(k) for k in FAULT_KINDS)
    for kind, (family, params, desc) in FAULT_KINDS.items():
        lines.append(f"  {kind:<{width}}  [{family}] {desc}")
        if params:
            lines.append(f"  {'':<{width}}  params: {params}")
    lines += [
        "",
        "every fault: kind, at (s), and its target key; windowed kinds",
        "accept duration (s) after which the fault clears itself.",
    ]
    return "\n".join(lines)
