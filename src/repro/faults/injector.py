"""Fault execution and failure detection against a live Runtime.

:class:`FaultInjector` turns a :class:`~repro.faults.spec.FaultSchedule`
into engine processes: one walks the schedule applying faults through the
runtime's fault primitives (``kill_thread``, ``restart_thread``,
``crash_node``, link state); windowed faults spawn an expiry process that
clears them. :class:`FaultDetector` is the honest observer: it polls
thread liveness and progress and listens to transport-error and link
observations, emitting *symptoms* into the shared
:class:`~repro.metrics.faultlog.FaultEventLog` — it never reads the
schedule, so a fault counts as detected only when its effects are
actually visible.

Determinism: ``install()`` on an empty schedule registers nothing — no
processes, no hooks — so the run is bit-identical to a fault-free one.
With faults, all decisions derive from engine time and the runtime's
seeded RNG registry (``faults.drop.<link>`` streams), so equal seeds and
schedules reproduce equal traces in any worker layout.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Generator, Optional

from repro.errors import FaultError
from repro.faults.spec import RECOVERY_KINDS, FaultSchedule, FaultSpec
from repro.metrics.faultlog import FaultEventLog

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime.runtime import Runtime


class FaultDetector:
    """Polling failure detector plus symptom listeners.

    Detection channels:

    * **liveness poll** (every ``interval`` s): a thread transitioning
      alive->dead emits ``thread_dead``; dead->alive emits ``thread_back``.
      A node whose resident threads are all dead emits ``node_dead``
      (and ``node_back`` on recovery).
    * **stall detection**: a live thread that completed no iteration for
      ``stall_timeout`` seconds while *not* legitimately waiting
      (blocked on a peer or throttle-sleeping) emits ``thread_stalled``.
      ``stall_timeout`` must exceed the longest legitimate compute
      segment, or healthy threads get flagged.
    * **transport errors** (pushed by thread drivers): ``link_down`` /
      ``message_dropped`` with the failing link as target.
    * **link observations** (pushed by links): completed transfers whose
      duration exceeds ``degrade_ratio`` x nominal flip the link to
      *slow* (``link_slow``); returning under the ratio flips it back
      (``link_ok``). Block-mode partitions emit ``link_blocked`` when a
      transfer parks.
    """

    def __init__(self, runtime: "Runtime", log: FaultEventLog,
                 interval: float = 0.25, stall_timeout: float = 1.0,
                 degrade_ratio: float = 1.5) -> None:
        if interval <= 0:
            raise FaultError(f"detector interval must be positive: {interval}")
        if stall_timeout <= 0:
            raise FaultError(f"stall_timeout must be positive: {stall_timeout}")
        if degrade_ratio <= 1.0:
            raise FaultError(f"degrade_ratio must be > 1: {degrade_ratio}")
        self.runtime = runtime
        self.log = log
        self.interval = interval
        self.stall_timeout = stall_timeout
        self.degrade_ratio = degrade_ratio
        self._thread_alive: Dict[str, bool] = {
            name: True for name in runtime.drivers
        }
        #: thread -> (iterations at last progress, time of last progress)
        self._progress: Dict[str, tuple] = {}
        self._stalled_flagged: Dict[str, bool] = {}
        self._node_up: Dict[str, bool] = {name: True for name in runtime.nodes}
        self._link_state: Dict[str, str] = {}

    def _symptom(self, symptom: str, target: str, t: float,
                 source: Optional[str] = None) -> None:
        """Log one detected symptom and mirror it into telemetry."""
        if source is not None:
            self.log.on_symptom(symptom, target, t, source=source)
        else:
            self.log.on_symptom(symptom, target, t)
        obs = self.runtime.obs
        if obs.enabled:
            obs.on_fault("detected", symptom, target, t, source=source)

    # -- pushed symptoms ---------------------------------------------------
    def on_transport_error(self, symptom: str, target: str, source: str) -> None:
        """Runtime fault-hook: a thread hit LinkDown/MessageDropped."""
        t = self.runtime.engine.now
        if symptom == "link_down":
            self._link_state[target] = "down"
        self._symptom(symptom, target, t, source=source)

    def on_link_observation(self, symptom: str, link_name: str, **info) -> None:
        """Link observer: transfer outcomes and blocked partitions."""
        t = self.runtime.engine.now
        if symptom == "link_blocked":
            self._link_state[link_name] = "down"
            self._symptom("link_blocked", link_name, t)
            return
        if symptom != "transfer_ok":  # pragma: no cover - future symptoms
            self._symptom(symptom, link_name, t)
            return
        nominal = info.get("nominal", 0.0)
        duration = info.get("duration", 0.0)
        slow = nominal > 0 and duration > self.degrade_ratio * nominal
        previous = self._link_state.get(link_name, "ok")
        if slow and previous != "slow":
            self._link_state[link_name] = "slow"
            self._symptom("link_slow", link_name, t)
        elif not slow and previous != "ok":
            self._link_state[link_name] = "ok"
            self._symptom("link_ok", link_name, t)

    # -- liveness/stall poll ----------------------------------------------
    def poll(self) -> Generator:
        """DES process: periodic liveness and progress checks."""
        runtime = self.runtime
        while True:
            t = runtime.engine.now
            for name in list(runtime.drivers):
                alive = runtime.thread_alive(name)
                was_alive = self._thread_alive.get(name, True)
                if was_alive and not alive:
                    self._symptom("thread_dead", name, t)
                    self._progress.pop(name, None)
                    self._stalled_flagged.pop(name, None)
                elif alive and not was_alive:
                    self._symptom("thread_back", name, t)
                self._thread_alive[name] = alive
                if not alive:
                    continue
                driver = runtime.drivers[name]
                iterations = driver.iterations
                last = self._progress.get(name)
                if last is None or last[0] != iterations:
                    self._progress[name] = (iterations, t)
                    self._stalled_flagged.pop(name, None)
                elif (t - last[1] > self.stall_timeout
                      and not driver.waiting
                      and not self._stalled_flagged.get(name)):
                    self._stalled_flagged[name] = True
                    self._symptom("thread_stalled", name, t)
            for node_name in self._node_up:
                residents = runtime.threads_on(node_name)
                if not residents:
                    continue
                down = all(not self._thread_alive[th] for th in residents)
                was_up = self._node_up[node_name]
                if was_up and down:
                    self._symptom("node_dead", node_name, t)
                elif not was_up and not down:
                    self._symptom("node_back", node_name, t)
                self._node_up[node_name] = not down
            yield runtime.engine.timeout(self.interval)


class FaultInjector:
    """Executes a fault schedule against a runtime, logging the lifecycle."""

    def __init__(self, runtime: "Runtime", schedule, log: Optional[FaultEventLog] = None,
                 detect_interval: float = 0.25, stall_timeout: float = 1.0,
                 degrade_ratio: float = 1.5) -> None:
        if not isinstance(schedule, FaultSchedule):
            schedule = FaultSchedule(schedule)
        self.runtime = runtime
        self.schedule = schedule
        self.log = log if log is not None else FaultEventLog()
        self.detector = FaultDetector(
            runtime, self.log, interval=detect_interval,
            stall_timeout=stall_timeout, degrade_ratio=degrade_ratio,
        )
        self._installed = False

    # ------------------------------------------------------------------
    def _validate_targets(self) -> None:
        runtime = self.runtime
        for spec in self.schedule:
            family = spec.kind.split("_")[0]
            if family == "thread" and spec.target not in runtime.drivers:
                raise FaultError(
                    f"fault {spec.kind!r} targets unknown thread "
                    f"{spec.target!r} (threads: {sorted(runtime.drivers)})"
                )
            if family == "node" and spec.target not in runtime.nodes:
                raise FaultError(
                    f"fault {spec.kind!r} targets unknown node "
                    f"{spec.target!r} (nodes: {sorted(runtime.nodes)})"
                )
            if family in ("link", "message"):
                src, dst = spec.link_endpoints
                if src == dst or src not in runtime.nodes or dst not in runtime.nodes:
                    raise FaultError(
                        f"fault {spec.kind!r} targets invalid link "
                        f"{spec.target!r} (nodes: {sorted(runtime.nodes)})"
                    )

    def install(self) -> "FaultInjector":
        """Register the injector and detector processes on the engine.

        No-op for an empty schedule — zero added events, keeping the run
        bit-identical to a fault-free one.
        """
        if self._installed:
            raise FaultError("FaultInjector.install() called twice")
        self._installed = True
        if self.schedule.is_empty:
            return self
        self._validate_targets()
        runtime = self.runtime
        runtime.fault_hook = self.detector.on_transport_error
        runtime.network.set_observer(self.detector.on_link_observation)
        runtime.engine.process(self._inject(), name="fault-injector")
        runtime.engine.process(self.detector.poll(), name="fault-detector")
        return self

    # ------------------------------------------------------------------
    def _inject(self) -> Generator:
        engine = self.runtime.engine
        for spec in self.schedule:
            delay = spec.at - engine.now
            if delay > 0:
                yield engine.timeout(delay)
            self._apply(spec)
        return None

    def _expire(self, spec: FaultSpec, undo) -> Generator:
        yield self.runtime.engine.timeout(spec.duration)
        undo()
        t = self.runtime.engine.now
        self.log.on_recovered(spec.target, t, kinds=(spec.kind,))
        obs = self.runtime.obs
        if obs.enabled:
            obs.on_fault("recovered", spec.kind, spec.target, t)

    def _window(self, spec: FaultSpec, undo) -> None:
        if spec.duration is not None:
            self.runtime.engine.process(
                self._expire(spec, undo),
                name=f"fault-expire.{spec.kind}.{spec.target}",
            )

    def _apply(self, spec: FaultSpec) -> None:
        runtime = self.runtime
        t = runtime.engine.now
        detail = ""
        if spec.duration is not None:
            detail = f"for {spec.duration:g}s"
        record = self.log.on_injected(spec.kind, spec.target, t, detail=detail)
        obs = runtime.obs
        if obs.enabled:
            obs.on_fault("injected", spec.kind, spec.target, t)
        kind = spec.kind
        if kind in RECOVERY_KINDS:
            # A recovery action is its own recovery; what remains open is
            # its *detection* (the detector must see the component back).
            record.t_recovered = t
        if kind == "thread_crash":
            runtime.kill_thread(spec.target, reason="fault: thread_crash")
        elif kind == "thread_stall":
            runtime.stall_thread(spec.target, spec.duration)
            self._window(spec, lambda: None)  # the stall clears itself
        elif kind == "thread_restart":
            runtime.restart_thread(spec.target)
            self.log.on_recovered(spec.target, t, kinds=RECOVERY_KINDS[kind])
        elif kind == "node_crash":
            runtime.crash_node(spec.target, reason="fault: node_crash")
        elif kind == "node_restart":
            runtime.restart_node(spec.target)
            self.log.on_recovered(spec.target, t, kinds=RECOVERY_KINDS[kind])
        elif kind == "link_degrade":
            link = self._link(spec)
            link.degrade(spec.factor)
            self._window(spec, link.clear_degrade)
        elif kind == "link_partition":
            link = self._link(spec)
            link.partition(mode=spec.mode)
            self._window(spec, link.clear_partition)
        elif kind == "link_restore":
            self._link(spec).restore()
            self.log.on_recovered(spec.target, t, kinds=RECOVERY_KINDS[kind])
        elif kind == "message_drop":
            link = self._link(spec)
            rng = runtime.rngs.stream(
                f"faults.drop.{spec.target}#{spec.seed}"
            )
            link.set_message_drop(spec.probability, rng)
            self._window(spec, link.clear_message_drop)
        else:  # pragma: no cover - FaultSpec validates kinds
            raise FaultError(f"unhandled fault kind {kind!r}")

    def _link(self, spec: FaultSpec):
        src, dst = spec.link_endpoints
        return self.runtime.network.link(src, dst)
