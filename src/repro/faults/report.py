"""Resilience reporting: detection latencies and throttle recovery.

Consumes a :class:`~repro.metrics.faultlog.FaultEventLog` plus the run's
:class:`~repro.metrics.recorder.TraceRecorder` and renders the chaos-run
postmortem: per-fault lifecycle (injected -> detected -> recovered),
unmatched symptoms, and — the ARU-specific metric — whether each source
thread's *throttle period* (its full iteration period, sleep included)
returned to within a tolerance of its pre-fault value after the last
recovery.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.metrics.faultlog import FaultEventLog
from repro.metrics.recorder import TraceRecorder


def iteration_periods(recorder: TraceRecorder,
                      thread: str) -> List[Tuple[float, float]]:
    """``(t_end, period)`` per completed iteration of ``thread``."""
    return [(it.t_end, it.t_end - it.t_start)
            for it in recorder.iterations_of(thread)]


def mean_period(recorder: TraceRecorder, thread: str,
                t0: float, t1: float) -> Optional[float]:
    """Mean iteration period of ``thread`` over iterations ending in
    ``[t0, t1]``; None when no iteration completed there."""
    periods = [p for (t, p) in iteration_periods(recorder, thread)
               if t0 <= t <= t1]
    if not periods:
        return None
    return sum(periods) / len(periods)


def throttle_recovery_time(recorder: TraceRecorder, thread: str,
                           baseline: float, t_from: float,
                           tolerance: float = 0.1,
                           window: float = 2.0) -> Optional[float]:
    """Seconds after ``t_from`` until ``thread``'s period re-enters
    ``baseline * (1 ± tolerance)``, judged over a sliding ``window``.

    Returns None if it never recovers within the trace.
    """
    if baseline <= 0:
        return None
    points = iteration_periods(recorder, thread)
    candidates = [t for (t, _p) in points if t >= t_from]
    for t in candidates:
        mean = mean_period(recorder, thread, t, t + window)
        if mean is not None and abs(mean - baseline) <= tolerance * baseline:
            return t - t_from
    return None


def _format_record(record) -> str:
    if record.detected:
        detected = f"+{record.detection_latency:5.2f}s ({record.detected_by})"
    else:
        detected = "MISSED"
    if record.recovered:
        recovered = f"t={record.t_recovered:6.2f}"
    else:
        recovered = "-"
    return (f"  [{record.index}] t={record.t_injected:6.2f}  "
            f"{record.kind:<15} {record.target:<16} "
            f"detected {detected:<28} recovered {recovered}")


def resilience_report(log: FaultEventLog,
                      recorder: Optional[TraceRecorder] = None,
                      sources: Sequence[str] = (),
                      tolerance: float = 0.1,
                      baseline_window: float = 5.0,
                      recovery_window: float = 2.0) -> str:
    """Human-readable chaos postmortem."""
    counts = log.summary()
    lines = [
        f"resilience report — {counts['injected']} faults injected, "
        f"{counts['detected']} detected, {counts['recovered']} recovered"
    ]
    for record in log.records:
        lines.append(_format_record(record))
    latencies = list(log.detection_latencies().values())
    if latencies:
        lines.append(
            f"  detection latency: mean {sum(latencies) / len(latencies):.3f}s, "
            f"max {max(latencies):.3f}s"
        )
    unmatched = log.unmatched_symptoms()
    if unmatched:
        kinds = sorted({s.symptom for s in unmatched})
        lines.append(
            f"  unmatched symptoms: {len(unmatched)} "
            f"(collateral observations: {', '.join(kinds)})"
        )
    if recorder is not None and sources and log.records:
        t_first = min(r.t_injected for r in log.records)
        recoveries = [r.t_recovered for r in log.records if r.recovered]
        t_resume = max(recoveries) if recoveries else t_first
        lines.append(f"  throttle recovery (tolerance {tolerance:.0%}):")
        for thread in sources:
            baseline = mean_period(recorder, thread,
                                   max(recorder.t_start, t_first - baseline_window),
                                   t_first)
            if baseline is None:
                lines.append(f"    {thread}: no pre-fault iterations")
                continue
            tail = mean_period(recorder, thread,
                               max(t_resume, recorder.t_end - recovery_window),
                               recorder.t_end)
            within = (tail is not None
                      and abs(tail - baseline) <= tolerance * baseline)
            delay = throttle_recovery_time(
                recorder, thread, baseline, t_resume,
                tolerance=tolerance, window=recovery_window,
            )
            tail_txt = "n/a" if tail is None else f"{tail * 1e3:.1f}ms"
            delta = ("" if tail is None or baseline == 0 else
                     f" ({(tail - baseline) / baseline:+.1%})")
            status = "recovered" if within else "NOT recovered"
            delay_txt = f" {delay:.2f}s after last recovery" if delay is not None else ""
            lines.append(
                f"    {thread}: pre-fault period {baseline * 1e3:.1f}ms, "
                f"final {tail_txt}{delta} — {status}{delay_txt}"
            )
    return "\n".join(lines)
