"""Scripted fault injection, failure detection, and ARU-aware recovery.

The subsystem has three parts:

* :class:`FaultSpec` / :class:`FaultSchedule` — a declarative, picklable
  description of *what* goes wrong *when* (crashes, stalls, restarts,
  node failures, link degradation/partition, message loss);
* :class:`FaultInjector` — a DES process that executes the schedule
  against a live :class:`~repro.runtime.runtime.Runtime`, paired with a
  polling :class:`FaultDetector` that turns observations into symptom
  events;
* :class:`~repro.metrics.faultlog.FaultEventLog` + the resilience report
  — the measurement side: detection latencies, recovery times, and
  source-throttle recovery after restarts.

An *empty* schedule installs nothing: the run is bit-identical to one
without the fault subsystem, which is the determinism contract the
differential tests pin down. See ``docs/fault-model.md``.
"""

from repro.faults.injector import FaultDetector, FaultInjector
from repro.faults.spec import (
    FAULT_KINDS,
    FaultSchedule,
    FaultSpec,
    chaos_from_dict,
    list_faults_text,
    load_chaos_file,
)
from repro.faults.report import (
    mean_period,
    resilience_report,
    throttle_recovery_time,
)
from repro.metrics.faultlog import FaultEventLog, FaultRecord, SymptomEvent

__all__ = [
    "FAULT_KINDS",
    "FaultSpec",
    "FaultSchedule",
    "FaultInjector",
    "FaultDetector",
    "FaultEventLog",
    "FaultRecord",
    "SymptomEvent",
    "chaos_from_dict",
    "load_chaos_file",
    "list_faults_text",
    "mean_period",
    "resilience_report",
    "throttle_recovery_time",
]
