"""Generator-based simulated processes.

A *process* is a Python generator that ``yield``\\ s :class:`Event` objects;
the engine resumes the generator with the event's value once it fires.
Yielding another :class:`Process` waits for that process to finish (its
return value becomes the value of the ``yield`` expression).

A process is itself an :class:`Event` which succeeds with the generator's
return value, so processes compose: parents can wait on children.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Generator, Optional

from repro.errors import ProcessKilled, SimulationError
from repro.sim.events import Event

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.engine import Engine


class Process(Event):
    """Handle for a running simulated process.

    Parameters
    ----------
    engine:
        Owning engine.
    gen:
        The generator to drive. It is started at the next engine step
        (via an immediately-scheduled initialization event), never
        synchronously, so creation order does not leak into event order.
    name:
        Optional human-readable label used in error messages.
    """

    __slots__ = ("gen", "name", "_waiting_on", "_killed")

    def __init__(self, engine: "Engine", gen: Generator, name: str = "") -> None:
        if not hasattr(gen, "send"):
            raise TypeError(f"process body must be a generator, got {type(gen)!r}")
        super().__init__(engine)
        self.gen = gen
        self.name = name or getattr(gen, "__name__", "process")
        self._waiting_on: Optional[Event] = None
        self._killed = False
        init = Event(engine)
        init.callbacks.append(self._resume)
        init.succeed(None)

    # ------------------------------------------------------------------
    @property
    def is_alive(self) -> bool:
        """True while the generator has not finished."""
        return not self.triggered

    def kill(self, reason: str = "killed") -> None:
        """Forcibly terminate the process.

        The generator receives a :class:`ProcessKilled` exception at its
        current yield point at the next engine step. Killing an already
        finished process is a no-op.
        """
        if self.triggered or self._killed:
            return
        self._killed = True
        tick = Event(self.engine)
        tick.callbacks.append(self._deliver_kill)
        tick.succeed(reason)

    def _deliver_kill(self, tick: Event) -> None:
        if self.triggered:
            return
        waiting = self._waiting_on
        if waiting is not None and not waiting.processed:
            # Detach from the event we were waiting on.
            try:
                waiting.callbacks.remove(self._resume)
            except (ValueError, AttributeError):  # pragma: no cover
                pass
        self._waiting_on = None
        self._throw(ProcessKilled(tick.value))

    # ------------------------------------------------------------------
    def _resume(self, event: Event) -> None:
        """Advance the generator with the fired event's value."""
        if self.triggered:  # killed while the event was in flight
            return
        self._waiting_on = None
        if event.ok:
            self._advance(lambda: self.gen.send(event.value))
        else:
            event.defused = True
            self._throw(event.value)

    def _throw(self, exc: BaseException) -> None:
        self._advance(lambda: self.gen.throw(exc))

    def _advance(self, step) -> None:
        try:
            target = step()
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except ProcessKilled as exc:
            # A killed process that lets the exception propagate terminates
            # "successfully dead": nobody should see this as a model error.
            self.defused = True
            self.fail(exc)
            self.defused = True
            return
        except BaseException as exc:
            self.fail(exc)
            return
        if not isinstance(target, Event):
            raise SimulationError(
                f"process {self.name!r} yielded {target!r}; processes must "
                "yield Event instances"
            )
        if target.processed:
            # Already fired: resume on a fresh immediate event to stay async.
            relay = Event(self.engine)
            relay.callbacks.append(self._resume)
            if target.ok:
                relay.succeed(target.value)
            else:
                target.defused = True
                relay.fail(target.value)
                # the relay's failure is consumed by _resume
            self._waiting_on = relay
        else:
            target.callbacks.append(self._resume)
            self._waiting_on = target

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "done" if self.triggered else "alive"
        return f"<Process {self.name!r} {state}>"
