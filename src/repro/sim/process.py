"""Generator-based simulated processes.

A *process* is a Python generator that ``yield``\\ s :class:`Event` objects;
the engine resumes the generator with the event's value once it fires.
Yielding another :class:`Process` waits for that process to finish (its
return value becomes the value of the ``yield`` expression).

A process is itself an :class:`Event` which succeeds with the generator's
return value, so processes compose: parents can wait on children.

Hot-path note: resuming a generator is the single most frequent kernel
operation (once per event with a waiter), so the resume paths call
``gen.send``/``gen.throw`` directly — no per-step closures, no relay
:class:`Event` allocation. Yields of already-fired events stay
asynchronous through the engine's slim ``_Resume`` calendar entries,
which preserve the pre-existing dispatch order exactly.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Generator, Optional

from repro.errors import ProcessKilled, SimulationError
from repro.sim.events import _PENDING, Event, _Resume

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.engine import Engine


class Process(Event):
    """Handle for a running simulated process.

    Parameters
    ----------
    engine:
        Owning engine.
    gen:
        The generator to drive. It is started at the next engine step
        (via an immediately-scheduled resume entry), never synchronously,
        so creation order does not leak into event order.
    name:
        Optional human-readable label used in error messages.
    """

    __slots__ = ("gen", "name", "_waiting_on", "_killed")

    def __init__(self, engine: "Engine", gen: Generator, name: str = "") -> None:
        if not hasattr(gen, "send"):
            raise TypeError(f"process body must be a generator, got {type(gen)!r}")
        # Inlined Event.__init__: processes are spawned per compute/transfer
        # in the runtime, so construction is itself a hot path.
        self.engine = engine
        self.callbacks = []
        self._value: Any = _PENDING
        self._ok: Optional[bool] = None
        self.defused = False
        self.gen = gen
        self.name = name or getattr(gen, "__name__", "process")
        self._waiting_on = None
        self._killed = False
        engine._schedule_resume(self, True, None)

    # ------------------------------------------------------------------
    @property
    def is_alive(self) -> bool:
        """True while the generator has not finished."""
        return not self.triggered

    def kill(self, reason: str = "killed") -> None:
        """Forcibly terminate the process.

        The generator receives a :class:`ProcessKilled` exception at its
        current yield point at the next engine step. Killing an already
        finished process is a no-op.
        """
        if self.triggered or self._killed:
            return
        self._killed = True
        tick = Event(self.engine)
        tick.callbacks.append(self._deliver_kill)
        tick.succeed(reason)

    def _deliver_kill(self, tick: Event) -> None:
        if self.triggered:
            return
        waiting = self._waiting_on
        if waiting is not None:
            # Detach from whatever we were waiting on.
            if type(waiting) is _Resume:
                waiting.cancelled = True
            elif waiting.callbacks is not None:
                try:
                    waiting.callbacks.remove(self)
                except ValueError:  # pragma: no cover
                    pass
        self._waiting_on = None
        self._throw(ProcessKilled(tick.value))

    # ------------------------------------------------------------------
    def _resume(self, event: Event) -> None:
        """Callback: advance the generator with the fired event's outcome."""
        if self._value is not _PENDING:  # killed while the event was in flight
            return
        self._waiting_on = None
        if event._ok:
            self._send(event._value)
        else:
            event.defused = True
            self._throw(event._value)

    #: Processes register *themselves* in event callback lists (saves a
    #: bound-method allocation per wait); generic ``cb(event)`` dispatch
    #: then lands here.
    __call__ = _resume

    def _resume_direct(self, ok: bool, value: Any) -> None:
        """Advance the generator from a slim ``_Resume`` calendar entry."""
        if self._value is not _PENDING:  # killed while the resume was in flight
            return
        self._waiting_on = None
        if ok:
            self._send(value)
        else:
            self._throw(value)

    def _send(self, value: Any) -> None:
        try:
            target = self.gen.send(value)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except ProcessKilled as exc:
            # A killed process that lets the exception propagate terminates
            # "successfully dead": nobody should see this as a model error.
            self.defused = True
            self.fail(exc)
            return
        except BaseException as exc:
            self.fail(exc)
            return
        self._wait_on(target)

    def _throw(self, exc: BaseException) -> None:
        try:
            target = self.gen.throw(exc)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except ProcessKilled as killed:
            self.defused = True
            self.fail(killed)
            return
        except BaseException as err:
            self.fail(err)
            return
        self._wait_on(target)

    def _wait_on(self, target) -> None:
        if not isinstance(target, Event):
            raise SimulationError(
                f"process {self.name!r} yielded {target!r}; processes must "
                "yield Event instances"
            )
        callbacks = target.callbacks
        if callbacks is None:
            # Already fired: resume via a fresh calendar entry to stay async.
            if target._ok:
                self._waiting_on = self.engine._schedule_resume(
                    self, True, target._value
                )
            else:
                target.defused = True
                self._waiting_on = self.engine._schedule_resume(
                    self, False, target._value
                )
        else:
            callbacks.append(self)
            self._waiting_on = target

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "done" if self.triggered else "alive"
        return f"<Process {self.name!r} {state}>"
