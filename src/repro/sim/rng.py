"""Named, seeded random-number streams.

Every stochastic input of a simulation (service-time noise, OS scheduling
jitter, frame content variation) draws from its own named stream, derived
deterministically from ``(root_seed, stream_name)``. This keeps runs
reproducible *and* keeps streams independent: adding a new consumer of
randomness does not perturb existing streams.
"""

from __future__ import annotations

import hashlib
from typing import Dict

import numpy as np


def _derive_seed(root_seed: int, name: str) -> int:
    """Stable 64-bit seed from a root seed and a stream name."""
    digest = hashlib.sha256(f"{root_seed}:{name}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "little")


class RngRegistry:
    """Factory and cache of named :class:`numpy.random.Generator` streams.

    Example
    -------
    >>> rngs = RngRegistry(seed=7)
    >>> a = rngs.stream("digitizer.service")
    >>> b = rngs.stream("digitizer.service")
    >>> a is b
    True
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)
        self._streams: Dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return (creating on first use) the stream called ``name``."""
        gen = self._streams.get(name)
        if gen is None:
            gen = np.random.default_rng(_derive_seed(self.seed, name))
            self._streams[name] = gen
        return gen

    def spawn(self, name: str) -> "RngRegistry":
        """A child registry whose streams are independent of this one's."""
        return RngRegistry(_derive_seed(self.seed, f"spawn:{name}"))

    def __contains__(self, name: str) -> bool:
        return name in self._streams

    def __len__(self) -> int:
        return len(self._streams)


def lognormal_with_mean(rng: np.random.Generator, mean: float, cv: float) -> float:
    """Draw a lognormal sample with arithmetic mean ``mean`` and coefficient
    of variation ``cv`` (= sigma/mean of the *sample*, not of log-space).

    Service times of data-dependent vision kernels are well modelled as
    lognormal: strictly positive, right-skewed. ``cv == 0`` returns the
    mean exactly.
    """
    if mean <= 0:
        raise ValueError(f"mean must be positive, got {mean}")
    if cv < 0:
        raise ValueError(f"cv must be non-negative, got {cv}")
    if cv == 0.0:
        return mean
    sigma2 = np.log1p(cv * cv)
    mu = np.log(mean) - 0.5 * sigma2
    return float(rng.lognormal(mean=mu, sigma=float(np.sqrt(sigma2))))
