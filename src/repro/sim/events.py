"""Event primitives for the discrete-event simulation kernel.

The kernel follows the classic event-graph design (similar in spirit to
SimPy, reimplemented from scratch here): an :class:`Event` is a one-shot
future living on an :class:`~repro.sim.engine.Engine`'s calendar. Processes
(see :mod:`repro.sim.process`) are generators that ``yield`` events; the
engine resumes them when the yielded event fires.

Events fire in deterministic order: primary key is simulated time, the tie
breaker is schedule (FIFO) order within the instant, so two runs of the
same model with the same seeds produce identical traces. The calendar is
a cohort structure — per-timestamp FIFO buckets plus a heap of distinct
times (see ``engine.py``); appending to a bucket *is* taking the next
position in the tie-break order.

Hot-path note: ``succeed``/``fail``/``Timeout.__init__`` push onto the
engine calendar directly instead of going through ``Engine._schedule`` —
these three run once per simulated event and the extra call layer is
measurable. While the engine is running, same-instant triggers go to the
O(1) current-tick FIFO (``Engine._immediate``) and fresh future timeouts
to the one-entry staging slot; both placings preserve the exact order an
eager calendar insert would have produced.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, List, Optional

from repro.errors import SimulationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.engine import Engine
    from repro.sim.process import Process

#: Sentinel for "event has not produced a value yet".
_PENDING = object()


class Event:
    """A one-shot occurrence on the simulation calendar.

    An event goes through three states:

    1. *pending* — created but not triggered;
    2. *triggered* — ``succeed``/``fail`` was called and the event sits on
       the engine calendar waiting for its turn;
    3. *processed* — the engine has invoked its callbacks.

    Parameters
    ----------
    engine:
        The engine whose calendar the event belongs to.
    """

    __slots__ = ("engine", "callbacks", "_value", "_ok", "defused")

    def __init__(self, engine: "Engine") -> None:
        self.engine = engine
        #: Callables ``cb(event)`` invoked when the event is processed.
        #: Set to ``None`` once processed.
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = _PENDING
        self._ok: Optional[bool] = None
        #: If a failed event has no waiter, the engine raises the stored
        #: exception at the top level unless ``defused`` is True.
        self.defused = False

    # -- state inspection ------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once ``succeed``/``fail`` has been called."""
        return self._value is not _PENDING

    @property
    def processed(self) -> bool:
        """True once callbacks have run."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True iff the event succeeded. Only valid once triggered."""
        if self._ok is None:
            raise SimulationError("event value not available yet")
        return self._ok

    @property
    def value(self) -> Any:
        """The success value, or the failure exception."""
        if self._value is _PENDING:
            raise SimulationError("event value not available yet")
        return self._value

    # -- triggering ------------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        """Mark the event successful and put it on the calendar *now*."""
        if self._value is not _PENDING:
            raise SimulationError(f"{self!r} already triggered")
        self._ok = True
        self._value = value
        engine = self.engine
        if engine._running:
            engine._immediate.append(self)
        else:
            engine._push(engine._now, self)
        return self

    def fail(self, exc: BaseException) -> "Event":
        """Mark the event failed with ``exc`` and schedule it *now*."""
        if not isinstance(exc, BaseException):
            raise TypeError("fail() needs an exception instance")
        if self._value is not _PENDING:
            raise SimulationError(f"{self!r} already triggered")
        self._ok = False
        self._value = exc
        engine = self.engine
        if engine._running:
            engine._immediate.append(self)
        else:
            engine._push(engine._now, self)
        return self

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = (
            "processed" if self.processed
            else "triggered" if self.triggered
            else "pending"
        )
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class _Resume:
    """Slim calendar entry that resumes one process with a known outcome.

    Replaces the relay :class:`Event` (plus its callback list) that used
    to carry process starts and already-fired yields back through the
    calendar. Occupies exactly the heap slot the relay occupied, so
    dispatch order — and therefore every simulation result — is
    unchanged. Instances are recycled through ``Engine._resume_pool``.
    """

    __slots__ = ("process", "ok", "value", "cancelled")

    def __init__(self) -> None:
        self.process: Optional["Process"] = None
        self.ok = True
        self.value: Any = None
        #: Set when the waiting process is killed before this entry fires;
        #: a cancelled resume pops as a counted no-op.
        self.cancelled = False


class Timeout(Event):
    """An event that fires ``delay`` simulated seconds after creation."""

    __slots__ = ("delay",)

    def __init__(self, engine: "Engine", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay}")
        delay = float(delay)
        # Inlined Event.__init__ + Engine._schedule: timeouts are the
        # dominant calendar entry (every sleep/compute/throttle), so the
        # two extra call frames cost real wall time at sweep scale.
        self.engine = engine
        self.callbacks = []
        self._value = value
        self._ok = True
        self.defused = False
        self.delay = delay
        when = engine._now + delay
        if engine._running:
            if when == engine._now:
                # Zero-delay (or rounding-collapsed) timeout: current-tick
                # FIFO, preserving schedule order with other same-instant
                # triggers of this tick.
                engine._immediate.append(self)
            else:
                # Future timeout created mid-dispatch: stage it instead of
                # inserting into the calendar. Flushing the previous staged
                # timeout *first* keeps every bucket's FIFO order equal to
                # schedule order; if the creating process yields this one
                # and it is globally next, the run loop fires it without
                # any calendar traffic at all.
                staged = engine._staged
                if staged is not None:
                    engine._staged = None
                    engine._push(engine._staged_when, staged)
                engine._staged = self
                engine._staged_when = when
        else:
            engine._push(when, self)


class AllOf(Event):
    """Succeeds when every child event has succeeded.

    The value is the list of child values, in the order given. Fails as
    soon as any child fails.
    """

    __slots__ = ("_children", "_remaining")

    def __init__(self, engine: "Engine", events: List[Event]) -> None:
        super().__init__(engine)
        self._children = list(events)
        self._remaining = len(self._children)
        if self._remaining == 0:
            self.succeed([])
            return
        for ev in self._children:
            if ev.processed:
                self._on_child(ev)
            else:
                ev.callbacks.append(self._on_child)

    def _on_child(self, ev: Event) -> None:
        if self.triggered:
            if not ev.ok:
                # A child failing after the composite already resolved has
                # no waiter of its own; absorb it so the engine does not
                # surface the exception at top level.
                ev.defused = True
            return
        if not ev.ok:
            ev.defused = True
            self.fail(ev.value)
            return
        self._remaining -= 1
        if self._remaining == 0:
            self.succeed([c.value for c in self._children])


class AnyOf(Event):
    """Succeeds when the first child event succeeds.

    The value is a ``(index, value)`` tuple identifying the winner.
    """

    __slots__ = ("_children",)

    def __init__(self, engine: "Engine", events: List[Event]) -> None:
        super().__init__(engine)
        self._children = list(events)
        if not self._children:
            raise ValueError("AnyOf requires at least one event")
        for idx, ev in enumerate(self._children):
            if ev.processed:
                self._on_child(idx, ev)
            else:
                ev.callbacks.append(lambda e, i=idx: self._on_child(i, e))

    def _on_child(self, idx: int, ev: Event) -> None:
        if self.triggered:
            if not ev.ok:
                # Losing child failing after the race was decided: nobody
                # waits on it anymore, so defuse instead of letting the
                # engine raise its exception at top level.
                ev.defused = True
            return
        if not ev.ok:
            ev.defused = True
            self.fail(ev.value)
            return
        self.succeed((idx, ev.value))
