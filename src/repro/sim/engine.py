"""The discrete-event simulation engine.

A minimal, deterministic event-calendar kernel. All simulated components
(channels, CPUs, network links, the ARU controller) are driven by one
:class:`Engine`. Time is a ``float`` in **seconds**.

Determinism contract
--------------------
* Events scheduled for the same instant fire in schedule order (FIFO via a
  per-engine sequence counter).
* The engine itself consumes no randomness; all stochastic behaviour comes
  from named :class:`~repro.sim.rng.RngRegistry` streams.
* The fast path (slim resume entries, the inlined ``run`` loop) changes
  only *how much work* one dispatch costs — never which entry fires next.
  Every calendar push still takes the next sequence number, so traces are
  bit-for-bit identical to the pre-fast-path kernel (pinned by
  ``tests/bench/test_runner_differential.py``).

Example
-------
>>> from repro.sim.engine import Engine
>>> eng = Engine()
>>> def hello(eng, out):
...     yield eng.timeout(3.0)
...     out.append(eng.now)
>>> out = []
>>> _ = eng.process(hello(eng, out))
>>> eng.run()
>>> out
[3.0]
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Any, Generator, Iterable, List, Optional, Tuple

from repro.errors import SimulationError
from repro.sim.events import AllOf, AnyOf, Event, Timeout, _Resume
from repro.sim.process import Process

#: Calendar entries: (time, sequence, event-or-resume)
_Entry = Tuple[float, int, Any]

#: Upper bound on recycled ``_Resume`` objects kept per engine. Bounds
#: memory while covering any realistic number of same-instant resumes.
_RESUME_POOL_MAX = 128


class Engine:
    """Deterministic discrete-event scheduler.

    Parameters
    ----------
    start:
        Initial simulated time (seconds). Defaults to ``0.0``.
    """

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)
        self._heap: List[_Entry] = []
        self._seq = 0
        self._running = False
        #: Monotonic count of processed events (useful for micro-benchmarks
        #: and run statistics). Slim resume entries count like the relay
        #: events they replaced.
        self.events_processed = 0
        #: Free list of recycled ``_Resume`` calendar entries.
        self._resume_pool: List[_Resume] = []

    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    # -- factory helpers -------------------------------------------------
    def event(self) -> Event:
        """Create a fresh pending :class:`Event` bound to this engine."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """An event that fires ``delay`` seconds from now."""
        return Timeout(self, delay, value)

    def process(self, gen: Generator, name: str = "") -> Process:
        """Register a generator as a simulated process; returns its handle."""
        return Process(self, gen, name=name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Event that fires when all of ``events`` have succeeded."""
        return AllOf(self, list(events))

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Event that fires when the first of ``events`` succeeds."""
        return AnyOf(self, list(events))

    # -- scheduling core ---------------------------------------------------
    def _schedule(self, event: Event, delay: float) -> None:
        """Put a triggered event on the calendar ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past: {delay}")
        heappush(self._heap, (self._now + delay, self._seq, event))
        self._seq += 1

    def _schedule_resume(self, process: Process, ok: bool, value: Any) -> _Resume:
        """Schedule a slim immediate resume of ``process`` (fast path).

        Used for process starts and for yields of already-fired events;
        costs one pooled object instead of an :class:`Event` plus its
        callback list.
        """
        pool = self._resume_pool
        if pool:
            entry = pool.pop()
            entry.cancelled = False
        else:
            entry = _Resume()
        entry.process = process
        entry.ok = ok
        entry.value = value
        heappush(self._heap, (self._now, self._seq, entry))
        self._seq += 1
        return entry

    def _dispatch_resume(self, entry: _Resume) -> None:
        """Fire one popped ``_Resume`` entry and recycle it."""
        process, ok, value = entry.process, entry.ok, entry.value
        cancelled = entry.cancelled
        entry.process = None
        entry.value = None
        pool = self._resume_pool
        if len(pool) < _RESUME_POOL_MAX:
            pool.append(entry)
        if not cancelled:
            process._resume_direct(ok, value)
        elif process._waiting_on is entry:
            # The waiter was killed while this entry was in flight. Drop
            # its reference before the entry is recycled, so a later kill
            # delivery cannot flag ``cancelled`` on a reused pool object.
            process._waiting_on = None

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if the calendar is empty."""
        return self._heap[0][0] if self._heap else float("inf")

    def step(self) -> None:
        """Process exactly one event; advances :attr:`now`."""
        if not self._heap:
            raise SimulationError("step() on an empty calendar")
        when, _, event = heappop(self._heap)
        if when < self._now:  # pragma: no cover - defensive
            raise SimulationError("calendar went backwards")
        self._now = when
        self.events_processed += 1
        if type(event) is _Resume:
            self._dispatch_resume(event)
            return
        callbacks = event.callbacks
        event.callbacks = None  # mark processed
        for cb in callbacks:
            cb(event)
        if event._ok is False and not event.defused:
            # Nobody waited on this failure: surface it to the caller of run().
            raise event._value

    def run(self, until: Optional[float] = None) -> None:
        """Run until the calendar drains or simulated time reaches ``until``.

        When ``until`` is given, time is advanced to exactly ``until`` even
        if the last event fires earlier, so time-weighted statistics close
        their final interval consistently.

        This is the kernel's hottest loop: it inlines :meth:`step` with
        hoisted locals and batches same-instant entries (one clock write
        per distinct instant). Semantics are identical to calling
        :meth:`step` until done.
        """
        if self._running:
            raise SimulationError("run() is not reentrant")
        limit = None if until is None else float(until)
        if limit is not None and limit < self._now:
            raise SimulationError("until lies in the past")
        self._running = True
        heap = self._heap
        now = self._now
        try:
            while heap and (limit is None or heap[0][0] <= limit):
                when, _, event = heappop(heap)
                if when != now:
                    if when < now:  # pragma: no cover - defensive
                        raise SimulationError("calendar went backwards")
                    self._now = now = when
                self.events_processed += 1
                if type(event) is _Resume:
                    self._dispatch_resume(event)
                    now = self._now  # a callback may have nested further steps
                    continue
                callbacks = event.callbacks
                event.callbacks = None  # mark processed
                for cb in callbacks:
                    cb(event)
                if event._ok is False and not event.defused:
                    raise event._value
                now = self._now
            if limit is not None:
                self._now = limit
        finally:
            self._running = False

    def run_until_event(self, event: Event, limit: Optional[float] = None) -> Any:
        """Run until ``event`` is processed; returns its value.

        An event scheduled *exactly at* ``limit`` is still processed (the
        cut-off is exclusive: ``peek() > limit`` aborts). Raises
        :class:`SimulationError` if the calendar drains (or ``limit`` is
        hit) before the event fires.
        """
        heap = self._heap
        while event.callbacks is not None:
            if not heap:
                raise SimulationError("calendar drained before event fired")
            if limit is not None and heap[0][0] > limit:
                raise SimulationError("time limit reached before event fired")
            self.step()
        if not event._ok:
            raise event._value
        return event._value
