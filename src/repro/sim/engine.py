"""The discrete-event simulation engine.

A minimal, deterministic event-calendar kernel. All simulated components
(channels, CPUs, network links, the ARU controller) are driven by one
:class:`Engine`. Time is a ``float`` in **seconds**.

Determinism contract
--------------------
* Events scheduled for the same instant fire in schedule (FIFO) order.
* The engine itself consumes no randomness; all stochastic behaviour comes
  from named :class:`~repro.sim.rng.RngRegistry` streams.
* The fast paths (cohort buckets, the current-tick FIFO, staged-timeout
  chaining, the inlined ``run`` loop) change only *how much work* one
  dispatch costs — never which entry fires next. Traces are bit-for-bit
  identical to the scalar ``step()`` loop (pinned by
  ``tests/sim/test_cohort_dispatch.py`` and the sweep/control/elastic
  differential harnesses).

Calendar architecture (see DESIGN.md §5c)
-----------------------------------------
The calendar is a cohort structure with three tiers:

* ``_buckets`` — ``dict[time -> list]`` mapping each distinct timestamp to
  its FIFO cohort of entries, plus ``_times`` — a heap of the *distinct*
  timestamps (each pushed exactly once, when its bucket is created).
  Pushing is O(1) amortised (one dict probe + list append); advancing the
  clock pops one float off a small heap — C-level float comparisons, no
  tuple allocation, and the heap holds one entry per distinct instant
  instead of one per event. FIFO order within a bucket *is* schedule
  order, because every push appends.
* ``_immediate`` — the *current-tick FIFO*: entries scheduled for exactly
  ``now`` while the engine is running (``succeed``/``fail``/zero-delay
  timeouts/process resumes). Ordering is exact: when a tick begins its
  bucket holds only entries scheduled on earlier ticks, so the engine
  drains the adopted bucket first, then the current-tick FIFO.
* ``_staged`` — a one-entry staging slot for the newest future
  :class:`Timeout` created during a dispatch. If the creating process
  immediately yields it and it is globally next (current bucket drained,
  no current-tick entries, no earlier distinct time), the run loop
  *chains*: the timeout fires directly and never touches the calendar.
  Otherwise it is flushed to its bucket before the next scheduling
  decision — and before any other push could land on its timestamp — so
  order is unchanged.

Example
-------
>>> from repro.sim.engine import Engine
>>> eng = Engine()
>>> def hello(eng, out):
...     yield eng.timeout(3.0)
...     out.append(eng.now)
>>> out = []
>>> _ = eng.process(hello(eng, out))
>>> eng.run()
>>> out
[3.0]
"""

from __future__ import annotations

from collections import deque
from heapq import heappop, heappush
from typing import Any, Dict, Generator, Iterable, List, Optional

from repro.errors import ProcessKilled, SimulationError
from repro.sim.events import _PENDING, AllOf, AnyOf, Event, Timeout, _Resume
from repro.sim.process import Process

#: Upper bound on recycled ``_Resume`` objects kept per engine. Bounds
#: memory while covering any realistic number of same-instant resumes.
#: Entries cancelled by a kill are recycled exactly like delivered ones
#: (pinned by ``tests/sim/test_resume_pool.py``).
_RESUME_POOL_MAX = 128

_INF = float("inf")


class Engine:
    """Deterministic discrete-event scheduler.

    Parameters
    ----------
    start:
        Initial simulated time (seconds). Defaults to ``0.0``.
    """

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)
        #: Distinct-timestamp cohorts: time -> FIFO list of entries.
        self._buckets: Dict[float, List[Any]] = {}
        #: Heap of the distinct timestamps present in ``_buckets``.
        self._times: List[float] = []
        #: The cohort currently being drained (its timestamp == ``now``);
        #: removed from ``_buckets`` and *reversed* on adoption so FIFO
        #: dispatch is an O(1) ``list.pop()`` from the tail.
        self._bucket: Optional[List[Any]] = None
        #: Current-tick FIFO: entries scheduled for exactly ``now`` while
        #: the engine is running. Drained after the adopted bucket.
        self._immediate: deque = deque()
        #: Staging slot for the newest future Timeout created mid-dispatch
        #: (deferred calendar insertion; enables the chain fast path).
        self._staged: Optional[Timeout] = None
        self._staged_when = 0.0
        self._running = False
        #: Monotonic count of processed events (useful for micro-benchmarks
        #: and run statistics). Slim resume entries count like the relay
        #: events they replaced; chained timeouts count like popped ones.
        self.events_processed = 0
        #: Free list of recycled ``_Resume`` calendar entries.
        self._resume_pool: List[_Resume] = []

    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    # -- factory helpers -------------------------------------------------
    def event(self) -> Event:
        """Create a fresh pending :class:`Event` bound to this engine."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """An event that fires ``delay`` seconds from now."""
        return Timeout(self, delay, value)

    def process(self, gen: Generator, name: str = "") -> Process:
        """Register a generator as a simulated process; returns its handle."""
        return Process(self, gen, name=name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Event that fires when all of ``events`` have succeeded."""
        return AllOf(self, list(events))

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Event that fires when the first of ``events`` succeeds."""
        return AnyOf(self, list(events))

    # -- scheduling core ---------------------------------------------------
    def _push(self, when: float, entry: Any) -> None:
        """Append ``entry`` to the cohort bucket for ``when``."""
        buckets = self._buckets
        bucket = buckets.get(when)
        if bucket is None:
            buckets[when] = [entry]
            heappush(self._times, when)
        else:
            bucket.append(entry)

    def _flush_staged(self) -> None:
        """Move the staged timeout into its cohort bucket.

        Must run before any *other* push could land on the staged
        timestamp (``Timeout.__init__``/``_schedule`` flush first), so the
        bucket's FIFO order always equals schedule order.
        """
        staged = self._staged
        if staged is not None:
            self._staged = None
            self._push(self._staged_when, staged)

    def _schedule(self, event: Event, delay: float) -> None:
        """Put a triggered event on the calendar ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past: {delay}")
        when = self._now + delay
        if self._running and when == self._now:
            self._immediate.append(event)
        else:
            if self._staged is not None:
                self._flush_staged()
            self._push(when, event)

    def _schedule_resume(self, process: Process, ok: bool, value: Any) -> _Resume:
        """Schedule a slim immediate resume of ``process`` (fast path).

        Used for process starts and for yields of already-fired events;
        costs one pooled object instead of an :class:`Event` plus its
        callback list.
        """
        pool = self._resume_pool
        if pool:
            entry = pool.pop()
            entry.cancelled = False
        else:
            entry = _Resume()
        entry.process = process
        entry.ok = ok
        entry.value = value
        if self._running:
            self._immediate.append(entry)
        else:
            self._push(self._now, entry)
        return entry

    def _dispatch_resume(self, entry: _Resume) -> None:
        """Fire one popped ``_Resume`` entry and recycle it."""
        process, ok, value = entry.process, entry.ok, entry.value
        cancelled = entry.cancelled
        entry.process = None
        entry.value = None
        pool = self._resume_pool
        if len(pool) < _RESUME_POOL_MAX:
            pool.append(entry)
        if not cancelled:
            process._resume_direct(ok, value)
        elif process._waiting_on is entry:
            # The waiter was killed while this entry was in flight. Drop
            # its reference before the entry is recycled, so a later kill
            # delivery cannot flag ``cancelled`` on a reused pool object.
            process._waiting_on = None

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if the calendar is empty."""
        if self._bucket or self._immediate:
            return self._now
        if self._staged is not None:
            self._flush_staged()
        return self._times[0] if self._times else _INF

    def step(self) -> None:
        """Process exactly one event; advances :attr:`now`.

        This is the *scalar* dispatch path: one selection, one dispatch,
        no batching, no chaining. ``run()`` is behaviourally identical
        (pinned by the cohort property suite) but batches the work.
        """
        bucket = self._bucket
        if bucket:
            event = bucket.pop()
        elif self._immediate:
            event = self._immediate.popleft()
        else:
            # Clock advance: a staged timeout is always in the future, so
            # this is the first point where it could be next — flush it.
            if self._staged is not None:
                self._flush_staged()
            if not self._times:
                raise SimulationError("step() on an empty calendar")
            when = heappop(self._times)
            if when < self._now:  # pragma: no cover - defensive
                raise SimulationError("calendar went backwards")
            cohort = self._buckets.pop(when)
            cohort.reverse()
            self._now = when
            self._bucket = cohort
            event = cohort.pop()
        self.events_processed += 1
        if type(event) is _Resume:
            self._dispatch_resume(event)
            return
        callbacks = event.callbacks
        event.callbacks = None  # mark processed
        for cb in callbacks:
            cb(event)
        if event._ok is False and not event.defused:
            # Nobody waited on this failure: surface it to the caller of run().
            raise event._value

    def run(self, until: Optional[float] = None) -> None:
        """Run until the calendar drains or simulated time reaches ``until``.

        When ``until`` is given, time is advanced to exactly ``until`` even
        if the last event fires earlier, so time-weighted statistics close
        their final interval consistently.

        This is the kernel's hottest loop. It drains each same-timestamp
        cohort as a batch (one clock write per distinct instant: adopted
        bucket first, then the current-tick FIFO), dispatches process
        resumes by advancing their generators inline, and *chains* the
        dominant ``yield engine.timeout(d)`` pattern: a freshly staged
        timeout that is globally next fires without ever touching the
        calendar. Semantics are identical to calling :meth:`step` until
        done.
        """
        if self._running:
            raise SimulationError("run() is not reentrant")
        limit = None if until is None else float(until)
        if limit is not None and limit < self._now:
            raise SimulationError("until lies in the past")
        self._running = True
        # Hoisted hot locals: every name in the loop below is a fast load.
        buckets = self._buckets
        times = self._times
        imm = self._immediate
        pool = self._resume_pool
        pop = heappop
        pending = _PENDING
        resume_cls = _Resume
        now = self._now
        ec = 0  # local events_processed accumulator
        try:
            while True:
                # --- select the next entry (cohort order) ---------------
                bucket = self._bucket
                if bucket:
                    event = bucket.pop()
                elif imm:
                    event = imm.popleft()
                else:
                    # Clock advance: a staged timeout is always in the
                    # future, so only here could it be next — flush it.
                    if self._staged is not None:
                        self._flush_staged()
                    if not times:
                        break
                    when = times[0]
                    if limit is not None and when > limit:
                        break
                    if when < now:  # pragma: no cover - defensive
                        raise SimulationError("calendar went backwards")
                    pop(times)
                    cohort = buckets.pop(when)
                    cohort.reverse()
                    self._now = now = when
                    self._bucket = cohort
                    event = cohort.pop()
                ec += 1
                # --- dispatch it ----------------------------------------
                if event.__class__ is resume_cls:
                    proc = event.process
                    value = event.value
                    ok = event.ok
                    cancelled = event.cancelled
                    event.process = None
                    event.value = None
                    if len(pool) < _RESUME_POOL_MAX:
                        pool.append(event)
                    if cancelled:
                        # Killed while in flight: counted no-op (the entry
                        # was recycled above — kills do not leak pool slots).
                        if proc._waiting_on is event:
                            proc._waiting_on = None
                        continue
                    if proc._value is not pending:
                        continue
                    proc._waiting_on = None
                    if not ok:
                        proc._throw(value)
                        now = self._now
                        continue
                else:
                    callbacks = event.callbacks
                    event.callbacks = None  # mark processed
                    if callbacks:
                        for cb in callbacks:
                            cb(event)  # Process waiters are callable
                        if event._ok is False and not event.defused:
                            raise event._value
                        now = self._now
                    elif event._ok is False and not event.defused:
                        raise event._value
                    continue
                # --- resume `proc` with `value` (successful resume) -----
                gen_send = proc.gen.send
                while True:
                    try:
                        target = gen_send(value)
                    except StopIteration as stop:
                        proc.succeed(stop.value)
                        break
                    except ProcessKilled as exc:
                        proc.defused = True
                        proc.fail(exc)
                        break
                    except BaseException as exc:
                        proc.fail(exc)
                        break
                    # Chain: the process yielded the timeout it just
                    # created, and nothing else fires before it.
                    if (
                        target is self._staged
                        and not imm
                        and not self._bucket
                        and (limit is None or self._staged_when <= limit)
                        and (not times or self._staged_when < times[0])
                        and self._now == now
                    ):
                        self._staged = None
                        target.callbacks = None  # processed
                        ec += 1
                        self._now = now = self._staged_when
                        value = target._value
                        continue
                    # Generic wait registration.
                    if isinstance(target, Event):
                        tcb = target.callbacks
                        if tcb is not None:
                            tcb.append(proc)
                            proc._waiting_on = target
                        else:
                            # Already fired: stay asynchronous through a
                            # slim resume entry on the current-tick FIFO.
                            if target._ok:
                                ok = True
                            else:
                                target.defused = True
                                ok = False
                            if pool:
                                entry = pool.pop()
                                entry.cancelled = False
                            else:
                                entry = resume_cls()
                            entry.process = proc
                            entry.ok = ok
                            entry.value = target._value
                            imm.append(entry)
                            proc._waiting_on = entry
                    else:
                        proc._wait_on(target)  # raises SimulationError
                    break
                now = self._now
            if limit is not None:
                self._now = limit
        finally:
            self._running = False
            self.events_processed += ec
            if self._staged is not None:
                # Unwind mid-dispatch (an exception surfaced out of the
                # loop): park the staged timeout on the calendar so the
                # engine remains consistent for a subsequent run().
                self._flush_staged()

    def run_until_event(self, event: Event, limit: Optional[float] = None) -> Any:
        """Run until ``event`` is processed; returns its value.

        An event scheduled *exactly at* ``limit`` is still processed (the
        cut-off is exclusive: ``peek() > limit`` aborts). Raises
        :class:`SimulationError` if the calendar drains (or ``limit`` is
        hit) before the event fires.
        """
        while event.callbacks is not None:
            nxt = self.peek()
            if nxt == _INF:
                raise SimulationError("calendar drained before event fired")
            if limit is not None and nxt > limit:
                raise SimulationError("time limit reached before event fired")
            self.step()
        if not event._ok:
            raise event._value
        return event._value
