"""The discrete-event simulation engine.

A minimal, deterministic event-calendar kernel. All simulated components
(channels, CPUs, network links, the ARU controller) are driven by one
:class:`Engine`. Time is a ``float`` in **seconds**.

Determinism contract
--------------------
* Events scheduled for the same instant fire in schedule order (FIFO via a
  per-engine sequence counter).
* The engine itself consumes no randomness; all stochastic behaviour comes
  from named :class:`~repro.sim.rng.RngRegistry` streams.

Example
-------
>>> from repro.sim.engine import Engine
>>> eng = Engine()
>>> def hello(eng, out):
...     yield eng.timeout(3.0)
...     out.append(eng.now)
>>> out = []
>>> _ = eng.process(hello(eng, out))
>>> eng.run()
>>> out
[3.0]
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable, List, Optional, Tuple

from repro.errors import SimulationError
from repro.sim.events import AllOf, AnyOf, Event, Timeout
from repro.sim.process import Process

#: Calendar entries: (time, sequence, event)
_Entry = Tuple[float, int, Event]


class Engine:
    """Deterministic discrete-event scheduler.

    Parameters
    ----------
    start:
        Initial simulated time (seconds). Defaults to ``0.0``.
    """

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)
        self._heap: List[_Entry] = []
        self._seq = 0
        self._running = False
        #: Monotonic count of processed events (useful for micro-benchmarks
        #: and run statistics).
        self.events_processed = 0

    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    # -- factory helpers -------------------------------------------------
    def event(self) -> Event:
        """Create a fresh pending :class:`Event` bound to this engine."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """An event that fires ``delay`` seconds from now."""
        return Timeout(self, delay, value)

    def process(self, gen: Generator, name: str = "") -> Process:
        """Register a generator as a simulated process; returns its handle."""
        return Process(self, gen, name=name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Event that fires when all of ``events`` have succeeded."""
        return AllOf(self, list(events))

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Event that fires when the first of ``events`` succeeds."""
        return AnyOf(self, list(events))

    # -- scheduling core ---------------------------------------------------
    def _schedule(self, event: Event, delay: float) -> None:
        """Put a triggered event on the calendar ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past: {delay}")
        heapq.heappush(self._heap, (self._now + delay, self._seq, event))
        self._seq += 1

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if the calendar is empty."""
        return self._heap[0][0] if self._heap else float("inf")

    def step(self) -> None:
        """Process exactly one event; advances :attr:`now`."""
        if not self._heap:
            raise SimulationError("step() on an empty calendar")
        when, _, event = heapq.heappop(self._heap)
        if when < self._now:  # pragma: no cover - defensive
            raise SimulationError("calendar went backwards")
        self._now = when
        callbacks = event.callbacks
        event.callbacks = None  # mark processed
        self.events_processed += 1
        assert callbacks is not None
        for cb in callbacks:
            cb(event)
        if not event.ok and not event.defused:
            # Nobody waited on this failure: surface it to the caller of run().
            raise event.value

    def run(self, until: Optional[float] = None) -> None:
        """Run until the calendar drains or simulated time reaches ``until``.

        When ``until`` is given, time is advanced to exactly ``until`` even
        if the last event fires earlier, so time-weighted statistics close
        their final interval consistently.
        """
        if self._running:
            raise SimulationError("run() is not reentrant")
        self._running = True
        try:
            if until is None:
                while self._heap:
                    self.step()
            else:
                limit = float(until)
                if limit < self._now:
                    raise SimulationError("until lies in the past")
                while self._heap and self._heap[0][0] <= limit:
                    self.step()
                self._now = limit
        finally:
            self._running = False

    def run_until_event(self, event: Event, limit: Optional[float] = None) -> Any:
        """Run until ``event`` is processed; returns its value.

        Raises :class:`SimulationError` if the calendar drains (or ``limit``
        is hit) before the event fires.
        """
        while not event.processed:
            if not self._heap:
                raise SimulationError("calendar drained before event fired")
            if limit is not None and self.peek() > limit:
                raise SimulationError("time limit reached before event fired")
            self.step()
        if not event.ok:
            raise event.value
        return event.value
