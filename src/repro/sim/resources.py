"""Shared-resource primitives for simulated processes.

Two primitives cover everything the runtime needs:

* :class:`Resource` — a counted FIFO resource (CPU pools, network links).
* :class:`WaitQueue` — a predicate-based condition variable (channel gets
  blocking until a matching item is put).

Both hand out plain :class:`~repro.sim.events.Event` objects so they can be
``yield``-ed from process bodies.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Any, Callable, Deque, List, Optional, Tuple

from repro.errors import SimulationError
from repro.sim.events import Event

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.engine import Engine


class Resource:
    """A counted resource with FIFO granting.

    ``capacity`` units exist; a :meth:`request` grants one unit immediately
    if available, otherwise the requester queues. :meth:`release` hands the
    unit to the longest-waiting requester.

    The grant event's value is the resource itself (convenient for
    ``with``-less usage inside generators).
    """

    def __init__(self, engine: "Engine", capacity: int = 1, name: str = "") -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.engine = engine
        self.capacity = int(capacity)
        self.name = name
        self._in_use = 0
        self._waiters: Deque[Event] = deque()
        #: Cumulative statistics for utilisation reports.
        self.total_grants = 0
        self.total_wait_time = 0.0
        self._request_times: dict[int, float] = {}

    # ------------------------------------------------------------------
    @property
    def in_use(self) -> int:
        """Units currently granted."""
        return self._in_use

    @property
    def queue_length(self) -> int:
        """Requests currently waiting."""
        return len(self._waiters)

    def request(self) -> Event:
        """Ask for one unit; the returned event fires when granted."""
        ev = Event(self.engine)
        self._request_times[id(ev)] = self.engine.now
        if self._in_use < self.capacity:
            self._grant(ev)
        else:
            self._waiters.append(ev)
        return ev

    def _grant(self, ev: Event) -> None:
        self._in_use += 1
        self.total_grants += 1
        t0 = self._request_times.pop(id(ev), self.engine.now)
        self.total_wait_time += self.engine.now - t0
        ev.succeed(self)

    def release(self) -> None:
        """Return one unit; FIFO-grants it to a waiter if any."""
        if self._in_use <= 0:
            raise SimulationError(f"release() on idle resource {self.name!r}")
        self._in_use -= 1
        while self._waiters:
            ev = self._waiters.popleft()
            if ev.triggered:  # cancelled externally
                continue
            self._grant(ev)
            break

    def cancel(self, ev: Event) -> None:
        """Withdraw a pending request (no-op if already granted)."""
        if not ev.triggered:
            try:
                self._waiters.remove(ev)
            except ValueError:
                pass
            self._request_times.pop(id(ev), None)


class WaitQueue:
    """Predicate-based condition variable.

    A waiter registers with an optional ``predicate()`` callable; every
    :meth:`notify_all` re-evaluates the predicates of all waiters (in FIFO
    order) and fires those that return a non-``None``/truthy value — the
    predicate's return value becomes the event value. A ``None`` predicate
    fires on any notification with the value passed to ``notify_all``.
    """

    def __init__(self, engine: "Engine", name: str = "") -> None:
        self.engine = engine
        self.name = name
        self._waiters: List[Tuple[Event, Optional[Callable[[], Any]]]] = []

    def __len__(self) -> int:
        return len(self._waiters)

    def wait(self, predicate: Optional[Callable[[], Any]] = None) -> Event:
        """Wait until a notification satisfies ``predicate``.

        If the predicate is *already* satisfied the event fires at the next
        engine step without requiring a notify.
        """
        ev = Event(self.engine)
        if predicate is not None:
            value = predicate()
            if value:
                ev.succeed(value)
                return ev
        self._waiters.append((ev, predicate))
        return ev

    def notify_all(self, value: Any = None) -> int:
        """Wake every waiter whose predicate is now satisfied.

        Returns the number of events fired.
        """
        fired = 0
        remaining: List[Tuple[Event, Optional[Callable[[], Any]]]] = []
        for ev, predicate in self._waiters:
            if ev.triggered:  # cancelled/killed externally
                continue
            if predicate is None:
                ev.succeed(value)
                fired += 1
            else:
                result = predicate()
                if result:
                    ev.succeed(result)
                    fired += 1
                else:
                    remaining.append((ev, predicate))
        self._waiters = remaining
        return fired

    def cancel(self, ev: Event) -> None:
        """Remove a pending waiter."""
        self._waiters = [(e, p) for (e, p) in self._waiters if e is not ev]
