"""Deterministic discrete-event simulation kernel.

Public surface:

* :class:`~repro.sim.engine.Engine` — the event calendar / scheduler.
* :class:`~repro.sim.events.Event`, :class:`~repro.sim.events.Timeout`,
  :class:`~repro.sim.events.AllOf`, :class:`~repro.sim.events.AnyOf`.
* :class:`~repro.sim.process.Process` — generator-based processes.
* :class:`~repro.sim.resources.Resource`,
  :class:`~repro.sim.resources.WaitQueue`.
* :class:`~repro.sim.rng.RngRegistry` — named seeded random streams.
"""

from repro.sim.engine import Engine
from repro.sim.events import AllOf, AnyOf, Event, Timeout
from repro.sim.process import Process
from repro.sim.resources import Resource, WaitQueue
from repro.sim.rng import RngRegistry, lognormal_with_mean

__all__ = [
    "Engine",
    "Event",
    "Timeout",
    "AllOf",
    "AnyOf",
    "Process",
    "Resource",
    "WaitQueue",
    "RngRegistry",
    "lognormal_with_mean",
]
