"""The signal record flowing from sensors to policies.

A :class:`Signals` snapshot is what a :class:`~repro.control.sensor.Sensor`
hands to a :class:`~repro.control.policy.RatePolicy` at each decision
point (every piggyback opportunity and every ``periodicity_sync()``).
It deliberately carries *measurements only* — no feedback state, which
lives in the policy, and no actuation state, which lives in the actuator
— so a policy can be unit-tested by constructing snapshots by hand.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class Signals:
    """One sensor snapshot of a thread's observable state.

    Attributes
    ----------
    now:
        Clock reading (simulated or wall seconds) at snapshot time.
    current_stp:
        The thread's filtered current-STP (paper §3.3.1) — ``None``
        until the first completed iteration.
    raw_stp:
        The unfiltered period of the last completed iteration.
    iteration_elapsed:
        Wall time already spent in the *open* iteration, including
        blocking — what a throttle actuator must top up to the target.
    iterations:
        Completed iterations so far.
    queue_depth:
        Total items buffered across the thread's input connections
        (``None`` when the sensor does not meter queues).
    drops:
        Total items skipped-over (dropped unread) across the thread's
        input connections (``None`` when not metered).
    """

    now: float
    current_stp: Optional[float]
    raw_stp: Optional[float]
    iteration_elapsed: float
    iterations: int = 0
    queue_depth: Optional[int] = None
    drops: Optional[int] = None
