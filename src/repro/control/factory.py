"""Assembly: an :class:`~repro.aru.config.AruConfig` -> live control objects.

Both executors (the DES :class:`~repro.runtime.runtime.Runtime` and the
real-threads :class:`~repro.rt_threads.executor.ThreadedRuntime`) build
their per-thread control stacks through this one factory, so a policy
added here — or registered by an extension — works on both without
either executor knowing policy kinds exist.
"""

from __future__ import annotations

from typing import Callable, Union

from repro.aru.config import AruConfig
from repro.aru.filters import resolve_factory
from repro.aru.operators import Operator
from repro.aru.stp import StpMeter
from repro.aru.summary import ThreadAruState
from repro.control.actuator import SleepThrottle
from repro.control.controller import ThreadController
from repro.control.policy import NullPolicy, PidPolicy, RatePolicy, SummaryStpPolicy
from repro.control.sensor import StpSensor
from repro.errors import ConfigError


def build_policy(
    config: AruConfig,
    name: str,
    compress_op: Union[str, Operator, None] = None,
    time_fn: Callable[[], float] = None,
) -> RatePolicy:
    """The policy instance for one thread.

    ``compress_op`` overrides the config's thread operator (per-node
    graph attribute); ``time_fn`` stamps feedback arrivals for the
    staleness TTL.
    """
    if not config.enabled or config.policy == "null":
        return NullPolicy()
    state = ThreadAruState(
        name,
        op=compress_op or config.thread_op,
        summary_filter_factory=resolve_factory(config.summary_filter),
        ttl=config.staleness_ttl,
        time_fn=time_fn,
    )
    if config.policy == "summary-stp":
        return SummaryStpPolicy(state)
    if config.policy == "pid":
        return PidPolicy(state, kp=config.pid_kp, ki=config.pid_ki)
    raise ConfigError(  # pragma: no cover - AruConfig validates the kind
        f"unknown policy kind {config.policy!r}"
    )


def build_thread_controller(
    config: AruConfig,
    name: str,
    meter: StpMeter,
    time_fn: Callable[[], float],
    is_source: bool,
    compress_op: Union[str, Operator, None] = None,
) -> ThreadController:
    """The full control stack for one thread.

    Every thread gets a controller — a disabled config yields a
    :class:`NullPolicy` stack whose decisions are all ``None``/0.0, so
    drivers carry no "is ARU on?" branches of their own.
    """
    policy = build_policy(config, name, compress_op=compress_op,
                          time_fn=time_fn)
    throttled = policy.propagates and (
        is_source or not config.throttle_sources_only
    )
    return ThreadController(
        sensor=StpSensor(meter, time_fn),
        policy=policy,
        actuator=SleepThrottle(config.headroom),
        throttled=throttled,
    )
