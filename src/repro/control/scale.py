"""Scale policies: deciding a replicated stage's worker count online.

The rate-policy layer (:mod:`repro.control.policy`) modulates the
*period* of a fixed thread set; this module adds the orthogonal control
dimension — the *parallelism* N of a replicated stage (see
:mod:`repro.runtime.replicated`). The split mirrors the rest of the
control plane:

* a **sensor** (:class:`StageSensor`) turns the stage's observable
  state — arrival rate into the partition queue, measured worker
  service STP, queue depth — into immutable :class:`StageSignals`;
* a **policy** (:class:`ScalePolicy`) maps signals to a desired replica
  count, with no access to the runtime;
* the **controller** (:class:`StageScaleController`) runs as one DES
  process per stage, applies hysteresis/cooldown, and actuates through
  the :class:`~repro.control.actuator.ScaleActuator` verb, which charges
  each spawn against the node's CPU budget.

The default :class:`ErlangScalePolicy` is the DRS-style predictor
(*Dynamic Resource Scheduling for Real-Time Analytics over Fast
Streams*): model the stage as an M/M/N queue, compute the offered load
``a = λ·s`` erlangs from the observed arrival rate λ and mean service
time s, and size N so utilisation stays under a target — optionally
refined with the Erlang-C waiting-time formula when a queueing-delay
budget is configured. See ``docs/control-plane.md`` for the derivation.

Determinism: a runtime with no scale config, a disabled config, or the
``null`` policy registers **no** controller process — zero added engine
events — so such runs are bit-identical to pre-elastic ones (the same
zero-cost-when-off pattern as the fault injector's empty schedule).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Generator, List, Optional, Tuple

from repro.errors import ConfigError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime.runtime import Runtime

SCALE_POLICY_KINDS = ("erlang", "null")


@dataclass(frozen=True)
class StageSignals:
    """One sensor snapshot of a replicated stage's observable state.

    Attributes
    ----------
    now:
        Clock reading at snapshot time.
    arrival_rate:
        Items/second admitted into the partition queue since the last
        snapshot (λ of the queueing model).
    service_time:
        Mean of the active workers' current-STP readings — the measured
        per-item service time s, ``None`` until a worker completes its
        first iteration.
    queue_depth:
        Items waiting (unstarted) in the partition queue.
    replicas:
        Workers currently alive.
    min_replicas / max_replicas:
        The stage's declared scaling bounds.
    """

    now: float
    arrival_rate: float
    service_time: Optional[float]
    queue_depth: int
    replicas: int
    min_replicas: int
    max_replicas: int


@dataclass(frozen=True)
class ScaleConfig:
    """Declarative description of one run's elastic-scaling stack.

    Picklable pure data, like :class:`~repro.aru.config.AruConfig`:
    sweep cells and spec files carry it by value (or by registered
    name via :func:`repro.control.registry.resolve_scale_policy`).

    Attributes
    ----------
    enabled:
        Master switch. Disabled configs install nothing.
    policy:
        ``"erlang"`` (the DRS-style predictor) or ``"null"`` (never an
        opinion; installs no controller — the differential baseline).
    interval:
        Controller poll period in seconds.
    target_utilization:
        Keep per-worker utilisation ``ρ = λ·s/N`` at or under this.
    wait_budget:
        Optional mean queueing-wait budget in seconds; when set, N is
        raised until the Erlang-C predicted wait fits the budget.
    drain_window:
        Backlog already queued is treated as extra arrival rate spread
        over this many seconds, so a standing queue forces scale-out
        even when the instantaneous λ alone would not.
    cooldown:
        Minimum seconds between scale actions on one stage.
    hysteresis:
        Scale in only when the desired count undershoots the current
        one by at least this many replicas.
    patience:
        Consecutive undershooting polls required before scaling in
        (scale-out reacts on the first poll; scale-in is deliberate).
    name:
        Label for reports and registries.
    """

    enabled: bool = True
    policy: str = "erlang"
    interval: float = 0.5
    target_utilization: float = 0.7
    wait_budget: Optional[float] = None
    drain_window: float = 2.0
    cooldown: float = 2.0
    hysteresis: int = 2
    patience: int = 2
    name: str = "erlang"

    def __post_init__(self) -> None:
        if self.policy not in SCALE_POLICY_KINDS:
            raise ConfigError(
                f"unknown scale policy kind {self.policy!r}; "
                f"expected one of {SCALE_POLICY_KINDS}"
            )
        if self.interval <= 0:
            raise ConfigError(f"interval must be positive, got {self.interval}")
        if not (0 < self.target_utilization < 1):
            raise ConfigError(
                f"target_utilization must be in (0, 1), got "
                f"{self.target_utilization}"
            )
        if self.wait_budget is not None and self.wait_budget <= 0:
            raise ConfigError(
                f"wait_budget must be positive, got {self.wait_budget}"
            )
        if self.drain_window <= 0:
            raise ConfigError(
                f"drain_window must be positive, got {self.drain_window}"
            )
        if self.cooldown < 0:
            raise ConfigError(f"cooldown must be >= 0, got {self.cooldown}")
        if self.hysteresis < 1:
            raise ConfigError(f"hysteresis must be >= 1, got {self.hysteresis}")
        if self.patience < 1:
            raise ConfigError(f"patience must be >= 1, got {self.patience}")


# -- presets (the registry's factories) -----------------------------------
def scale_disabled() -> ScaleConfig:
    """Elastic scaling off entirely (fixed-N baseline)."""
    return ScaleConfig(enabled=False, name="no-scale")


def scale_null() -> ScaleConfig:
    """Null policy: scaling surface wired, no controller installed."""
    return ScaleConfig(policy="null", name="null-scale")


def scale_erlang() -> ScaleConfig:
    """The default DRS-style Erlang utilisation predictor."""
    return ScaleConfig(name="erlang")


def scale_erlang_latency() -> ScaleConfig:
    """Erlang predictor with an explicit queueing-wait budget."""
    return ScaleConfig(wait_budget=0.05, name="erlang-latency")


# -- queueing model --------------------------------------------------------
def erlang_c(n: int, a: float) -> float:
    """Erlang's C formula: P(wait > 0) for an M/M/n queue at ``a`` erlangs.

    Computed with the numerically stable iterative form of the Erlang-B
    recurrence (``B(0)=1; B(k) = aB/(k+aB)``) and the standard
    conversion ``C = B / (1 - ρ(1-B))``. Returns 1.0 for an overloaded
    pool (``a >= n``): every arrival waits.
    """
    if n < 1:
        raise ConfigError(f"erlang_c needs n >= 1, got {n}")
    if a < 0:
        raise ConfigError(f"offered load must be >= 0, got {a}")
    if a == 0:
        return 0.0
    if a >= n:
        return 1.0
    b = 1.0
    for k in range(1, n + 1):
        b = a * b / (k + a * b)
    rho = a / n
    return b / (1.0 - rho * (1.0 - b))


def erlang_wait(n: int, a: float, service_time: float) -> float:
    """Mean queueing wait Wq of an M/M/n queue (seconds; inf if a >= n)."""
    if a >= n:
        return float("inf")
    return erlang_c(n, a) * service_time / (n - a)


def required_replicas(
    arrival_rate: float,
    service_time: float,
    target_utilization: float,
    wait_budget: Optional[float] = None,
    max_replicas: int = 64,
) -> int:
    """The smallest N that meets the utilisation (and wait) targets.

    ``N >= ceil(a / target_utilization)`` keeps per-worker utilisation
    under the target; with a ``wait_budget`` the count is raised until
    the Erlang-C mean wait fits it (capped at ``max_replicas``).
    """
    a = max(0.0, arrival_rate) * max(0.0, service_time)
    if a == 0:
        return 1
    n = max(1, math.ceil(a / target_utilization - 1e-9))
    if wait_budget is not None:
        while n < max_replicas and erlang_wait(n, a, service_time) > wait_budget:
            n += 1
    return n


# -- policies ---------------------------------------------------------------
class ScalePolicy:
    """Decision interface: signals in, desired replica count out.

    ``decide`` returns the policy's desired N, or ``None`` for "no
    opinion" (e.g. before any service-time measurement exists). The
    controller owns hysteresis, cooldown, and bound clamping — policies
    stay pure functions of the signals and are unit-testable with
    hand-built snapshots.
    """

    kind = "null"

    def decide(self, signals: StageSignals) -> Optional[int]:
        raise NotImplementedError

    def reset(self) -> None:
        """Forget learned state (worker restart / cold start)."""


class NullScalePolicy(ScalePolicy):
    """Never an opinion — the elastic differential baseline.

    A runtime configured with this policy installs no controller
    process at all, so a fixed-N replicated run under ``null-scale`` is
    bit-identical to one with no scale config.
    """

    kind = "null"

    def decide(self, signals: StageSignals) -> Optional[int]:
        return None


class ErlangScalePolicy(ScalePolicy):
    """DRS-style M/M/N sizing from observed arrival and service rates.

    Sizing: offered load ``a = λ_eff · s`` erlangs, where the effective
    arrival rate folds the standing backlog in over ``drain_window``
    seconds (``λ_eff = λ + depth/drain_window``) so a queue built up
    during a burst forces capacity to drain it. Desired
    ``N = ceil(a / target_utilization)``, optionally raised until the
    Erlang-C mean wait fits ``wait_budget``.
    """

    kind = "erlang"

    def __init__(self, config: ScaleConfig) -> None:
        self.config = config

    def decide(self, signals: StageSignals) -> Optional[int]:
        s = signals.service_time
        if s is None or s <= 0:
            return None
        cfg = self.config
        lam = signals.arrival_rate + signals.queue_depth / cfg.drain_window
        n = required_replicas(
            lam,
            s,
            cfg.target_utilization,
            wait_budget=cfg.wait_budget,
            max_replicas=signals.max_replicas,
        )
        return max(signals.min_replicas, min(signals.max_replicas, n))


def build_scale_policy(config: ScaleConfig) -> ScalePolicy:
    """The policy instance for one stage."""
    if not config.enabled or config.policy == "null":
        return NullScalePolicy()
    if config.policy == "erlang":
        return ErlangScalePolicy(config)
    raise ConfigError(  # pragma: no cover - ScaleConfig validates the kind
        f"unknown scale policy kind {config.policy!r}"
    )


# -- sensor -----------------------------------------------------------------
class StageSensor:
    """Measurement layer for one replicated stage.

    Reads the partition queue's put counter (arrival rate over the poll
    window), the alive workers' current-STP means (service time), and
    the queue depth. Reads never mutate runtime state beyond the
    sensor's own previous-counter memory.
    """

    def __init__(self, runtime: "Runtime", stage: str) -> None:
        self.runtime = runtime
        self.stage = stage
        spec = runtime.graph.stage_spec(stage)
        self.partition = runtime.buffers[spec["input"]]
        self._min = spec["min_replicas"]
        self._max = spec["max_replicas"]
        self._prev_puts = self.partition.total_puts
        self._prev_t = runtime.engine.now

    def read(self) -> StageSignals:
        runtime = self.runtime
        now = runtime.engine.now
        puts = self.partition.total_puts
        dt = now - self._prev_t
        rate = (puts - self._prev_puts) / dt if dt > 0 else 0.0
        self._prev_puts = puts
        self._prev_t = now
        stps: List[float] = []
        alive = 0
        for name in runtime.graph.replicas_of(self.stage):
            if not runtime.thread_alive(name):
                continue
            alive += 1
            stp = runtime.drivers[name].meter.current_stp
            if stp is not None and stp > 0:
                stps.append(stp)
        return StageSignals(
            now=now,
            arrival_rate=rate,
            service_time=sum(stps) / len(stps) if stps else None,
            queue_depth=len(self.partition),
            replicas=alive,
            min_replicas=self._min,
            max_replicas=self._max,
        )


# -- controller -------------------------------------------------------------
class StageScaleController:
    """One DES process sizing one replicated stage.

    Each poll: reap dead replicas (crashed workers whose slots would
    otherwise gate the merge frontier forever — the "ghost consumer"
    hazard), read the sensor, ask the policy for a desired N, apply
    hysteresis/cooldown, and actuate the delta. Scale-out may be
    partially denied by node CPU-budget admission; the shortfall is
    simply retried at later polls while the signals persist.
    """

    def __init__(self, runtime: "Runtime", stage: str, config: ScaleConfig) -> None:
        from repro.control.actuator import ScaleActuator

        self.runtime = runtime
        self.stage = stage
        self.config = config
        self.policy = build_scale_policy(config)
        self.sensor = StageSensor(runtime, stage)
        self.actuator = ScaleActuator(runtime, stage)
        self._last_action_t = -math.inf
        self._undershoot_polls = 0
        #: ``(t, replicas, desired, applied)`` rows for diagnostics.
        self.decisions: List[Tuple[float, int, int, int]] = []
        #: Scale-out replicas wanted but not delivered — node admission
        #: or (under arbitration) tenant-budget denials. The signal that
        #: the stage is throttled by its grant, not by its policy.
        self.denied_total = 0

    def run(self) -> Generator:
        """The controller's DES process body."""
        engine = self.runtime.engine
        while True:
            yield engine.timeout(self.config.interval)
            self.step()

    def step(self) -> int:
        """One control decision; returns the replica delta applied."""
        runtime = self.runtime
        runtime.reap_dead_replicas(self.stage)
        signals = self.sensor.read()
        desired = self.policy.decide(signals)
        if desired is None:
            return 0
        desired = max(signals.min_replicas,
                      min(signals.max_replicas, desired))
        current = signals.replicas
        cfg = self.config
        applied = 0
        attempted_out = 0
        if desired > current:
            self._undershoot_polls = 0
            if signals.now - self._last_action_t >= cfg.cooldown:
                attempted_out = desired - current
                applied = self.actuator.apply(
                    attempted_out,
                    reason=f"erlang: lambda={signals.arrival_rate:.1f}/s "
                           f"desired={desired}",
                )
        elif current - desired >= cfg.hysteresis:
            self._undershoot_polls += 1
            if (self._undershoot_polls >= cfg.patience
                    and signals.now - self._last_action_t >= cfg.cooldown):
                applied = self.actuator.apply(
                    desired - current,
                    reason=f"erlang: lambda={signals.arrival_rate:.1f}/s "
                           f"desired={desired}",
                )
        else:
            self._undershoot_polls = 0
        if applied:
            self._last_action_t = signals.now
            self._undershoot_polls = 0
        if attempted_out and applied < attempted_out:
            self.denied_total += attempted_out - applied
        self.decisions.append((signals.now, current, desired, applied))
        return applied
