"""Actuators: turn a policy's target period into a runtime action.

Paper §3.3.2: *"Source threads ... use the propagated summary-STP
information to adjust their rate of data item production."* The paper's
actuation — and the default here — is a sleep inserted at
``periodicity_sync()`` that tops the iteration up to the target period
(:class:`SleepThrottle`); threads already slower than the target sleep
nothing. Mid-pipeline threads are throttled *indirectly* — they block on
get-latest once their producers slow down ("this cascading effect
indirectly adjusts the production rate of all upstream threads").

The :class:`Actuator` interface is deliberately narrow (``plan(target,
signals) -> seconds of sleep``) but leaves room for other knobs —
batch-size or admission-control actuators would subclass it and return
0.0 while adjusting their own state.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.control.signals import Signals

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime.runtime import Runtime


def throttle_sleep(target_period: Optional[float], iteration_elapsed: float,
                   headroom: float = 1.0) -> float:
    """Seconds of sleep needed to stretch this iteration to the target.

    Parameters
    ----------
    target_period:
        The policy's target period (``None`` before any feedback has
        arrived — no throttling during cold start).
    iteration_elapsed:
        Wall time already spent in the current iteration, *including*
        blocking: the consumer-visible period is what must match.
    headroom:
        Multiplier on the target (extension knob; ``1.0`` reproduces the
        paper). Values < 1 under-throttle (keep a production safety
        margin), values > 1 over-throttle.
    """
    if iteration_elapsed < 0:
        raise ValueError(f"negative iteration_elapsed: {iteration_elapsed}")
    if headroom <= 0:
        raise ValueError(f"headroom must be positive, got {headroom}")
    if target_period is None:
        return 0.0
    if target_period < 0:
        raise ValueError(f"negative target period: {target_period}")
    return max(0.0, target_period * headroom - iteration_elapsed)


class Actuator:
    """Actuation interface of the control plane."""

    def plan(self, target: Optional[float], signals: Signals) -> float:
        """Seconds the thread should sleep this iteration (0 = none)."""
        raise NotImplementedError


class SleepThrottle(Actuator):
    """The paper's actuator: source-side sleep at ``periodicity_sync()``.

    ``headroom`` is the single source of truth for the throttle-target
    multiplier (it used to be duplicated as a ``ThreadDriver`` kwarg);
    configure it via :attr:`repro.aru.config.AruConfig.headroom`.
    """

    def __init__(self, headroom: float = 1.0) -> None:
        if headroom <= 0:
            raise ValueError(f"headroom must be positive, got {headroom}")
        self.headroom = headroom

    def plan(self, target: Optional[float], signals: Signals) -> float:
        return throttle_sleep(target, signals.iteration_elapsed, self.headroom)


class NullActuator(Actuator):
    """No actuation — observe-only control loops (e.g. dry-run policies)."""

    def plan(self, target: Optional[float], signals: Signals) -> float:
        return 0.0


class ScaleActuator:
    """The scale verb: change a replicated stage's worker count.

    Where :class:`SleepThrottle` modulates the *period* of a fixed
    thread set, this actuator modulates its *parallelism* — the second
    control dimension ISSUE 6 adds. ``apply(delta)`` walks
    :meth:`~repro.runtime.runtime.Runtime.scale_out` /
    :meth:`~repro.runtime.runtime.Runtime.scale_in` one replica at a
    time and stops early when the runtime refuses (max/min bound hit,
    or node CPU admission denied), so a partially-honoured request is
    visible to the controller as a smaller return value.
    """

    def __init__(self, runtime: "Runtime", stage: str) -> None:
        self.runtime = runtime
        self.stage = stage
        #: Cumulative actuation counters for reports.
        self.total_spawned = 0
        self.total_retired = 0

    def apply(self, delta: int, reason: str = "") -> int:
        """Add (``delta > 0``) or retire (``delta < 0``) replicas.

        Returns the signed count actually applied.
        """
        applied = 0
        if delta > 0:
            for _ in range(delta):
                if self.runtime.scale_out(self.stage, reason=reason) is None:
                    break
                applied += 1
            self.total_spawned += applied
        elif delta < 0:
            for _ in range(-delta):
                if self.runtime.scale_in(self.stage, reason=reason) is None:
                    break
                applied -= 1
            self.total_retired += -applied
        return applied
