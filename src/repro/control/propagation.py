"""The feedback bus: connection-level transport of summary values.

The paper piggybacks feedback on the existing data path (§3.3.2): a
consumer's summary-STP rides upstream on every ``get``, a buffer's
compressed summary rides back to the producer on every ``put``. This
module owns that transport as one explicit layer:

* :class:`FeedbackEndpoint` — the buffer-side half: receives consumer
  summaries per connection, advertises the compressed value to
  producers, and detaches slots when consumers unregister (thread
  restart) — the seam fault recovery and staleness eviction hook into;
* :class:`FeedbackBus` — the per-runtime factory that decides, from the
  :class:`~repro.aru.config.AruConfig`, whether buffers get endpoints at
  all (policies with ``propagates = False`` build none, reproducing the
  No-ARU baseline with zero transport overhead) and with which
  compression operator, summary filter, and staleness TTL.

Channels and queues talk only to their endpoint; they no longer know
what a backwardSTP vector is.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Union

from repro.aru.config import AruConfig
from repro.aru.filters import resolve_factory
from repro.aru.operators import Operator
from repro.aru.summary import BufferAruState


class FeedbackEndpoint:
    """Buffer-side feedback port wrapping a :class:`BufferAruState`."""

    def __init__(self, state: BufferAruState) -> None:
        self.state = state

    def receive(self, conn_id: object, value: float) -> None:
        """A consumer summary arrived, piggybacked on a get."""
        self.state.update_backward(conn_id, value)

    def advertise(self) -> Optional[float]:
        """The compressed summary to return to a producer on a put."""
        return self.state.summary()

    def detach(self, conn_id: object) -> bool:
        """Drop one consumer's slot (unregistration / thread restart)."""
        return self.state.backward.evict(conn_id)

    @property
    def backward(self):
        """The underlying backwardSTP vector (diagnostics/tests)."""
        return self.state.backward

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<FeedbackEndpoint {self.state.name!r}>"


class FeedbackBus:
    """Builds the feedback plane of one runtime from its ARU config."""

    def __init__(self, config: AruConfig,
                 time_fn: Optional[Callable[[], float]] = None) -> None:
        self.config = config
        self.time_fn = time_fn
        #: Endpoints built so far, by buffer name (diagnostics).
        self.endpoints: Dict[str, FeedbackEndpoint] = {}

    @property
    def propagates(self) -> bool:
        """Whether feedback values are transported at all."""
        return self.config.enabled and self.config.policy != "null"

    def buffer_state(
        self, name: str,
        compress_op: Union[str, Operator, None] = None,
    ) -> Optional[BufferAruState]:
        """The backwardSTP state for one buffer, or None when feedback
        is off. ``compress_op`` overrides the config's channel default
        (the optional argument the paper adds to ``spd_chan_alloc()``)."""
        if not self.propagates:
            return None
        cfg = self.config
        return BufferAruState(
            name,
            op=compress_op or cfg.default_channel_op,
            summary_filter_factory=resolve_factory(cfg.summary_filter),
            ttl=cfg.staleness_ttl,
            time_fn=self.time_fn,
        )

    def endpoint_for(
        self, name: str,
        compress_op: Union[str, Operator, None] = None,
    ) -> Optional[FeedbackEndpoint]:
        """Build (and remember) the feedback endpoint for one buffer."""
        state = self.buffer_state(name, compress_op)
        if state is None:
            return None
        endpoint = FeedbackEndpoint(state)
        self.endpoints[name] = endpoint
        return endpoint
