"""Sensors: turn runtime instruments into :class:`~repro.control.signals.Signals`.

The sensor is the measurement layer of the control plane. It owns *how*
a thread's observable state is sampled — today by wrapping the paper's
:class:`~repro.aru.stp.StpMeter` (§3.3.1) — and hands immutable
snapshots to the policy layer. Policies never touch the meter directly,
so a policy written against :class:`Signals` works unchanged on the DES
executor, the real-threads executor, or a hand-built test harness.
"""

from __future__ import annotations

from typing import Callable, Dict, Tuple

from repro.aru.stp import StpMeter
from repro.control.signals import Signals


class Sensor:
    """Measurement interface of the control plane.

    ``read()`` returns one :class:`Signals` snapshot; implementations
    must be side-effect free (a read must never advance meter state —
    the thread driver owns block/sleep/sync bookkeeping).
    """

    def read(self) -> Signals:
        raise NotImplementedError

    @property
    def meter(self) -> StpMeter:
        """The underlying STP meter (drivers do their exclusion-window
        bookkeeping against it directly)."""
        raise NotImplementedError


class StpSensor(Sensor):
    """The paper's sensor: sustainable-thread-period metering only."""

    def __init__(self, meter: StpMeter, time_fn: Callable[[], float]) -> None:
        self._meter = meter
        self._time_fn = time_fn

    @property
    def meter(self) -> StpMeter:
        return self._meter

    def read(self) -> Signals:
        m = self._meter
        return Signals(
            now=self._time_fn(),
            current_stp=m.current_stp,
            raw_stp=m.raw_stp,
            iteration_elapsed=m.iteration_elapsed,
            iterations=m.iterations,
        )


class PipelineSensor(StpSensor):
    """STP metering plus input-queue depth and drop (skip) counts.

    ``in_conns`` is the driver's input table, ``{buffer_name: (buffer,
    connection)}``. Queue depth is total items buffered across inputs;
    drops are items this thread skipped over unread — the congestion
    signals a backpressure- or loss-aware policy wants in addition to
    periods.
    """

    def __init__(
        self,
        meter: StpMeter,
        time_fn: Callable[[], float],
        in_conns: Dict[str, Tuple[object, object]],
    ) -> None:
        super().__init__(meter, time_fn)
        self._in_conns = in_conns

    def read(self) -> Signals:
        base = super().read()
        depth = 0
        drops = 0
        for buffer, conn in self._in_conns.values():
            depth += len(buffer)
            drops += conn.skips
        return Signals(
            now=base.now,
            current_stp=base.current_stp,
            raw_stp=base.raw_stp,
            iteration_elapsed=base.iteration_elapsed,
            iterations=base.iterations,
            queue_depth=depth,
            drops=drops,
        )
