"""The pluggable control plane: sensors, propagation, policy, actuation.

The paper's ARU mechanism is one fixed feedback loop — summary-STP
measured per thread, min/max-compressed backwards, actuated as a
source-side sleep. This package carves that loop into four first-class
layers so the paper's design becomes *one instance* of a general
architecture (cf. Xia et al.'s event-driven feedback scheduling and
Fu et al.'s DRS resource controller):

* **Sensor** (:mod:`~repro.control.sensor`) — measurement:
  :class:`StpSensor` wraps the paper's STP meter;
  :class:`PipelineSensor` adds queue depths and drop counts;
* **Propagation** (:mod:`~repro.control.propagation`) — transport:
  the :class:`FeedbackBus` builds per-buffer :class:`FeedbackEndpoint`
  ports that carry summary values piggybacked on put/get;
* **Policy** (:mod:`~repro.control.policy`) — decision:
  :class:`RatePolicy` implementations map sensor :class:`Signals` to a
  target period (:class:`SummaryStpPolicy` = the paper,
  :class:`PidPolicy` = a PI controller, :class:`NullPolicy` = No ARU);
* **Actuator** (:mod:`~repro.control.actuator`) — action:
  :class:`SleepThrottle` realizes the paper's source-side sleep.

:class:`ThreadController` assembles the stack per thread;
:func:`build_thread_controller` constructs it from an
:class:`~repro.aru.config.AruConfig`; the registry maps CLI/spec names
to configs. See ``docs/control-plane.md`` for a worked custom policy.
"""

from repro.control.actuator import (
    Actuator,
    NullActuator,
    ScaleActuator,
    SleepThrottle,
    throttle_sleep,
)
from repro.control.controller import ThreadController
from repro.control.factory import build_policy, build_thread_controller
from repro.control.policy import (
    NullPolicy,
    PidPolicy,
    RatePolicy,
    SummaryStpPolicy,
)
from repro.control.propagation import FeedbackBus, FeedbackEndpoint
from repro.control.registry import (
    list_policies,
    list_scale_policies,
    policies_help_text,
    register_policy,
    register_scale_policy,
    resolve_policy,
    resolve_scale_policy,
    scale_policies_help_text,
)
from repro.control.scale import (
    ErlangScalePolicy,
    NullScalePolicy,
    ScaleConfig,
    ScalePolicy,
    StageScaleController,
    StageSensor,
    StageSignals,
    build_scale_policy,
    erlang_c,
    erlang_wait,
    required_replicas,
)
from repro.control.sensor import PipelineSensor, Sensor, StpSensor
from repro.control.signals import Signals

__all__ = [
    "Signals",
    "Sensor",
    "StpSensor",
    "PipelineSensor",
    "RatePolicy",
    "NullPolicy",
    "SummaryStpPolicy",
    "PidPolicy",
    "Actuator",
    "SleepThrottle",
    "NullActuator",
    "throttle_sleep",
    "FeedbackBus",
    "FeedbackEndpoint",
    "ThreadController",
    "build_policy",
    "build_thread_controller",
    "register_policy",
    "resolve_policy",
    "list_policies",
    "policies_help_text",
    "ScaleActuator",
    "ScaleConfig",
    "ScalePolicy",
    "NullScalePolicy",
    "ErlangScalePolicy",
    "StageSignals",
    "StageSensor",
    "StageScaleController",
    "build_scale_policy",
    "erlang_c",
    "erlang_wait",
    "required_replicas",
    "register_scale_policy",
    "resolve_scale_policy",
    "list_scale_policies",
    "scale_policies_help_text",
]
