"""The per-thread controller: sensor + policy + actuator, assembled.

:class:`ThreadController` is what a thread driver holds instead of raw
ARU state. The driver keeps its three obligations — piggyback an
outbound summary on gets, deliver put feedback, and throttle at
``periodicity_sync()`` — but each is now one call into the control
plane, with the measurement/decision/actuation split hidden behind it:

* :meth:`~ThreadController.outbound_summary` — sensor read → policy
  ``advertise``; the value piggybacked upstream on a get;
* :meth:`~ThreadController.on_feedback` — the value a put returned,
  delivered to the policy;
* :meth:`~ThreadController.plan_throttle` — sensor read → policy
  ``observe`` → actuator ``plan``; returns ``(target, sleep_seconds)``.

The controller never sleeps or meters itself: the driver owns the
engine timeout and the meter's exclusion windows, so executors (DES,
real threads) differ only in how they realize the planned sleep.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.aru.stp import StpMeter
from repro.control.actuator import Actuator
from repro.control.policy import RatePolicy
from repro.control.sensor import Sensor


class ThreadController:
    """One thread's assembled feedback loop.

    Parameters
    ----------
    sensor / policy / actuator:
        The three pluggable layers.
    throttled:
        Whether this thread actuates at all. Paper behaviour: only
        source threads do; everyone else adapts by blocking (§3.3.2's
        cascading effect).
    """

    def __init__(self, sensor: Sensor, policy: RatePolicy,
                 actuator: Actuator, throttled: bool) -> None:
        self.sensor = sensor
        self.policy = policy
        self.actuator = actuator
        self.throttled = throttled

    @property
    def meter(self) -> StpMeter:
        """The thread's STP meter (the driver does block/sleep
        bookkeeping against it directly)."""
        return self.sensor.meter

    def outbound_summary(self) -> Optional[float]:
        """The summary value to piggyback upstream right now."""
        return self.policy.advertise(self.sensor.read())

    def on_feedback(self, conn_id: object, value: Optional[float]) -> None:
        """Feedback returned by a put (None = the buffer had nothing)."""
        if value is not None:
            self.policy.on_feedback(conn_id, value)

    def plan_throttle(self) -> Tuple[Optional[float], float]:
        """Decide this iteration's ``(target_period, sleep_seconds)``.

        Non-throttled threads return ``(None, 0.0)`` without consulting
        the policy — their rate adapts indirectly, by blocking.
        """
        if not self.throttled:
            return None, 0.0
        signals = self.sensor.read()
        target = self.policy.observe(signals)
        return target, self.actuator.plan(target, signals)

    def reset(self) -> None:
        """Cold-restart the decision state (supervisor thread restart)."""
        self.policy.reset()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<ThreadController policy={self.policy.kind} "
                f"throttled={self.throttled}>")
