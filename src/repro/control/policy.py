"""Rate policies: the decision layer of the control plane.

A :class:`RatePolicy` owns the feedback *state* of one thread and makes
two kinds of decisions from sensor :class:`~repro.control.signals.Signals`:

* :meth:`~RatePolicy.observe` — the target period the actuator should
  enforce this iteration (``None`` = no throttling);
* :meth:`~RatePolicy.advertise` — the summary value to piggyback
  upstream on this thread's next get (``None`` = nothing known yet).

Feedback received from downstream (piggybacked on puts) arrives through
:meth:`~RatePolicy.on_feedback`. Policies whose class attribute
``propagates`` is False opt the whole pipeline out of feedback
transport — no buffer-side state is built and no values ride on put/get,
which is how :class:`NullPolicy` reproduces the "No ARU" baseline
bit-for-bit.

Three policies ship:

* :class:`SummaryStpPolicy` — the paper's mechanism (§3.3.2): min/max
  compression of the backwardSTP vector, target = compressed summary;
* :class:`PidPolicy` — a velocity-form proportional-integral controller
  (after Xia et al., *Feedback Scheduling: An Event-Driven Paradigm*)
  that smooths the same measurement into the target instead of applying
  it raw;
* :class:`NullPolicy` — the No-ARU baseline.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.aru.summary import ThreadAruState
from repro.control.signals import Signals


class RatePolicy:
    """Decision interface of the control plane (see module docstring)."""

    #: Whether this policy participates in feedback transport. False
    #: disables the piggyback bus entirely (no buffer-side state, no
    #: values on put/get) — the No-ARU baseline.
    propagates: bool = True
    #: Short human-readable kind tag (diagnostics and reports).
    kind: str = "rate-policy"

    def on_feedback(self, conn_id: object, value: float) -> None:
        """A downstream summary value arrived for output ``conn_id``."""

    def observe(self, signals: Signals) -> Optional[float]:
        """The target period to actuate this iteration (None = none)."""
        raise NotImplementedError

    def advertise(self, signals: Signals) -> Optional[float]:
        """The summary value to propagate upstream (None = unknown)."""
        raise NotImplementedError

    def reset(self) -> None:
        """Drop all feedback state (cold restart of the owning thread)."""

    def snapshot(self) -> Dict[object, float]:
        """Copy of the per-connection feedback state (diagnostics)."""
        return {}


class NullPolicy(RatePolicy):
    """The paper's "No ARU" baseline: no feedback, no throttling."""

    propagates = False
    kind = "null"

    def observe(self, signals: Signals) -> Optional[float]:
        return None

    def advertise(self, signals: Signals) -> Optional[float]:
        return None


class SummaryStpPolicy(RatePolicy):
    """The paper's ARU policy on top of a backwardSTP vector (§3.3.2).

    * feedback values land in the per-output-connection vector;
    * the advertised summary is ``max(compressed backward, current-STP)``
      — a thread slower than its consumers inserts its own period;
    * the observed target is the compressed backward vector verbatim.
    """

    kind = "summary-stp"

    def __init__(self, state: ThreadAruState) -> None:
        self.state = state

    def on_feedback(self, conn_id: object, value: float) -> None:
        self.state.update_backward(conn_id, value)

    def observe(self, signals: Signals) -> Optional[float]:
        return self.state.backward.compressed()

    def advertise(self, signals: Signals) -> Optional[float]:
        return self.state.summary(signals.current_stp)

    def reset(self) -> None:
        self.state.backward.clear()

    def snapshot(self) -> Dict[object, float]:
        return self.state.backward.snapshot()


class PidPolicy(SummaryStpPolicy):
    """Velocity-form PI controller over the summary-STP measurement.

    The compressed backward summary is treated as the *measured*
    sustainable period; instead of actuating it raw (which inherits all
    measurement noise, §3.3.2's noise discussion), the target is driven
    towards it incrementally:

    .. math::

        e_k = \\text{measured}_k - u_{k-1} \\qquad
        u_k = u_{k-1} + k_p (e_k - e_{k-1}) + k_i e_k

    At equilibrium ``e = 0`` and the target equals the measured
    sustainable period — same fixed point as the paper's policy, but the
    approach is first-order smooth, trading settling time for far less
    target jitter. Cold start jumps straight to the first measurement
    (an integrator wind-up from zero would over-throttle the pipeline
    for many iterations).

    Upstream propagation is inherited unchanged from
    :class:`SummaryStpPolicy`: mid-pipeline threads still advertise
    ``max(compressed, current-STP)``; only the actuated target differs.
    """

    kind = "pid"

    def __init__(self, state: ThreadAruState, kp: float = 0.5,
                 ki: float = 0.25) -> None:
        super().__init__(state)
        if kp < 0 or ki < 0:
            raise ValueError(f"PID gains must be >= 0, got kp={kp} ki={ki}")
        if kp == 0 and ki == 0:
            raise ValueError("PID needs at least one non-zero gain")
        self.kp = kp
        self.ki = ki
        self._target: Optional[float] = None
        self._prev_error = 0.0

    def observe(self, signals: Signals) -> Optional[float]:
        measured = self.state.backward.compressed()
        if measured is None:
            # All feedback evicted (staleness TTL after a consumer died):
            # un-throttle and restart the loop cold, like the base policy.
            self._target = None
            self._prev_error = 0.0
            return None
        if self._target is None:
            self._target = measured
            self._prev_error = 0.0
            return self._target
        error = measured - self._target
        self._target = max(
            0.0,
            self._target + self.kp * (error - self._prev_error)
            + self.ki * error,
        )
        self._prev_error = error
        return self._target

    def reset(self) -> None:
        super().reset()
        self._target = None
        self._prev_error = 0.0
