"""The policy registry: names usable from CLI flags and spec files.

Registered names resolve to :class:`~repro.aru.config.AruConfig` values
— the picklable, declarative description of a full control stack
(policy kind + operators + filters + headroom + TTL). Keeping the
registry value-based means spec files, sweep cells, and the CLI all
share one resolution path and stay process-pool safe.

Unknown names raise :class:`~repro.errors.ConfigError` with close-match
suggestions; config typos must never silently run a default policy.

Extensions register their own presets::

    from repro.control import register_policy
    from repro.aru import AruConfig

    register_policy("aru-pid-hot", lambda: AruConfig(
        policy="pid", pid_kp=0.9, pid_ki=0.5, name="aru-pid-hot"),
        help="PI controller with aggressive gains")
"""

from __future__ import annotations

from typing import Callable, Dict, List, NamedTuple, Union

from repro.aru.config import (
    AruConfig,
    aru_disabled,
    aru_max,
    aru_min,
    aru_null,
    aru_pid,
)
from repro.control.scale import (
    ScaleConfig,
    scale_disabled,
    scale_erlang,
    scale_erlang_latency,
    scale_null,
)
from repro.errors import ConfigError, unknown_name_error


class PolicyEntry(NamedTuple):
    """One registered policy preset."""

    factory: Callable[[], AruConfig]
    help: str


_REGISTRY: Dict[str, PolicyEntry] = {}


def register_policy(name: str, factory: Callable[[], AruConfig],
                    help: str = "") -> None:
    """Register (or replace) a named policy preset."""
    if not name:
        raise ConfigError("policy name must be non-empty")
    _REGISTRY[name] = PolicyEntry(factory=factory, help=help)


def list_policies() -> List[str]:
    """Registered policy names, sorted."""
    return sorted(_REGISTRY)


def resolve_policy(policy: Union[str, AruConfig]) -> AruConfig:
    """A name or an explicit config -> the :class:`AruConfig` to run.

    Raises :class:`ConfigError` with did-you-mean suggestions for
    unknown names.
    """
    if isinstance(policy, AruConfig):
        return policy
    entry = _REGISTRY.get(policy)
    if entry is None:
        raise unknown_name_error("policy", policy, _REGISTRY)
    return entry.factory()


def policies_help_text() -> str:
    """One-line-per-policy catalog (the CLI's ``--list-policies``)."""
    width = max(len(name) for name in _REGISTRY)
    lines = ["registered policies:"]
    for name in list_policies():
        lines.append(f"  {name:<{width}}  {_REGISTRY[name].help}")
    return "\n".join(lines)


register_policy(
    "no-aru", aru_disabled,
    help="feedback loop off — the paper's baseline (maximum waste)")
register_policy(
    "aru-min", aru_min,
    help="summary-STP with conservative min compression (paper default)")
register_policy(
    "aru-max", aru_max,
    help="summary-STP with aggressive max compression (data-dependent "
         "consumers)")
register_policy(
    "aru-pid", aru_pid,
    help="velocity-form PI controller over the summary-STP measurement")
register_policy(
    "null", aru_null,
    help="NullPolicy: control plane wired but inert (differential "
         "baseline)")


# -- scale-policy registry -------------------------------------------------
# The same value-based scheme for the elastic-parallelism dimension:
# names resolve to picklable ScaleConfig values, so sweep cells and the
# CLI share one resolution path (``--scale-policy`` / ``scale_policy=``).


class ScalePolicyEntry(NamedTuple):
    """One registered scale-policy preset."""

    factory: Callable[[], ScaleConfig]
    help: str


_SCALE_REGISTRY: Dict[str, ScalePolicyEntry] = {}


def register_scale_policy(name: str, factory: Callable[[], ScaleConfig],
                          help: str = "") -> None:
    """Register (or replace) a named scale-policy preset."""
    if not name:
        raise ConfigError("scale policy name must be non-empty")
    _SCALE_REGISTRY[name] = ScalePolicyEntry(factory=factory, help=help)


def list_scale_policies() -> List[str]:
    """Registered scale-policy names, sorted."""
    return sorted(_SCALE_REGISTRY)


def resolve_scale_policy(
        policy: Union[str, ScaleConfig, None]) -> Union[ScaleConfig, None]:
    """A name, explicit config, or None -> the :class:`ScaleConfig` to run.

    ``None`` passes through (elastic scaling not configured). Unknown
    names raise :class:`ConfigError` with did-you-mean suggestions.
    """
    if policy is None or isinstance(policy, ScaleConfig):
        return policy
    entry = _SCALE_REGISTRY.get(policy)
    if entry is None:
        raise unknown_name_error("scale policy", policy, _SCALE_REGISTRY)
    return entry.factory()


def scale_policies_help_text() -> str:
    """One-line-per-policy catalog (the CLI's ``--list-scale-policies``)."""
    width = max(len(name) for name in _SCALE_REGISTRY)
    lines = ["registered scale policies:"]
    for name in list_scale_policies():
        lines.append(f"  {name:<{width}}  {_SCALE_REGISTRY[name].help}")
    return "\n".join(lines)


register_scale_policy(
    "no-scale", scale_disabled,
    help="elastic scaling off — fixed-N baseline (zero added events)")
register_scale_policy(
    "null-scale", scale_null,
    help="NullScalePolicy: scaling surface wired, no controller installed")
register_scale_policy(
    "erlang", scale_erlang,
    help="DRS-style Erlang utilisation predictor (N = ceil(lambda*s/rho))")
register_scale_policy(
    "erlang-latency", scale_erlang_latency,
    help="Erlang predictor sized to an explicit queueing-wait budget")
