"""Real-threads executor: the same task graphs on ``threading``.

Since the backend registry landed, the supported entry point is
``repro.run_experiment(ExperimentSpec(backend="threads"))`` (or
``resolve_backend("threads")``); constructing the executor directly
skips the spec validation and result packaging the registry provides.
``from repro.rt_threads import ThreadedRuntime`` therefore emits a
:class:`DeprecationWarning`. Internal plumbing (``repro.dist`` subclasses
the executor) imports from the submodules, which stay warning-free.
"""

import warnings

from repro.rt_threads.channel import ThreadChannel

__all__ = ["ThreadedRuntime", "ThreadChannel"]


def __getattr__(name: str):
    if name == "ThreadedRuntime":
        warnings.warn(
            "importing ThreadedRuntime from repro.rt_threads is deprecated; "
            "run specs through the backend registry instead: "
            "repro.run_experiment(ExperimentSpec(backend='threads')) "
            "(or repro.resolve_backend('threads'))",
            DeprecationWarning,
            stacklevel=2,
        )
        from repro.rt_threads.executor import ThreadedRuntime
        return ThreadedRuntime
    raise AttributeError(f"module 'repro.rt_threads' has no attribute {name!r}")
