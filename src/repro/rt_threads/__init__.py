"""Real-threads executor: the same task graphs on ``threading``."""

from repro.rt_threads.channel import ThreadChannel
from repro.rt_threads.executor import ThreadedRuntime

__all__ = ["ThreadedRuntime", "ThreadChannel"]
