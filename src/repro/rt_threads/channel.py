"""Thread-safe Stampede channel for the real-threads executor.

Same semantics as the simulated :class:`repro.runtime.channel.Channel`
(get-latest with skipping, per-consumer cursors, dead-timestamp
collection, ARU piggybacking) over ``threading`` primitives instead of DES
events. The dead-timestamp GC is built in — the paper's experiments always
run on DGC, and a live executor without collection would leak unboundedly.

Blocking gets honor a stop event so the runtime can shut down promptly.
"""

from __future__ import annotations

import threading
from bisect import bisect_left, bisect_right, insort
from typing import Dict, List, Optional

from repro.aru.summary import BufferAruState
from repro.errors import ItemDropped, SimulationError
from repro.runtime.connection import InputConnection, OutputConnection
from repro.runtime.item import Item, ItemView
from repro.vt.timestamp import EARLIEST, LATEST


class ThreadChannel:
    """One channel shared by real producer/consumer threads."""

    kind = "channel"

    def __init__(
        self,
        name: str,
        recorder,
        clock,
        aru_state: Optional[BufferAruState] = None,
        recorder_lock: Optional[threading.Lock] = None,
        node: str = "local",
    ) -> None:
        self.name = name
        self.recorder = recorder
        self.clock = clock
        self.node = node
        self.aru = aru_state
        self._lock = threading.Lock()
        self._cond = threading.Condition(self._lock)
        self._rec_lock = recorder_lock or threading.Lock()
        self._items: Dict[int, Item] = {}
        self._order: List[int] = []
        self.in_conns: List[InputConnection] = []
        self.out_conns: List[OutputConnection] = []
        self.total_puts = 0
        self.total_gets = 0
        self.total_skips = 0
        self.total_frees = 0

    # -- registration ------------------------------------------------------
    def register_producer(self, thread: str) -> OutputConnection:
        conn = OutputConnection(thread=thread, buffer=self.name)
        self.out_conns.append(conn)
        return conn

    def register_consumer(self, thread: str) -> InputConnection:
        conn = InputConnection(buffer=self.name, thread=thread)
        self.in_conns.append(conn)
        return conn

    def evict_consumer(self, thread: str) -> None:
        """Drop ``thread``'s consumer cursors (a reconnecting remote peer
        re-registers; its dead cursor must not freeze the DGC threshold)."""
        with self._lock:
            self.in_conns = [c for c in self.in_conns if c.thread != thread]

    def __len__(self) -> int:
        with self._lock:
            return len(self._items)

    @property
    def bytes_held(self) -> int:
        with self._lock:
            return sum(i.size for i in self._items.values())

    # -- put ---------------------------------------------------------------
    def put(self, conn: OutputConnection, item: Item) -> Optional[float]:
        """Insert an item; returns the channel summary-STP (ARU feedback)."""
        t = self.clock.now()
        with self._lock:
            if item.ts in self._items:
                raise SimulationError(
                    f"channel {self.name!r}: duplicate timestamp {item.ts}"
                )
            self._items[item.ts] = item
            insort(self._order, item.ts)
            self.total_puts += 1
            conn.puts += 1
            dead_on_arrival = [
                c for c in self.in_conns if c.last_got >= item.ts
            ]
            summary = self.aru.summary() if self.aru is not None else None
            self._cond.notify_all()
        with self._rec_lock:
            self.recorder.on_alloc(
                item_id=item.item_id,
                channel=self.name,
                node=self.node,
                ts=item.ts,
                size=item.size,
                producer=item.producer,
                parents=item.parents,
                t=t,
            )
            for c in dead_on_arrival:
                c.skips += 1
                self.total_skips += 1
                self.recorder.on_skip(item.item_id, c.conn_id, c.thread, t)
        self._collect()
        return summary

    # -- get ---------------------------------------------------------------
    def _match_locked(self, conn: InputConnection, request) -> Optional[Item]:
        if not self._order:
            return None
        if request is LATEST:
            ts = self._order[-1]
            return self._items[ts] if ts > conn.last_got else None
        if request is EARLIEST:
            idx = bisect_right(self._order, conn.last_got)
            return self._items[self._order[idx]] if idx < len(self._order) else None
        ts = int(request)
        if ts <= conn.last_got:
            raise ItemDropped(
                f"{conn.thread!r} re-requested ts {ts} on {self.name!r}"
            )
        return self._items.get(ts)

    def get(
        self,
        conn: InputConnection,
        request=LATEST,
        consumer_summary: Optional[float] = None,
        stop: Optional[threading.Event] = None,
        timeout: float = 0.05,
        max_wait: Optional[float] = None,
    ) -> Optional[ItemView]:
        """Blocking get; returns None if ``stop`` fires or ``max_wait``
        (the timed-get deadline, seconds) expires while waiting."""
        deadline = None if max_wait is None else self.clock.now() + max_wait
        with self._cond:
            while True:
                item = self._match_locked(conn, request)
                if item is not None:
                    break
                if stop is not None and stop.is_set():
                    return None
                if deadline is not None and self.clock.now() >= deadline:
                    return None
                wait_for = timeout
                if deadline is not None:
                    wait_for = min(wait_for, max(0.0, deadline - self.clock.now()))
                self._cond.wait(timeout=wait_for)
            # skip marking
            lo = bisect_right(self._order, conn.last_got)
            hi = bisect_left(self._order, item.ts)
            skipped = [self._items[ts] for ts in self._order[lo:hi]]
            conn.last_got = item.ts
            conn.gets += 1
            self.total_gets += 1
            self.total_skips += len(skipped)
            conn.skips += len(skipped)
            item.acquire()
            if self.aru is not None and consumer_summary is not None:
                self.aru.update_backward(conn.conn_id, consumer_summary)
        t = self.clock.now()
        with self._rec_lock:
            for s in skipped:
                self.recorder.on_skip(s.item_id, conn.conn_id, conn.thread, t)
            self.recorder.on_get(item.item_id, conn.conn_id, conn.thread, t)
        self._collect()
        return ItemView(item, self.name)

    def try_get(self, conn: InputConnection, request=LATEST,
                consumer_summary: Optional[float] = None) -> Optional[ItemView]:
        """Non-blocking variant; None when nothing matches."""
        with self._lock:
            if self._match_locked(conn, request) is None:
                return None
        return self.get(conn, request, consumer_summary)

    def check_dead(self, ts: int) -> bool:
        """True when every consumer's cursor has passed ``ts``."""
        with self._lock:
            if not self.in_conns:
                return False
            return all(c.last_got >= int(ts) for c in self.in_conns)

    def release(self, item: Item) -> None:
        """Consumer done with the item (end of iteration)."""
        freed = False
        with self._lock:
            item.release()
            if item.doomed and item.refcount == 0 and not item.freed:
                self._free_locked(item)
                freed = True
        if freed:
            self._record_free(item)

    # -- dead-timestamp collection ---------------------------------------------
    def _collect(self) -> None:
        """DGC: free items every consumer's cursor has passed."""
        freed: List[Item] = []
        with self._lock:
            if not self.in_conns:
                return
            threshold = min(c.last_got for c in self.in_conns)
            if threshold < 0:
                return
            idx = bisect_right(self._order, threshold)
            for ts in list(self._order[:idx]):
                item = self._items[ts]
                if item.refcount == 0:
                    self._free_locked(item)
                    freed.append(item)
                else:
                    item.doomed = True
        for item in freed:
            self._record_free(item)

    def _free_locked(self, item: Item) -> None:
        del self._items[item.ts]
        self._order.remove(item.ts)
        item.freed = True
        self.total_frees += 1

    def _record_free(self, item: Item) -> None:
        with self._rec_lock:
            self.recorder.on_free(item.item_id, self.clock.now())
