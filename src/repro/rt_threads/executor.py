"""Real-threads executor: run the same task graphs on ``threading``.

The DES reproduces the paper's numbers; this executor demonstrates the
library as an actually-running streaming runtime. The same task bodies
(generators of syscalls) execute unchanged; only the interpretation
differs:

* ``Compute(d)`` — by default ``time.sleep(d)`` (models occupancy without
  fighting the GIL; the repro band notes the GIL makes genuine parallel
  compute in Python unfaithful). ``compute_mode="busy"`` spins instead;
  ``compute_mode="noop"`` skips it (use when the task body does real numpy
  work on payloads and should pace itself).
* ``Get``/``Put`` — thread-safe channels with identical skipping, DGC, and
  ARU-piggyback semantics.
* ``PeriodicitySync`` — wall-clock STP metering and source throttling.

Timing fidelity here is subject to OS scheduling; use the DES for
measurements and this executor for live demos and smoke tests.
"""

from __future__ import annotations

import threading
import time
from typing import Dict, Optional

from repro.aru.config import AruConfig, aru_disabled
from repro.aru.filters import resolve_factory
from repro.aru.stp import StpMeter
from repro.control.controller import ThreadController
from repro.control.factory import build_thread_controller
from repro.control.propagation import FeedbackBus
from repro.errors import ConfigError, SimulationError
from repro.metrics.recorder import TraceRecorder
from repro.rt_threads.channel import ThreadChannel
from repro.runtime.graph import TaskGraph
from repro.runtime.item import Item
from repro.runtime.syscalls import (
    CheckDead,
    Compute,
    Get,
    Now,
    PeriodicitySync,
    Put,
    Release,
    Sleep,
    TryGet,
)
from repro.runtime.thread import TaskContext
from repro.sim.rng import RngRegistry
from repro.vt.clock import WallClock

_COMPUTE_MODES = ("sleep", "busy", "noop")


class _ThreadDriver(threading.Thread):
    """One real thread interpreting a task body."""

    def __init__(self, executor: "ThreadedRuntime", name: str, fn, ctx: TaskContext,
                 controller: ThreadController) -> None:
        super().__init__(name=f"stampede-{name}", daemon=True)
        self.executor = executor
        self.task_name = name
        self.fn = fn
        self.ctx = ctx
        self.controller = controller
        self.meter = controller.meter
        self.throttled = controller.throttled
        self.in_conns: Dict[str, tuple] = {}
        self.out_conns: Dict[str, tuple] = {}
        self._held = []
        self._retained = {}
        self._iter_inputs = []
        self._iter_outputs = []
        self._iter_compute = 0.0
        self._prev_blocked = 0.0
        self._iter_start = 0.0
        self.iterations = 0
        self.total_compute = 0.0
        self.error: Optional[BaseException] = None

    # ------------------------------------------------------------------
    @property
    def aru(self):
        """Compat accessor: the policy's ThreadAruState, when it has one."""
        return getattr(self.controller.policy, "state", None)

    def my_summary(self) -> Optional[float]:
        return self.controller.outbound_summary()

    def run(self) -> None:  # pragma: no cover - exercised via integration tests
        try:
            self._run()
        except BaseException as exc:  # surface in join()
            self.error = exc

    def _run(self) -> None:
        stop = self.executor.stop_event
        self._iter_start = self.executor.clock.now()
        gen = self.fn(self.ctx)
        if not hasattr(gen, "send"):
            raise SimulationError(f"task body of {self.task_name!r} must be a generator")
        to_send = None
        while not stop.is_set():
            try:
                syscall = gen.send(to_send)
            except StopIteration:
                break
            to_send = self._execute(syscall)
            if to_send is _STOPPED:
                break
        self._release_held()
        self._release_retained()

    # ------------------------------------------------------------------
    def _execute(self, syscall):
        ex = self.executor
        if isinstance(syscall, Compute):
            return self._do_compute(syscall.seconds)
        if isinstance(syscall, Get):
            channel, conn = self._conn(self.in_conns, syscall.channel)
            self.meter.block_started()
            try:
                view = channel.get(
                    conn, syscall.request,
                    consumer_summary=self.my_summary(),
                    stop=ex.stop_event,
                    max_wait=syscall.timeout,
                )
            finally:
                self.meter.block_ended()
            if view is None:
                # distinguish shutdown from a timed-get expiry
                if syscall.timeout is not None and not ex.stop_event.is_set():
                    return None
                return _STOPPED
            if syscall.hold:
                self._retained[view.item_id] = (channel, view)
            else:
                self._held.append((channel, view))
            self._iter_inputs.append(view.item_id)
            return view
        if isinstance(syscall, TryGet):
            channel, conn = self._conn(self.in_conns, syscall.channel)
            view = channel.try_get(conn, syscall.request,
                                   consumer_summary=self.my_summary())
            if view is not None:
                self._held.append((channel, view))
                self._iter_inputs.append(view.item_id)
            return view
        if isinstance(syscall, Put):
            channel, conn = self._conn(self.out_conns, syscall.channel)
            item = Item(
                ts=int(syscall.ts),
                size=syscall.size,
                payload=syscall.payload,
                producer=self.task_name,
                parents=tuple(self._iter_inputs),
                created_at=ex.clock.now(),
            )
            feedback = channel.put(conn, item)
            self.controller.on_feedback(conn.conn_id, feedback)
            self._iter_outputs.append(item.item_id)
            return item.item_id
        if isinstance(syscall, Sleep):
            if syscall.seconds > 0:
                time.sleep(syscall.seconds)
            return None
        if isinstance(syscall, Release):
            entry = self._retained.pop(getattr(syscall.view, "item_id", None), None)
            if entry is None:
                raise SimulationError(
                    f"thread {self.task_name!r} released an item it does not hold"
                )
            channel, view = entry
            channel.release(view._item)
            return None
        if isinstance(syscall, PeriodicitySync):
            return self._do_sync()
        if isinstance(syscall, Now):
            return ex.clock.now()
        if isinstance(syscall, CheckDead):
            channel, _conn = self._conn(self.out_conns, syscall.channel)
            return channel.check_dead(int(syscall.ts))
        raise SimulationError(
            f"thread {self.task_name!r} yielded {syscall!r}; expected a syscall"
        )

    def _conn(self, table, channel_name):
        try:
            return table[channel_name]
        except KeyError:
            raise SimulationError(
                f"thread {self.task_name!r} has no connection to {channel_name!r}"
            ) from None

    def _do_compute(self, seconds: float) -> float:
        mode = self.executor.compute_mode
        t0 = self.executor.clock.now()
        if mode == "sleep" and seconds > 0:
            time.sleep(seconds)
        elif mode == "busy":
            deadline = time.monotonic() + seconds
            while time.monotonic() < deadline:
                pass
        actual = self.executor.clock.now() - t0
        self._iter_compute += actual
        self.total_compute += actual
        return actual

    def _do_sync(self):
        ex = self.executor
        slept = 0.0
        target, sleep_t = self.controller.plan_throttle()
        if sleep_t > 0:
            self.meter.sleep_started()
            time.sleep(sleep_t)
            self.meter.sleep_ended()
            slept = sleep_t
        stp = self.meter.sync()
        t_end = ex.clock.now()
        blocked = self.meter.total_blocked - self._prev_blocked
        self._prev_blocked = self.meter.total_blocked
        with ex.recorder_lock:
            ex.recorder.on_iteration(
                thread=self.task_name,
                t_start=self._iter_start,
                t_end=t_end,
                compute=self._iter_compute,
                blocked=blocked,
                slept=slept,
                inputs=tuple(self._iter_inputs),
                outputs=tuple(self._iter_outputs),
                is_sink=self.ctx.is_sink,
            )
            ex.recorder.on_stp(self.task_name, t_end, stp, self.my_summary(),
                               target, slept)
        self.iterations += 1
        self._release_held()
        self._iter_inputs = []
        self._iter_outputs = []
        self._iter_compute = 0.0
        self._iter_start = t_end
        return stp

    def _release_held(self) -> None:
        for channel, view in self._held:
            channel.release(view._item)
        self._held.clear()

    def _release_retained(self) -> None:
        for channel, view in self._retained.values():
            channel.release(view._item)
        self._retained.clear()


_STOPPED = object()


class ThreadedRuntime:
    """Run a :class:`TaskGraph` on real OS threads.

    Parameters
    ----------
    graph:
        The application graph (queues are not supported by this executor —
        use channels).
    aru:
        ARU policy; defaults to disabled.
    compute_mode:
        How ``Compute(d)`` is realized: ``"sleep"`` (default), ``"busy"``,
        or ``"noop"``.
    """

    def __init__(
        self,
        graph: TaskGraph,
        aru: Optional[AruConfig] = None,
        seed: int = 0,
        compute_mode: str = "sleep",
    ) -> None:
        if compute_mode not in _COMPUTE_MODES:
            raise ConfigError(
                f"compute_mode must be one of {_COMPUTE_MODES}, got {compute_mode!r}"
            )
        graph.validate()
        if graph.queues():
            raise ConfigError("ThreadedRuntime supports channels only")
        self.graph = graph
        self.aru_config = aru or aru_disabled()
        self.compute_mode = compute_mode
        self.node_name = "local"
        self.clock = self._make_clock()
        self.recorder = TraceRecorder()
        self.recorder_lock = threading.Lock()
        self.stop_event = threading.Event()
        self.rngs = RngRegistry(seed=seed)
        self.feedback_bus = FeedbackBus(self.aru_config, time_fn=self.clock.now)

        self.channels: Dict[str, ThreadChannel] = {}
        for name in self._local_buffers():
            self.channels[name] = self._make_channel(name)

        self.drivers: Dict[str, _ThreadDriver] = {}
        for name in self._local_threads():
            self.drivers[name] = self._build_driver(name)
        self._ran = False

    # -- overridable hooks (the distributed worker subclasses these) -------
    def _make_clock(self):
        """The executor's clock (workers share an epoch across processes)."""
        return WallClock()

    def _local_threads(self):
        """Thread names this process hosts (a worker hosts its node's)."""
        return self.graph.threads()

    def _local_buffers(self):
        """Buffer names this process hosts channel storage for."""
        return self.graph.buffers()

    def _make_channel(self, name: str) -> ThreadChannel:
        """Build the local channel backing buffer ``name``."""
        aru_state = self.feedback_bus.buffer_state(
            name, self.graph.attrs(name).get("compress_op")
        )
        return ThreadChannel(
            name, self.recorder, self.clock, aru_state, self.recorder_lock
        )

    def _channel_for(self, name: str, thread: str, role: str):
        """The channel object a driver talks to for buffer ``name``.

        ``role`` is ``"consumer"`` or ``"producer"``; the distributed
        worker returns a TCP proxy here when the buffer lives on another
        node.
        """
        return self.channels[name]

    def _build_driver(self, name: str) -> _ThreadDriver:
        attrs = self.graph.attrs(name)
        cfg = self.aru_config
        meter = StpMeter(self.clock, stp_filter=resolve_factory(cfg.stp_filter)())
        is_source = self.graph.is_source(name)
        is_sink = self.graph.is_sink(name)
        controller = build_thread_controller(
            cfg,
            name,
            meter,
            self.clock.now,
            is_source,
            compress_op=attrs.get("compress_op"),
        )
        ctx = TaskContext(
            name=name,
            params=attrs.get("params", {}),
            rng=self.rngs.stream(f"task.{name}"),
            clock=self.clock,
            is_source=is_source,
            is_sink=is_sink,
        )
        driver = _ThreadDriver(self, name, attrs["fn"], ctx, controller)
        for buf in self.graph.inputs_of(name):
            channel = self._channel_for(buf, name, "consumer")
            driver.in_conns[buf] = (channel, channel.register_consumer(name))
        for buf in self.graph.outputs_of(name):
            channel = self._channel_for(buf, name, "producer")
            driver.out_conns[buf] = (channel, channel.register_producer(name))
        return driver

    # -- lifecycle ---------------------------------------------------------
    # run() = start(); sleep; stop(); join() — split out so the
    # distributed worker can drive the phases from its control protocol.
    def start(self) -> None:
        """Start every task thread (once)."""
        if self._ran:
            raise SimulationError("ThreadedRuntime.run() may only be called once")
        self._ran = True
        for driver in self.drivers.values():
            driver.start()

    def stop(self) -> None:
        """Ask every task thread to wind down."""
        self.stop_event.set()

    def join(self, timeout: float = 5.0) -> TraceRecorder:
        """Wait for task threads, re-raise the first task error,
        finalize and return the trace."""
        for driver in self.drivers.values():
            driver.join(timeout=timeout)
        errors = [d.error for d in self.drivers.values() if d.error is not None]
        if errors:
            raise errors[0]
        self.recorder.finalize(self.clock.now())
        return self.recorder

    def run(self, duration: float) -> TraceRecorder:
        """Run every task for ``duration`` wall seconds; returns the trace."""
        if duration <= 0:
            raise ConfigError("duration must be positive")
        self.start()
        time.sleep(duration)
        self.stop()
        return self.join()

    def stats(self) -> Dict[str, dict]:
        """Post-run statistics in the same shape the DES produces.

        Wall-clock analogue of :meth:`repro.runtime.Runtime.stats`:
        ``engine.now`` is elapsed wall time, the single node's
        ``busy_time`` is summed measured compute, and fields the live
        executor cannot observe (cpu grants, network bytes here) are
        zero rather than absent so downstream reports need no
        per-backend cases.
        """
        busy = sum(d.total_compute for d in self.drivers.values())
        return {
            "engine": {
                "now": self.clock.now(),
                "events_processed": sum(
                    d.iterations for d in self.drivers.values()
                ),
            },
            "nodes": {
                self.node_name: {
                    "busy_time": busy,
                    "mem_in_use": sum(
                        c.bytes_held for c in self.channels.values()
                    ),
                    "mem_peak": 0,
                    "cpu_grants": 0,
                    "cpu_wait_time": 0.0,
                }
            },
            "network": {"total_bytes": 0},
            "buffers": {
                name: {
                    "kind": buf.kind,
                    "depth": len(buf),
                    "bytes_held": buf.bytes_held,
                    "puts": buf.total_puts,
                    "gets": buf.total_gets,
                    "skips": buf.total_skips,
                    "frees": buf.total_frees,
                }
                for name, buf in self.channels.items()
            },
            "threads": {
                name: {
                    "iterations": driver.iterations,
                    "virtual_time": driver.total_compute,
                    "blocked": driver.meter.total_blocked,
                    "slept": driver.meter.total_slept,
                }
                for name, driver in self.drivers.items()
            },
        }


def run_threaded_experiment(spec) -> "object":
    """The registered runner behind ``backend="threads"``.

    Runs the spec's graph on :class:`ThreadedRuntime` for
    ``spec.horizon`` wall seconds and wraps the outcome in the same
    :class:`~repro.experiment.RunResult` shape the simulator returns.
    """
    from repro.experiment import RunResult
    from repro.obs import NULL_HUB

    opts = dict(spec.backend_options)
    compute_mode = opts.pop("compute_mode", "sleep")
    if opts:
        raise ConfigError(
            f"unknown threads backend_options {sorted(opts)}; "
            f"expected: compute_mode"
        )
    faults = spec.faults
    if faults is not None:
        from repro.faults import FaultSchedule

        if not isinstance(faults, FaultSchedule):
            faults = FaultSchedule(tuple(faults))
        if not faults.is_empty:
            raise ConfigError(
                "the threads backend does not support fault injection; "
                "use backend='sim' (scripted faults) or backend='proc' "
                "(real worker kills)"
            )
    scale = spec.resolve_scale_policy()
    if scale is not None and scale.enabled:
        # A disabled ScaleConfig (e.g. the registered "no-scale") is a
        # no-op and fine; only an *active* scaler needs the simulator.
        raise ConfigError(
            "the threads backend does not support elastic scaling; "
            "use backend='sim'"
        )
    if spec.telemetry not in (False, None):
        raise ConfigError(
            "the threads backend is not instrumented for telemetry; "
            "use backend='sim'"
        )
    graph = spec.resolve_graph()
    runtime = ThreadedRuntime(
        graph,
        aru=spec.resolve_policy(),
        seed=spec.seed,
        compute_mode=compute_mode,
    )
    trace = runtime.run(duration=spec.horizon)
    return RunResult(
        spec=spec,
        trace=trace,
        stats=runtime.stats(),
        telemetry=NULL_HUB,
        fault_log=None,
        runtime=runtime,
    )
